// Command-line entry point for the determinism linter. All logic lives in
// qsteer_lint_lib.{h,cc} so tests/lint_test.cc can drive the engine (and
// the exit-code contract) in-process.
#include <iostream>

#include "qsteer_lint_lib.h"

int main(int argc, char** argv) {
  return qsteer::lint::RunLintMain(argc, argv, std::cout, std::cerr);
}
