#include "qsteer_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace qsteer {
namespace lint {
namespace {

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// True when `text[pos..]` starts with `word` at a word boundary on both
/// sides.
bool MatchWord(std::string_view text, size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + word.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

/// Finds `word` at a word boundary anywhere in `text`, optionally requiring
/// an open paren (after whitespace) right behind it.
bool ContainsWordCall(std::string_view text, std::string_view word, bool require_paren) {
  for (size_t pos = text.find(word); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (!MatchWord(text, pos, word)) continue;
    if (!require_paren) return true;
    size_t after = pos + word.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t')) ++after;
    if (after < text.size() && text[after] == '(') return true;
  }
  return false;
}

/// Replaces comments and string/char-literal *contents* with spaces,
/// preserving newlines and column positions, so pattern matching never
/// fires on prose and directives can still be read from the raw text.
std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim(...)delim"
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          size_t paren = content.find('(', i + 2);
          if (paren != std::string_view::npos) {
            raw_delim = ")" + std::string(content.substr(i + 2, paren - i - 2)) + "\"";
            state = State::kRawString;
            for (size_t j = i; j <= paren; ++j) out[j] = ' ';
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          // The ident-char guard keeps digit separators (1'000'000) intact.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < content.size() && next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < content.size() && next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool IsBlank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

std::string Trim(std::string_view text) {
  size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return "";
  size_t end = text.find_last_not_of(" \t\r");
  return std::string(text.substr(begin, end - begin + 1));
}

const std::map<std::string, std::string>& RuleNamesById() {
  static const std::map<std::string, std::string> kNames = {
      {"QL001", "random-source"},     {"QL002", "wall-clock"},
      {"QL003", "unordered-iteration"}, {"QL004", "pointer-ordering"},
      {"QL005", "banned-include"},    {"QL006", "bad-suppression"},
  };
  return kNames;
}

/// Accepts a rule id ("QL002") or name ("wall-clock"); returns the id, or
/// "" when unrecognized.
std::string NormalizeRule(const std::string& rule) {
  for (const auto& [id, name] : RuleNamesById()) {
    if (rule == id || rule == name) return id;
  }
  return "";
}

struct Directives {
  /// line (1-based) -> rule ids suppressed on that line.
  std::map<int, std::set<std::string>> allow;
  /// Directive problems (QL006) found while parsing.
  std::vector<Finding> findings;
};

/// Parses `// qsteer-lint: allow(<rule>) <justification>` and
/// `// qsteer-lint: sorted <justification>` directives. A directive on a
/// standalone comment line applies to the next line; otherwise to its own.
Directives ParseDirectives(const std::string& path,
                           const std::vector<std::string_view>& raw_lines,
                           const std::vector<std::string_view>& stripped_lines) {
  static constexpr std::string_view kMarker = "qsteer-lint:";
  Directives result;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    size_t marker = raw_lines[i].find(kMarker);
    if (marker == std::string_view::npos) continue;
    int line = static_cast<int>(i) + 1;
    std::string rest = Trim(raw_lines[i].substr(marker + kMarker.size()));
    if (size_t close = rest.find("*/"); close != std::string::npos) {
      rest = Trim(rest.substr(0, close));
    }
    std::string rule_id;
    std::string justification;
    if (rest.rfind("allow(", 0) == 0) {
      size_t close = rest.find(')');
      if (close == std::string::npos) {
        result.findings.push_back({path, line, "QL006", "bad-suppression",
                                   "malformed allow(...) directive: missing ')'"});
        continue;
      }
      rule_id = NormalizeRule(Trim(rest.substr(6, close - 6)));
      if (rule_id.empty()) {
        result.findings.push_back({path, line, "QL006", "bad-suppression",
                                   "allow(...) names an unknown rule"});
        continue;
      }
      justification = Trim(rest.substr(close + 1));
    } else if (rest.rfind("sorted", 0) == 0 &&
               (rest.size() == 6 || !IsIdentChar(rest[6]))) {
      rule_id = "QL003";
      justification = Trim(rest.substr(6));
    } else {
      result.findings.push_back({path, line, "QL006", "bad-suppression",
                                 "unknown qsteer-lint directive (expected allow(<rule>) "
                                 "or sorted)"});
      continue;
    }
    if (justification.empty()) {
      result.findings.push_back(
          {path, line, "QL006", "bad-suppression",
           "suppression without a justification has no effect; explain why the "
           "pattern is safe"});
      continue;
    }
    // A standalone comment line shields the next line; an end-of-line
    // directive shields its own.
    int target = IsBlank(stripped_lines[i]) ? line + 1 : line;
    result.allow[target].insert(rule_id);
  }
  return result;
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// ---- QL003 support: unordered-container declarations and range-fors ----

/// Names declared in this file as std::unordered_map/std::unordered_set
/// variables or members (template arguments balanced by hand; regex cannot
/// nest). `decl_lines` receives the declaration line of each name.
std::set<std::string> UnorderedContainerNames(std::string_view stripped,
                                              std::map<std::string, int>* decl_lines) {
  std::set<std::string> names;
  for (std::string_view keyword : {"unordered_map", "unordered_set"}) {
    for (size_t pos = stripped.find(keyword); pos != std::string_view::npos;
         pos = stripped.find(keyword, pos + 1)) {
      if (!MatchWord(stripped, pos, keyword)) continue;
      size_t cursor = pos + keyword.size();
      while (cursor < stripped.size() && std::isspace(static_cast<unsigned char>(stripped[cursor])))
        ++cursor;
      if (cursor >= stripped.size() || stripped[cursor] != '<') continue;
      int depth = 1;
      ++cursor;
      while (cursor < stripped.size() && depth > 0) {
        if (stripped[cursor] == '<') ++depth;
        if (stripped[cursor] == '>') --depth;
        ++cursor;
      }
      if (depth != 0) continue;
      // Skip whitespace and declarator decorations to the declared name.
      while (cursor < stripped.size() &&
             (std::isspace(static_cast<unsigned char>(stripped[cursor])) ||
              stripped[cursor] == '&' || stripped[cursor] == '*')) {
        ++cursor;
      }
      size_t name_begin = cursor;
      while (cursor < stripped.size() && IsIdentChar(stripped[cursor])) ++cursor;
      if (cursor == name_begin) continue;  // e.g. `unordered_map<...>::iterator` or `>;`
      std::string name(stripped.substr(name_begin, cursor - name_begin));
      while (cursor < stripped.size() && std::isspace(static_cast<unsigned char>(stripped[cursor])))
        ++cursor;
      if (cursor < stripped.size() && stripped[cursor] == '(') continue;  // function decl
      if (name == "const" || name == "final") continue;
      names.insert(name);
      if (decl_lines->find(name) == decl_lines->end()) {
        int line = 1 + static_cast<int>(std::count(stripped.begin(),
                                                   stripped.begin() + static_cast<long>(pos), '\n'));
        (*decl_lines)[name] = line;
      }
    }
  }
  return names;
}

struct RangeFor {
  int line = 0;             // 1-based line of the `for`
  std::string range_ident;  // last identifier of the range expression
};

/// Finds range-based for statements and the final identifier of each range
/// expression (`store_` in `for (auto& kv : store_)`, `rows` in
/// `for (const auto& r : view->rows)`).
std::vector<RangeFor> FindRangeFors(std::string_view stripped) {
  std::vector<RangeFor> fors;
  for (size_t pos = stripped.find("for"); pos != std::string_view::npos;
       pos = stripped.find("for", pos + 1)) {
    if (!MatchWord(stripped, pos, "for")) continue;
    size_t open = pos + 3;
    while (open < stripped.size() && std::isspace(static_cast<unsigned char>(stripped[open])))
      ++open;
    if (open >= stripped.size() || stripped[open] != '(') continue;
    int depth = 0;
    size_t cursor = open;
    size_t colon = std::string_view::npos;
    bool has_semicolon = false;
    for (; cursor < stripped.size(); ++cursor) {
      char c = stripped[cursor];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) break;
      if (depth == 1 && c == ';') has_semicolon = true;
      if (depth == 1 && c == ':' && colon == std::string_view::npos) {
        bool double_colon = (cursor + 1 < stripped.size() && stripped[cursor + 1] == ':') ||
                            (cursor > 0 && stripped[cursor - 1] == ':');
        if (!double_colon) colon = cursor;
      }
    }
    if (cursor >= stripped.size() || has_semicolon || colon == std::string_view::npos) continue;
    std::string_view range = stripped.substr(colon + 1, cursor - colon - 1);
    // Last identifier in the range expression.
    size_t end = range.find_last_not_of(" \t\r\n");
    if (end == std::string_view::npos) continue;
    while (end != std::string_view::npos && !IsIdentChar(range[end])) {
      if (end == 0) break;
      --end;
    }
    if (!IsIdentChar(range[end])) continue;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(range[begin - 1])) --begin;
    RangeFor entry;
    entry.range_ident = std::string(range.substr(begin, end - begin + 1));
    entry.line = 1 + static_cast<int>(std::count(stripped.begin(),
                                                 stripped.begin() + static_cast<long>(pos), '\n'));
    fors.push_back(entry);
  }
  return fors;
}

/// A file is order-sensitive (QL003 applies) when it emits bytes whose
/// order a reader could depend on: serialization, text output, hashing of
/// aggregated state.
bool IsOrderSensitive(std::string_view stripped) {
  for (std::string_view marker :
       {"Serialize", "ToString", "ostream", "ostringstream", "AtomicWriteFile",
        "WriteFileChecksummed", "fprintf", "printf"}) {
    if (stripped.find(marker) != std::string_view::npos) return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> LintContent(const std::string& path, std::string_view content,
                                 const LintOptions& options,
                                 std::string_view companion_decls) {
  // The linter's own sources (and its fixtures' golden copies) spell the
  // banned patterns out; self-exemption keeps it from eating itself.
  if (Basename(path).rfind("qsteer_lint", 0) == 0) return {};

  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string_view> raw_lines = SplitLines(content);
  const std::vector<std::string_view> stripped_lines = SplitLines(stripped);
  Directives directives = ParseDirectives(path, raw_lines, stripped_lines);

  std::vector<Finding> findings = std::move(directives.findings);
  auto Suppressed = [&directives](int line, const std::string& rule_id) {
    auto it = directives.allow.find(line);
    return it != directives.allow.end() && it->second.count(rule_id) > 0;
  };
  auto Emit = [&](int line, const char* id, const std::string& message) {
    if (Suppressed(line, id)) return;
    findings.push_back({path, line, id, RuleNamesById().at(id), message});
  };

  const bool ql001_allowlisted =
      options.builtin_allowlists &&
      (PathContains(path, "common/random.") || PathContains(path, "bench/"));
  const bool ql002_allowlisted = options.builtin_allowlists && PathContains(path, "bench/");
  const bool ql005_applies = PathContains(path, "src/core/") ||
                             PathContains(path, "src/optimizer/") ||
                             PathContains(path, "src/service/");

  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::string_view line = stripped_lines[i];
    int lineno = static_cast<int>(i) + 1;

    // QL001: ambient randomness. Every random draw must flow from a seeded
    // Pcg32 (common/random.h) so runs are reproducible bit-for-bit.
    if (!ql001_allowlisted) {
      if (line.find("std::random_device") != std::string_view::npos) {
        Emit(lineno, "QL001",
             "std::random_device is ambient entropy; derive seeds from the "
             "experiment seed (common/random.h)");
      } else if (ContainsWordCall(line, "rand", /*require_paren=*/true) ||
                 ContainsWordCall(line, "srand", /*require_paren=*/true)) {
        Emit(lineno, "QL001",
             "rand()/srand() draw from hidden global state; use a seeded Pcg32 "
             "(common/random.h)");
      }
    }

    // QL002: wall clocks. Time-dependent control flow diverges run to run;
    // simulated time and seeded costs keep experiments reproducible.
    if (!ql002_allowlisted) {
      if (line.find("_clock::now") != std::string_view::npos ||
          ContainsWordCall(line, "gettimeofday", /*require_paren=*/true) ||
          ContainsWordCall(line, "clock_gettime", /*require_paren=*/true) ||
          ContainsWordCall(line, "time", /*require_paren=*/true)) {
        Emit(lineno, "QL002",
             "wall-clock read in library code; gate behavior on simulated time "
             "or suppress with a justification if this is observability-only");
      }
    }

    // QL004: raw-pointer ordering. Addresses differ across runs, so any
    // pointer-keyed ordered container iterates in a nondeterministic order.
    {
      static const struct {
        const char* needle;
        const char* what;
      } kPointerPatterns[] = {
          {"std::set<", "std::set keyed by pointer"},
          {"std::map<", "std::map keyed by pointer"},
          {"std::less<", "std::less over pointers"},
      };
      for (const auto& pattern : kPointerPatterns) {
        size_t pos = line.find(pattern.needle);
        if (pos == std::string_view::npos) continue;
        // First template argument only: scan to the first ',' or matching
        // '>' and look for a '*' (pointer key).
        size_t cursor = pos + std::char_traits<char>::length(pattern.needle);
        int depth = 1;
        bool pointer_key = false;
        for (; cursor < line.size() && depth > 0; ++cursor) {
          char c = line[cursor];
          if (c == '<') ++depth;
          if (c == '>') --depth;
          if (depth == 1 && c == ',') break;
          if (depth == 1 && c == '*') pointer_key = true;
        }
        if (pointer_key) {
          Emit(lineno, "QL004",
               std::string(pattern.what) +
                   ": iteration order follows allocation addresses, which differ "
                   "every run; key by a stable id instead");
          break;
        }
      }
      if (line.find(".get()") != std::string_view::npos) {
        size_t first = line.find(".get()");
        size_t lt = line.find('<', first + 6);
        if (lt != std::string_view::npos && lt + 1 < line.size() && line[lt + 1] != '<' &&
            line[lt - 1] != '<' && line.find(".get()", lt) != std::string_view::npos) {
          Emit(lineno, "QL004",
               "comparing smart-pointer addresses orders by allocation, which "
               "differs every run; compare a stable id instead");
        }
      }
    }

    // QL005: the deterministic layers must not even include entropy/clock
    // headers — a banned include is a banned dependency, used or not.
    if (ql005_applies) {
      size_t hash = line.find('#');
      if (hash != std::string_view::npos &&
          line.find("include", hash) != std::string_view::npos) {
        for (std::string_view banned : {"<random>", "<ctime>", "<time.h>", "<sys/time.h>"}) {
          if (line.find(banned) != std::string_view::npos) {
            Emit(lineno, "QL005",
                 "#include " + std::string(banned) +
                     " is banned in src/core, src/optimizer, and src/service; "
                     "these layers must stay deterministic");
          }
        }
      }
    }
  }

  // QL003: iterating an unordered container feeds implementation-defined
  // order into whatever the loop body does. In files that serialize, that
  // order can leak into bytes; require either a visible sort in the
  // neighborhood or a `sorted` marker explaining why order cannot matter.
  if (IsOrderSensitive(stripped)) {
    std::map<std::string, int> decl_lines;
    std::set<std::string> container_names = UnorderedContainerNames(stripped, &decl_lines);
    if (!companion_decls.empty()) {
      const std::string companion_stripped = StripCommentsAndStrings(companion_decls);
      std::map<std::string, int> companion_lines;
      std::set<std::string> companion_names =
          UnorderedContainerNames(companion_stripped, &companion_lines);
      container_names.insert(companion_names.begin(), companion_names.end());
    }
    if (!container_names.empty()) {
      for (const RangeFor& range_for : FindRangeFors(stripped)) {
        if (container_names.count(range_for.range_ident) == 0) continue;
        bool sorted_nearby = false;
        int window_begin = std::max(0, range_for.line - 4);
        int window_end =
            std::min(static_cast<int>(stripped_lines.size()), range_for.line + 15);
        for (int j = window_begin; j < window_end; ++j) {
          std::string_view nearby = stripped_lines[static_cast<size_t>(j)];
          if (nearby.find("std::sort") != std::string_view::npos ||
              nearby.find("std::stable_sort") != std::string_view::npos) {
            sorted_nearby = true;
            break;
          }
        }
        if (sorted_nearby) continue;
        Emit(range_for.line, "QL003",
             "iterates unordered container '" + range_for.range_ident +
                 "' in a file that serializes state; sort before emitting, or mark "
                 "`// qsteer-lint: sorted <why order cannot matter>`");
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule_id < b.rule_id;
  });
  return findings;
}

namespace {

bool HasLintableExtension(const std::filesystem::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

bool ReadFile(const std::string& path, std::string* content, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool LintPaths(const std::vector<std::string>& paths, const LintOptions& options,
               std::vector<Finding>* findings, std::string* error) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && HasLintableExtension(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        *error = "cannot walk " + path + ": " + ec.message();
        return false;
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      *error = "no such file or directory: " + path;
      return false;
    }
  }
  // Directory iteration order is platform-defined; findings must not be.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::string content;
    if (!ReadFile(file, &content, error)) return false;
    // Sibling header (foo.h next to foo.cc) contributes container
    // declarations so member iteration is visible from the .cc (QL003).
    std::string companion;
    std::filesystem::path as_path(file);
    std::string ext = as_path.extension().string();
    if (ext == ".cc" || ext == ".cpp" || ext == ".cxx") {
      std::filesystem::path header = as_path;
      header.replace_extension(".h");
      std::error_code ec;
      if (std::filesystem::is_regular_file(header, ec)) {
        std::string ignored_error;
        ReadFile(header.string(), &companion, &ignored_error);
      }
    }
    std::vector<Finding> file_findings = LintContent(file, content, options, companion);
    findings->insert(findings->end(), file_findings.begin(), file_findings.end());
  }
  return true;
}

int RunLintMain(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  LintOptions options;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--no-builtin-allowlist") {
      options.builtin_allowlists = false;
    } else if (arg == "--list-rules") {
      for (const auto& [id, name] : RuleNamesById()) out << id << "  " << name << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      out << "usage: qsteer_lint [--format=text|json] [--no-builtin-allowlist] "
             "[--list-rules] <path>...\n"
             "Lints C++ sources for determinism hazards. Exit 0 = clean, 1 = "
             "findings, 2 = usage/IO error.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "qsteer_lint: unknown flag: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    err << "qsteer_lint: no paths given (try --help)\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::string error;
  if (!LintPaths(paths, options, &findings, &error)) {
    err << "qsteer_lint: " << error << "\n";
    return 2;
  }
  if (json) {
    out << "[";
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      out << (i == 0 ? "" : ",") << "\n  {\"path\": \"" << JsonEscape(f.path)
          << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule_id
          << "\", \"name\": \"" << f.rule_name << "\", \"message\": \""
          << JsonEscape(f.message) << "\"}";
    }
    out << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const Finding& f : findings) {
      out << f.path << ":" << f.line << ": " << f.rule_id << " [" << f.rule_name
          << "] " << f.message << "\n";
    }
    if (!findings.empty()) {
      out << findings.size() << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
    }
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace lint
}  // namespace qsteer
