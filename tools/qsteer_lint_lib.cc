#include "qsteer_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <functional>
#include <utility>
#include <vector>

namespace qsteer {
namespace lint {
namespace {

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// True when `text[pos..]` starts with `word` at a word boundary on both
/// sides.
bool MatchWord(std::string_view text, size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + word.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

/// Finds `word` at a word boundary anywhere in `text`, optionally requiring
/// an open paren (after whitespace) right behind it.
bool ContainsWordCall(std::string_view text, std::string_view word, bool require_paren) {
  for (size_t pos = text.find(word); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (!MatchWord(text, pos, word)) continue;
    if (!require_paren) return true;
    size_t after = pos + word.size();
    while (after < text.size() && (text[after] == ' ' || text[after] == '\t')) ++after;
    if (after < text.size() && text[after] == '(') return true;
  }
  return false;
}

/// Replaces comments and string/char-literal *contents* with spaces,
/// preserving newlines and column positions, so pattern matching never
/// fires on prose and directives can still be read from the raw text.
std::string StripCommentsAndStrings(std::string_view content) {
  std::string out(content);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim(...)delim"
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          size_t paren = content.find('(', i + 2);
          if (paren != std::string_view::npos) {
            raw_delim = ")" + std::string(content.substr(i + 2, paren - i - 2)) + "\"";
            state = State::kRawString;
            for (size_t j = i; j <= paren; ++j) out[j] = ' ';
            i = paren;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          // The ident-char guard keeps digit separators (1'000'000) intact.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < content.size() && next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < content.size() && next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool IsBlank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

std::string Trim(std::string_view text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return std::string(text.substr(begin, end - begin + 1));
}

/// Maps a byte offset in a text to its 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text) {
    starts_.push_back(0);
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int LineOf(size_t offset) const {
    return static_cast<int>(std::upper_bound(starts_.begin(), starts_.end(), offset) -
                            starts_.begin());
  }

 private:
  std::vector<size_t> starts_;
};

const std::map<std::string, std::string>& RuleNamesById() {
  static const std::map<std::string, std::string> kNames = {
      {"QL001", "random-source"},       {"QL002", "wall-clock"},
      {"QL003", "unordered-iteration"}, {"QL004", "pointer-ordering"},
      {"QL005", "banned-include"},      {"QL006", "bad-suppression"},
      {"QL007", "unchecked-status"},    {"QL008", "lock-order"},
      {"QL009", "serialization-contract"}, {"QL010", "crc-before-trust"},
  };
  return kNames;
}

/// Accepts a rule id ("QL002") or name ("wall-clock"); returns the id, or
/// "" when unrecognized.
std::string NormalizeRule(const std::string& rule) {
  for (const auto& [id, name] : RuleNamesById()) {
    if (rule == id || rule == name) return id;
  }
  return "";
}

struct Directives {
  /// line (1-based) -> rule ids suppressed on that line.
  std::map<int, std::set<std::string>> allow;
  /// Directive problems (QL006) found while parsing.
  std::vector<Finding> findings;
};

/// Parses `// qsteer-lint: allow(<rule>) <justification>` and
/// `// qsteer-lint: sorted <justification>` directives. A directive on a
/// standalone comment line applies to the next line; otherwise to its own.
Directives ParseDirectives(const std::string& path,
                           const std::vector<std::string_view>& raw_lines,
                           const std::vector<std::string_view>& stripped_lines) {
  static constexpr std::string_view kMarker = "qsteer-lint:";
  Directives result;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    size_t marker = raw_lines[i].find(kMarker);
    if (marker == std::string_view::npos) continue;
    int line = static_cast<int>(i) + 1;
    std::string rest = Trim(raw_lines[i].substr(marker + kMarker.size()));
    if (size_t close = rest.find("*/"); close != std::string::npos) {
      rest = Trim(rest.substr(0, close));
    }
    std::string rule_id;
    std::string justification;
    if (rest.rfind("allow(", 0) == 0) {
      size_t close = rest.find(')');
      if (close == std::string::npos) {
        result.findings.push_back({path, line, "QL006", "bad-suppression",
                                   "malformed allow(...) directive: missing ')'"});
        continue;
      }
      rule_id = NormalizeRule(Trim(rest.substr(6, close - 6)));
      if (rule_id.empty()) {
        result.findings.push_back({path, line, "QL006", "bad-suppression",
                                   "allow(...) names an unknown rule"});
        continue;
      }
      justification = Trim(rest.substr(close + 1));
    } else if (rest.rfind("sorted", 0) == 0 &&
               (rest.size() == 6 || !IsIdentChar(rest[6]))) {
      rule_id = "QL003";
      justification = Trim(rest.substr(6));
    } else {
      result.findings.push_back({path, line, "QL006", "bad-suppression",
                                 "unknown qsteer-lint directive (expected allow(<rule>) "
                                 "or sorted)"});
      continue;
    }
    if (justification.empty()) {
      result.findings.push_back(
          {path, line, "QL006", "bad-suppression",
           "suppression without a justification has no effect; explain why the "
           "pattern is safe"});
      continue;
    }
    // A standalone comment line shields the next line; an end-of-line
    // directive shields its own.
    int target = IsBlank(stripped_lines[i]) ? line + 1 : line;
    result.allow[target].insert(rule_id);
  }
  return result;
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// ---- QL003 support: unordered-container declarations and range-fors ----

/// Names declared in this file as std::unordered_map/std::unordered_set
/// variables or members (template arguments balanced by hand; regex cannot
/// nest). `decl_lines` receives the declaration line of each name.
std::set<std::string> UnorderedContainerNames(std::string_view stripped,
                                              std::map<std::string, int>* decl_lines) {
  std::set<std::string> names;
  for (std::string_view keyword : {"unordered_map", "unordered_set"}) {
    for (size_t pos = stripped.find(keyword); pos != std::string_view::npos;
         pos = stripped.find(keyword, pos + 1)) {
      if (!MatchWord(stripped, pos, keyword)) continue;
      size_t cursor = pos + keyword.size();
      while (cursor < stripped.size() && IsSpace(stripped[cursor])) ++cursor;
      if (cursor >= stripped.size() || stripped[cursor] != '<') continue;
      int depth = 1;
      ++cursor;
      while (cursor < stripped.size() && depth > 0) {
        if (stripped[cursor] == '<') ++depth;
        if (stripped[cursor] == '>') --depth;
        ++cursor;
      }
      if (depth != 0) continue;
      // Skip whitespace and declarator decorations to the declared name.
      while (cursor < stripped.size() &&
             (IsSpace(stripped[cursor]) || stripped[cursor] == '&' || stripped[cursor] == '*')) {
        ++cursor;
      }
      size_t name_begin = cursor;
      while (cursor < stripped.size() && IsIdentChar(stripped[cursor])) ++cursor;
      if (cursor == name_begin) continue;  // e.g. `unordered_map<...>::iterator` or `>;`
      std::string name(stripped.substr(name_begin, cursor - name_begin));
      while (cursor < stripped.size() && IsSpace(stripped[cursor])) ++cursor;
      if (cursor < stripped.size() && stripped[cursor] == '(') continue;  // function decl
      if (name == "const" || name == "final") continue;
      names.insert(name);
      if (decl_lines->find(name) == decl_lines->end()) {
        int line = 1 + static_cast<int>(std::count(stripped.begin(),
                                                   stripped.begin() + static_cast<long>(pos), '\n'));
        (*decl_lines)[name] = line;
      }
    }
  }
  return names;
}

struct RangeFor {
  int line = 0;             // 1-based line of the `for`
  std::string range_ident;  // last identifier of the range expression
};

/// Finds range-based for statements and the final identifier of each range
/// expression (`store_` in `for (auto& kv : store_)`, `rows` in
/// `for (const auto& r : view->rows)`).
std::vector<RangeFor> FindRangeFors(std::string_view stripped) {
  std::vector<RangeFor> fors;
  for (size_t pos = stripped.find("for"); pos != std::string_view::npos;
       pos = stripped.find("for", pos + 1)) {
    if (!MatchWord(stripped, pos, "for")) continue;
    size_t open = pos + 3;
    while (open < stripped.size() && IsSpace(stripped[open])) ++open;
    if (open >= stripped.size() || stripped[open] != '(') continue;
    int depth = 0;
    size_t cursor = open;
    size_t colon = std::string_view::npos;
    bool has_semicolon = false;
    for (; cursor < stripped.size(); ++cursor) {
      char c = stripped[cursor];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) break;
      if (depth == 1 && c == ';') has_semicolon = true;
      if (depth == 1 && c == ':' && colon == std::string_view::npos) {
        bool double_colon = (cursor + 1 < stripped.size() && stripped[cursor + 1] == ':') ||
                            (cursor > 0 && stripped[cursor - 1] == ':');
        if (!double_colon) colon = cursor;
      }
    }
    if (cursor >= stripped.size() || has_semicolon || colon == std::string_view::npos) continue;
    std::string_view range = stripped.substr(colon + 1, cursor - colon - 1);
    // Last identifier in the range expression.
    size_t end = range.find_last_not_of(" \t\r\n");
    if (end == std::string_view::npos) continue;
    while (end != std::string_view::npos && !IsIdentChar(range[end])) {
      if (end == 0) break;
      --end;
    }
    if (!IsIdentChar(range[end])) continue;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(range[begin - 1])) --begin;
    RangeFor entry;
    entry.range_ident = std::string(range.substr(begin, end - begin + 1));
    entry.line = 1 + static_cast<int>(std::count(stripped.begin(),
                                                 stripped.begin() + static_cast<long>(pos), '\n'));
    fors.push_back(entry);
  }
  return fors;
}

/// A file is order-sensitive (QL003 applies) when it emits bytes whose
/// order a reader could depend on: serialization, text output, hashing of
/// aggregated state.
bool IsOrderSensitive(std::string_view stripped) {
  for (std::string_view marker :
       {"Serialize", "ToString", "ostream", "ostringstream", "AtomicWriteFile",
        "WriteFileChecksummed", "fprintf", "printf"}) {
    if (stripped.find(marker) != std::string_view::npos) return true;
  }
  return false;
}

// ---- String-literal extraction (QL009's format-string scan needs the raw
// literal bytes that StripCommentsAndStrings blanks out) ----

struct Literal {
  int line = 0;
  std::string text;  // contents between the quotes, escapes left as written
};

std::vector<Literal> ExtractStringLiterals(std::string_view content) {
  std::vector<Literal> literals;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  int line = 1;
  Literal current;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') ++line;
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          current = {line, ""};
        } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          current.text += c;
          if (i + 1 < content.size()) {
            current.text += next;
            if (next == '\n') ++line;
            ++i;
          }
        } else if (c == '"') {
          literals.push_back(current);
          state = State::kCode;
        } else {
          current.text += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return literals;
}

// ---- Cross-file declaration/annotation model (QL007–QL010) --------------
//
// Pass 1 walks every input file's stripped text with a pending-statement
// scope scanner and records classes, their Mutex members and member types,
// and every function (free or method, declaration or definition) with its
// return type, parameters, thread-safety annotation arguments, and body
// span. Pass 2 (AnalyzeBody below) lints each function body against the
// merged model.

struct FuncInfo {
  std::string cls;          // qualified enclosing class, "" for free functions
  std::string name;         // unqualified
  std::string return_type;  // raw return-type text
  bool returns_status = false;
  bool is_ctor_or_dtor = false;
  std::vector<std::string> requires_args;  // REQUIRES(...) — held at entry
  std::vector<std::string> acquire_args;   // ACQUIRE(...)/EXCLUDES(...) — may acquire
  std::vector<std::pair<std::string, std::string>> params;  // name -> type text
  std::string path;
  int line = 0;       // signature line
  int file_index = -1;
  size_t body_begin = 0, body_end = 0;  // offsets into the file's stripped text

  bool has_body() const { return body_end > body_begin; }
  std::string Key() const { return cls + "::" + name; }
};

struct ClassInfo {
  std::map<std::string, std::string> member_type;  // member name -> raw type text
  std::set<std::string> mutex_members;
};

struct Model {
  std::map<std::string, ClassInfo> classes;
  std::vector<FuncInfo> funcs;
  std::multimap<std::string, int> funcs_by_name;
  // member name -> distinct (class, type text) owners; the unique-owner
  // fallback resolves receivers like `catalog_` inside TEST bodies.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> member_owners;

  void BuildIndexes() {
    funcs_by_name.clear();
    for (int i = 0; i < static_cast<int>(funcs.size()); ++i) {
      funcs_by_name.emplace(funcs[i].name, i);
    }
    member_owners.clear();
    for (const auto& [cls, info] : classes) {
      for (const auto& [name, type] : info.member_type) {
        member_owners[name].push_back({cls, type});
      }
    }
  }
};

bool IsAllCapsMacro(std::string_view token) {
  if (token.size() < 2) return false;
  bool has_upper = false;
  for (char c : token) {
    if (std::isupper(static_cast<unsigned char>(c))) {
      has_upper = true;
    } else if (!std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return has_upper;
}

size_t SkipWs(std::string_view text, size_t pos) {
  while (pos < text.size() && IsSpace(text[pos])) ++pos;
  return pos;
}

/// Offset of the ')' matching the '(' at `open`, or npos.
size_t MatchParenFwd(std::string_view text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

/// First '(' outside template angles, so `std::function<void()> cb_;` is a
/// member, not a function. `<` only opens an angle scope straight after an
/// identifier (template-argument position).
size_t FindTopParen(std::string_view text) {
  int angle = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '<' && i > 0 && IsIdentChar(text[i - 1])) {
      ++angle;
    } else if (c == '>' && angle > 0) {
      --angle;
    } else if (c == '(' && angle == 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

/// First top-level '=' that is an initializer (not ==, !=, <=, >=, +=, ...).
size_t FindTopLevelEq(std::string_view text) {
  int paren = 0, angle = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '<' && i > 0 && IsIdentChar(text[i - 1])) ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '=' && paren == 0 && angle == 0) {
      char prev = i > 0 ? text[i - 1] : '\0';
      char next = i + 1 < text.size() ? text[i + 1] : '\0';
      if (next == '=' ) { ++i; continue; }
      if (std::string_view("=!<>+-*/|&^%").find(prev) != std::string_view::npos) continue;
      return i;
    }
  }
  return std::string_view::npos;
}

void SplitTopCommas(std::string_view text, std::vector<std::string>* out) {
  int paren = 0, angle = 0, brace = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    char c = i < text.size() ? text[i] : ',';
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '<' && i > 0 && IsIdentChar(text[i - 1])) ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == ',' && paren == 0 && angle == 0 && brace == 0) {
      std::string piece = Trim(text.substr(start, i - start));
      if (!piece.empty()) out->push_back(piece);
      start = i + 1;
    }
  }
}

/// Normalizes an annotation argument: `&mu_` -> `mu_`, `this->mu_` -> `mu_`.
std::string CleanAnnotationArg(std::string arg) {
  while (!arg.empty() && (arg[0] == '&' || arg[0] == '*')) arg.erase(0, 1);
  if (arg.rfind("this->", 0) == 0) arg.erase(0, 6);
  return Trim(arg);
}

void ParseAnnotationArgs(std::string_view text, std::string_view word,
                         std::vector<std::string>* out) {
  for (size_t pos = text.find(word); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (!MatchWord(text, pos, word)) continue;
    size_t open = SkipWs(text, pos + word.size());
    if (open >= text.size() || text[open] != '(') continue;
    size_t close = MatchParenFwd(text, open);
    if (close == std::string_view::npos) continue;
    std::vector<std::string> args;
    SplitTopCommas(text.substr(open + 1, close - open - 1), &args);
    for (std::string& arg : args) {
      std::string cleaned = CleanAnnotationArg(std::move(arg));
      if (!cleaned.empty()) out->push_back(cleaned);
    }
  }
}

/// Last `::` component of the first real type term in `text` ("qsteer::Status"
/// -> "Status", "Result<int>" -> "Result", "static const Mutex" -> "Mutex").
std::string FirstTypeTerm(std::string_view text) {
  static const std::set<std::string> kSkip = {
      "static", "inline",  "virtual", "explicit", "constexpr", "friend",
      "extern", "typename", "const",  "mutable",  "volatile",  "class",
      "struct", "unsigned", "signed"};
  size_t i = 0;
  while (i < text.size()) {
    i = SkipWs(text, i);
    size_t begin = i;
    while (i < text.size() && (IsIdentChar(text[i]) || text[i] == ':')) ++i;
    if (i == begin) break;
    std::string term(text.substr(begin, i - begin));
    if (kSkip.count(term)) continue;
    if (size_t dc = term.rfind("::"); dc != std::string::npos) term = term.substr(dc + 2);
    return term;
  }
  return "";
}

bool ReturnsStatusType(std::string_view return_type) {
  // References and pointers to Status are observers, not owners; the
  // [[nodiscard]] attribute (and therefore the lint) exempts them.
  if (return_type.find('&') != std::string_view::npos) return false;
  if (return_type.find('*') != std::string_view::npos) return false;
  std::string term = FirstTypeTerm(return_type);
  return term == "Status" || term == "Result" || term == "StatusOr";
}

/// Strips [[attributes]], leading access labels, and leading template<...>
/// prefixes from a pending declaration.
std::string CleanPending(std::string text) {
  size_t attr;
  while ((attr = text.find("[[")) != std::string::npos) {
    size_t close = text.find("]]", attr);
    if (close == std::string::npos) break;
    text.erase(attr, close - attr + 2);
  }
  for (;;) {
    std::string trimmed = Trim(text);
    if (trimmed != text) text = trimmed;
    bool again = false;
    for (std::string_view label : {"public:", "private:", "protected:"}) {
      if (text.rfind(label, 0) == 0) {
        text.erase(0, label.size());
        again = true;
      }
    }
    if (MatchWord(text, 0, "template")) {
      size_t lt = text.find('<');
      if (lt == std::string::npos) return "";
      int depth = 0;
      size_t i = lt;
      for (; i < text.size(); ++i) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>' && --depth == 0) break;
      }
      if (i >= text.size()) return "";
      text.erase(0, i + 1);
      again = true;
    }
    if (!again) break;
  }
  return text;
}

/// Extracts the declared name from a class-head ("class CAPABILITY(\"mutex\")
/// Mutex : ..." -> "Mutex"), skipping attribute macros. Empty when the text
/// is not a class/struct definition head.
std::string ClassHeadName(const std::string& text) {
  if (ContainsWordCall(text, "enum", /*require_paren=*/false)) return "";
  size_t kw = std::string::npos;
  for (std::string_view word : {"class", "struct"}) {
    for (size_t pos = text.find(word); pos != std::string::npos;
         pos = text.find(word, pos + 1)) {
      if (MatchWord(text, pos, word)) {
        if (kw == std::string::npos || pos < kw) kw = pos;
        break;
      }
    }
  }
  if (kw == std::string::npos) return "";
  size_t paren = FindTopParen(text);
  if (paren != std::string::npos && paren < kw) return "";  // function returning a struct
  size_t i = kw;
  while (i < text.size() && IsIdentChar(text[i])) ++i;  // past the keyword
  while (i < text.size()) {
    i = SkipWs(text, i);
    if (i >= text.size() || text[i] == ':' || text[i] == '{') return "";
    size_t begin = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    if (i == begin) return "";
    std::string token = text.substr(begin, i - begin);
    size_t after = SkipWs(text, i);
    bool macro_call = after < text.size() && text[after] == '(';
    if (macro_call && IsAllCapsMacro(token)) {
      size_t close = MatchParenFwd(text, after);
      if (close == std::string::npos) return "";
      i = close + 1;
      continue;
    }
    if (IsAllCapsMacro(token) || token == "alignas" || token == "final") continue;
    if (token == "class" || token == "struct") continue;
    return token;
  }
  return "";
}

/// Parses a function signature out of a pending declaration. Returns false
/// when the text is not function-shaped.
bool ParseSignature(const std::string& text, const std::string& scope_cls, FuncInfo* func) {
  size_t paren = FindTopParen(text);
  if (paren == std::string::npos || paren == 0) return false;
  size_t close = MatchParenFwd(text, paren);
  size_t name_end = paren;
  while (name_end > 0 && IsSpace(text[name_end - 1])) --name_end;
  size_t name_begin = name_end;
  while (name_begin > 0 && (IsIdentChar(text[name_begin - 1]) || text[name_begin - 1] == ':' ||
                            text[name_begin - 1] == '~')) {
    --name_begin;
  }
  std::string full = text.substr(name_begin, name_end - name_begin);
  while (!full.empty() && full[0] == ':') full.erase(0, 1);
  if (full.empty() || std::isdigit(static_cast<unsigned char>(full[0]))) return false;
  std::string cls = scope_cls;
  std::string name = full;
  if (size_t dc = full.rfind("::"); dc != std::string::npos) {
    std::string prefix = full.substr(0, dc);
    name = full.substr(dc + 2);
    cls = scope_cls.empty() ? prefix : scope_cls + "::" + prefix;
  }
  static const std::set<std::string> kNotAFunction = {
      "if", "for", "while", "switch", "return", "catch", "sizeof", "operator",
      "new", "delete", "throw", "defined", "assert", "decltype", "noexcept"};
  if (name.empty() || kNotAFunction.count(name)) return false;
  func->cls = cls;
  func->name = name;
  std::string cls_last = cls;
  if (size_t dc = cls_last.rfind("::"); dc != std::string::npos) cls_last = cls_last.substr(dc + 2);
  func->is_ctor_or_dtor = (!cls.empty() && name == cls_last) || name[0] == '~';
  func->return_type = Trim(text.substr(0, name_begin));
  func->returns_status = !func->is_ctor_or_dtor && ReturnsStatusType(func->return_type);
  if (close != std::string::npos) {
    std::vector<std::string> raw_params;
    SplitTopCommas(text.substr(paren + 1, close - paren - 1), &raw_params);
    for (std::string& param : raw_params) {
      if (size_t eq = FindTopLevelEq(param); eq != std::string::npos) {
        param = Trim(param.substr(0, eq));
      }
      size_t end = param.size();
      while (end > 0 && IsSpace(param[end - 1])) --end;
      size_t begin = end;
      while (begin > 0 && IsIdentChar(param[begin - 1])) --begin;
      if (begin == end || begin == 0) continue;  // unnamed or type-only
      std::string pname = param.substr(begin, end - begin);
      std::string ptype = Trim(param.substr(0, begin));
      if (pname == "void" || ptype.empty()) continue;
      func->params.push_back({pname, ptype});
    }
    std::string tail = text.substr(close + 1);
    ParseAnnotationArgs(tail, "REQUIRES", &func->requires_args);
    ParseAnnotationArgs(tail, "ACQUIRE", &func->acquire_args);
    ParseAnnotationArgs(tail, "EXCLUDES", &func->acquire_args);
  }
  return true;
}

/// Scope-aware declaration scanner: fills `model` with the classes, members,
/// and functions of one stripped file.
void ExtractDecls(const std::string& path, const std::string& stripped, int file_index,
                  Model* model) {
  LineIndex lines(stripped);
  struct Scope {
    int kind;  // 0 namespace, 1 class, 2 function, 3 other
    std::string cls;
    int func = -1;
  };
  std::vector<Scope> stack;
  auto in_func = [&stack] {
    for (const Scope& s : stack) {
      if (s.kind == 2) return true;
    }
    return false;
  };
  auto cur_class = [&stack]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == 1) return it->cls;
      if (it->kind == 2) return "";  // local scopes resolve via the local struct itself
    }
    return "";
  };

  auto process_decl = [&](const std::string& raw, size_t begin_offset) {
    std::string text = CleanPending(raw);
    if (text.empty()) return;
    for (std::string_view skip :
         {"friend", "using", "typedef", "static_assert", "namespace", "extern", "enum", "goto",
          "return", "break", "continue", "case", "default"}) {
      if (MatchWord(text, 0, skip)) return;
    }
    // Strip a trailing initializer, then trailing annotation-macro calls
    // (`int x_ GUARDED_BY(mu_) = 0;`).
    if (size_t eq = FindTopLevelEq(text); eq != std::string::npos) {
      text = Trim(text.substr(0, eq));
    }
    for (;;) {
      text = Trim(text);
      if (text.empty() || text.back() != ')') break;
      int depth = 0;
      size_t open = std::string::npos;
      for (size_t i = text.size(); i-- > 0;) {
        if (text[i] == ')') ++depth;
        if (text[i] == '(' && --depth == 0) {
          open = i;
          break;
        }
      }
      if (open == std::string::npos) break;
      size_t macro_end = open;
      while (macro_end > 0 && IsSpace(text[macro_end - 1])) --macro_end;
      size_t macro_begin = macro_end;
      while (macro_begin > 0 && IsIdentChar(text[macro_begin - 1])) --macro_begin;
      std::string macro = text.substr(macro_begin, macro_end - macro_begin);
      if (!IsAllCapsMacro(macro)) break;
      text = Trim(text.substr(0, macro_begin));
    }
    if (text.empty()) return;
    bool at_class = !stack.empty() && stack.back().kind == 1;
    if (FindTopParen(text) != std::string::npos) {
      FuncInfo func;
      if (ParseSignature(text, at_class ? stack.back().cls : "", &func)) {
        func.path = path;
        func.line = lines.LineOf(begin_offset);
        func.file_index = file_index;
        model->funcs.push_back(std::move(func));
      }
      return;
    }
    if (!at_class) return;
    // Member variable: `Type name;` (arrays and bitfields stripped down).
    while (!text.empty() && text.back() == ']') {
      size_t open = text.rfind('[');
      if (open == std::string::npos) break;
      text = Trim(text.substr(0, open));
    }
    size_t end = text.size();
    while (end > 0 && IsSpace(text[end - 1])) --end;
    size_t begin = end;
    while (begin > 0 && IsIdentChar(text[begin - 1])) --begin;
    if (begin == end || begin == 0) return;
    std::string name = text.substr(begin, end - begin);
    if (std::isdigit(static_cast<unsigned char>(name[0]))) return;
    std::string type = Trim(text.substr(0, begin));
    if (type.empty() || type.back() == ',') return;
    ClassInfo& info = model->classes[stack.back().cls];
    info.member_type[name] = type;
    if (FirstTypeTerm(type) == "Mutex") info.mutex_members.insert(name);
  };

  size_t pending_begin = std::string::npos;
  size_t i = 0;
  auto pending_text = [&](size_t boundary) {
    return pending_begin == std::string::npos
               ? std::string()
               : std::string(stripped.substr(pending_begin, boundary - pending_begin));
  };
  while (i < stripped.size()) {
    char c = stripped[i];
    // Skip preprocessor lines (handles continuations); they never contribute
    // declarations and their braces/semicolons would desynchronize scopes.
    if (c == '#') {
      size_t line_start = stripped.rfind('\n', i == 0 ? 0 : i - 1);
      line_start = line_start == std::string::npos ? 0 : line_start + 1;
      bool only_ws = true;
      for (size_t j = line_start; j < i; ++j) {
        if (!IsSpace(stripped[j])) {
          only_ws = false;
          break;
        }
      }
      if (only_ws) {
        while (i < stripped.size() && stripped[i] != '\n') {
          if (stripped[i] == '\\' && i + 1 < stripped.size() && stripped[i + 1] == '\n') ++i;
          ++i;
        }
        continue;
      }
    }
    if (c == '{') {
      std::string text = CleanPending(pending_text(i));
      Scope scope{3, cur_class(), -1};
      std::string class_name = ClassHeadName(text);
      if (MatchWord(text, 0, "namespace") || text.rfind("inline namespace", 0) == 0) {
        scope.kind = 0;
      } else if (!class_name.empty()) {
        scope.kind = 1;
        scope.cls = scope.cls.empty() ? class_name : scope.cls + "::" + class_name;
      } else if (!in_func() && FindTopParen(text) != std::string::npos) {
        size_t paren = FindTopParen(text);
        size_t eq = FindTopLevelEq(text);
        // Not a function when an initializer precedes the paren (lambdas,
        // brace-initialized globals) or when the brace belongs to a
        // member-brace-initializer inside a constructor's init list.
        bool init_brace = false;
        {
          int depth = 0;
          size_t last_close = std::string::npos;
          for (size_t j = 0; j < text.size(); ++j) {
            if (text[j] == '(') ++depth;
            if (text[j] == ')' && --depth == 0) last_close = j;
          }
          std::string tail = last_close == std::string::npos
                                 ? std::string()
                                 : Trim(text.substr(last_close + 1));
          if (!tail.empty() && (tail.find(',') != std::string::npos ||
                                IsIdentChar(tail.back()))) {
            // e.g. `Foo() : a_(1), b_` just before `b_{2}` — keep scanning.
            static const std::set<std::string> kOkTail = {"const",    "noexcept", "override",
                                                          "final",    "mutable",  "try"};
            bool all_ok = true;
            std::istringstream toks(tail);
            std::string tok;
            while (toks >> tok) {
              if (tok == ":" || tok[0] == ':') continue;
              if (!kOkTail.count(tok) && !IsAllCapsMacro(tok)) {
                all_ok = false;
                break;
              }
            }
            init_brace = !all_ok;
          }
        }
        if (!(eq != std::string::npos && eq < paren) && !init_brace) {
          FuncInfo func;
          if (ParseSignature(text, cur_class(), &func)) {
            func.path = path;
            func.line = lines.LineOf(pending_begin == std::string::npos ? i : pending_begin);
            func.file_index = file_index;
            func.body_begin = i + 1;
            model->funcs.push_back(std::move(func));
            scope.kind = 2;
            scope.func = static_cast<int>(model->funcs.size()) - 1;
          }
        }
      }
      stack.push_back(std::move(scope));
      pending_begin = std::string::npos;
    } else if (c == '}') {
      if (!stack.empty()) {
        if (stack.back().kind == 2 && stack.back().func >= 0) {
          model->funcs[static_cast<size_t>(stack.back().func)].body_end = i;
        }
        stack.pop_back();
      }
      pending_begin = std::string::npos;
    } else if (c == ';') {
      if (!in_func() && pending_begin != std::string::npos) {
        process_decl(pending_text(i), pending_begin);
      }
      pending_begin = std::string::npos;
    } else if (!IsSpace(c)) {
      if (pending_begin == std::string::npos) pending_begin = i;
    }
    ++i;
  }
}

// ---- Model resolution --------------------------------------------------

/// Resolves a (possibly unqualified) class name against the model: exact
/// match first, then a unique `...::ident` suffix (`Shard` ->
/// `CompileCache::Shard`).
std::string ResolveClassName(const Model& model, const std::string& ident) {
  if (ident.empty()) return "";
  if (model.classes.count(ident)) return ident;
  std::string match;
  const std::string suffix = "::" + ident;
  for (const auto& [cls, info] : model.classes) {
    (void)info;  // qsteer-lint: allow(unchecked-status) structured binding, not a Status
    if (cls.size() > suffix.size() &&
        cls.compare(cls.size() - suffix.size(), suffix.size(), suffix) == 0) {
      if (!match.empty()) return "";  // ambiguous
      match = cls;
    }
  }
  return match;
}

/// First model class named anywhere in a type text: `const SteeringPipeline&`
/// resolves to SteeringPipeline, `std::vector<Shard>` unwraps to the element
/// class. Returns "" when no identifier in the text names a known class.
std::string TypeToClass(const Model& model, const std::string& type_text) {
  size_t i = 0;
  while (i < type_text.size()) {
    while (i < type_text.size() && !IsIdentChar(type_text[i])) ++i;
    size_t begin = i;
    while (i < type_text.size() && (IsIdentChar(type_text[i]) ||
                                    (type_text[i] == ':' && i + 1 < type_text.size() &&
                                     type_text[i + 1] == ':') ||
                                    (type_text[i] == ':' && i > begin && type_text[i - 1] == ':'))) {
      ++i;
    }
    if (i == begin) continue;
    std::string term(type_text.substr(begin, i - begin));
    std::string resolved = ResolveClassName(model, term);
    if (resolved.empty()) {
      if (size_t dc = term.rfind("::"); dc != std::string::npos) {
        resolved = ResolveClassName(model, term.substr(dc + 2));
      }
    }
    if (!resolved.empty()) return resolved;
  }
  return "";
}

/// Member type lookup, walking outward through enclosing classes so a
/// nested-class method sees the outer class's members.
const std::string* FindMemberType(const Model& model, const std::string& cls,
                                  const std::string& name) {
  std::string cur = ResolveClassName(model, cls);
  if (cur.empty()) cur = cls;
  while (!cur.empty()) {
    auto it = model.classes.find(cur);
    if (it != model.classes.end()) {
      auto member = it->second.member_type.find(name);
      if (member != it->second.member_type.end()) return &member->second;
    }
    size_t dc = cur.rfind("::");
    if (dc == std::string::npos) break;
    cur = cur.substr(0, dc);
  }
  return nullptr;
}

/// All model functions named `name` on class `cls` (resolved).
std::vector<int> FindMethods(const Model& model, const std::string& cls,
                             const std::string& name) {
  std::string resolved = ResolveClassName(model, cls);
  if (resolved.empty()) resolved = cls;
  std::vector<int> out;
  auto range = model.funcs_by_name.equal_range(name);
  for (auto it = range.first; it != range.second; ++it) {
    const FuncInfo& func = model.funcs[static_cast<size_t>(it->second)];
    std::string func_cls = ResolveClassName(model, func.cls);
    if (func_cls.empty()) func_cls = func.cls;
    if (func_cls == resolved) out.push_back(it->second);
  }
  return out;
}

/// The unique class owning a Mutex member named `name`, or "".
std::string UniqueMutexOwner(const Model& model, const std::string& name) {
  std::string match;
  for (const auto& [cls, info] : model.classes) {
    if (info.mutex_members.count(name)) {
      if (!match.empty()) return "";
      match = cls;
    }
  }
  return match;
}

/// The unique class that the type of any member named `name` resolves to
/// (`catalog_` declared as `Catalog catalog_` in several test fixtures still
/// resolves, because every owner agrees on the type).
std::string UniqueMemberTypeClass(const Model& model, const std::string& name) {
  auto it = model.member_owners.find(name);
  if (it == model.member_owners.end()) return "";
  std::string match;
  for (const auto& [cls, type] : it->second) {
    (void)cls;  // qsteer-lint: allow(unchecked-status) structured binding, not a Status
    std::string resolved = TypeToClass(model, type);
    if (resolved.empty()) continue;
    if (!match.empty() && match != resolved) return "";
    match = resolved;
  }
  return match;
}

/// Resolves a mutex expression (`mu_`, `shard.mu`, `&self->mu_`) to a
/// qualified "Class::member" id in the context of class `cls` with local
/// bindings `locals`. Returns "" for caller-supplied mutexes (parameters)
/// and anything unresolvable — an unnamed mutex cannot take part in a
/// global hierarchy.
std::string ResolveMutexExpr(const Model& model, const std::string& cls,
                             const std::map<std::string, std::string>& locals,
                             const std::string& raw_expr) {
  std::string expr = CleanAnnotationArg(raw_expr);
  // Split on . and ->, dropping subscripts.
  std::vector<std::string> path;
  std::string piece;
  for (size_t i = 0; i < expr.size(); ++i) {
    char c = expr[i];
    if (c == '.' || (c == '-' && i + 1 < expr.size() && expr[i + 1] == '>')) {
      if (!piece.empty()) path.push_back(piece);
      piece.clear();
      if (c == '-') ++i;
    } else if (c == '[') {
      int depth = 1;
      while (++i < expr.size() && depth > 0) {
        if (expr[i] == '[') ++depth;
        if (expr[i] == ']') --depth;
      }
      --i;
    } else if (IsIdentChar(c) || c == ':') {
      piece += c;
    }
  }
  if (!piece.empty()) path.push_back(piece);
  if (path.empty()) return "";
  if (path.size() == 1) {
    const std::string& name = path[0];
    if (name == "this") return "";
    auto local = locals.find(name);
    if (local != locals.end()) {
      // A caller-supplied Mutex parameter/local has no global identity.
      return "";
    }
    std::string cur = ResolveClassName(model, cls);
    if (cur.empty()) cur = cls;
    while (!cur.empty()) {
      auto it = model.classes.find(cur);
      if (it != model.classes.end() && it->second.mutex_members.count(name)) {
        return cur + "::" + name;
      }
      size_t dc = cur.rfind("::");
      if (dc == std::string::npos) break;
      cur = cur.substr(0, dc);
    }
    std::string owner = UniqueMutexOwner(model, name);
    return owner.empty() ? "" : owner + "::" + name;
  }
  // Multi-part path: resolve the prefix to a class, then require the last
  // element to be one of its mutex members.
  std::string cur;
  for (size_t idx = 0; idx + 1 < path.size(); ++idx) {
    const std::string& name = path[idx];
    if (idx == 0) {
      if (name == "this") {
        cur = cls;
      } else if (auto local = locals.find(name); local != locals.end()) {
        cur = TypeToClass(model, local->second);
      } else if (const std::string* member = FindMemberType(model, cls, name)) {
        cur = TypeToClass(model, *member);
      } else if (std::string unique = UniqueMemberTypeClass(model, name); !unique.empty()) {
        cur = unique;
      } else {
        cur = ResolveClassName(model, name);
      }
    } else {
      if (cur.empty()) return "";
      const std::string* member = FindMemberType(model, cur, name);
      if (!member) return "";
      cur = TypeToClass(model, *member);
    }
  }
  if (cur.empty()) return "";
  std::string resolved = ResolveClassName(model, cur);
  if (resolved.empty()) resolved = cur;
  auto it = model.classes.find(resolved);
  if (it != model.classes.end() && it->second.mutex_members.count(path.back())) {
    return resolved + "::" + path.back();
  }
  return "";
}

// ---- Expression chains -------------------------------------------------

struct ChainElem {
  std::string name;
  bool is_call = false;
  size_t args_begin = 0, args_end = 0;  // offsets into the scanned text
};

struct Chain {
  std::vector<ChainElem> elems;
  size_t begin = 0, end = 0;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `ident(::ident)*([..])*((...))?((.|->)ident...)*` starting at an
/// identifier. Returns false when nothing chain-shaped starts at `pos`.
bool ParseChainAt(std::string_view text, size_t pos, Chain* chain) {
  chain->elems.clear();
  chain->begin = pos;
  size_t i = pos;
  for (;;) {
    if (i >= text.size() || !IsIdentStart(text[i])) return !chain->elems.empty();
    size_t begin = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    std::string name(text.substr(begin, i - begin));
    while (i + 2 < text.size() && text[i] == ':' && text[i + 1] == ':' &&
           IsIdentStart(text[i + 2])) {
      size_t comp_begin = i + 2;
      i = comp_begin;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      name += "::" + std::string(text.substr(comp_begin, i - comp_begin));
    }
    ChainElem elem;
    elem.name = std::move(name);
    size_t cursor = i;
    // Subscripts between the name and a call / the next link.
    for (;;) {
      size_t probe = SkipWs(text, cursor);
      if (probe < text.size() && text[probe] == '[') {
        int depth = 1;
        size_t j = probe + 1;
        for (; j < text.size() && depth > 0; ++j) {
          if (text[j] == '[') ++depth;
          if (text[j] == ']') --depth;
        }
        cursor = j;
        continue;
      }
      break;
    }
    size_t probe = SkipWs(text, cursor);
    if (probe < text.size() && text[probe] == '(') {
      size_t close = MatchParenFwd(text, probe);
      if (close == std::string_view::npos) {
        chain->elems.push_back(std::move(elem));
        chain->end = cursor;
        return true;
      }
      elem.is_call = true;
      elem.args_begin = probe + 1;
      elem.args_end = close;
      cursor = close + 1;
    }
    chain->elems.push_back(std::move(elem));
    chain->end = cursor;
    size_t after = SkipWs(text, cursor);
    if (after + 1 < text.size() && text[after] == '.' && IsIdentStart(text[after + 1])) {
      i = after + 1;
      continue;
    }
    if (after + 2 < text.size() && text[after] == '-' && text[after + 1] == '>' &&
        IsIdentStart(text[after + 2])) {
      i = after + 2;
      continue;
    }
    return true;
  }
}

/// Locals of a function body: `Type name` declarations keyed by name, with
/// the raw type text. Parameters are merged in by the caller.
void ScanLocalDecls(std::string_view body, std::map<std::string, std::string>* locals) {
  static const std::set<std::string> kSkipHead = {
      "return", "if",   "while",  "switch",   "case",  "delete", "using", "typedef",
      "break",  "continue", "goto", "else",   "do",    "throw",  "default", "new",
      "public", "private", "protected", "auto"};
  static const std::set<std::string> kCv = {"const", "static", "constexpr", "mutable",
                                            "volatile", "thread_local", "register"};
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    char c = i < body.size() ? body[i] : ';';
    if (c != ';' && c != '{' && c != '}') continue;
    std::string stmt = Trim(body.substr(start, i - start));
    start = i + 1;
    if (stmt.empty() || stmt[0] == '(' || stmt[0] == '#') continue;
    if (MatchWord(stmt, 0, "for")) {
      size_t paren = stmt.find('(');
      if (paren == std::string::npos) continue;
      stmt = Trim(stmt.substr(paren + 1));
      if (stmt.empty()) continue;
    }
    size_t j = 0;
    bool skip = false;
    for (;;) {
      size_t word_end = j;
      while (word_end < stmt.size() && IsIdentChar(stmt[word_end])) ++word_end;
      std::string word = stmt.substr(j, word_end - j);
      if (kSkipHead.count(word)) {
        skip = true;
        break;
      }
      if (kCv.count(word)) {
        j = SkipWs(stmt, word_end);
        continue;
      }
      break;
    }
    if (skip || j >= stmt.size() || !IsIdentStart(stmt[j])) continue;
    // Type term: ident(::ident)* with optional balanced template args.
    size_t type_begin = j;
    while (j < stmt.size() && IsIdentChar(stmt[j])) ++j;
    for (;;) {
      if (j + 2 < stmt.size() && stmt[j] == ':' && stmt[j + 1] == ':' &&
          IsIdentStart(stmt[j + 2])) {
        j += 2;
        while (j < stmt.size() && IsIdentChar(stmt[j])) ++j;
        continue;
      }
      if (j < stmt.size() && stmt[j] == '<') {
        int depth = 0;
        size_t k = j;
        for (; k < stmt.size(); ++k) {
          if (stmt[k] == '<') ++depth;
          if (stmt[k] == '>' && --depth == 0) break;
        }
        if (k >= stmt.size()) break;
        j = k + 1;
        continue;
      }
      break;
    }
    std::string type = stmt.substr(type_begin, j - type_begin);
    j = SkipWs(stmt, j);
    while (j < stmt.size() && (stmt[j] == '*' || stmt[j] == '&' || IsSpace(stmt[j]))) ++j;
    size_t name_begin = j;
    while (j < stmt.size() && IsIdentChar(stmt[j])) ++j;
    if (j == name_begin) continue;
    std::string name = stmt.substr(name_begin, j - name_begin);
    j = SkipWs(stmt, j);
    bool decl_shaped = j >= stmt.size() || stmt[j] == '=' || stmt[j] == '(' || stmt[j] == '{';
    if (!decl_shaped || type == "auto" || kSkipHead.count(name)) continue;
    (*locals)[name] = type;
  }
}

// ---- Body analysis (QL007, QL008 lock events, QL009/QL010 inputs) ------

struct CallSite {
  std::string callee_key;
  int line = 0;
  std::vector<std::string> held;
};

struct Ql7Site {
  int line = 0;
  bool void_cast = false;
  std::string callee;
};

struct BodyOut {
  std::vector<LockEdge> edges;
  std::set<std::string> direct_acquires;
  std::vector<CallSite> calls;
  std::vector<Ql7Site> ql7;
  std::vector<int> to_string_lines;
  bool raw_read = false;
  bool verify_token = false;
};

struct MergedAnn {
  std::vector<std::string> requires_raw;
  std::vector<std::string> acquire_raw;
};

struct ResolvedCall {
  std::string key;       // "" when unresolved
  int status_state = -1; // 1 returns Status/Result, 0 does not, -1 unknown
};

ResolvedCall ResolveCall(const Model& model, const FuncInfo& func,
                         const std::map<std::string, std::string>& locals,
                         const Chain& chain) {
  const ChainElem& last = chain.elems.back();
  std::vector<int> methods;
  if (chain.elems.size() >= 2) {
    // Resolve the receiver prefix to a class.
    std::string cur;
    bool resolvable = true;
    for (size_t idx = 0; idx + 1 < chain.elems.size(); ++idx) {
      const ChainElem& elem = chain.elems[idx];
      if (idx == 0) {
        if (elem.is_call) {
          std::vector<int> frees = FindMethods(model, "", elem.name);
          cur = frees.empty()
                    ? ""
                    : TypeToClass(model, model.funcs[static_cast<size_t>(frees[0])].return_type);
        } else if (elem.name == "this") {
          cur = func.cls;
        } else if (auto local = locals.find(elem.name); local != locals.end()) {
          cur = TypeToClass(model, local->second);
        } else if (const std::string* member = FindMemberType(model, func.cls, elem.name)) {
          cur = TypeToClass(model, *member);
        } else if (std::string unique = UniqueMemberTypeClass(model, elem.name);
                   !unique.empty()) {
          cur = unique;
        } else {
          cur = ResolveClassName(model, elem.name);
        }
      } else if (elem.is_call) {
        std::vector<int> mids = FindMethods(model, cur, elem.name);
        cur = mids.empty()
                  ? ""
                  : TypeToClass(model, model.funcs[static_cast<size_t>(mids[0])].return_type);
      } else {
        const std::string* member = FindMemberType(model, cur, elem.name);
        cur = member ? TypeToClass(model, *member) : "";
      }
      if (cur.empty()) {
        resolvable = false;
        break;
      }
    }
    if (resolvable) methods = FindMethods(model, cur, last.name);
  } else {
    methods = FindMethods(model, "", last.name);
  }
  if (!methods.empty()) {
    bool all_status = true, any_status = false;
    for (int idx : methods) {
      const FuncInfo& m = model.funcs[static_cast<size_t>(idx)];
      if (m.is_ctor_or_dtor) continue;
      all_status = all_status && m.returns_status;
      any_status = any_status || m.returns_status;
    }
    ResolvedCall out;
    out.key = model.funcs[static_cast<size_t>(methods[0])].Key();
    out.status_state = (all_status && any_status) ? 1 : 0;
    return out;
  }
  // Fallback: resolve by name alone when every function with this name
  // agrees (the cross-TU case where the receiver's type is opaque).
  auto range = model.funcs_by_name.equal_range(last.name);
  if (range.first == range.second) return {};
  bool all_status = true, any = false;
  std::set<std::string> keys;
  for (auto it = range.first; it != range.second; ++it) {
    const FuncInfo& m = model.funcs[static_cast<size_t>(it->second)];
    if (m.is_ctor_or_dtor) return {};  // name collides with a constructor
    any = true;
    all_status = all_status && m.returns_status;
    keys.insert(m.Key());
  }
  ResolvedCall out;
  if (keys.size() == 1) out.key = *keys.begin();
  out.status_state = (any && all_status) ? 1 : 0;
  if (!all_status) out.status_state = keys.size() == 1 ? 0 : -1;
  return out;
}

/// 0 = not a statement head, 1 = bare expression statement, 2 = statement
/// behind an explicit (void) cast.
int StatementKind(std::string_view text, size_t chain_begin) {
  auto prev_nonws = [&text](size_t upto) {
    size_t k = upto;
    while (k > 0 && IsSpace(text[k - 1])) --k;
    return k;
  };
  size_t k = prev_nonws(chain_begin);
  bool void_cast = false;
  if (k >= 1 && text[k - 1] == ')') {
    size_t w = prev_nonws(k - 1);
    if (w >= 4 && text.compare(w - 4, 4, "void") == 0 &&
        (w == 4 || !IsIdentChar(text[w - 5]))) {
      size_t open = prev_nonws(w - 4);
      if (open >= 1 && text[open - 1] == '(') {
        void_cast = true;
        k = prev_nonws(open - 1);
      }
    }
    // Not a (void) cast: fall through — a ')' head may still be an
    // unbraced control body (`if (...) Call();`), handled below.
  }
  if (k == 0) return void_cast ? 2 : 1;
  char prev = text[k - 1];
  if (prev == ';' || prev == '{' || prev == '}') return void_cast ? 2 : 1;
  if (prev == ')') {
    // Unbraced control body: `if (...) Call();` and friends. Match the
    // closing paren backward and look at the keyword in front of it.
    int depth = 0;
    size_t i = k;
    while (i > 0) {
      --i;
      if (text[i] == ')') ++depth;
      if (text[i] == '(' && --depth == 0) break;
    }
    if (depth != 0 || text[i] != '(') return 0;
    size_t w = prev_nonws(i);
    size_t e = w;
    while (e > 0 && IsIdentChar(text[e - 1])) --e;
    std::string_view word = text.substr(e, w - e);
    if (word == "if" || word == "while" || word == "for" || word == "switch" ||
        word == "constexpr") {  // `if constexpr (...)`
      return void_cast ? 2 : 1;
    }
    return 0;
  }
  if (IsIdentChar(prev)) {
    size_t e = k;
    while (e > 0 && IsIdentChar(text[e - 1])) --e;
    std::string_view word = text.substr(e, k - e);
    if (word == "else" || word == "do") return void_cast ? 2 : 1;
  }
  return 0;
}

const std::set<std::string>& BodyKeywords() {
  static const std::set<std::string> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default", "return",
      "break", "continue", "goto", "new", "delete", "sizeof", "throw", "using",
      "typedef", "template", "operator", "const", "constexpr", "static", "auto",
      "void", "int", "bool", "char", "float", "double", "unsigned", "signed",
      "long", "short", "struct", "class", "enum", "namespace", "true", "false",
      "nullptr", "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
      "public", "private", "protected", "try", "catch", "noexcept", "decltype"};
  return kKeywords;
}

void AnalyzeBody(const Model& model, const std::map<std::string, MergedAnn>& annotations,
                 const FuncInfo& func, const std::string& stripped, const LineIndex& lines,
                 BodyOut* out) {
  std::string_view body(stripped);
  body = body.substr(func.body_begin, func.body_end - func.body_begin);
  std::map<std::string, std::string> locals;
  for (const auto& [name, type] : func.params) locals[name] = type;
  ScanLocalDecls(body, &locals);

  std::vector<std::string> held0;
  if (auto it = annotations.find(func.Key()); it != annotations.end()) {
    for (const std::string& raw : it->second.requires_raw) {
      std::string id = ResolveMutexExpr(model, func.cls, locals, raw);
      if (!id.empty() && std::find(held0.begin(), held0.end(), id) == held0.end()) {
        held0.push_back(id);
      }
    }
  }

  struct Active {
    std::string id;
    size_t release;  // body offset after which the lock is gone
  };
  std::vector<Active> active;
  auto expire = [&active](size_t offset) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [offset](const Active& a) { return a.release <= offset; }),
                 active.end());
  };
  auto current_held = [&held0, &active] {
    std::vector<std::string> held = held0;
    for (const Active& a : active) {
      if (std::find(held.begin(), held.end(), a.id) == held.end()) held.push_back(a.id);
    }
    return held;
  };
  auto release_offset = [&body](size_t offset) {
    int depth = 0;
    for (size_t j = offset; j < body.size(); ++j) {
      if (body[j] == '{') ++depth;
      if (body[j] == '}' && --depth < 0) return j;
    }
    return body.size();
  };
  auto acquire = [&](const std::string& id, size_t offset, bool scoped) {
    int line = lines.LineOf(func.body_begin + offset);
    for (const std::string& held : current_held()) {
      if (held != id) out->edges.push_back({held, id, func.path, line});
    }
    out->direct_acquires.insert(id);
    active.push_back({id, scoped ? release_offset(offset) : body.size()});
  };

  size_t i = 0;
  while (i < body.size()) {
    char c = body[i];
    if (!IsIdentStart(c)) {
      ++i;
      continue;
    }
    if (i > 0) {
      char prev = body[i - 1];
      bool continuation = IsIdentChar(prev) || prev == '.' || prev == ':' ||
                          (prev == '>' && i > 1 && body[i - 2] == '-');
      if (continuation) {
        while (i < body.size() && IsIdentChar(body[i])) ++i;
        continue;
      }
    }
    size_t word_end = i;
    while (word_end < body.size() && IsIdentChar(body[word_end])) ++word_end;
    std::string word(body.substr(i, word_end - i));
    if (BodyKeywords().count(word)) {
      i = word_end;
      continue;
    }
    expire(i);
    if (word == "MutexLock") {
      size_t j = SkipWs(body, word_end);
      while (j < body.size() && IsIdentChar(body[j])) ++j;  // variable name, if any
      j = SkipWs(body, j);
      if (j < body.size() && body[j] == '(') {
        size_t close = MatchParenFwd(body, j);
        if (close != std::string_view::npos) {
          std::vector<std::string> args;
          SplitTopCommas(body.substr(j + 1, close - j - 1), &args);
          bool adopt = false;
          for (const std::string& arg : args) {
            if (arg.find("kAdoptLock") != std::string::npos) adopt = true;
          }
          std::string id =
              args.empty() ? "" : ResolveMutexExpr(model, func.cls, locals, args[0]);
          if (!id.empty()) {
            if (adopt) {
              active.push_back({id, release_offset(close)});
            } else {
              acquire(id, i, /*scoped=*/true);
              active.back().release = release_offset(close);
            }
          }
          i = close + 1;
          continue;
        }
      }
      i = word_end;
      continue;
    }
    Chain chain;
    if (!ParseChainAt(body, i, &chain) || chain.elems.empty()) {
      i = word_end;
      continue;
    }
    const ChainElem& last = chain.elems.back();
    size_t resume = chain.begin + chain.elems[0].name.size();
    if (last.is_call) {
      int call_line = lines.LineOf(func.body_begin + chain.begin);
      // Explicit Lock()/Unlock() on a mutex path.
      if ((last.name == "Lock" || last.name == "Unlock") && chain.elems.size() >= 2 &&
          last.args_begin >= last.args_end) {
        bool path_has_call = false;
        std::string expr;
        for (size_t idx = 0; idx + 1 < chain.elems.size(); ++idx) {
          path_has_call = path_has_call || chain.elems[idx].is_call;
          if (idx > 0) expr += ".";
          expr += chain.elems[idx].name;
        }
        std::string id =
            path_has_call ? "" : ResolveMutexExpr(model, func.cls, locals, expr);
        if (!id.empty()) {
          if (last.name == "Lock") {
            acquire(id, chain.begin, /*scoped=*/false);
          } else {
            for (size_t idx = active.size(); idx-- > 0;) {
              if (active[idx].id == id) {
                active.erase(active.begin() + static_cast<long>(idx));
                break;
              }
            }
          }
          i = resume;
          continue;
        }
      }
      ResolvedCall resolved = ResolveCall(model, func, locals, chain);
      if (!resolved.key.empty()) {
        out->calls.push_back({resolved.key, call_line, current_held()});
      }
      int kind = StatementKind(body, chain.begin);
      if (kind != 0 && resolved.status_state == 1) {
        size_t after = SkipWs(body, chain.end);
        if (after < body.size() && body[after] == ';') {
          std::string desc;
          for (size_t idx = 0; idx < chain.elems.size(); ++idx) {
            if (idx > 0) desc += ".";
            desc += chain.elems[idx].name;
          }
          out->ql7.push_back({call_line, kind == 2, desc});
        }
      }
      if (last.name == "to_string" || last.name == "std::to_string") {
        std::string arg(body.substr(last.args_begin, last.args_end - last.args_begin));
        arg = Trim(arg);
        bool floating = false;
        if (!arg.empty() && std::isdigit(static_cast<unsigned char>(arg[0])) &&
            arg.find('.') != std::string::npos) {
          floating = true;
        } else {
          size_t b = 0;
          while (b < arg.size() && !IsIdentStart(arg[b])) ++b;
          size_t e = b;
          while (e < arg.size() && IsIdentChar(arg[e])) ++e;
          if (e > b) {
            std::string ident = arg.substr(b, e - b);
            const std::string* type = nullptr;
            if (auto local = locals.find(ident); local != locals.end()) {
              type = &local->second;
            } else {
              type = FindMemberType(model, func.cls, ident);
            }
            if (type && (type->find("double") != std::string::npos ||
                         type->find("float") != std::string::npos)) {
              floating = true;
            }
          }
        }
        if (floating) out->to_string_lines.push_back(call_line);
      }
    }
    i = resume;
  }

  for (std::string_view token : {"ifstream", "fread", "ReadFileToString"}) {
    if (body.find(token) != std::string_view::npos) out->raw_read = true;
  }
  for (std::string_view token : {"Crc32", "crc32", "Checksummed", "checksum"}) {
    if (body.find(token) != std::string_view::npos) out->verify_token = true;
  }
}

// ---- Whole-repo analysis (pass 2 driver) -------------------------------

struct Ql10Site {
  int line = 0;
  std::string func_name;
};

struct GlobalAnalysis {
  Model model;
  std::map<std::string, std::vector<Ql7Site>> ql7_by_path;
  std::map<std::string, std::vector<int>> ql9_tostring_by_path;
  std::map<std::string, std::vector<Ql10Site>> ql10_by_path;
  std::vector<LockEdge> edges;  // deduped, sorted by (from, to)
  std::vector<Finding> graph_findings;
};

struct FileState {
  std::string path;
  std::string stripped;
  bool lint = false;  // false: contributes to the model only
};

/// Does this function's name put it on a durability-recovery path (QL010)?
bool IsRecoveryNamed(const std::string& name) {
  for (std::string_view marker : {"Parse", "Deserialize", "Install", "Warm", "Recover",
                                  "Replay", "Restore", "Load", "Read"}) {
    if (name.find(marker) != std::string::npos) return true;
  }
  return false;
}

void RunGlobalAnalysis(const std::vector<FileState>& files, const LintOptions& options,
                       GlobalAnalysis* out) {
  for (size_t i = 0; i < files.size(); ++i) {
    ExtractDecls(files[i].path, files[i].stripped, static_cast<int>(i), &out->model);
  }
  out->model.BuildIndexes();

  // Merge annotations across declarations and definitions of each function.
  std::map<std::string, MergedAnn> annotations;
  for (const FuncInfo& func : out->model.funcs) {
    MergedAnn& ann = annotations[func.Key()];
    ann.requires_raw.insert(ann.requires_raw.end(), func.requires_args.begin(),
                            func.requires_args.end());
    ann.acquire_raw.insert(ann.acquire_raw.end(), func.acquire_args.begin(),
                           func.acquire_args.end());
  }

  std::vector<LineIndex> line_indexes;
  line_indexes.reserve(files.size());
  for (const FileState& file : files) line_indexes.emplace_back(file.stripped);

  // Per-key aggregates for the fixpoints.
  std::map<std::string, std::set<std::string>> direct_acquires;
  std::map<std::string, std::set<std::string>> callees;
  std::map<std::string, bool> verify_direct;
  std::vector<std::pair<const FuncInfo*, BodyOut>> bodies;

  for (const FuncInfo& func : out->model.funcs) {
    const std::string key = func.Key();
    // Annotation-declared acquisitions (ACQUIRE/EXCLUDES) count even for
    // declaration-only functions: the annotation is the cross-TU contract.
    std::map<std::string, std::string> param_types;
    for (const auto& [name, type] : func.params) param_types[name] = type;
    for (const std::string& raw : func.acquire_args) {
      std::string id = ResolveMutexExpr(out->model, func.cls, param_types, raw);
      if (!id.empty()) direct_acquires[key].insert(id);
    }
    if (!func.has_body() || func.file_index < 0 ||
        func.file_index >= static_cast<int>(files.size())) {
      continue;
    }
    BodyOut body;
    AnalyzeBody(out->model, annotations, func, files[static_cast<size_t>(func.file_index)].stripped,
                line_indexes[static_cast<size_t>(func.file_index)], &body);
    direct_acquires[key].insert(body.direct_acquires.begin(), body.direct_acquires.end());
    for (const CallSite& call : body.calls) callees[key].insert(call.callee_key);
    verify_direct[key] = verify_direct[key] || body.verify_token;
    bodies.push_back({&func, std::move(body)});
  }

  // Transitive acquisitions: what a call to `key` may end up locking.
  std::map<std::string, std::set<std::string>> trans = direct_acquires;
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [key, callee_set] : callees) {
      std::set<std::string>& mine = trans[key];
      size_t before = mine.size();
      for (const std::string& callee : callee_set) {
        auto it = trans.find(callee);
        if (it != trans.end()) mine.insert(it->second.begin(), it->second.end());
      }
      changed = changed || mine.size() != before;
    }
  }

  // A function verifies a checksum if its own body mentions crc32/Checksummed
  // or it calls (transitively) one that does.
  std::map<std::string, bool> verified = verify_direct;
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [key, callee_set] : callees) {
      if (verified[key]) continue;
      for (const std::string& callee : callee_set) {
        if (verified[callee]) {
          verified[key] = true;
          changed = true;
          break;
        }
      }
    }
  }

  // Collect edges: direct nestings from bodies, plus held-across-call edges
  // through the transitive-acquisition sets.
  std::map<std::pair<std::string, std::string>, LockEdge> dedup;
  auto add_edge = [&dedup](const LockEdge& edge) {
    auto [it, inserted] = dedup.insert({{edge.from, edge.to}, edge});
    if (!inserted) {
      LockEdge& existing = it->second;
      if (std::tie(edge.path, edge.line) < std::tie(existing.path, existing.line)) {
        existing = edge;
      }
    }
  };
  for (const auto& [func, body] : bodies) {
    (void)func;  // qsteer-lint: allow(unchecked-status) structured binding, not a Status
    for (const LockEdge& edge : body.edges) add_edge(edge);
    for (const CallSite& call : body.calls) {
      if (call.held.empty()) continue;
      auto it = trans.find(call.callee_key);
      if (it == trans.end()) continue;
      for (const std::string& target : it->second) {
        for (const std::string& held : call.held) {
          if (held == target) continue;
          add_edge({held, target, func->path, call.line});
        }
      }
    }
  }
  for (const auto& [key, edge] : dedup) {
    (void)key;  // qsteer-lint: allow(unchecked-status) structured binding, not a Status
    out->edges.push_back(edge);
  }

  // Per-file QL007/QL009/QL010 candidates.
  for (const auto& [func, body] : bodies) {
    for (const Ql7Site& site : body.ql7) out->ql7_by_path[func->path].push_back(site);
    for (int line : body.to_string_lines) out->ql9_tostring_by_path[func->path].push_back(line);
    if (body.raw_read && IsRecoveryNamed(func->name) && !verified[func->Key()]) {
      out->ql10_by_path[func->path].push_back({func->line, func->name});
    }
  }

  // Cycle detection over the deduped graph.
  std::map<std::string, std::vector<const LockEdge*>> adjacency;
  for (const LockEdge& edge : out->edges) adjacency[edge.from].push_back(&edge);
  std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
  std::vector<const LockEdge*> stack;
  std::set<std::string> reported_cycles;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    auto it = adjacency.find(node);
    if (it != adjacency.end()) {
      for (const LockEdge* edge : it->second) {
        if (color[edge->to] == 1) {
          // Back edge: reconstruct the cycle from the stack.
          std::vector<std::string> nodes;
          size_t start = 0;
          for (size_t j = 0; j < stack.size(); ++j) {
            if (stack[j]->from == edge->to) start = j;
          }
          for (size_t j = start; j < stack.size(); ++j) nodes.push_back(stack[j]->from);
          nodes.push_back(node);
          std::string canonical;
          {
            std::vector<std::string> sorted_nodes = nodes;
            std::sort(sorted_nodes.begin(), sorted_nodes.end());
            for (const std::string& n : sorted_nodes) canonical += n + "|";
          }
          if (reported_cycles.insert(canonical).second) {
            std::string message = "lock-order cycle: ";
            for (const std::string& n : nodes) message += n + " -> ";
            message += edge->to;
            message += " (this acquisition closes the cycle; one consistent order "
                       "must be picked and recorded in the lock hierarchy)";
            out->graph_findings.push_back(
                {edge->path, edge->line, "QL008", "lock-order", message});
          }
        } else if (color[edge->to] == 0) {
          stack.push_back(edge);
          dfs(edge->to);
          stack.pop_back();
        }
      }
    }
    color[node] = 2;
  };
  for (const auto& [node, edges_from] : adjacency) {
    (void)edges_from;  // qsteer-lint: allow(unchecked-status) structured binding, not a Status
    if (color[node] == 0) dfs(node);
  }

  // Golden comparison: the extracted graph must match the checked-in
  // hierarchy exactly, so every new nesting is reviewed in the diff.
  if (!options.lock_hierarchy_golden.empty()) {
    std::map<std::pair<std::string, std::string>, int> golden;  // edge -> golden line
    {
      int line_number = 0;
      for (std::string_view line : SplitLines(options.lock_hierarchy_golden)) {
        ++line_number;
        std::string trimmed = Trim(line);
        if (trimmed.empty() || trimmed[0] == '#') continue;
        size_t arrow = trimmed.find(" -> ");
        if (arrow == std::string::npos) continue;
        golden[{Trim(trimmed.substr(0, arrow)), Trim(trimmed.substr(arrow + 4))}] = line_number;
      }
    }
    for (const LockEdge& edge : out->edges) {
      if (golden.count({edge.from, edge.to})) continue;
      out->graph_findings.push_back(
          {edge.path, edge.line, "QL008", "lock-order",
           "lock-order edge '" + edge.from + " -> " + edge.to + "' is not in " +
               options.lock_hierarchy_golden_path +
               "; review the new nesting against the hierarchy and regenerate with "
               "--emit-lock-hierarchy"});
    }
    for (const auto& [golden_edge, golden_line] : golden) {
      bool extracted = dedup.count(golden_edge) > 0;
      if (!extracted) {
        out->graph_findings.push_back(
            {options.lock_hierarchy_golden_path, golden_line, "QL008", "lock-order",
             "stale lock-hierarchy edge '" + golden_edge.first + " -> " + golden_edge.second +
                 "': no longer extracted from the sources; regenerate with "
                 "--emit-lock-hierarchy"});
      }
    }
  }
}

// ---- Per-file rules (QL001–QL007, QL009, QL010 emission) ---------------

/// Curated allowlist for intentional nondeterminism in tests: chaos suites
/// exercise real crash/kill windows and may legitimately touch patterns the
/// deterministic layers ban. Each entry is (path suffix, rule id) and must
/// stay narrowly scoped — widen with a directive + justification instead.
struct TestAllowEntry {
  const char* path_suffix;
  const char* rule_id;
};
constexpr TestAllowEntry kTestAllowlist[] = {
    // (no entries needed today; the suites are deterministic end to end —
    // kept so the mechanism is exercised by lint_test and ready when a
    // chaos test genuinely needs ambient time or entropy)
    {"tests/.lint_allow_example.cc", "QL002"},
};

bool TestAllowlisted(const std::string& path, const std::string& rule_id) {
  for (const TestAllowEntry& entry : kTestAllowlist) {
    std::string_view suffix(entry.path_suffix);
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0 &&
        rule_id == entry.rule_id) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> LintOneFile(const FileState& file, const LintOptions& options,
                                 const GlobalAnalysis& global,
                                 const std::vector<std::string_view>& extra_ql3_sources,
                                 std::string_view raw_content) {
  const std::string& path = file.path;
  const std::string& stripped = file.stripped;
  const std::vector<std::string_view> raw_lines = SplitLines(raw_content);
  const std::vector<std::string_view> stripped_lines = SplitLines(stripped);
  Directives directives = ParseDirectives(path, raw_lines, stripped_lines);

  std::vector<Finding> findings = std::move(directives.findings);
  auto Suppressed = [&directives](int line, const std::string& rule_id) {
    auto it = directives.allow.find(line);
    return it != directives.allow.end() && it->second.count(rule_id) > 0;
  };
  auto Emit = [&](int line, const char* id, const std::string& message) {
    if (Suppressed(line, id)) return;
    if (options.builtin_allowlists && TestAllowlisted(path, id)) return;
    findings.push_back({path, line, id, RuleNamesById().at(id), message});
  };

  const bool ql001_allowlisted =
      options.builtin_allowlists &&
      (PathContains(path, "common/random.") || PathContains(path, "bench/"));
  const bool ql002_allowlisted = options.builtin_allowlists && PathContains(path, "bench/");
  const bool ql005_applies = PathContains(path, "src/core/") ||
                             PathContains(path, "src/optimizer/") ||
                             PathContains(path, "src/service/");

  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    std::string_view line = stripped_lines[i];
    int lineno = static_cast<int>(i) + 1;

    // QL001: ambient randomness. Every random draw must flow from a seeded
    // Pcg32 (common/random.h) so runs are reproducible bit-for-bit.
    if (!ql001_allowlisted) {
      if (line.find("std::random_device") != std::string_view::npos) {
        Emit(lineno, "QL001",
             "std::random_device is ambient entropy; derive seeds from the "
             "experiment seed (common/random.h)");
      } else if (ContainsWordCall(line, "rand", /*require_paren=*/true) ||
                 ContainsWordCall(line, "srand", /*require_paren=*/true)) {
        Emit(lineno, "QL001",
             "rand()/srand() draw from hidden global state; use a seeded Pcg32 "
             "(common/random.h)");
      }
    }

    // QL002: wall clocks. Time-dependent control flow diverges run to run;
    // simulated time and seeded costs keep experiments reproducible.
    if (!ql002_allowlisted) {
      if (line.find("_clock::now") != std::string_view::npos ||
          ContainsWordCall(line, "gettimeofday", /*require_paren=*/true) ||
          ContainsWordCall(line, "clock_gettime", /*require_paren=*/true) ||
          ContainsWordCall(line, "time", /*require_paren=*/true)) {
        Emit(lineno, "QL002",
             "wall-clock read in library code; gate behavior on simulated time "
             "or suppress with a justification if this is observability-only");
      }
    }

    // QL004: raw-pointer ordering. Addresses differ across runs, so any
    // pointer-keyed ordered container iterates in a nondeterministic order.
    {
      static const struct {
        const char* needle;
        const char* what;
      } kPointerPatterns[] = {
          {"std::set<", "std::set keyed by pointer"},
          {"std::map<", "std::map keyed by pointer"},
          {"std::less<", "std::less over pointers"},
      };
      for (const auto& pattern : kPointerPatterns) {
        size_t pos = line.find(pattern.needle);
        if (pos == std::string_view::npos) continue;
        // First template argument only: scan to the first ',' or matching
        // '>' and look for a '*' (pointer key).
        size_t cursor = pos + std::char_traits<char>::length(pattern.needle);
        int depth = 1;
        bool pointer_key = false;
        for (; cursor < line.size() && depth > 0; ++cursor) {
          char c = line[cursor];
          if (c == '<') ++depth;
          if (c == '>') --depth;
          if (depth == 1 && c == ',') break;
          if (depth == 1 && c == '*') pointer_key = true;
        }
        if (pointer_key) {
          Emit(lineno, "QL004",
               std::string(pattern.what) +
                   ": iteration order follows allocation addresses, which differ "
                   "every run; key by a stable id instead");
          break;
        }
      }
      if (line.find(".get()") != std::string_view::npos) {
        size_t first = line.find(".get()");
        size_t lt = line.find('<', first + 6);
        if (lt != std::string_view::npos && lt + 1 < line.size() && line[lt + 1] != '<' &&
            line[lt - 1] != '<' && line.find(".get()", lt) != std::string_view::npos) {
          Emit(lineno, "QL004",
               "comparing smart-pointer addresses orders by allocation, which "
               "differs every run; compare a stable id instead");
        }
      }
    }

    // QL005: the deterministic layers must not even include entropy/clock
    // headers — a banned include is a banned dependency, used or not.
    if (ql005_applies) {
      size_t hash = line.find('#');
      if (hash != std::string_view::npos &&
          line.find("include", hash) != std::string_view::npos) {
        for (std::string_view banned : {"<random>", "<ctime>", "<time.h>", "<sys/time.h>"}) {
          if (line.find(banned) != std::string_view::npos) {
            Emit(lineno, "QL005",
                 "#include " + std::string(banned) +
                     " is banned in src/core, src/optimizer, and src/service; "
                     "these layers must stay deterministic");
          }
        }
      }
    }
  }

  // QL003: iterating an unordered container feeds implementation-defined
  // order into whatever the loop body does. In files that serialize, that
  // order can leak into bytes; require either a visible sort in the
  // neighborhood or a `sorted` marker explaining why order cannot matter.
  if (IsOrderSensitive(stripped)) {
    std::map<std::string, int> decl_lines;
    std::set<std::string> container_names = UnorderedContainerNames(stripped, &decl_lines);
    for (std::string_view extra : extra_ql3_sources) {
      std::map<std::string, int> extra_lines;
      std::set<std::string> extra_names = UnorderedContainerNames(extra, &extra_lines);
      container_names.insert(extra_names.begin(), extra_names.end());
    }
    for (const RangeFor& range_for : FindRangeFors(stripped)) {
      bool unordered = container_names.count(range_for.range_ident) > 0;
      if (!unordered) {
        // Cross-file half: a member declared unordered in *any* linted file
        // (every declaring class must agree, so an ordered same-named member
        // elsewhere vetoes the match).
        auto owners = global.model.member_owners.find(range_for.range_ident);
        if (owners != global.model.member_owners.end() && !owners->second.empty()) {
          unordered = true;
          for (const auto& [cls, type] : owners->second) {
            (void)cls;  // structured binding, not a Status
            if (type.find("unordered_") == std::string::npos) unordered = false;
          }
        }
      }
      if (!unordered) continue;
      bool sorted_nearby = false;
      int window_begin = std::max(0, range_for.line - 4);
      int window_end =
          std::min(static_cast<int>(stripped_lines.size()), range_for.line + 15);
      for (int j = window_begin; j < window_end; ++j) {
        std::string_view nearby = stripped_lines[static_cast<size_t>(j)];
        if (nearby.find("std::sort") != std::string_view::npos ||
            nearby.find("std::stable_sort") != std::string_view::npos) {
          sorted_nearby = true;
          break;
        }
      }
      if (sorted_nearby) continue;
      Emit(range_for.line, "QL003",
           "iterates unordered container '" + range_for.range_ident +
               "' in a file that serializes state; sort before emitting, or mark "
               "`// qsteer-lint: sorted <why order cannot matter>`");
    }
  }

  // QL007: dropped Status/Result. A bare dropped call is a finding that no
  // directive can silence — the discard itself must be written `(void)call;`
  // with an allow(unchecked-status) justification on the same line.
  if (auto it = global.ql7_by_path.find(path); it != global.ql7_by_path.end()) {
    for (const Ql7Site& site : it->second) {
      if (site.void_cast) {
        Emit(site.line, "QL007",
             "explicitly discarded Status from '" + site.callee +
                 "' without a justification; add `// qsteer-lint: "
                 "allow(unchecked-status) <why best-effort is safe here>`");
      } else if (!(options.builtin_allowlists && TestAllowlisted(path, "QL007"))) {
        // Deliberately not suppressible by a directive alone: write the
        // discard out as (void) so it is visible at the call site.
        findings.push_back(
            {path, site.line, "QL007", "unchecked-status",
             "call to '" + site.callee +
                 "' silently drops its Status/Result; handle it, or discard "
                 "explicitly with `(void)` plus `// qsteer-lint: "
                 "allow(unchecked-status) <why>`"});
      }
    }
  }

  // QL009: bytes written through the durable-serialization helpers must
  // round-trip doubles bit-exactly; %.17g is the one blessed format.
  bool serializes = ContainsWordCall(stripped, "AtomicWriteFile", /*require_paren=*/true) ||
                    ContainsWordCall(stripped, "WriteFileChecksummed", /*require_paren=*/true);
  if (!serializes) {
    for (const FuncInfo& func : global.model.funcs) {
      if (func.path == path && func.has_body() &&
          func.name.find("Serialize") != std::string::npos) {
        serializes = true;
        break;
      }
    }
  }
  if (serializes) {
    std::set<std::pair<int, std::string>> reported_specs;
    for (const Literal& literal : ExtractStringLiterals(raw_content)) {
      // Scan-side formats (%lg under sscanf) parse back whatever %.17g
      // wrote losslessly; only the *writing* side loses bits. The call may
      // start a couple of lines above a wrapped format literal.
      {
        bool scan_side = false;
        for (int j = std::max(1, literal.line - 2); j <= literal.line; ++j) {
          if (j <= static_cast<int>(stripped_lines.size()) &&
              stripped_lines[static_cast<size_t>(j - 1)].find("scanf") !=
                  std::string_view::npos) {
            scan_side = true;
          }
        }
        if (scan_side) continue;
      }
      for (size_t i = 0; i < literal.text.size(); ++i) {
        if (literal.text[i] != '%') continue;
        if (i + 1 < literal.text.size() && literal.text[i + 1] == '%') {
          ++i;
          continue;
        }
        size_t j = i + 1;
        while (j < literal.text.size() &&
               std::string_view("-+ #0123456789.*'hlLqjzt").find(literal.text[j]) !=
                   std::string_view::npos) {
          ++j;
        }
        if (j < literal.text.size() &&
            std::string_view("fFeEgGaA").find(literal.text[j]) != std::string_view::npos) {
          std::string spec = literal.text.substr(i, j - i + 1);
          if (spec != "%.17g" && reported_specs.insert({literal.line, spec}).second) {
            Emit(literal.line, "QL009",
                 "float format '" + spec +
                     "' in a file that writes durable bytes; use %.17g so doubles "
                     "survive a write/read round trip bit-exactly");
          }
        }
      }
    }
    if (auto it = global.ql9_tostring_by_path.find(path);
        it != global.ql9_tostring_by_path.end()) {
      for (int line : it->second) {
        Emit(line, "QL009",
             "std::to_string on a floating value truncates to 6 digits and "
             "breaks byte determinism; format with %.17g instead");
      }
    }
  }

  // QL010: recovery paths that read raw bytes must verify a checksum before
  // trusting them (directly or via a verifying helper).
  if (auto it = global.ql10_by_path.find(path); it != global.ql10_by_path.end()) {
    for (const Ql10Site& site : it->second) {
      Emit(site.line, "QL010",
           "'" + site.func_name +
               "' reads raw bytes from disk but neither verifies a crc32 nor "
               "calls a checksum-verifying helper; recovery paths must not "
               "trust unverified bytes (or carry allow(crc-before-trust) "
               "with a justification)");
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule_id < b.rule_id;
  });
  return findings;
}

bool ExcludedFromLint(const std::string& path, const LintOptions& options) {
  // The linter's own sources spell the banned patterns out; self-exemption
  // keeps it from eating itself. (Fixture files are excluded one level up,
  // in LintPaths' directory walk: naming a fixture explicitly still lints
  // it, which is exactly what lint_test and the CLI contract tests do.)
  (void)options;
  return Basename(path).rfind("qsteer_lint", 0) == 0;
}

std::vector<Finding> LintFilesImpl(const std::vector<FileInput>& files,
                                   const std::vector<FileInput>& model_extra,
                                   const LintOptions& options,
                                   std::vector<LockEdge>* lock_edges) {
  std::vector<FileState> states;
  std::vector<std::string_view> raw_contents;  // parallel to states
  for (const FileInput& input : files) {
    if (ExcludedFromLint(input.path, options)) continue;
    states.push_back({input.path, StripCommentsAndStrings(input.content), true});
    raw_contents.push_back(input.content);
  }
  for (const FileInput& input : model_extra) {
    if (ExcludedFromLint(input.path, options)) continue;
    states.push_back({input.path, StripCommentsAndStrings(input.content), false});
    raw_contents.push_back(input.content);
  }

  GlobalAnalysis global;
  RunGlobalAnalysis(states, options, &global);

  // Sibling headers contribute QL003 container declarations to their .cc.
  std::map<std::string, size_t> state_by_path;
  for (size_t i = 0; i < states.size(); ++i) state_by_path[states[i].path] = i;

  std::vector<Finding> findings;
  for (size_t i = 0; i < states.size(); ++i) {
    if (!states[i].lint) continue;
    std::vector<std::string_view> extra_ql3;
    std::filesystem::path as_path(states[i].path);
    std::string ext = as_path.extension().string();
    if (ext == ".cc" || ext == ".cpp" || ext == ".cxx") {
      std::filesystem::path header = as_path;
      header.replace_extension(".h");
      auto it = state_by_path.find(header.string());
      if (it != state_by_path.end()) extra_ql3.push_back(states[it->second].stripped);
    }
    // Companion model-only inputs (LintContent's companion_decls) also feed
    // QL003 names, preserving the v1 sibling-header contract.
    for (size_t j = 0; j < states.size(); ++j) {
      if (!states[j].lint && states[j].path != states[i].path) {
        extra_ql3.push_back(states[j].stripped);
      }
    }
    std::vector<Finding> file_findings =
        LintOneFile(states[i], options, global, extra_ql3, raw_contents[i]);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  findings.insert(findings.end(), global.graph_findings.begin(), global.graph_findings.end());

  std::sort(global.edges.begin(), global.edges.end(), [](const LockEdge& a, const LockEdge& b) {
    return std::tie(a.from, a.to) < std::tie(b.from, b.to);
  });
  if (lock_edges != nullptr) *lock_edges = global.edges;

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule_id) < std::tie(b.path, b.line, b.rule_id);
  });
  return findings;
}

}  // namespace

std::vector<Finding> LintContent(const std::string& path, std::string_view content,
                                 const LintOptions& options,
                                 std::string_view companion_decls) {
  std::vector<FileInput> files = {{path, std::string(content)}};
  std::vector<FileInput> extra;
  if (!companion_decls.empty()) {
    extra.push_back({"<companion>", std::string(companion_decls)});
  }
  return LintFilesImpl(files, extra, options, nullptr);
}

std::vector<Finding> LintFiles(const std::vector<FileInput>& files, const LintOptions& options,
                               std::vector<LockEdge>* lock_edges) {
  return LintFilesImpl(files, {}, options, lock_edges);
}

std::string FormatLockHierarchy(const std::vector<LockEdge>& edges) {
  std::ostringstream out;
  out << "# Lock-acquisition hierarchy, extracted by qsteer_lint (QL008).\n"
      << "# \"A -> B\" means mutex A is held at some call site while B is acquired;\n"
      << "# the graph must stay acyclic and must match this file exactly.\n"
      << "# Regenerate after an intentional nesting change with:\n"
      << "#   qsteer_lint --emit-lock-hierarchy src tools bench examples tests "
         "> tools/lock_hierarchy.txt\n";
  std::set<std::pair<std::string, std::string>> sorted_edges;
  for (const LockEdge& edge : edges) sorted_edges.insert({edge.from, edge.to});
  for (const auto& [from, to] : sorted_edges) out << from << " -> " << to << "\n";
  return out.str();
}

namespace {

bool HasLintableExtension(const std::filesystem::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

bool ReadFile(const std::string& path, std::string* content, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool LintPaths(const std::vector<std::string>& paths, const LintOptions& options,
               std::vector<Finding>* findings, std::string* error,
               std::vector<LockEdge>* lock_edges) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (!entry.is_regular_file() || !HasLintableExtension(entry.path())) continue;
        std::string file = entry.path().string();
        // Fixtures deliberately violate every rule; directory walks skip
        // them (naming one explicitly still lints it).
        if (options.builtin_allowlists && PathContains(file, "lint_fixtures/")) continue;
        files.push_back(std::move(file));
      }
      if (ec) {
        *error = "cannot walk " + path + ": " + ec.message();
        return false;
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      *error = "no such file or directory: " + path;
      return false;
    }
  }
  // Directory iteration order is platform-defined; findings must not be.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::set<std::string> in_set(files.begin(), files.end());
  std::vector<FileInput> inputs;
  std::vector<FileInput> model_extra;
  for (const std::string& file : files) {
    FileInput input;
    input.path = file;
    if (!ReadFile(file, &input.content, error)) return false;
    inputs.push_back(std::move(input));
    // A .cc linted on its own still sees its sibling header's declarations
    // (members, annotations, Status signatures) through the model.
    std::filesystem::path as_path(file);
    std::string ext = as_path.extension().string();
    if (ext == ".cc" || ext == ".cpp" || ext == ".cxx") {
      std::filesystem::path header = as_path;
      header.replace_extension(".h");
      std::error_code ec;
      if (!in_set.count(header.string()) && std::filesystem::is_regular_file(header, ec)) {
        FileInput companion;
        companion.path = header.string();
        std::string ignored_error;
        if (ReadFile(header.string(), &companion.content, &ignored_error)) {
          model_extra.push_back(std::move(companion));
        }
      }
    }
  }
  std::vector<Finding> all = LintFilesImpl(inputs, model_extra, options, lock_edges);
  findings->insert(findings->end(), all.begin(), all.end());
  return true;
}

int RunLintMain(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  LintOptions options;
  bool json = false;
  bool emit_hierarchy = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json" || arg == "--json") {
      json = true;
    } else if (arg == "--no-builtin-allowlist") {
      options.builtin_allowlists = false;
    } else if (arg == "--emit-lock-hierarchy") {
      emit_hierarchy = true;
    } else if (arg.rfind("--lock-hierarchy=", 0) == 0) {
      options.lock_hierarchy_golden_path = arg.substr(std::string("--lock-hierarchy=").size());
      std::string golden_error;
      if (!ReadFile(options.lock_hierarchy_golden_path, &options.lock_hierarchy_golden,
                    &golden_error)) {
        err << "qsteer_lint: " << golden_error << "\n";
        return 2;
      }
      if (options.lock_hierarchy_golden.empty()) options.lock_hierarchy_golden = "\n";
    } else if (arg == "--list-rules") {
      for (const auto& [id, name] : RuleNamesById()) out << id << "  " << name << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      out << "usage: qsteer_lint [--format=text|json] [--no-builtin-allowlist]\n"
             "                   [--lock-hierarchy=<golden>] [--emit-lock-hierarchy]\n"
             "                   [--list-rules] <path>...\n"
             "Lints C++ sources for determinism and invariant hazards. Exit 0 = clean,\n"
             "1 = findings, 2 = usage/IO error. --emit-lock-hierarchy prints the\n"
             "extracted lock graph in tools/lock_hierarchy.txt format and exits 0.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "qsteer_lint: unknown flag: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    err << "qsteer_lint: no paths given (try --help)\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::vector<LockEdge> edges;
  std::string error;
  if (!LintPaths(paths, options, &findings, &error, &edges)) {
    err << "qsteer_lint: " << error << "\n";
    return 2;
  }
  if (emit_hierarchy) {
    out << FormatLockHierarchy(edges);
    return 0;
  }
  if (json) {
    out << "[";
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      out << (i == 0 ? "" : ",") << "\n  {\"path\": \"" << JsonEscape(f.path)
          << "\", \"line\": " << f.line << ", \"rule\": \"" << JsonEscape(f.rule_id)
          << "\", \"name\": \"" << JsonEscape(f.rule_name) << "\", \"message\": \""
          << JsonEscape(f.message) << "\"}";
    }
    out << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const Finding& f : findings) {
      out << f.path << ":" << f.line << ": " << f.rule_id << " [" << f.rule_name
          << "] " << f.message << "\n";
    }
    if (!findings.empty()) {
      out << findings.size() << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
    }
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace lint
}  // namespace qsteer
