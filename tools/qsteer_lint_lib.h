// qsteer-lint: the determinism linter.
//
// The repo's core invariant is bit-reproducibility: the same (job, config,
// seed) must produce identical bytes on every run, thread count, and
// machine — WAL replay, the chaos harness, and the A/B experiment design
// all depend on it. Clang's -Wthread-safety enforces the *locking* half of
// that contract (see common/thread_annotations.h); this linter enforces the
// *determinism* half, catching the sources of nondeterminism that type
// systems cannot:
//
//   QL001 random-source       std::random_device / rand() / srand() outside
//                             the seeded-PRNG module (common/random.*).
//   QL002 wall-clock          *_clock::now(), time(), gettimeofday(),
//                             clock_gettime() outside bench drivers.
//   QL003 unordered-iteration range-for over a std::unordered_{map,set}
//                             declared in the same file, in a file that
//                             serializes state — iteration order is
//                             implementation-defined, so anything emitted
//                             from such a loop must be sorted first.
//   QL004 pointer-ordering    containers ordered by raw pointer value
//                             (std::set<T*>, std::map<T*, ...>,
//                             std::less<T*>) — addresses differ run to run.
//   QL005 banned-include      <random>/<ctime>/<time.h>/<sys/time.h> in
//                             src/core, src/optimizer, src/service: the
//                             deterministic layers must not even link
//                             against ambient entropy or clocks.
//   QL006 bad-suppression     a qsteer-lint directive without a
//                             justification (it suppresses nothing).
//
// Suppressions are line-scoped and must carry a justification:
//
//   // qsteer-lint: allow(wall-clock) measures real latency for the EWMA
//   // qsteer-lint: sorted keys are sorted two lines above
//
// `allow(<rule>)` accepts a rule id (QL002) or name (wall-clock) and
// applies to its own line, or to the next line when the comment stands
// alone. `sorted` is QL003's specific form. A bare directive without a
// justification does NOT suppress — it raises QL006 instead, so the
// reasoning is always in the diff.
//
// Deliberately not a libclang plugin: a token-level scanner over
// comment/string-stripped source keeps the linter dependency-free, fast
// enough for a pre-commit hook, and trivially testable against fixture
// files (tests/lint_test.cc).
#ifndef QSTEER_TOOLS_QSTEER_LINT_LIB_H_
#define QSTEER_TOOLS_QSTEER_LINT_LIB_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qsteer {
namespace lint {

struct Finding {
  std::string path;
  int line = 0;  // 1-based
  std::string rule_id;    // "QL002"
  std::string rule_name;  // "wall-clock"
  std::string message;
};

struct LintOptions {
  /// Apply the built-in path allowlists (common/random.* for QL001, bench/
  /// for QL002). Fixture tests disable this to exercise rules in isolation.
  bool builtin_allowlists = true;
};

/// Lints one file's content. `path` is used for reporting and for the
/// path-scoped rules (allowlists, QL005's banned-include directories).
/// Findings are ordered by line. Files whose basename starts with
/// "qsteer_lint" are self-exempt (the linter's own sources spell out the
/// banned patterns) and yield no findings.
///
/// `companion_decls` is extra source scanned for unordered-container
/// *declarations* only (QL003): LintPaths passes the sibling header of a
/// .cc file here, so `for (auto& kv : store_)` in recommender.cc is checked
/// against the `std::unordered_map<...> store_` member in recommender.h.
std::vector<Finding> LintContent(const std::string& path, std::string_view content,
                                 const LintOptions& options = {},
                                 std::string_view companion_decls = {});

/// Expands paths (directories recurse over .h/.hpp/.cc/.cpp/.cxx), lints
/// every file, and returns all findings sorted by (path, line). On an
/// unreadable path, returns false and sets *error.
bool LintPaths(const std::vector<std::string>& paths, const LintOptions& options,
               std::vector<Finding>* findings, std::string* error);

/// Full CLI: `qsteer_lint [--format=text|json] [--no-builtin-allowlist]
/// [--list-rules] <path>...`. Returns the process exit code:
///   0  no findings;
///   1  findings reported (on `out`, one per line or as a JSON array);
///   2  usage error or unreadable input (message on `err`).
int RunLintMain(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace lint
}  // namespace qsteer

#endif  // QSTEER_TOOLS_QSTEER_LINT_LIB_H_
