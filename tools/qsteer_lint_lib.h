// qsteer-lint: the determinism & invariants linter.
//
// The repo's load-bearing invariants are bit-reproducibility (the same
// (job, config, seed) must produce identical bytes on every run, thread
// count, and machine), crc-before-trust on every recovery path, a single
// acyclic lock hierarchy, and never-silently-dropped Status. Clang's
// -Wthread-safety enforces the *locking* half of the concurrency contract
// (see common/thread_annotations.h); this linter enforces the rest,
// catching hazards that type systems cannot:
//
//   QL001 random-source       std::random_device / rand() / srand() outside
//                             the seeded-PRNG module (common/random.*).
//   QL002 wall-clock          *_clock::now(), time(), gettimeofday(),
//                             clock_gettime() outside bench drivers.
//   QL003 unordered-iteration range-for over a std::unordered_{map,set}
//                             declared in the same file, in a file that
//                             serializes state — iteration order is
//                             implementation-defined, so anything emitted
//                             from such a loop must be sorted first.
//   QL004 pointer-ordering    containers ordered by raw pointer value
//                             (std::set<T*>, std::map<T*, ...>,
//                             std::less<T*>) — addresses differ run to run.
//   QL005 banned-include      <random>/<ctime>/<time.h>/<sys/time.h> in
//                             src/core, src/optimizer, src/service: the
//                             deterministic layers must not even link
//                             against ambient entropy or clocks.
//   QL006 bad-suppression     a qsteer-lint directive without a
//                             justification (it suppresses nothing).
//   QL007 unchecked-status    an expression statement that calls a
//                             Status/Result-returning function and drops
//                             the value. Discarding must be explicit:
//                             `(void)Call();` plus an
//                             `allow(unchecked-status)` justification.
//   QL008 lock-order          the global lock-acquisition graph (extracted
//                             from MutexLock sites plus REQUIRES/ACQUIRE/
//                             EXCLUDES annotations across all linted files)
//                             contains a cycle, or diverges from the
//                             checked-in hierarchy golden
//                             (tools/lock_hierarchy.txt).
//   QL009 serialization-contract  in files that write durable bytes:
//                             floating-point formatting that is not %.17g,
//                             or std::to_string over a floating value —
//                             both lose bits, breaking the bytes-
//                             determinism contract that replication, shard
//                             manifests, and ranker persistence rely on.
//                             (The unsorted-container half of the contract
//                             is QL003, extended here to unordered members
//                             declared in *any* linted file.)
//   QL010 crc-before-trust    a function that reads bytes from disk must
//                             verify a crc32 (directly, or by calling a
//                             verifying helper such as ReadFileChecksummed)
//                             before trusting them, or carry a justified
//                             suppression.
//
// QL007, QL008, and the cross-file halves of QL009/QL010 run on a
// two-pass model: pass 1 extracts a lightweight declaration/annotation
// model from every input file (classes, Mutex members, method annotations,
// member/local/parameter types, Status-returning signatures, checksum-
// verifying helpers); pass 2 lints each file against the merged model, so
// a Status dropped in service code is caught even though the callee is
// declared in another translation unit, and lock nestings that only exist
// across a call boundary still land in the hierarchy.
//
// Suppressions are line-scoped and must carry a justification:
//
//   // qsteer-lint: allow(wall-clock) measures real latency for the EWMA
//   // qsteer-lint: sorted keys are sorted two lines above
//
// `allow(<rule>)` accepts a rule id (QL002) or name (wall-clock) and
// applies to its own line, or to the next line when the comment stands
// alone. `sorted` is QL003's specific form. A bare directive without a
// justification does NOT suppress — it raises QL006 instead, so the
// reasoning is always in the diff. QL007 additionally requires the
// discard itself to be explicit: an allow(unchecked-status) directive on a
// *bare* call suppresses nothing; the call must be written `(void)Call()`.
//
// Deliberately not a libclang plugin: a token-level scanner over
// comment/string-stripped source keeps the linter dependency-free, fast
// enough for a pre-commit hook, and trivially testable against fixture
// files (tests/lint_test.cc).
#ifndef QSTEER_TOOLS_QSTEER_LINT_LIB_H_
#define QSTEER_TOOLS_QSTEER_LINT_LIB_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace qsteer {
namespace lint {

struct Finding {
  std::string path;
  int line = 0;  // 1-based
  std::string rule_id;    // "QL002"
  std::string rule_name;  // "wall-clock"
  std::string message;
};

/// One lint input: a path (used for reporting and path-scoped rules) and
/// its content. LintFiles builds the cross-file model from every entry.
struct FileInput {
  std::string path;
  std::string content;
};

/// A discovered lock-order edge: `from` is held while `to` is acquired.
/// `path`:`line` is the first witness site (for messages; the golden file
/// stores only the edge so it does not churn with unrelated line moves).
struct LockEdge {
  std::string from;
  std::string to;
  std::string path;
  int line = 0;
};

struct LintOptions {
  /// Apply the built-in path allowlists (common/random.* for QL001, bench/
  /// for QL002, the curated tests/ allowlist, and LintPaths' skip of
  /// lint_fixtures/ during directory walks — a fixture named explicitly is
  /// always linted, which is how lint_test exercises rules in isolation).
  bool builtin_allowlists = true;

  /// When non-empty, the extracted lock graph is compared against this
  /// golden content (the bytes of tools/lock_hierarchy.txt): an edge
  /// missing from the golden, or a golden edge no longer extracted, raises
  /// QL008 so the hierarchy stays reviewed. `golden_path` is used for
  /// reporting.
  std::string lock_hierarchy_golden;
  std::string lock_hierarchy_golden_path = "tools/lock_hierarchy.txt";
};

/// Lints one file's content. `path` is used for reporting and for the
/// path-scoped rules (allowlists, QL005's banned-include directories).
/// Findings are ordered by line. Files whose basename starts with
/// "qsteer_lint" are self-exempt (the linter's own sources spell out the
/// banned patterns) and yield no findings.
///
/// The cross-file model is built from this file plus `companion_decls`
/// alone, so single-file runs (and fixtures) exercise QL007–QL010 with
/// self-contained declarations. `companion_decls` is extra source scanned
/// for declarations only: LintPaths passes the sibling header of a .cc
/// file here, so `for (auto& kv : store_)` in recommender.cc is checked
/// against the `std::unordered_map<...> store_` member in recommender.h.
std::vector<Finding> LintContent(const std::string& path, std::string_view content,
                                 const LintOptions& options = {},
                                 std::string_view companion_decls = {});

/// Two-pass lint over an explicit file set: pass 1 builds the merged
/// declaration/annotation model, pass 2 lints every file against it.
/// Findings are sorted by (path, line, rule). When `lock_edges` is
/// non-null it receives the extracted lock-order graph (sorted), which is
/// also what FormatLockHierarchy serializes into the checked-in golden.
std::vector<Finding> LintFiles(const std::vector<FileInput>& files,
                               const LintOptions& options = {},
                               std::vector<LockEdge>* lock_edges = nullptr);

/// Expands paths (directories recurse over .h/.hpp/.cc/.cpp/.cxx), lints
/// every file through LintFiles, and returns all findings sorted by
/// (path, line). On an unreadable path, returns false and sets *error.
bool LintPaths(const std::vector<std::string>& paths, const LintOptions& options,
               std::vector<Finding>* findings, std::string* error,
               std::vector<LockEdge>* lock_edges = nullptr);

/// Serializes the extracted lock graph as the golden file's bytes: a
/// header comment plus one sorted "A -> B" line per edge. Regenerate with
/// `qsteer_lint --emit-lock-hierarchy <paths> > tools/lock_hierarchy.txt`.
std::string FormatLockHierarchy(const std::vector<LockEdge>& edges);

/// Full CLI: `qsteer_lint [--format=text|json] [--no-builtin-allowlist]
/// [--list-rules] [--lock-hierarchy=<golden>] [--emit-lock-hierarchy]
/// <path>...`. Returns the process exit code:
///   0  no findings (or --emit-lock-hierarchy succeeded);
///   1  findings reported (on `out`, one per line or as a JSON array);
///   2  usage error or unreadable input (message on `err`).
int RunLintMain(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace lint
}  // namespace qsteer

#endif  // QSTEER_TOOLS_QSTEER_LINT_LIB_H_
