// qsteer — command-line driver for the steering library.
//
// Subcommands:
//   rules [category]                       list the rule registry
//   workload <A|B|C> [day]                 generated-workload statistics
//   compile <A|B|C> <template> <day> [hint-string]
//                                          compile a job (EXPLAIN output)
//   span <A|B|C> <template> <day>          Algorithm 1 job span
//   analyze <A|B|C> <template> <day> [threads]
//                                          full §5-§6 pipeline for one job;
//                                          threads > 0 parallelizes candidate
//                                          recompilation (same results); also
//                                          reports the default plan's
//                                          per-node estimate-vs-truth
//                                          cardinality q-error summary
//   calibrate <A|B|C|S|K> [day] [flags]    cost-model calibration harness:
//                                          deterministic probe queries,
//                                          selectivity q-error percentiles
//                                          and fitted cost weights per
//                                          stats model. Flags:
//                                            --stats-model=scalar|histogram|both
//                                            --smoke  small probe budget plus
//                                              a run-twice determinism check
//   serve <A|B|C> <days> [fault_level] [flags]
//                                          asynchronous steering service:
//                                          day-1 offline learning, then
//                                          online serving through the
//                                          bounded-queue service with
//                                          admission control. Flags:
//                                            --wal-dir=<dir>  durable store
//                                              (WAL + snapshots; recovers
//                                              prior state on start)
//                                            --snapshot-interval=<n>
//                                              events between snapshots
//                                              (requires --wal-dir)
//                                            --queue-capacity=<n>
//                                            --workers=<n>
//                                            --deadline=<seconds> shed
//                                              requests that would wait
//                                              longer than this
//                                            --compile-cache-mb=<MiB>
//                                              compile-cache budget
//                                              (0 disables)
//                                            --warm-cache=<file> pre-warm
//                                              the compile cache from a
//                                              discover-sharded --cache-out
//                                              file at startup (damage ->
//                                              cold start, never fatal)
//                                            --warm-cache-day=<n> day stamp
//                                              the warm file must carry
//                                              (-1 = accept any)
//   serve-fleet <A|B|C> <days> [flags]     replicated serving tier: N
//                                          replica stores behind a
//                                          consistent-hash router, leader
//                                          mutations shipped to followers,
//                                          deterministic failover. Flags:
//                                            --dir=<dir>  root directory
//                                              (replica_<i> subdirs; empty
//                                              = ephemeral replicas)
//                                            --replicas=<n> fleet size
//                                            --snapshot-interval=<n>
//                                            --staleness-bound=<n> events a
//                                              follower may trail before
//                                              shedding reads to the leader
//                                            --kill-every=<days> scripted
//                                              churn: kill a hashed replica
//                                              every N days, restart it the
//                                              next day
//                                            --vnodes=<n> ring points per
//                                              replica
//   discover-sharded <A|B|C|S|K> <day> --dir=<dir> [flags]
//                                          crash-resumable sharded discovery:
//                                          partition the day's jobs by
//                                          rule-signature group onto shards
//                                          (consistent hashing), dispatch
//                                          under deadline leases, commit
//                                          checksummed artifact+manifest
//                                          pairs, merge bit-identically to
//                                          an unsharded pass. Flags:
//                                            --shards=<n> --workers=<n>
//                                            --max-jobs=<n> cap the day
//                                            --resume  trust checksum-valid
//                                              shard artifacts already in
//                                              --dir (quarantine damage)
//                                            --kill-every=<k> crash at every
//                                              k-th protocol window and
//                                              auto-resume until complete
//                                            --cache-in=<file> warm the
//                                              compile cache from a prior
//                                              --cache-out artifact
//                                            --cache-out=<file> persist the
//                                              compile cache after the run
//                                            --verify-unsharded  also run
//                                              the single-process reference
//                                              pass and assert the merged
//                                              bytes match
//
// Hint strings use the §3.2 flag syntax, e.g.
//   qsteer compile B 4 7 "DISABLE(UnionAllToUnionAll);ENABLE(CorrelatedJoinOnUnionAll2)"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/calibration.h"
#include "catalog/stats_model.h"
#include "common/argparse.h"
#include "common/file_io.h"
#include "common/hash.h"
#include "discovery/orchestrator.h"
#include "service/replication.h"
#include "core/hints.h"
#include "core/pipeline.h"
#include "core/recommender.h"
#include "core/span.h"
#include "service/steering_service.h"
#include "optimizer/explain.h"
#include "optimizer/rule_registry.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: qsteer <command> [args]\n"
               "  rules [Required|Off-by-default|On-by-default|Implementation]\n"
               "  workload <A|B|C> [day]\n"
               "  compile <A|B|C> <template> <day> [hint-string]\n"
               "  span <A|B|C> <template> <day>\n"
               "  analyze <A|B|C> <template> <day> [threads] [--discovery-dir=DIR]\n"
               "        [--compile-budget=N] [--rank-candidates] [--ranker-in=FILE]\n"
               "  calibrate <A|B|C|S|K> [day] [--stats-model=scalar|histogram|both] "
               "[--smoke]\n"
               "  serve <A|B|C> <days> [fault_level] [--wal-dir=DIR] "
               "[--snapshot-interval=N]\n"
               "        [--queue-capacity=N] [--workers=N] [--deadline=SECONDS]\n"
               "        [--compile-cache-mb=N] [--warm-cache=FILE] [--warm-cache-day=N]\n"
               "  serve-fleet <A|B|C> <days> [--dir=DIR] [--replicas=N]\n"
               "        [--snapshot-interval=N] [--staleness-bound=N] "
               "[--kill-every=DAYS]\n"
               "        [--vnodes=N]\n"
               "  discover-sharded <A|B|C|S|K> <day> --dir=DIR [--shards=N] "
               "[--workers=N]\n"
               "        [--max-jobs=N] [--resume] [--kill-every=K] "
               "[--cache-in=FILE]\n"
               "        [--cache-out=FILE] [--verify-unsharded] "
               "[--compile-budget=N]\n"
               "        [--rank-candidates] [--ranker-in=FILE] "
               "[--ranker-out=FILE]\n");
  return 2;
}

/// Validated positional-argument parsing: garbage or out-of-range values
/// name the offending argument instead of silently becoming 0 (atoi).
bool ParsePositional(const char* label, const char* arg, int min_value, int max_value,
                     int* out) {
  if (ParseIntArg(arg, min_value, max_value, out)) return true;
  std::fprintf(stderr, "qsteer: bad %s '%s' (expected integer in [%d, %d])\n", label, arg,
               min_value, max_value);
  return false;
}

WorkloadSpec SpecFor(const std::string& which) {
  double scale = 0.005;
  if (const char* env = std::getenv("QSTEER_SCALE")) {
    if (!ParseDoubleArg(env, 1e-9, 1000.0, &scale)) {
      std::fprintf(stderr, "qsteer: ignoring bad QSTEER_SCALE '%s' (using %.3f)\n", env,
                   scale);
    }
  }
  if (which == "B") return WorkloadSpec::WorkloadB(scale);
  if (which == "C") return WorkloadSpec::WorkloadC(scale);
  if (which == "S") return WorkloadSpec::CorrelatedSkew(scale);
  if (which == "K") return WorkloadSpec::StaleHistogramCliff(scale);
  return WorkloadSpec::WorkloadA(scale);
}

int CmdRules(int argc, char** argv) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  std::string filter = argc > 0 ? argv[0] : "";
  for (RuleId id = 0; id < kNumRules; ++id) {
    const char* category = RuleCategoryName(CategoryOfRule(id));
    if (!filter.empty() && filter != category) continue;
    std::printf("%3d  %-16s %s\n", id, category, registry.name(id).c_str());
  }
  return 0;
}

int CmdWorkload(int argc, char** argv) {
  if (argc < 1) return Usage();
  Workload workload(SpecFor(argv[0]));
  int day = 1;
  if (argc > 1 && !ParsePositional("day", argv[1], 1, 1000000, &day)) return 2;
  std::vector<Job> jobs = workload.JobsForDay(day);
  std::printf("workload %s day %d: %zu jobs from %d templates over %d stream sets\n",
              argv[0], day, jobs.size(), workload.num_templates(),
              workload.catalog().num_stream_sets());
  double ops = 0;
  int with_hints = 0;
  for (const Job& job : jobs) {
    ops += job.NumOperators();
    if (!job.customer_hints.empty()) ++with_hints;
  }
  if (!jobs.empty()) {
    std::printf("mean operators/job: %.1f; jobs with customer hints: %d\n",
                ops / static_cast<double>(jobs.size()), with_hints);
  }
  return 0;
}

int CmdCompile(int argc, char** argv) {
  if (argc < 3) return Usage();
  Workload workload(SpecFor(argv[0]));
  int template_id = 0, day = 0;
  if (!ParsePositional("template", argv[1], 0, 1000000, &template_id) ||
      !ParsePositional("day", argv[2], 1, 1000000, &day)) {
    return 2;
  }
  Job job = workload.MakeJob(template_id, day);
  RuleConfig config = ProductionConfig(job);
  if (argc > 3) {
    Result<RuleConfig> parsed = ParseHintString(argv[3]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad hint string: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    config = parsed.value();
  }
  Optimizer optimizer(&workload.catalog());
  Result<CompiledPlan> plan = optimizer.Compile(job, config);
  if (!plan.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n%s", job.name.c_str(),
              ExplainPlan(workload.catalog(), job, plan.value()).c_str());
  return 0;
}

int CmdSpan(int argc, char** argv) {
  if (argc < 3) return Usage();
  Workload workload(SpecFor(argv[0]));
  Optimizer optimizer(&workload.catalog());
  int template_id = 0, day = 0;
  if (!ParsePositional("template", argv[1], 0, 1000000, &template_id) ||
      !ParsePositional("day", argv[2], 1, 1000000, &day)) {
    return 2;
  }
  Job job = workload.MakeJob(template_id, day);
  SpanResult span = ComputeJobSpan(optimizer, job);
  const RuleRegistry& registry = RuleRegistry::Instance();
  std::printf("%s: span of %d rules (%d iterations%s)\n", job.name.c_str(),
              span.span.Count(), span.iterations,
              span.ended_on_compile_failure ? ", ended on compile failure" : "");
  for (int id : span.span.ToIndices()) {
    std::printf("  %3d  %-16s %s\n", id, RuleCategoryName(CategoryOfRule(id)),
                registry.name(id).c_str());
  }
  return 0;
}

int CmdAnalyze(int argc, char** argv) {
  std::vector<const char*> positional;
  std::string wal_dir;
  std::string discovery_dir;
  std::string ranker_in;
  int compile_budget = 0;
  bool rank_candidates = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--wal-dir=", 10) == 0) {
      wal_dir = argv[i] + 10;
      if (wal_dir.empty()) {
        std::fprintf(stderr, "qsteer analyze: --wal-dir requires a value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--discovery-dir=", 16) == 0) {
      discovery_dir = argv[i] + 16;
      if (discovery_dir.empty()) {
        std::fprintf(stderr, "qsteer analyze: --discovery-dir requires a value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--compile-budget=", 17) == 0) {
      if (!ParseIntArg(argv[i] + 17, 0, 1 << 30, &compile_budget)) {
        std::fprintf(stderr, "qsteer analyze: bad --compile-budget '%s'\n", argv[i] + 17);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--rank-candidates") == 0) {
      rank_candidates = true;
    } else if (std::strncmp(argv[i], "--ranker-in=", 12) == 0) {
      ranker_in = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "qsteer analyze: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 3) return Usage();
  if (!ranker_in.empty() && !rank_candidates) {
    std::fprintf(stderr, "qsteer analyze: --ranker-in requires --rank-candidates\n");
    return 2;
  }
  Workload workload(SpecFor(positional[0]));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions options;
  options.max_candidate_configs = 200;
  options.compile_budget = compile_budget;
  options.rank_candidates = rank_candidates;
  int template_id = 0, day = 0;
  if (!ParsePositional("template", positional[1], 0, 1000000, &template_id) ||
      !ParsePositional("day", positional[2], 1, 1000000, &day)) {
    return 2;
  }
  if (positional.size() > 3 &&
      !ParsePositional("threads", positional[3], -1, 1024, &options.num_threads)) {
    return 2;
  }
  SteeringPipeline pipeline(&optimizer, &simulator, options);
  if (!ranker_in.empty()) {
    // Rejection (corrupt, version mismatch) is non-fatal: rank cold.
    Status warm = pipeline.WarmRanker(ranker_in);
    if (!warm.ok()) {
      std::fprintf(stderr, "qsteer analyze: ranker warm-start rejected (%s); ranking cold\n",
                   warm.ToString().c_str());
    }
  }
  Job job = workload.MakeJob(template_id, day);
  JobAnalysis analysis = pipeline.AnalyzeJob(job);
  if (analysis.default_plan.root == nullptr) {
    std::fprintf(stderr, "default compilation failed\n");
    return 1;
  }
  std::printf("%s\n  span: %d rules; candidates: %d (%d compiled, %d failed, %d timed "
              "out, %d cheaper than default)\n  default runtime: %.1f s (cost %.2f)\n",
              job.name.c_str(), analysis.span.span.Count(), analysis.candidates_generated,
              analysis.recompiled_ok, analysis.compile_failures, analysis.compile_timeouts,
              analysis.cheaper_than_default, analysis.default_metrics.runtime,
              analysis.default_plan.est_cost);
  std::printf("  executed alternatives:\n");
  for (const ConfigOutcome& outcome : analysis.executed) {
    double change = (outcome.metrics.runtime - analysis.default_metrics.runtime) /
                    analysis.default_metrics.runtime * 100.0;
    std::printf("    %+7.1f%%  cost %.2f  hints: %s\n", change, outcome.plan.est_cost,
                ToHintString(outcome.config).substr(0, 110).c_str());
  }
  const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
  if (best != nullptr) {
    std::printf("  best change: %+.1f%%\n  RuleDiff: %s\n", analysis.BestRuntimeChangePct(),
                best->diff_vs_default.ToString().c_str());
  }
  if (analysis.exec_failures > 0) {
    std::printf("  degraded: %d alternative run(s) stayed failed after retries "
                "(default plan kept)\n",
                analysis.exec_failures);
  }
  std::printf("  compile cache: %s\n  span-equivalent candidates pruned: %d\n",
              pipeline.compile_cache_stats().ToString().c_str(),
              analysis.span_duplicates_pruned);
  if (rank_candidates || compile_budget > 0) {
    SteeringPipeline::BudgetStats budget = pipeline.budget_stats();
    std::printf("  budget: scored=%lld compiled=%lld skipped=%lld improvements=%lld "
                "improvements/compile=%.4f\n",
                static_cast<long long>(budget.candidates_scored),
                static_cast<long long>(budget.candidates_compiled),
                static_cast<long long>(budget.budget_skipped),
                static_cast<long long>(budget.improvements_found),
                budget.ImprovementsPerCompile());
  }
  // How wrong the optimizer's beliefs were for this job: per-node
  // estimate-vs-truth cardinality q-error over the default plan, under the
  // catalog's active stats model.
  QErrorSummary gap =
      PlanCardinalityQError(workload.catalog(), job, analysis.default_plan.root);
  std::printf("  estimate-vs-truth cardinality q-error (%s model, %d plan nodes): "
              "p50 %.2f  p95 %.2f  max %.2f\n",
              workload.catalog().stats_model().name(), gap.count, gap.p50, gap.p95, gap.max);
  if (!discovery_dir.empty()) {
    // Surface the last sharded-discovery pass over this directory: shard /
    // lease / quarantine counters plus compile-cache warm stats, written
    // checksummed by the orchestrator's merge step.
    std::string summary_path = discovery_dir + "/discovery_summary.txt";
    bool had_checksum = false;
    Result<std::string> summary = ReadFileChecksummed(summary_path, &had_checksum);
    if (!summary.ok()) {
      std::fprintf(stderr, "qsteer analyze: cannot read %s: %s\n", summary_path.c_str(),
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("  discovery summary (%s, checksum %s):\n", summary_path.c_str(),
                had_checksum ? "valid" : "ABSENT");
    // Indent the summary file under the analyze report.
    std::string indented = "    ";
    for (char c : summary.value()) {
      indented.push_back(c);
      if (c == '\n') indented += "    ";
    }
    while (!indented.empty() && indented.back() == ' ') indented.pop_back();
    std::printf("%s", indented.c_str());
  }
  if (!wal_dir.empty()) {
    // Durable mode: recover the store, report what recovery found (the
    // same RecoveryInfo the service status exposes), learn this analysis
    // into it, and say where the job's group stands.
    DurableStoreOptions store_options;
    store_options.dir = wal_dir;
    DurableRecommenderStore store(store_options);
    Status status = store.Open();
    if (!status.ok()) {
      std::fprintf(stderr, "qsteer analyze: store recovery failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    DurableRecommenderStore::RecoveryInfo recovery = store.recovery();
    std::printf("  durable store %s: snapshot %s (seq %llu), %lld WAL events replayed, "
                "%lld skipped, %lld torn bytes truncated; %d groups\n",
                wal_dir.c_str(), recovery.loaded_snapshot ? "loaded" : "absent",
                static_cast<unsigned long long>(recovery.snapshot_seq),
                static_cast<long long>(recovery.wal_records_replayed),
                static_cast<long long>(recovery.wal_records_skipped),
                static_cast<long long>(recovery.wal_truncated_bytes), store.num_groups());
    bool learned = store.LearnFromAnalysis(analysis);
    SteeringRecommender::Recommendation recommendation =
        store.Recommend(analysis.default_plan.signature);
    std::printf("  group %s: %s%s\n",
                analysis.default_plan.signature.ToHexString().substr(0, 16).c_str(),
                recommendation.is_default ? "serving default"
                                          : "steered recommendation available",
                learned ? " (this analysis learned as a candidate)" : "");
    status = store.Snapshot();
    if (!status.ok()) {
      std::fprintf(stderr, "qsteer analyze: final snapshot failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

int CmdCalibrate(int argc, char** argv) {
  std::vector<const char*> positional;
  std::string model_sel = "both";
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--stats-model=", 14) == 0) {
      model_sel = argv[i] + 14;
      if (model_sel != "scalar" && model_sel != "histogram" && model_sel != "both") {
        std::fprintf(stderr,
                     "qsteer calibrate: bad --stats-model '%s' "
                     "(scalar|histogram|both)\n",
                     model_sel.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "qsteer calibrate: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) return Usage();
  CalibrationOptions options;
  if (positional.size() > 1 &&
      !ParsePositional("day", positional[1], 0, 1000000, &options.day)) {
    return 2;
  }
  if (smoke) {
    options.probes_per_set = 2;
    options.max_sets = 6;
  }
  Workload workload(SpecFor(positional[0]));

  std::vector<std::shared_ptr<const StatsModel>> models;
  if (model_sel == "scalar" || model_sel == "both") {
    models.push_back(std::make_shared<ScalarStatsModel>());
  }
  if (model_sel == "histogram" || model_sel == "both") {
    models.push_back(std::make_shared<HistogramStatsModel>());
  }
  for (const std::shared_ptr<const StatsModel>& model : models) {
    CalibrationReport report = RunCalibration(workload.catalog(), *model, options);
    std::fputs(report.Serialize().c_str(), stdout);
    if (smoke) {
      // Purity check: the harness must be a function of (seed, catalog, day).
      CalibrationReport again = RunCalibration(workload.catalog(), *model, options);
      if (again.Serialize() != report.Serialize()) {
        std::fprintf(stderr, "qsteer calibrate: NON-DETERMINISTIC report for model %s\n",
                     model->name());
        return 1;
      }
    }
  }
  if (smoke) std::printf("smoke: reports deterministic across repeated runs\n");
  return 0;
}

struct ServeFlags {
  std::string wal_dir;
  int queue_capacity = 64;
  int snapshot_interval = 0;  // 0 = not set (store default applies)
  int workers = 2;
  double deadline_s = 0.0;
  int compile_cache_mb = 64;  // 0 disables the compile cache
  std::string warm_cache_file;
  int warm_cache_day = -1;  // -1 accepts any day stamp
};

/// Parses `--flag=value` arguments for `serve`. Returns false (after
/// printing a specific message) on unknown flags, missing values, values
/// outside their range, or conflicting combinations.
bool ParseServeFlag(const char* arg, ServeFlags* flags) {
  const char* eq = std::strchr(arg, '=');
  std::string name = eq != nullptr ? std::string(arg, eq - arg) : std::string(arg);
  const char* value = eq != nullptr ? eq + 1 : nullptr;
  if (value == nullptr || *value == '\0') {
    std::fprintf(stderr, "qsteer serve: flag %s requires a value (%s=...)\n", name.c_str(),
                 name.c_str());
    return false;
  }
  if (name == "--wal-dir") {
    flags->wal_dir = value;
    return true;
  }
  if (name == "--queue-capacity") {
    if (ParseIntArg(value, 1, 1 << 20, &flags->queue_capacity)) return true;
    std::fprintf(stderr, "qsteer serve: bad --queue-capacity '%s' (integer in [1, %d])\n",
                 value, 1 << 20);
    return false;
  }
  if (name == "--snapshot-interval") {
    if (ParseIntArg(value, 1, 1 << 30, &flags->snapshot_interval)) return true;
    std::fprintf(stderr, "qsteer serve: bad --snapshot-interval '%s' (integer >= 1)\n",
                 value);
    return false;
  }
  if (name == "--workers") {
    if (ParseIntArg(value, 1, 256, &flags->workers)) return true;
    std::fprintf(stderr, "qsteer serve: bad --workers '%s' (integer in [1, 256])\n", value);
    return false;
  }
  if (name == "--deadline") {
    if (ParseDoubleArg(value, 0.0, 1e9, &flags->deadline_s)) return true;
    std::fprintf(stderr, "qsteer serve: bad --deadline '%s' (seconds >= 0)\n", value);
    return false;
  }
  if (name == "--compile-cache-mb") {
    if (ParseIntArg(value, 0, 1 << 20, &flags->compile_cache_mb)) return true;
    std::fprintf(stderr,
                 "qsteer serve: bad --compile-cache-mb '%s' (MiB in [0, %d]; 0 disables)\n",
                 value, 1 << 20);
    return false;
  }
  if (name == "--warm-cache") {
    flags->warm_cache_file = value;
    return true;
  }
  if (name == "--warm-cache-day") {
    if (ParseIntArg(value, -1, 1000000, &flags->warm_cache_day)) return true;
    std::fprintf(stderr,
                 "qsteer serve: bad --warm-cache-day '%s' (day >= 1, or -1 for any)\n",
                 value);
    return false;
  }
  std::fprintf(stderr, "qsteer serve: unknown flag '%s'\n", name.c_str());
  return false;
}

int CmdServe(int argc, char** argv) {
  std::vector<const char*> positional;
  ServeFlags flags;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (!ParseServeFlag(argv[i], &flags)) return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) return Usage();
  if (flags.snapshot_interval > 0 && flags.wal_dir.empty()) {
    std::fprintf(stderr,
                 "qsteer serve: --snapshot-interval requires --wal-dir "
                 "(without a durable store there is nothing to snapshot)\n");
    return 2;
  }
  if (flags.warm_cache_file.empty() && flags.warm_cache_day >= 0) {
    std::fprintf(stderr,
                 "qsteer serve: --warm-cache-day requires --warm-cache "
                 "(there is no cache file to check the day stamp of)\n");
    return 2;
  }
  if (!flags.warm_cache_file.empty() && flags.compile_cache_mb <= 0) {
    std::fprintf(stderr,
                 "qsteer serve: --warm-cache requires --compile-cache-mb > 0 "
                 "(a disabled cache cannot be warmed)\n");
    return 2;
  }
  int days = 0;
  double fault_level = 0.0;
  if (!ParsePositional("days", positional[1], 1, 1000000, &days)) return 2;
  if (positional.size() > 2 && !ParseDoubleArg(positional[2], 0.0, 25.0, &fault_level)) {
    std::fprintf(stderr, "qsteer: bad fault_level '%s' (expected number in [0, 25])\n",
                 positional[2]);
    return 2;
  }

  Workload workload(SpecFor(positional[0]));
  Optimizer optimizer(&workload.catalog());
  SimulatorOptions sim_options;
  sim_options.fault_profile = FaultProfile::Flaky(fault_level);
  ExecutionSimulator simulator(&workload.catalog(), sim_options);
  SteeringPipeline pipeline(&optimizer, &simulator, {});

  ServiceOptions service_options;
  service_options.num_workers = flags.workers;
  service_options.queue_capacity = flags.queue_capacity;
  service_options.default_deadline_s = flags.deadline_s;
  service_options.pipeline.compile_cache_mb = flags.compile_cache_mb;
  service_options.warm_cache_file = flags.warm_cache_file;
  service_options.warm_cache_day = flags.warm_cache_day;
  service_options.store.dir = flags.wal_dir;
  if (flags.snapshot_interval > 0) {
    service_options.store.snapshot_interval = flags.snapshot_interval;
  }
  SteeringService service(&optimizer, &simulator, service_options);
  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "qsteer serve: %s\n", started.ToString().c_str());
    return 1;
  }
  if (service.store().durable()) {
    const DurableRecommenderStore::RecoveryInfo& recovery = service.store().recovery();
    std::printf("durable store %s: snapshot %s (seq %llu), %lld WAL events replayed, "
                "%lld skipped, %lld torn bytes truncated; %d groups recovered\n",
                flags.wal_dir.c_str(), recovery.loaded_snapshot ? "loaded" : "absent",
                static_cast<unsigned long long>(recovery.snapshot_seq),
                static_cast<long long>(recovery.wal_records_replayed),
                static_cast<long long>(recovery.wal_records_skipped),
                static_cast<long long>(recovery.wal_truncated_bytes),
                service.store().num_groups());
  }
  if (!flags.warm_cache_file.empty()) {
    ServiceStatusSnapshot warm_snapshot = service.status();
    std::printf("compile cache warm start %s: %lld entries loaded, %lld rejected%s\n",
                flags.warm_cache_file.c_str(),
                static_cast<long long>(warm_snapshot.cache_warm_loaded),
                static_cast<long long>(warm_snapshot.cache_warm_rejected),
                warm_snapshot.cache_warm_loaded == 0 ? " (cold start)" : "");
  }

  // Day 1 offline: learn candidates (journaled through the durable store)
  // and keep one base job per group for the validation re-runs.
  std::unordered_map<std::string, Job> group_rep;
  int candidates = 0, analyzed = 0;
  for (const Job& job : workload.JobsForDay(1)) {
    if (analyzed >= 30) break;
    ++analyzed;
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (service.store().LearnFromAnalysis(analysis)) {
      ++candidates;
      group_rep.emplace(analysis.default_plan.signature.ToHexString(), job);
    }
  }
  std::printf("day 1 offline: %d analyzed, %d groups with candidates\n", analyzed,
              candidates);

  // Validation gate: candidates must survive clean re-runs before serving.
  uint64_t nonce = 0;
  for (int round = 0; round < 8 && !service.store().PendingValidations().empty(); ++round) {
    for (const SteeringRecommender::ValidationRequest& request :
         service.store().PendingValidations()) {
      auto it = group_rep.find(request.signature.ToHexString());
      if (it == group_rep.end()) continue;
      // Compile through the service's cache: the serving path will request
      // these same (job, config) pairs, so validation warms it for free.
      Result<CompiledPlan> base_plan =
          service.pipeline().CompileCached(it->second, RuleConfig::Default());
      Result<CompiledPlan> alt_plan =
          service.pipeline().CompileCached(it->second, request.config);
      if (!base_plan.ok() || !alt_plan.ok()) continue;
      ExecMetrics base = pipeline.ExecuteWithRetry(it->second, base_plan.value().root, ++nonce);
      ExecMetrics alt = pipeline.ExecuteWithRetry(it->second, alt_plan.value().root, ++nonce);
      if (base.failed || base.runtime <= 0.0) continue;
      service.store().ObserveValidation(
          request.signature,
          alt.failed ? 100.0 : (alt.runtime - base.runtime) / base.runtime * 100.0);
    }
  }
  std::printf("validation: %d groups serving, %d rejected\n", service.store().num_serving(),
              service.store().num_retired());

  // Days 2..N online: submit asynchronously through the bounded queue and
  // admission control, then collect the day's replies.
  for (int day = 2; day <= days; ++day) {
    double saved = 0, base = 0;
    int submitted = 0, steered = 0, shed = 0, rejected = 0;
    std::vector<std::future<ServiceReply>> replies;
    for (const Job& job : workload.JobsForDay(day)) {
      if (submitted >= 60) break;
      ++submitted;
      ServiceRequest request;
      request.job = job;
      std::future<ServiceReply> reply;
      switch (service.Submit(request, &reply)) {
        case AdmitResult::kAccepted:
          replies.push_back(std::move(reply));
          break;
        case AdmitResult::kShedDeadline:
          ++shed;
          break;
        default:
          ++rejected;
          break;
      }
    }
    for (std::future<ServiceReply>& reply : replies) {
      ServiceReply result = reply.get();
      if (!result.status.ok()) continue;
      if (result.steered) ++steered;
      base += result.default_runtime_s;
      saved += result.default_runtime_s - result.served_runtime_s;
    }
    std::printf("day %d: %d submitted (%d shed, %d rejected), %d steered, "
                "%.1f%% runtime saved\n",
                day, submitted, shed, rejected, steered,
                base > 0 ? saved / base * 100.0 : 0.0);
  }

  Status stopped = service.Shutdown();
  if (!stopped.ok()) {
    std::fprintf(stderr, "qsteer serve: final snapshot failed: %s\n",
                 stopped.ToString().c_str());
  }
  std::printf("%s%s\n", service.status().ToString().c_str(),
              pipeline.failure_stats().ToString().c_str());
  return 0;
}

struct ServeFleetFlags {
  std::string dir;
  int replicas = 3;
  int snapshot_interval = 32;
  int staleness_bound = 128;
  int kill_every = 0;  // kill one replica every N days (0 = no churn)
  int vnodes = 64;
};

bool ParseServeFleetFlag(const char* arg, ServeFleetFlags* flags) {
  const char* eq = std::strchr(arg, '=');
  std::string name = eq != nullptr ? std::string(arg, eq - arg) : std::string(arg);
  const char* value = eq != nullptr ? eq + 1 : nullptr;
  if (value == nullptr || *value == '\0') {
    std::fprintf(stderr, "qsteer serve-fleet: flag %s requires a value (%s=...)\n",
                 name.c_str(), name.c_str());
    return false;
  }
  if (name == "--dir") {
    flags->dir = value;
    return true;
  }
  if (name == "--replicas") {
    if (ParseIntArg(value, 1, 64, &flags->replicas)) return true;
    std::fprintf(stderr, "qsteer serve-fleet: bad --replicas '%s' (integer in [1, 64])\n",
                 value);
    return false;
  }
  if (name == "--snapshot-interval") {
    if (ParseIntArg(value, 1, 1 << 30, &flags->snapshot_interval)) return true;
    std::fprintf(stderr, "qsteer serve-fleet: bad --snapshot-interval '%s' (integer >= 1)\n",
                 value);
    return false;
  }
  if (name == "--staleness-bound") {
    if (ParseIntArg(value, 0, 1 << 30, &flags->staleness_bound)) return true;
    std::fprintf(stderr, "qsteer serve-fleet: bad --staleness-bound '%s' (integer >= 0)\n",
                 value);
    return false;
  }
  if (name == "--kill-every") {
    if (ParseIntArg(value, 0, 1 << 20, &flags->kill_every)) return true;
    std::fprintf(stderr,
                 "qsteer serve-fleet: bad --kill-every '%s' (days between kills; 0 off)\n",
                 value);
    return false;
  }
  if (name == "--vnodes") {
    if (ParseIntArg(value, 1, 4096, &flags->vnodes)) return true;
    std::fprintf(stderr, "qsteer serve-fleet: bad --vnodes '%s' (integer in [1, 4096])\n",
                 value);
    return false;
  }
  std::fprintf(stderr, "qsteer serve-fleet: unknown flag '%s'\n", name.c_str());
  return false;
}

/// Replicated serving: day-1 learning through the leader, days 2..N served
/// across the fleet by consistent-hashed routing, with optional scripted
/// kill/restart churn (the killed replica id is a hash of the day, so runs
/// are reproducible). Exits non-zero when the survivors' final states
/// diverge — the invariant the replication layer exists to keep.
int CmdServeFleet(int argc, char** argv) {
  std::vector<const char*> positional;
  ServeFleetFlags flags;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (!ParseServeFleetFlag(argv[i], &flags)) return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) return Usage();
  int days = 0;
  if (!ParsePositional("days", positional[1], 1, 1000000, &days)) return 2;

  Workload workload(SpecFor(positional[0]));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions pipeline_options;
  pipeline_options.max_candidate_configs = 60;
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);

  FleetOptions fleet_options;
  fleet_options.dir = flags.dir;
  fleet_options.num_replicas = flags.replicas;
  fleet_options.snapshot_interval = flags.snapshot_interval;
  fleet_options.staleness_bound = static_cast<uint64_t>(flags.staleness_bound);
  fleet_options.ring_vnodes = flags.vnodes;
  ReplicationFleet fleet(fleet_options);
  Status status = fleet.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "qsteer serve-fleet: %s\n", status.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    std::shared_ptr<DurableRecommenderStore> store =
        fleet.replica_store(static_cast<uint32_t>(i));
    DurableRecommenderStore::RecoveryInfo recovery = store->recovery();
    std::printf("replica %d: snapshot %s (seq %llu), %lld WAL events replayed, "
                "%lld skipped, %lld torn bytes truncated\n",
                i, recovery.loaded_snapshot ? "loaded" : "absent",
                static_cast<unsigned long long>(recovery.snapshot_seq),
                static_cast<long long>(recovery.wal_records_replayed),
                static_cast<long long>(recovery.wal_records_skipped),
                static_cast<long long>(recovery.wal_truncated_bytes));
  }

  // Day 1 offline: analyze on this process, learn through the leader (the
  // mutations replicate synchronously to every follower).
  int analyzed = 0, learned_groups = 0;
  std::vector<RuleSignature> signatures;
  for (const Job& job : workload.JobsForDay(1)) {
    if (analyzed >= 20) break;
    ++analyzed;
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (analysis.default_plan.root == nullptr) continue;
    bool learned = false;
    status = fleet.LearnFromAnalysis(analysis, &learned);
    if (!status.ok()) {
      std::fprintf(stderr, "qsteer serve-fleet: learn failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (learned) ++learned_groups;
    signatures.push_back(analysis.default_plan.signature);
  }
  // Validation through the leader so candidates can reach serving state.
  std::shared_ptr<DurableRecommenderStore> leader =
      fleet.replica_store(fleet.leader_id());
  for (int round = 0; round < 4 && !leader->PendingValidations().empty(); ++round) {
    for (const SteeringRecommender::ValidationRequest& request :
         leader->PendingValidations()) {
      // The candidate already beat the default in analysis; revalidate with
      // its recorded improvement (the simulator is deterministic here).
      // qsteer-lint: allow(unchecked-status) demo driver; a down leader just skips the validation
      (void)fleet.ObserveValidation(request.signature, -5.0);
    }
    leader = fleet.replica_store(fleet.leader_id());
  }
  std::printf("day 1 offline: %d analyzed, %d groups learned, %d serving\n", analyzed,
              learned_groups, leader->num_serving());

  // Days 2..N online: serve every job's signature through the fleet, with
  // hashed kill/restart churn at day boundaries.
  uint32_t killed = ConsistentHashRing::kNoReplica;
  for (int day = 2; day <= days; ++day) {
    if (flags.kill_every > 0 && fleet.num_replicas() > 1) {
      if (killed != ConsistentHashRing::kNoReplica) {
        // qsteer-lint: allow(unchecked-status) chaos driver; restarting an already-live replica is a no-op
        (void)fleet.Restart(killed);
        killed = ConsistentHashRing::kNoReplica;
      }
      if (day % flags.kill_every == 0) {
        killed = static_cast<uint32_t>(Mix64(0x9e3779b97f4a7c15ull ^ day) %
                                       fleet.num_replicas());
        // qsteer-lint: allow(unchecked-status) chaos driver; killing an already-dead replica is a no-op
        (void)fleet.Kill(killed);
      }
    }
    int served = 0, steered = 0, ticks = 0, rerouted = 0;
    for (const Job& job : workload.JobsForDay(day)) {
      if (served >= 60) break;
      Result<CompiledPlan> plan = pipeline.CompileCached(job, RuleConfig::Default());
      if (!plan.ok()) continue;
      ReplicationFleet::ServeResult result;
      status = fleet.Serve(plan.value().signature, &result);
      if (!status.ok()) continue;
      ++served;
      if (!result.recommendation.is_default) ++steered;
      if (result.ticked) ++ticks;
      if (result.rerouted) ++rerouted;
    }
    std::printf("day %d: %d served, %d steered, %d ticks, %d rerouted%s\n", day, served,
                steered, ticks, rerouted,
                killed != ConsistentHashRing::kNoReplica ? " [one replica down]" : "");
  }
  if (killed != ConsistentHashRing::kNoReplica) {
    // qsteer-lint: allow(unchecked-status) chaos driver; restarting an already-live replica is a no-op
    (void)fleet.Restart(killed);
  }

  status = fleet.CatchUpAll();
  if (!status.ok()) {
    std::fprintf(stderr, "qsteer serve-fleet: catch-up failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::string divergence;
  status = fleet.CheckConvergence(&divergence);
  std::printf("%s", fleet.status().ToString().c_str());
  if (!status.ok()) {
    std::fprintf(stderr, "qsteer serve-fleet: DIVERGED: %s\n", divergence.c_str());
    return 1;
  }
  std::printf("convergence: all %d replicas bit-identical (epoch %llu)\n",
              fleet.num_replicas(), static_cast<unsigned long long>(fleet.epoch()));
  return 0;
}

int CmdDiscoverSharded(int argc, char** argv) {
  std::vector<const char*> positional;
  DiscoveryOptions options;
  int kill_every = 0;
  bool verify_unsharded = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      options.dir = argv[i] + 6;
      if (options.dir.empty()) {
        std::fprintf(stderr, "qsteer discover-sharded: --dir requires a value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      if (!ParseIntArg(argv[i] + 9, 1, 4096, &options.num_shards)) {
        std::fprintf(stderr, "qsteer discover-sharded: bad --shards '%s'\n", argv[i] + 9);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      if (!ParseIntArg(argv[i] + 10, -1, 1024, &options.num_workers)) {
        std::fprintf(stderr, "qsteer discover-sharded: bad --workers '%s'\n",
                     argv[i] + 10);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-jobs=", 11) == 0) {
      if (!ParseIntArg(argv[i] + 11, 0, 1000000, &options.max_jobs)) {
        std::fprintf(stderr, "qsteer discover-sharded: bad --max-jobs '%s'\n",
                     argv[i] + 11);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--kill-every=", 13) == 0) {
      // The k-th crash window of a run is reached only after the windows
      // before it executed, and a shard is durable from its post-manifest
      // window (the 4th window a fresh run visits). k >= 4 therefore
      // guarantees every killed run first committed at least one new shard,
      // so the kill/resume loop always terminates.
      if (!ParseIntArg(argv[i] + 13, 4, 1000000, &kill_every)) {
        std::fprintf(stderr,
                     "qsteer discover-sharded: bad --kill-every '%s' (minimum 4: "
                     "smaller values can kill before any shard commits)\n",
                     argv[i] + 13);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      options.resume = true;
    } else if (std::strncmp(argv[i], "--cache-in=", 11) == 0) {
      options.warm_cache_file = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--cache-out=", 12) == 0) {
      options.save_cache_file = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--compile-budget=", 17) == 0) {
      int budget = 0;
      if (!ParseIntArg(argv[i] + 17, 0, 1 << 30, &budget)) {
        std::fprintf(stderr, "qsteer discover-sharded: bad --compile-budget '%s'\n",
                     argv[i] + 17);
        return 2;
      }
      options.fleet_compile_budget = budget;
    } else if (std::strcmp(argv[i], "--rank-candidates") == 0) {
      options.pipeline.rank_candidates = true;
    } else if (std::strncmp(argv[i], "--ranker-in=", 12) == 0) {
      options.ranker_in = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--ranker-out=", 13) == 0) {
      options.ranker_out = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--verify-unsharded") == 0) {
      verify_unsharded = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "qsteer discover-sharded: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2) return Usage();
  if (options.dir.empty()) {
    std::fprintf(stderr, "qsteer discover-sharded: --dir=DIR is required\n");
    return 2;
  }
  if ((!options.ranker_in.empty() || !options.ranker_out.empty()) &&
      !options.pipeline.rank_candidates) {
    std::fprintf(stderr,
                 "qsteer discover-sharded: --ranker-in/--ranker-out require "
                 "--rank-candidates\n");
    return 2;
  }
  int day = 0;
  if (!ParsePositional("day", positional[1], 1, 1000000, &day)) return 2;
  Workload workload(SpecFor(positional[0]));

  if (kill_every > 0) {
    options.crash_hook_for_testing = [kill_every](const DiscoveryCrashPoint& point) {
      DiscoveryCrashDecision decision;
      decision.crash = (point.index + 1) % kill_every == 0;
      return decision;
    };
  }

  DiscoveryResult result;
  int executions = 0;
  while (true) {
    ShardOrchestrator orchestrator(&workload, day, options);
    Result<DiscoveryResult> run = orchestrator.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "qsteer discover-sharded: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run.value());
    ++executions;
    if (result.completed) break;
    std::printf("execution %d killed at window '%s' (shard %d) after %lld windows; "
                "resuming\n",
                executions, result.crash_window.c_str(), result.crash_shard,
                static_cast<long long>(result.counters.crash_windows));
    options.resume = true;
    if (executions >= 100000) {
      std::fprintf(stderr, "qsteer discover-sharded: no progress after %d executions\n",
                   executions);
      return 1;
    }
  }
  std::printf("discovery complete in %d execution(s)\n%s", executions,
              result.counters.ToString().c_str());
  std::printf("merged store: %zu bytes; merged rule-diff table: %zu bytes\n"
              "artifacts in %s (merged_recommendations.qrs, merged_rulediff.txt, "
              "discovery_summary.txt)\n",
              result.merged_store.size(), result.merged_diff_table.size(),
              options.dir.c_str());

  if (verify_unsharded) {
    Result<UnshardedDiscovery> reference = DiscoverUnsharded(&workload, day, options);
    if (!reference.ok()) {
      std::fprintf(stderr, "qsteer discover-sharded: unsharded reference failed: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    bool store_match = reference.value().store == result.merged_store;
    bool table_match = reference.value().diff_table == result.merged_diff_table;
    // A resumed run replays some shards from artifacts without their ranker
    // examples, so only a single-execution run is expected to reproduce the
    // unsharded ranker bytes.
    bool ranker_match = executions > 1 || result.ranker_bytes.empty() ||
                        reference.value().ranker_bytes == result.ranker_bytes;
    if (!store_match || !table_match || !ranker_match) {
      std::fprintf(stderr,
                   "qsteer discover-sharded: MERGE DIVERGED from unsharded run "
                   "(store %s, rule-diff table %s, ranker %s)\n",
                   store_match ? "match" : "MISMATCH",
                   table_match ? "match" : "MISMATCH",
                   ranker_match ? "match" : "MISMATCH");
      return 1;
    }
    std::printf("verify: merged output bit-identical to the unsharded reference "
                "(%lld jobs)\n",
                static_cast<long long>(reference.value().jobs_analyzed));
  }
  return 0;
}

}  // namespace
}  // namespace qsteer

int main(int argc, char** argv) {
  using namespace qsteer;
  if (argc < 2) return Usage();
  std::string command = argv[1];
  int rest_argc = argc - 2;
  char** rest_argv = argv + 2;
  if (command == "rules") return CmdRules(rest_argc, rest_argv);
  if (command == "workload") return CmdWorkload(rest_argc, rest_argv);
  if (command == "compile") return CmdCompile(rest_argc, rest_argv);
  if (command == "span") return CmdSpan(rest_argc, rest_argv);
  if (command == "analyze") return CmdAnalyze(rest_argc, rest_argv);
  if (command == "calibrate") return CmdCalibrate(rest_argc, rest_argv);
  if (command == "serve") return CmdServe(rest_argc, rest_argv);
  if (command == "serve-fleet") return CmdServeFleet(rest_argc, rest_argv);
  if (command == "discover-sharded") return CmdDiscoverSharded(rest_argc, rest_argv);
  return Usage();
}
