#include "optimizer/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"

namespace qsteer {

namespace {

/// Per-compilation state (the "optimize context" of the threading model,
/// DESIGN.md "Threading model"): every mutable structure a compilation
/// touches — memo, derived statistics, extraction caches, the rule-
/// provenance log, and the column-universe overlay — lives here, on the
/// calling thread's stack. Concurrent Optimizer::Compile calls on one
/// `const Optimizer` therefore never share mutable state.
class CompileState {
 public:
  CompileState(const Optimizer& optimizer, const Job& job, const RuleConfig& config,
               const CompileControl& control, CompileSession* session)
      : options_(optimizer.options()),
        config_(config),
        control_(control),
        session_(session),
        registry_(RuleRegistry::Instance()),
        universe_(job.columns),
        est_view_(optimizer.catalog(), &universe_, job.day) {
    ctx_.memo = &memo_;
    ctx_.universe = &universe_;
    if (control_.timeout_s > 0.0) {
      // qsteer-lint: allow(wall-clock) compile deadline; CompileControl documents timeouts as nondeterministic
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(control_.timeout_s));
    }
  }

  Result<CompiledPlan> Run(const Job& job) {
    GroupId root = SeedMemo(job);
    Explore();
    Implement();
    PhysProp any = PhysProp::Any();
    const Winner* winner = OptimizeGroup(root, any);
    if (aborted_) {
      return Status::DeadlineExceeded(control_.cancel != nullptr &&
                                              control_.cancel->cancelled()
                                          ? "compilation cancelled"
                                          : "compile deadline exceeded");
    }
    if (winner == nullptr || !winner->valid) {
      return Status::CompilationFailed(
          "no complete physical plan under this rule configuration");
    }
    CompiledPlan plan;
    plan.est_cost = winner->cost;
    plan.root = ExtractPlan(root, any, &plan.signature);
    for (int rule_id : normalization_rules_used_) plan.signature.Set(rule_id);
    AttributeMarkerRules(plan.root, &plan.signature);
    plan.est_output_rows = GroupStats(root).rows;
    plan.memo_groups = memo_.num_groups();
    plan.memo_exprs = memo_.num_exprs();
    return plan;
  }

 private:
  /// Seeds the memo with the (config-dependently) normalized input plan and
  /// returns the root group. With a session, configurations that share the
  /// normalization projection reuse one cloned snapshot instead of redoing
  /// the normalization walk and memo insertion; results are bit-identical
  /// because Memo::Clone preserves every id assignment.
  GroupId SeedMemo(const Job& job) {
    if (session_ == nullptr) {
      PlanNodePtr normalized = NormalizeInputPlan(job.root);
      return memo_.Insert(normalized);
    }
    const uint64_t key = CompileSession::NormalizationKey(config_);
    if (std::shared_ptr<const CompileSession::SeedMemo> seed = session_->Find(key)) {
      memo_ = seed->memo.Clone();
      normalization_rules_used_ = seed->normalization_rules;
      return seed->root;
    }
    PlanNodePtr normalized = NormalizeInputPlan(job.root);
    GroupId root = memo_.Insert(normalized);
    session_->Store(key, memo_, root, normalization_rules_used_);
    return root;
  }

  // ---------------------------------------------------------------------
  // Compile budget
  // ---------------------------------------------------------------------

  /// Polled between memo operations. The cancellation token is a relaxed
  /// atomic load (checked every call); the wall clock is only consulted
  /// every 64 polls to keep the unbudgeted hot path unchanged.
  bool Aborted() {
    if (aborted_) return true;
    if (control_.Unbounded()) return false;
    if (control_.cancel != nullptr && control_.cancel->cancelled()) {
      return aborted_ = true;
    }
    if (control_.timeout_s > 0.0 && (poll_count_++ & 63) == 0 &&
        // qsteer-lint: allow(wall-clock) deadline poll; only reached when the caller opted into a timeout
        std::chrono::steady_clock::now() >= deadline_) {
      return aborted_ = true;
    }
    return false;
  }

  // ---------------------------------------------------------------------
  // Exploration and implementation
  // ---------------------------------------------------------------------

  // -----------------------------------------------------------------------
  // Input normalization (config-dependent).
  //
  // SCOPE normalizes the script's plan with the enabled rewrite rules
  // before/while seeding the memo, and group logical properties come from
  // the first (normalized) expression. Because the estimator is
  // shape-sensitive (conjunct backoff, stacked selects), configurations
  // that disable normalization rules produce *different estimates* for the
  // same job — the paper §5.3 mechanism that makes estimated costs
  // incomparable across configurations.
  // -----------------------------------------------------------------------

  PlanNodePtr NormalizeInputPlan(const PlanNodePtr& root) {
    std::unordered_map<const PlanNode*, PlanNodePtr> done;
    return NormalizeNode(root, &done);
  }

  /// Output columns of a plan node (memoized).
  const std::vector<ColumnId>& ColsOf(const PlanNodePtr& node) {
    auto it = norm_cols_.find(node.get());
    if (it != norm_cols_.end()) return it->second;
    std::vector<std::vector<ColumnId>> child_cols;
    child_cols.reserve(node->children.size());
    for (const PlanNodePtr& child : node->children) child_cols.push_back(ColsOf(child));
    return norm_cols_.emplace(node.get(), OutputColumns(node->op, child_cols)).first->second;
  }

  static bool BoundByCols(const ExprPtr& e, const std::vector<ColumnId>& cols) {
    return e != nullptr && e->BoundBy(cols);
  }

  /// Normalization-time select pushdown (gated on the pushdown rules being
  /// enabled): determines the *shape the estimator sees*, so disabling these
  /// rules changes estimated properties — not just the search space.
  PlanNodePtr PushSelectDown(const PlanNodePtr& select,
                             std::unordered_map<const PlanNode*, PlanNodePtr>* done) {
    const PlanNodePtr& child = select->children[0];
    std::vector<ExprPtr> conjuncts = SplitConjuncts(select->op.predicate);
    if (conjuncts.empty()) return select;

    auto rebuild_select = [this](ExprPtr pred, PlanNodePtr input) {
      Operator op;
      op.kind = OpKind::kSelect;
      op.predicate = std::move(pred);
      PlanNodePtr node = PlanNode::Make(std::move(op), {std::move(input)});
      // Keep synthetic nodes alive: the normalization cache and column cache
      // are keyed by node address, so recycled addresses would alias.
      norm_keepalive_.push_back(node);
      return node;
    };

    if (child->op.kind == OpKind::kJoin) {
      // Variant-exact gating: single-atom selects are handled by
      // SelectOnJoinLeft/Right (94/96), multi-atom ones by the *2 variants
      // (95/97). Disabling exactly the variant that applies therefore
      // changes the normalized shape — and with it the estimates (§5.3).
      int atoms = select->op.predicate->CountAtoms();
      RuleId left_rule = atoms <= 1 ? 94 : 95;
      RuleId right_rule = atoms <= 1 ? 96 : 97;
      bool left_on = config_.IsEnabled(left_rule);
      bool right_on =
          config_.IsEnabled(right_rule) && child->op.join_type == JoinType::kInner;
      if (!left_on && !right_on) return select;
      std::vector<ExprPtr> to_left, to_right, residual;
      for (const ExprPtr& conj : conjuncts) {
        if (left_on && BoundByCols(conj, ColsOf(child->children[0]))) {
          to_left.push_back(conj);
        } else if (right_on && BoundByCols(conj, ColsOf(child->children[1]))) {
          to_right.push_back(conj);
        } else {
          residual.push_back(conj);
        }
      }
      if (to_left.empty() && to_right.empty()) return select;
      if (!to_left.empty()) normalization_rules_used_.push_back(left_rule);
      if (!to_right.empty()) normalization_rules_used_.push_back(right_rule);
      PlanNodePtr left = child->children[0];
      if (!to_left.empty()) {
        left = NormalizeNode(rebuild_select(MakeConjunction(std::move(to_left)), left), done);
      }
      PlanNodePtr right = child->children[1];
      if (!to_right.empty()) {
        right =
            NormalizeNode(rebuild_select(MakeConjunction(std::move(to_right)), right), done);
      }
      PlanNodePtr join = PlanNode::Make(child->op, {std::move(left), std::move(right)});
      if (residual.empty()) return join;
      return rebuild_select(MakeConjunction(std::move(residual)), std::move(join));
    }

    if (child->op.kind == OpKind::kUnionAll) {
      // Variant by branch count: SelectOnUnionAll covers 2-5 branches,
      // SelectOnUnionAll2 covers 6+.
      RuleId union_rule = child->children.size() <= 5 ? 99 : 100;
      if (!config_.IsEnabled(union_rule)) return select;
      for (const PlanNodePtr& branch : child->children) {
        if (!BoundByCols(select->op.predicate, ColsOf(branch))) return select;
      }
      normalization_rules_used_.push_back(union_rule);
      std::vector<PlanNodePtr> branches;
      for (const PlanNodePtr& branch : child->children) {
        branches.push_back(NormalizeNode(rebuild_select(select->op.predicate, branch), done));
      }
      return PlanNode::Make(child->op, std::move(branches));
    }

    if (child->op.kind == OpKind::kProject) {
      RuleId project_rule =
          select->op.predicate->CountAtoms() <= 1 ? rules::kSelectOnProject : 89;
      if (!config_.IsEnabled(project_rule)) return select;
      if (!BoundByCols(select->op.predicate, ColsOf(child->children[0]))) return select;
      normalization_rules_used_.push_back(project_rule);
      PlanNodePtr pushed =
          NormalizeNode(rebuild_select(select->op.predicate, child->children[0]), done);
      return PlanNode::Make(child->op, {std::move(pushed)});
    }
    return select;
  }

  PlanNodePtr NormalizeNode(const PlanNodePtr& node,
                            std::unordered_map<const PlanNode*, PlanNodePtr>* done) {
    auto it = done->find(node.get());
    if (it != done->end()) return it->second;
    std::vector<PlanNodePtr> children;
    children.reserve(node->children.size());
    bool changed = false;
    for (const PlanNodePtr& child : node->children) {
      PlanNodePtr normalized = NormalizeNode(child, done);
      changed |= normalized != child;
      children.push_back(std::move(normalized));
    }
    PlanNodePtr out = changed ? PlanNode::Make(node->op, children) : node;

    if (out->op.kind == OpKind::kSelect) {
      // SelectOnTrue: drop trivially-true selects.
      if (config_.IsEnabled(rules::kSelectOnTrue) &&
          (out->op.predicate == nullptr || out->op.predicate->kind() == ExprKind::kTrue)) {
        normalization_rules_used_.push_back(rules::kSelectOnTrue);
        out = out->children[0];
      } else if (config_.IsEnabled(rules::kCollapseSelects) &&
                 out->children[0]->op.kind == OpKind::kSelect) {
        // CollapseSelects: merge stacked selects into one conjunction. The
        // combined predicate estimates with exponential backoff, unlike the
        // stack's independent product.
        std::vector<ExprPtr> conjuncts = SplitConjuncts(out->op.predicate);
        std::vector<ExprPtr> inner = SplitConjuncts(out->children[0]->op.predicate);
        conjuncts.insert(conjuncts.end(), inner.begin(), inner.end());
        Operator merged;
        merged.kind = OpKind::kSelect;
        merged.predicate = MakeConjunction(std::move(conjuncts));
        normalization_rules_used_.push_back(rules::kCollapseSelects);
        out = PlanNode::Make(std::move(merged), {out->children[0]->children[0]});
        norm_keepalive_.push_back(out);
        // Collapsing can expose a deeper stack; renormalize this node.
        return (*done)[node.get()] = NormalizeNode(out, done);
      } else if (out->children[0]->op.kind == OpKind::kJoin ||
                 out->children[0]->op.kind == OpKind::kUnionAll ||
                 out->children[0]->op.kind == OpKind::kProject) {
        PlanNodePtr pushed = PushSelectDown(out, done);
        if (pushed != out) {
          return (*done)[node.get()] = pushed;
        }
        // Fall through to predicate normalization on the unpushed select.
        if (config_.IsEnabled(rules::kSelectPredNormalized)) {
          std::vector<ExprPtr> conjuncts = SplitConjuncts(out->op.predicate);
          if (conjuncts.size() >= 2) {
            std::vector<ExprPtr> sorted = conjuncts;
            std::sort(sorted.begin(), sorted.end(), [](const ExprPtr& a, const ExprPtr& b) {
              return a->Hash(true) < b->Hash(true);
            });
            if (sorted != conjuncts) {
              Operator normalized_op;
              normalized_op.kind = OpKind::kSelect;
              normalized_op.predicate = Expr::And(std::move(sorted));
              normalization_rules_used_.push_back(rules::kSelectPredNormalized);
              out = PlanNode::Make(std::move(normalized_op), {out->children[0]});
            }
          }
        }
      } else if (config_.IsEnabled(rules::kSelectPredNormalized)) {
        // SelectPredNormalized: canonical conjunct order (changes which
        // conjuncts the estimator's backoff dampens).
        std::vector<ExprPtr> conjuncts = SplitConjuncts(out->op.predicate);
        if (conjuncts.size() >= 2) {
          std::vector<ExprPtr> sorted = conjuncts;
          std::sort(sorted.begin(), sorted.end(), [](const ExprPtr& a, const ExprPtr& b) {
            return a->Hash(true) < b->Hash(true);
          });
          if (sorted != conjuncts) {
            Operator normalized_op;
            normalized_op.kind = OpKind::kSelect;
            normalized_op.predicate = Expr::And(std::move(sorted));
            normalization_rules_used_.push_back(rules::kSelectPredNormalized);
            out = PlanNode::Make(std::move(normalized_op), {out->children[0]});
          }
        }
      }
    } else if (out->op.kind == OpKind::kUnionAll && config_.IsEnabled(123)) {
      // UnionAllFlatten.
      std::vector<PlanNodePtr> flat;
      bool flattened = false;
      for (const PlanNodePtr& child : out->children) {
        if (child->op.kind == OpKind::kUnionAll) {
          flat.insert(flat.end(), child->children.begin(), child->children.end());
          flattened = true;
        } else {
          flat.push_back(child);
        }
      }
      if (flattened) {
        normalization_rules_used_.push_back(123);
        out = PlanNode::Make(out->op, std::move(flat));
      }
    } else if (out->op.kind == OpKind::kGroupBy && config_.IsEnabled(120)) {
      // NormalizeReduce: dedup + sort grouping keys.
      std::vector<ColumnId> keys = out->op.group_keys;
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      if (keys != out->op.group_keys) {
        Operator normalized_op = out->op;
        normalized_op.group_keys = std::move(keys);
        normalization_rules_used_.push_back(120);
        out = PlanNode::Make(std::move(normalized_op), out->children);
      }
    }
    (*done)[node.get()] = out;
    return out;
  }

  void Explore() {
    std::vector<OpTree> proposals;
    // Iterating by ascending ExprId covers expressions added mid-loop, so a
    // single sweep reaches the rewrite fixpoint up to the budgets.
    for (ExprId id = 0; id < memo_.num_exprs(); ++id) {
      if (Aborted()) return;
      if (memo_.num_exprs() >= options_.max_total_exprs) break;
      if (!memo_.expr(id).is_logical) continue;
      for (const Rule* rule : registry_.transformation_rules()) {
        if (!config_.IsEnabled(rule->id())) continue;
        const GroupExpr& expr = memo_.expr(id);  // re-fetch: vector may grow
        GroupId target = expr.group;
        if (static_cast<int>(memo_.group(target).exprs.size()) >=
            options_.max_exprs_per_group) {
          break;
        }
        proposals.clear();
        rule->Apply(ctx_, expr, &proposals);
        for (OpTree& tree : proposals) {
          Materialize(tree, target, rule->id(), id);
          if (memo_.num_exprs() >= options_.max_total_exprs) return;
        }
      }
    }
  }

  void Implement() {
    int logical_count = memo_.num_exprs();  // snapshot: impls add physical only
    std::vector<OpTree> proposals;
    for (ExprId id = 0; id < logical_count; ++id) {
      if (Aborted()) return;
      if (!memo_.expr(id).is_logical) continue;
      for (const Rule* rule : registry_.implementation_rules()) {
        if (!config_.IsEnabled(rule->id())) continue;
        const GroupExpr& expr = memo_.expr(id);
        proposals.clear();
        rule->Apply(ctx_, expr, &proposals);
        for (OpTree& tree : proposals) {
          Materialize(tree, expr.group, rule->id(), id, /*enforce_cap=*/false);
        }
      }
    }
  }

  /// Materializes a rule output into the memo. Internal nodes land in fresh
  /// groups; the root is added to `target_group`. A leaf at the root aliases
  /// the leaf group's logical expressions into the target group (group
  /// equivalence without full merging).
  void Materialize(const OpTree& tree, GroupId target_group, int rule_id, ExprId source,
                   bool enforce_cap = true) {
    if (tree.is_leaf) {
      const Group& leaf = memo_.group(tree.leaf_group);
      int copied = 0;
      std::vector<ExprId> to_copy = leaf.exprs;  // snapshot: AddExpr mutates
      for (ExprId eid : to_copy) {
        if (copied >= options_.max_group_alias_copies) break;
        const GroupExpr e = memo_.expr(eid);  // copy: vector may reallocate
        if (!e.is_logical) continue;
        if (static_cast<int>(memo_.group(target_group).exprs.size()) >=
            options_.max_exprs_per_group) {
          break;
        }
        memo_.AddExpr(e.op, e.children, target_group, rule_id, source, e.op_hash);
        ++copied;
      }
      return;
    }
    ChildVec children;
    children.reserve(tree.children.size());
    for (const OpTree& child : tree.children) {
      children.push_back(MaterializeChild(child, rule_id, source));
    }
    // The exploration budget only limits *logical* alternatives; every
    // enabled implementation must be able to land, or groups saturated by
    // rewrites could never get a physical plan.
    if (enforce_cap && static_cast<int>(memo_.group(target_group).exprs.size()) >=
                           options_.max_exprs_per_group) {
      return;
    }
    memo_.AddExpr(tree.op, std::move(children), target_group, rule_id, source);
  }

  GroupId MaterializeChild(const OpTree& tree, int rule_id, ExprId source) {
    if (tree.is_leaf) return tree.leaf_group;
    ChildVec children;
    children.reserve(tree.children.size());
    for (const OpTree& child : tree.children) {
      children.push_back(MaterializeChild(child, rule_id, source));
    }
    ExprId id = memo_.AddExpr(tree.op, std::move(children), kInvalidGroup, rule_id, source);
    return memo_.expr(id).group;
  }

  // ---------------------------------------------------------------------
  // Logical statistics (estimated view, representative expression)
  // ---------------------------------------------------------------------

  const LogicalStats& GroupStats(GroupId gid) {
    Group& group = memo_.group(gid);
    auto it = stats_.find(gid);
    if (it != stats_.end()) return it->second;
    ExprId repr = group.representative;
    LogicalStats stats;
    if (repr != kInvalidExpr) {
      const GroupExpr& expr = memo_.expr(repr);
      std::vector<const LogicalStats*> child_stats;
      child_stats.reserve(expr.children.size());
      for (GroupId c : expr.children) child_stats.push_back(&GroupStats(c));
      stats = DeriveStats(expr.op, child_stats, est_view_);
    }
    group.est_rows = stats.rows;
    group.est_width = stats.width;
    group.stats_derived = true;
    return stats_.emplace(gid, std::move(stats)).first->second;
  }

  // ---------------------------------------------------------------------
  // Cost-based optimization with property enforcement
  // ---------------------------------------------------------------------

  /// DOP candidates for an operator processing ~`bytes` of data.
  std::vector<int> DopCandidates(double bytes, int required_dop, int natural = 0) const {
    if (required_dop > 0) return {required_dop};
    int work = static_cast<int>(
        std::clamp(bytes / options_.bytes_per_vertex, 1.0,
                   static_cast<double>(options_.max_dop)));
    std::vector<int> out = {work};
    int doubled = std::min(work * 2, options_.max_dop);
    if (doubled != work) out.push_back(doubled);
    if (natural > 0 && natural != work && natural != doubled &&
        natural <= options_.max_dop) {
      out.push_back(natural);
    }
    return out;
  }

  /// True when the property request can be delegated through a pipelined
  /// operator to a child with these output columns.
  static bool RequestCoveredBy(const PhysProp& req, const std::vector<ColumnId>& cols) {
    for (ColumnId c : req.part_keys) {
      if (!std::binary_search(cols.begin(), cols.end(), c)) return false;
    }
    for (ColumnId c : req.sort_keys) {
      if (!std::binary_search(cols.begin(), cols.end(), c)) return false;
    }
    return true;
  }

  /// Adds exchange/sort enforcers so `delivered` satisfies `required`.
  /// Returns the added cost; appends enforcer operators bottom-up.
  double ApplyEnforcers(const PhysProp& required, const LogicalStats& stats,
                        PhysProp* delivered, std::vector<Operator>* enforcers) {
    double extra = 0.0;
    std::vector<const LogicalStats*> child_stats = {&stats};
    if (!required.SatisfiedBy(*delivered)) {
      PhysProp target = *delivered;
      Operator exchange;
      exchange.kind = OpKind::kExchange;
      bool need_exchange = false;
      switch (required.scheme) {
        case PartScheme::kHash:
          if (delivered->scheme != PartScheme::kHash ||
              delivered->part_keys != required.part_keys ||
              (required.dop != 0 && delivered->dop != required.dop)) {
            exchange.exchange = ExchangeKind::kRepartition;
            exchange.exchange_keys = required.part_keys;
            exchange.dop = required.dop > 0 ? required.dop : std::max(1, delivered->dop);
            target.scheme = PartScheme::kHash;
            target.part_keys = required.part_keys;
            target.dop = exchange.dop;
            target.sort_keys.clear();  // repartition destroys order
            need_exchange = true;
          }
          break;
        case PartScheme::kSingleton:
          if (delivered->scheme != PartScheme::kSingleton) {
            exchange.exchange = ExchangeKind::kGather;
            exchange.dop = 1;
            target.scheme = PartScheme::kSingleton;
            target.part_keys.clear();
            target.dop = 1;
            // Merging gather preserves an existing order.
            need_exchange = true;
          }
          break;
        case PartScheme::kBroadcast:
          if (delivered->scheme != PartScheme::kBroadcast ||
              (required.dop != 0 && delivered->dop != required.dop)) {
            exchange.exchange = ExchangeKind::kBroadcast;
            exchange.dop = required.dop > 0 ? required.dop : std::max(1, delivered->dop);
            target.scheme = PartScheme::kBroadcast;
            target.part_keys.clear();
            target.dop = exchange.dop;
            need_exchange = true;
          }
          break;
        case PartScheme::kAny:
        case PartScheme::kRandom:
          break;
      }
      if (need_exchange) {
        OpCost cost =
            ComputeOpCost(exchange, stats, child_stats, exchange.dop, options_.cost_params,
                          est_view_);
        extra += cost.latency;
        enforcers->push_back(std::move(exchange));
        *delivered = target;
      }
    }
    if (!required.SortSatisfiedBy(*delivered)) {
      Operator sort;
      sort.kind = OpKind::kSort;
      sort.sort_keys = required.sort_keys;
      sort.dop = std::max(1, delivered->dop);
      OpCost cost =
          ComputeOpCost(sort, stats, child_stats, sort.dop, options_.cost_params, est_view_);
      extra += cost.latency;
      enforcers->push_back(std::move(sort));
      delivered->sort_keys = required.sort_keys;
    }
    return extra;
  }

  struct Option {
    std::vector<PhysProp> child_requests;
    PhysProp delivered;
    int dop = 1;
    /// Pipelined: delivered/dop follow the first child's winner.
    bool inherit_from_child = false;
    /// Strip sort from the inherited delivered property.
    bool clears_sort = false;
  };

  /// Enumerates implementation options (child property requests + delivered
  /// property) for a physical expression under a required property.
  void EnumerateOptions(const GroupExpr& expr, const PhysProp& required,
                        std::vector<Option>* out) {
    const Operator& op = expr.op;
    const LogicalStats& stats = GroupStats(expr.group);
    switch (op.kind) {
      case OpKind::kRangeScan: {
        double bytes = stats.Bytes();
        for (int dop : DopCandidates(bytes, 0)) {
          Option o;
          o.delivered.scheme = PartScheme::kRandom;
          o.delivered.dop = dop;
          o.dop = dop;
          out->push_back(std::move(o));
        }
        break;
      }
      case OpKind::kFilter:
      case OpKind::kCompute:
      case OpKind::kProcessVertex:
      case OpKind::kSampleScan: {
        Option o;
        o.inherit_from_child = true;
        const std::vector<ColumnId>& child_cols =
            memo_.group(expr.children[0]).output_columns;
        o.child_requests.push_back(RequestCoveredBy(required, child_cols) ? required
                                                                          : PhysProp::Any());
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kPreHashAgg: {
        Option o;
        o.inherit_from_child = true;
        o.clears_sort = true;
        PhysProp down = required;
        down.sort_keys.clear();
        const std::vector<ColumnId>& child_cols =
            memo_.group(expr.children[0]).output_columns;
        o.child_requests.push_back(RequestCoveredBy(down, child_cols) ? down
                                                                      : PhysProp::Any());
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kTopNSort:
      case OpKind::kTopNHeap: {
        Option o;
        o.child_requests.push_back(PhysProp::Singleton());
        o.delivered = PhysProp::Singleton();
        if (op.kind == OpKind::kTopNSort) o.delivered.sort_keys = op.sort_keys;
        o.dop = 1;
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kHashJoin: {
        const LogicalStats& left = GroupStats(expr.children[0]);
        const LogicalStats& right = GroupStats(expr.children[1]);
        double bytes = left.Bytes() + right.Bytes();
        int req_dop = (required.scheme == PartScheme::kHash &&
                       required.part_keys == op.left_keys)
                          ? required.dop
                          : 0;
        for (int dop : DopCandidates(bytes, req_dop)) {
          Option o;
          o.child_requests.push_back(PhysProp::Hash(op.left_keys, dop));
          o.child_requests.push_back(PhysProp::Hash(op.right_keys, dop));
          o.delivered = PhysProp::Hash(op.left_keys, dop);
          o.dop = dop;
          out->push_back(std::move(o));
        }
        break;
      }
      case OpKind::kBroadcastHashJoin: {
        // Probe keeps its own distribution; the build side is broadcast to
        // the probe's parallelism. The probe's dop is resolved by a
        // two-phase walk in OptimizeGroup (kResolveBroadcast marker below).
        Option o;
        o.inherit_from_child = true;  // probe is child 0 in cost and plan
        o.clears_sort = true;
        o.child_requests.push_back(PhysProp::Any());
        o.child_requests.push_back(PhysProp::Broadcast(0));  // dop patched later
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kMergeJoin: {
        const LogicalStats& left = GroupStats(expr.children[0]);
        const LogicalStats& right = GroupStats(expr.children[1]);
        double bytes = left.Bytes() + right.Bytes();
        int req_dop = (required.scheme == PartScheme::kHash &&
                       required.part_keys == op.left_keys)
                          ? required.dop
                          : 0;
        for (int dop : DopCandidates(bytes, req_dop)) {
          Option o;
          PhysProp l = PhysProp::Hash(op.left_keys, dop);
          l.sort_keys = op.left_keys;
          PhysProp r = PhysProp::Hash(op.right_keys, dop);
          r.sort_keys = op.right_keys;
          o.child_requests = {std::move(l), std::move(r)};
          o.delivered = PhysProp::Hash(op.left_keys, dop);
          o.delivered.sort_keys = op.left_keys;
          o.dop = dop;
          out->push_back(std::move(o));
        }
        break;
      }
      case OpKind::kLoopJoin: {
        Option o;
        o.child_requests = {PhysProp::Singleton(), PhysProp::Singleton()};
        o.delivered = PhysProp::Singleton();
        o.dop = 1;
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kIndexApplyJoin: {
        Option o;
        o.inherit_from_child = true;
        o.clears_sort = true;
        o.child_requests.push_back(PhysProp::Any());
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kHashAgg:
      case OpKind::kStreamAgg: {
        const LogicalStats& child = GroupStats(expr.children[0]);
        if (op.group_keys.empty()) {
          Option o;
          PhysProp req = PhysProp::Singleton();
          if (op.kind == OpKind::kStreamAgg) req.sort_keys = op.group_keys;
          o.child_requests.push_back(std::move(req));
          o.delivered = PhysProp::Singleton();
          o.dop = 1;
          out->push_back(std::move(o));
          break;
        }
        int req_dop = (required.scheme == PartScheme::kHash &&
                       required.part_keys == op.group_keys)
                          ? required.dop
                          : 0;
        for (int dop : DopCandidates(child.Bytes(), req_dop)) {
          Option o;
          PhysProp req = PhysProp::Hash(op.group_keys, dop);
          if (op.kind == OpKind::kStreamAgg) req.sort_keys = op.group_keys;
          o.child_requests.push_back(std::move(req));
          o.delivered = PhysProp::Hash(op.group_keys, dop);
          if (op.kind == OpKind::kStreamAgg) o.delivered.sort_keys = op.group_keys;
          o.dop = dop;
          out->push_back(std::move(o));
        }
        break;
      }
      case OpKind::kPhysicalUnionAll: {
        const LogicalStats& stats_out = GroupStats(expr.group);
        for (int dop : DopCandidates(stats_out.Bytes(), 0)) {
          Option o;
          o.child_requests.assign(expr.children.size(), PhysProp::Any());
          o.delivered.scheme = PartScheme::kRandom;
          o.delivered.dop = dop;
          o.dop = dop;
          out->push_back(std::move(o));
        }
        break;
      }
      case OpKind::kVirtualDataset: {
        Option o;
        o.child_requests.assign(expr.children.size(), PhysProp::Any());
        o.delivered.scheme = PartScheme::kRandom;
        o.delivered.dop = 0;  // resolved to the sum of child dops
        o.dop = 0;
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kSortedUnionAll: {
        Option o;
        o.child_requests.assign(expr.children.size(), PhysProp::Singleton());
        o.delivered = PhysProp::Singleton();
        o.dop = 1;
        out->push_back(std::move(o));
        break;
      }
      case OpKind::kWindowSegment: {
        const LogicalStats& child = GroupStats(expr.children[0]);
        for (int dop : DopCandidates(child.Bytes(), 0)) {
          Option o;
          PhysProp req = PhysProp::Hash(op.window_keys, dop);
          req.sort_keys = op.window_keys;
          o.child_requests.push_back(std::move(req));
          o.delivered = PhysProp::Hash(op.window_keys, dop);
          o.delivered.sort_keys = op.window_keys;
          o.dop = dop;
          out->push_back(std::move(o));
        }
        break;
      }
      case OpKind::kOutputWriter: {
        Option o;
        o.inherit_from_child = true;
        o.child_requests.push_back(PhysProp::Any());
        out->push_back(std::move(o));
        break;
      }
      default:
        break;
    }
  }

  const Winner* OptimizeGroup(GroupId gid, const PhysProp& required) {
    if (Aborted()) return nullptr;
    Group& group = memo_.group(gid);
    uint64_t key = required.Key();
    auto it = group.winners.find(key);
    if (it != group.winners.end()) return &it->second;
    // Insert an invalid placeholder to terminate accidental recursion.
    group.winners.emplace(key, Winner{});

    Winner best;
    const LogicalStats& stats = GroupStats(gid);

    // Iterate over a copy: optimizing children can grow the expr vector and
    // invalidate references, but never adds exprs to *this* group.
    std::vector<ExprId> exprs = group.exprs;
    std::vector<Option> opts;
    for (ExprId eid : exprs) {
      const GroupExpr& expr = memo_.expr(eid);
      if (expr.is_logical) continue;
      opts.clear();
      EnumerateOptions(expr, required, &opts);
      for (Option& opt : opts) {
        // Defensive: an option must request exactly one property per child.
        if (opt.child_requests.size() != expr.children.size()) continue;
        double cost = 0.0;
        std::vector<PhysProp> child_reqs = opt.child_requests;
        std::vector<const LogicalStats*> child_stats;
        bool feasible = true;

        // Two-phase resolution for broadcast joins: probe first, then the
        // build side at the probe's parallelism.
        if (expr.op.kind == OpKind::kBroadcastHashJoin) {
          const Winner* probe = OptimizeGroup(expr.children[0], child_reqs[0]);
          if (probe == nullptr || !probe->valid) continue;
          int probe_dop = std::max(1, probe->delivered.dop);
          child_reqs[1].dop = probe_dop;
          const Winner* build = OptimizeGroup(expr.children[1], child_reqs[1]);
          if (build == nullptr || !build->valid) continue;
          cost = probe->cost + build->cost;
          child_stats = {&GroupStats(expr.children[0]), &GroupStats(expr.children[1])};
          opt.delivered = probe->delivered;
          opt.delivered.sort_keys.clear();
          opt.dop = probe_dop;
        } else {
          for (size_t i = 0; i < expr.children.size(); ++i) {
            const Winner* child = OptimizeGroup(expr.children[i], child_reqs[i]);
            if (child == nullptr || !child->valid) {
              feasible = false;
              break;
            }
            cost += child->cost;
            child_stats.push_back(&GroupStats(expr.children[i]));
            if (i == 0 && opt.inherit_from_child) {
              opt.delivered = child->delivered;
              if (opt.clears_sort) opt.delivered.sort_keys.clear();
              opt.dop = std::max(1, child->delivered.dop);
            }
          }
          if (!feasible) continue;
          if (expr.op.kind == OpKind::kVirtualDataset) {
            // Delivered parallelism is the union of all source partitions.
            int total = 0;
            for (size_t i = 0; i < expr.children.size(); ++i) {
              const Winner* child = OptimizeGroup(expr.children[i], child_reqs[i]);
              total += std::max(1, child->delivered.dop);
            }
            opt.delivered.dop = std::min(total, options_.max_dop * 2);
            opt.dop = opt.delivered.dop;
          }
        }

        OpCost local = ComputeOpCost(expr.op, stats, child_stats, std::max(1, opt.dop),
                                     options_.cost_params, est_view_);
        cost += local.latency;

        PhysProp delivered = opt.delivered;
        std::vector<Operator> enforcers;
        cost += ApplyEnforcers(required, stats, &delivered, &enforcers);
        if (!required.SatisfiedBy(delivered)) continue;  // unsatisfiable request

        if (!best.valid || cost < best.cost) {
          best.valid = true;
          best.cost = cost;
          best.expr = eid;
          best.dop = std::max(1, opt.dop);
          best.child_requests = std::move(child_reqs);
          best.delivered = delivered;
          best.enforcers = std::move(enforcers);
        }
      }
    }

    Group& group_again = memo_.group(gid);
    group_again.winners[key] = std::move(best);
    return &group_again.winners[key];
  }

  // ---------------------------------------------------------------------
  // Plan extraction + signature logging
  // ---------------------------------------------------------------------

  PlanNodePtr ExtractPlan(GroupId gid, const PhysProp& required, RuleSignature* signature) {
    uint64_t cache_key = HashCombine(static_cast<uint64_t>(gid), required.Key());
    auto cached = extraction_cache_.find(cache_key);
    if (cached != extraction_cache_.end()) return cached->second;

    const Group& group = memo_.group(gid);
    auto wit = group.winners.find(required.Key());
    if (wit == group.winners.end() || !wit->second.valid) return nullptr;
    const Winner& winner = wit->second;
    const GroupExpr& expr = memo_.expr(winner.expr);

    // Provenance: the implementation rule + the rewrite lineage of the
    // logical expression it implemented.
    std::vector<int> rule_ids;
    memo_.CollectProvenance(winner.expr, &rule_ids);
    for (int id : rule_ids) signature->Set(id);

    std::vector<PlanNodePtr> children;
    children.reserve(expr.children.size());
    for (size_t i = 0; i < expr.children.size(); ++i) {
      PlanNodePtr child = ExtractPlan(expr.children[i], winner.child_requests[i], signature);
      if (child == nullptr) return nullptr;
      children.push_back(std::move(child));
    }
    Operator op = expr.op;
    op.dop = winner.dop;
    PlanNodePtr node = PlanNode::Make(std::move(op), std::move(children));

    for (const Operator& enforcer : winner.enforcers) {
      if (enforcer.kind == OpKind::kExchange) {
        switch (enforcer.exchange) {
          case ExchangeKind::kRepartition:
            signature->Set(rules::kEnforceExchange);
            break;
          case ExchangeKind::kGather:
            signature->Set(rules::kEnforceGather);
            break;
          case ExchangeKind::kBroadcast:
            signature->Set(rules::kEnforceBroadcast);
            break;
        }
      } else {
        signature->Set(rules::kEnforceSort);
      }
      node = PlanNode::Make(enforcer, {std::move(node)});
    }
    extraction_cache_[cache_key] = node;
    return node;
  }

  const OptimizerOptions& options_;
  const RuleConfig& config_;
  const CompileControl& control_;
  CompileSession* session_ = nullptr;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t poll_count_ = 0;
  bool aborted_ = false;
  const RuleRegistry& registry_;
  Memo memo_;
  /// Copy-on-write overlay over the job's (immutable, shared) root universe:
  /// rule-minted columns land here, so concurrent compilations of the same
  /// job never write to shared column state and each (job, config) compile
  /// mints identical ids regardless of what else runs. Declared before
  /// est_view_, which captures its address.
  ColumnUniverse universe_;
  EstimatedStatsView est_view_;
  RuleContext ctx_;
  std::unordered_map<GroupId, LogicalStats> stats_;
  std::unordered_map<uint64_t, PlanNodePtr> extraction_cache_;
  std::vector<int> normalization_rules_used_;
  std::unordered_map<const PlanNode*, std::vector<ColumnId>> norm_cols_;
  /// Synthetic normalization nodes pinned so address-keyed caches stay valid.
  std::vector<PlanNodePtr> norm_keepalive_;
};

}  // namespace

uint64_t CompileSession::NormalizationKey(const RuleConfig& config) {
  // Exactly the rules CompileState's input normalization consults
  // (PushSelectDown / NormalizeNode): select pushdown variants, select
  // collapsing/true-elimination, predicate normalization, UnionAll
  // flattening and GroupBy reduce-normalization. Keep in sync.
  static const BitVector256 kNormalizationRules = BitVector256::FromIndices(
      {rules::kCollapseSelects, rules::kSelectOnTrue, rules::kSelectPredNormalized,
       rules::kSelectOnProject, 89, 94, 95, 96, 97, 99, 100, 120, 123});
  return config.bits().And(kNormalizationRules).Hash();
}

std::shared_ptr<const CompileSession::SeedMemo> CompileSession::Find(uint64_t key) const {
  MutexLock lock(mu_);
  auto it = seeds_.find(key);
  if (it == seeds_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void CompileSession::Store(uint64_t key, const Memo& memo, GroupId root,
                           const std::vector<int>& normalization_rules) {
  auto seed = std::make_shared<SeedMemo>();
  seed->memo = memo.Clone();
  seed->root = root;
  seed->normalization_rules = normalization_rules;
  MutexLock lock(mu_);
  // First writer wins; a concurrent writer computed an identical seed.
  seeds_.emplace(key, std::move(seed));
}

RuleConfig ProductionConfig(const Job& job) {
  RuleConfig config = RuleConfig::Default();
  for (int id : job.customer_hints) config.Enable(id);
  return config;
}

Optimizer::Optimizer(const Catalog* catalog, OptimizerOptions options)
    : catalog_(catalog), options_(options) {}

Result<CompiledPlan> Optimizer::Compile(const Job& job, const RuleConfig& config) const {
  return Compile(job, config, CompileControl{});
}

Result<CompiledPlan> Optimizer::Compile(const Job& job, const RuleConfig& config,
                                        const CompileControl& control) const {
  return Compile(job, config, control, /*session=*/nullptr);
}

Result<CompiledPlan> Optimizer::Compile(const Job& job, const RuleConfig& config,
                                        const CompileControl& control,
                                        CompileSession* session) const {
  if (job.root == nullptr || job.root->op.kind != OpKind::kOutput) {
    return Status::InvalidArgument("job root must be an Output operator");
  }
  CompileState state(*this, job, config, control, session);
  return state.Run(job);
}

}  // namespace qsteer
