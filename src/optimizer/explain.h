// EXPLAIN-style rendering of compiled plans: per-operator estimated rows,
// cost decomposition, delivered parallelism, and (optionally) the true rows
// the simulator would see — a side-by-side view of the estimation gap that
// drives the steering opportunities.
#ifndef QSTEER_OPTIMIZER_EXPLAIN_H_
#define QSTEER_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "optimizer/optimizer.h"

namespace qsteer {

struct ExplainOptions {
  /// Also derive and print the simulator's true cardinalities next to the
  /// optimizer's estimates.
  bool show_true_rows = true;
  /// Print the rule signature after the tree.
  bool show_signature = true;
};

/// Renders a compiled physical plan with per-node statistics.
std::string ExplainPlan(const Catalog& catalog, const Job& job, const CompiledPlan& plan,
                        const ExplainOptions& options = {});

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_EXPLAIN_H_
