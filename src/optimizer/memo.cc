#include "optimizer/memo.h"

#include "common/hash.h"

namespace qsteer {

uint64_t Memo::ExprKey(uint64_t op_hash, const ChildVec& children) {
  // Position-dependent mix (common/hash.h): each child id is pre-mixed with
  // its position before the order-sensitive combine, so permuted children of
  // commutative operators — join(a,b) vs join(b,a) — can never share a key.
  return HashRange(children.begin(), children.end(), op_hash);
}

GroupId Memo::Insert(const PlanNodePtr& root) {
  if (exprs_.capacity() == 0) {
    // One up-front reservation replaces the first several vector growths and
    // dedup-table rehashes of a compile; typical exploration lands in the
    // low hundreds of expressions.
    exprs_.reserve(256);
    groups_.reserve(160);
    dedup_.reserve(512);
  }
  std::unordered_map<const PlanNode*, GroupId> visited;
  visited.reserve(64);
  return InsertNode(root.get(), &visited);
}

GroupId Memo::InsertNode(const PlanNode* node,
                         std::unordered_map<const PlanNode*, GroupId>* visited) {
  auto it = visited->find(node);
  if (it != visited->end()) return it->second;
  ChildVec children;
  children.reserve(node->children.size());
  for (const PlanNodePtr& child : node->children) {
    children.push_back(InsertNode(child.get(), visited));
  }
  ExprId expr_id = AddExpr(node->op, std::move(children), kInvalidGroup, /*rule_id=*/-1,
                           /*source_expr=*/kInvalidExpr);
  GroupId group_id = exprs_[static_cast<size_t>(expr_id)].group;
  (*visited)[node] = group_id;
  return group_id;
}

ExprId Memo::AddExpr(Operator op, ChildVec children, GroupId target_group, int rule_id,
                     ExprId source_expr, uint64_t op_hash) {
  if (op_hash == kNoOpHash) op_hash = op.Hash(/*for_template=*/false);
  uint64_t key = ExprKey(op_hash, children);
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    // Verify it's a true duplicate, not a hash collision. The stored op_hash
    // makes this probe allocation- and rehash-free.
    const GroupExpr& existing = exprs_[static_cast<size_t>(it->second)];
    if (existing.op_hash == op_hash && existing.children == children) {
      return it->second;
    }
  }

  GroupExpr expr;
  expr.is_logical = op.IsLogical();
  expr.op = std::move(op);
  expr.children = std::move(children);
  expr.op_hash = op_hash;
  expr.rule_id = rule_id;
  expr.source_expr = source_expr;

  if (target_group == kInvalidGroup) {
    target_group = static_cast<GroupId>(groups_.size());
    groups_.emplace_back();
    std::vector<std::vector<ColumnId>> child_outputs;
    child_outputs.reserve(expr.children.size());
    for (GroupId c : expr.children) {
      child_outputs.push_back(groups_[static_cast<size_t>(c)].output_columns);
    }
    groups_.back().output_columns = OutputColumns(expr.op, child_outputs);
  }
  expr.group = target_group;

  ExprId id = static_cast<ExprId>(exprs_.size());
  exprs_.push_back(std::move(expr));
  Group& grp = groups_[static_cast<size_t>(target_group)];
  grp.exprs.push_back(id);
  if (grp.representative == kInvalidExpr && exprs_.back().is_logical) {
    grp.representative = id;
  }
  dedup_[key] = id;
  return id;
}

void Memo::CollectProvenance(ExprId id, std::vector<int>* rule_ids) const {
  while (id != kInvalidExpr) {
    const GroupExpr& e = exprs_[static_cast<size_t>(id)];
    if (e.rule_id >= 0) rule_ids->push_back(e.rule_id);
    id = e.source_expr;
  }
}

Memo Memo::Clone() const {
  Memo copy;
  copy.groups_ = groups_;
  copy.exprs_ = exprs_;
  copy.dedup_ = dedup_;
  return copy;
}

}  // namespace qsteer
