#include "optimizer/memo.h"

#include "common/hash.h"

namespace qsteer {

uint64_t Memo::ExprKey(const Operator& op, const std::vector<GroupId>& children) const {
  uint64_t h = op.Hash(/*for_template=*/false);
  for (GroupId c : children) h = HashCombine(h, static_cast<uint64_t>(c) + 0x9999);
  return h;
}

GroupId Memo::Insert(const PlanNodePtr& root) {
  std::unordered_map<const PlanNode*, GroupId> visited;
  return InsertNode(root.get(), &visited);
}

GroupId Memo::InsertNode(const PlanNode* node,
                         std::unordered_map<const PlanNode*, GroupId>* visited) {
  auto it = visited->find(node);
  if (it != visited->end()) return it->second;
  std::vector<GroupId> children;
  children.reserve(node->children.size());
  for (const PlanNodePtr& child : node->children) {
    children.push_back(InsertNode(child.get(), visited));
  }
  ExprId expr_id = AddExpr(node->op, std::move(children), kInvalidGroup, /*rule_id=*/-1,
                           /*source_expr=*/kInvalidExpr);
  GroupId group_id = exprs_[static_cast<size_t>(expr_id)].group;
  (*visited)[node] = group_id;
  return group_id;
}

ExprId Memo::AddExpr(Operator op, std::vector<GroupId> children, GroupId target_group,
                     int rule_id, ExprId source_expr) {
  uint64_t key = ExprKey(op, children);
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    // Verify it's a true duplicate, not a hash collision.
    const GroupExpr& existing = exprs_[static_cast<size_t>(it->second)];
    if (existing.children == children &&
        existing.op.Hash(false) == op.Hash(false)) {
      return it->second;
    }
  }

  GroupExpr expr;
  expr.is_logical = op.IsLogical();
  expr.op = std::move(op);
  expr.children = std::move(children);
  expr.rule_id = rule_id;
  expr.source_expr = source_expr;

  if (target_group == kInvalidGroup) {
    target_group = static_cast<GroupId>(groups_.size());
    groups_.emplace_back();
    std::vector<std::vector<ColumnId>> child_outputs;
    child_outputs.reserve(expr.children.size());
    for (GroupId c : expr.children) {
      child_outputs.push_back(groups_[static_cast<size_t>(c)].output_columns);
    }
    groups_.back().output_columns = OutputColumns(expr.op, child_outputs);
  }
  expr.group = target_group;

  ExprId id = static_cast<ExprId>(exprs_.size());
  exprs_.push_back(std::move(expr));
  Group& grp = groups_[static_cast<size_t>(target_group)];
  grp.exprs.push_back(id);
  if (grp.representative == kInvalidExpr && exprs_.back().is_logical) {
    grp.representative = id;
  }
  dedup_[key] = id;
  return id;
}

void Memo::CollectProvenance(ExprId id, std::vector<int>* rule_ids) const {
  while (id != kInvalidExpr) {
    const GroupExpr& e = exprs_[static_cast<size_t>(id)];
    if (e.rule_id >= 0) rule_ids->push_back(e.rule_id);
    id = e.source_expr;
  }
}

}  // namespace qsteer
