// Cardinality derivation under two views of the data.
//
// One derivation engine (DeriveStats + predicate selectivity) is evaluated
// against two StatsView implementations:
//
//  * EstimatedStatsView — what the SCOPE optimizer believes: stale row
//    counts, sampled NDVs, uniformity (no skew), independence (no
//    correlations), guessed UDF/UDO selectivities, and SQL-Server-style
//    exponential backoff when combining conjuncts *within one predicate*.
//
//  * TrueStatsView — the generative ground truth used by the execution
//    simulator: true row counts, zipf skew, pairwise correlations, true
//    UDF/UDO selectivities.
//
// The systematic gap between the two views is exactly the class of
// estimation error the paper exploits: steering the optimizer away from
// paths whose estimates are wrong.
#ifndef QSTEER_OPTIMIZER_STATS_H_
#define QSTEER_OPTIMIZER_STATS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/stats_model.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/zipf.h"
#include "plan/job.h"

namespace qsteer {

/// Believed distribution of a single column.
struct ColumnDistribution {
  double ndv = 1000.0;
  /// Values live in [1, domain]; literals are drawn from the true domain.
  double domain = 1000.0;
  /// Zipf exponent; 0 = uniform (the scalar estimator always believes 0).
  double zipf_skew = 0.0;
  double null_fraction = 0.0;
  double avg_width = 8.0;
  /// Equi-depth summary when a histogram-grade StatsModel is active; null
  /// under scalar beliefs. Selectivity math prefers this over the
  /// uniformity fields above when present.
  std::shared_ptr<const Histogram> histogram;
};

/// Derived statistics of one plan fragment.
struct LogicalStats {
  double rows = 0.0;
  double width = 8.0;
  std::unordered_map<ColumnId, double> ndv;

  double NdvOf(ColumnId col) const;
  double Bytes() const { return rows * width; }
};

/// Abstract data-statistics oracle.
class StatsView {
 public:
  virtual ~StatsView() = default;

  virtual ColumnDistribution ColumnDist(ColumnId col) const = 0;
  /// Correlation strength in [0,1] between two columns (0 = independent).
  virtual double Correlation(ColumnId a, ColumnId b) const = 0;
  virtual double StreamRows(int stream_id) const = 0;
  virtual double StreamWidth(int stream_id) const = 0;
  /// Selectivity of an opaque UDF predicate.
  virtual double UdfSelectivity(const Expr& udf) const = 0;
  /// Row selectivity of a Process (user-defined operator).
  virtual double ProcessSelectivity(const Operator& op) const = 0;
  /// Relative per-row cost factor of a Process operator.
  virtual double ProcessCostPerRow(const Operator& op) const = 0;
  /// Whether AND-combination uses exponential backoff (estimator behaviour)
  /// instead of the correlation-aware product (true behaviour).
  virtual bool UseExponentialBackoff() const = 0;
  /// Mass of the most frequent value of `col` (skew; 0 under uniformity
  /// beliefs). Drives partition-imbalance in the runtime model.
  virtual double TopValueShare(ColumnId col) const = 0;

  const ColumnUniverse* universe() const { return universe_; }

 protected:
  explicit StatsView(const ColumnUniverse* universe) : universe_(universe) {}
  const ColumnUniverse* universe_;
};

/// The optimizer's view (stale + simplified). Beliefs are served by the
/// catalog's active StatsModel (or an explicitly supplied one): scalar
/// beliefs reproduce the historical estimator bit-for-bit, histogram-grade
/// beliefs attach per-column histograms to ColumnDist.
class EstimatedStatsView : public StatsView {
 public:
  EstimatedStatsView(const Catalog* catalog, const ColumnUniverse* universe, int day);
  /// Overrides the catalog's active model (calibration compares models on
  /// one catalog without mutating it). `model` must outlive the view.
  EstimatedStatsView(const Catalog* catalog, const ColumnUniverse* universe, int day,
                     const StatsModel* model);

  ColumnDistribution ColumnDist(ColumnId col) const override;
  double Correlation(ColumnId /*a*/, ColumnId /*b*/) const override { return 0.0; }
  double StreamRows(int stream_id) const override;
  double StreamWidth(int stream_id) const override;
  double UdfSelectivity(const Expr& udf) const override;
  double ProcessSelectivity(const Operator& op) const override;
  double ProcessCostPerRow(const Operator& op) const override;
  bool UseExponentialBackoff() const override { return true; }
  /// 0 under scalar beliefs (uniformity); the histogram's hottest-value
  /// mass when a histogram-grade model is active.
  double TopValueShare(ColumnId col) const override;

  const StatsModel& model() const { return *model_; }

 private:
  const Catalog* catalog_;
  int day_;
  const StatsModel* model_;
  // Per-stream optimizer stats are cached; repeated Compile calls on one job
  // hit the same few streams. Views are shared across pipeline workers, so
  // the lazily filled cache is mutex-guarded; values are immutable once
  // inserted and node-stable, so returned references stay valid unlocked.
  mutable Mutex mu_;
  mutable std::unordered_map<int, OptimizerStreamStats> cache_ GUARDED_BY(mu_);
  const OptimizerStreamStats& StatsFor(int stream_id) const;
};

/// Ground truth view (generative model + job-level latents).
class TrueStatsView : public StatsView {
 public:
  TrueStatsView(const Catalog* catalog, const Job* job);

  ColumnDistribution ColumnDist(ColumnId col) const override;
  double Correlation(ColumnId a, ColumnId b) const override;
  double StreamRows(int stream_id) const override;
  double StreamWidth(int stream_id) const override;
  double UdfSelectivity(const Expr& udf) const override;
  double ProcessSelectivity(const Operator& op) const override;
  double ProcessCostPerRow(const Operator& op) const override;
  bool UseExponentialBackoff() const override { return false; }
  double TopValueShare(ColumnId col) const override;

 private:
  const Catalog* catalog_;
  const Job* job_;
};

/// Selectivity of a predicate under a view. `view.UseExponentialBackoff()`
/// selects the conjunct-combination policy.
double PredicateSelectivity(const ExprPtr& predicate, const StatsView& view);

/// Derives output statistics of one operator given child statistics.
/// Physical operators are mapped onto their logical estimation semantics.
LogicalStats DeriveStats(const Operator& op, const std::vector<const LogicalStats*>& children,
                         const StatsView& view);

/// True expected pass rate of a UDF predicate with the given name; must
/// match Expr::EvalPredicate's per-row behaviour in expectation.
double UdfTrueSelectivity(const std::string& name);

/// True row selectivity of a Process operator for jobs lacking an explicit
/// latent (keyed by UDO name).
double UdoTrueSelectivity(const std::string& name);

// Zipf math (GenHarmonic / ZipfCdf / ZipfPmf / ZipfJoinMatchProbability)
// lives in common/zipf.h, shared with the catalog's histogram builder.

/// Expected per-pair match probability of joining two histogram-summarized
/// columns: the merged-boundary walk sums per-value mass products over each
/// overlapping bucket range.
double HistogramJoinMatchProbability(const Histogram& left, const Histogram& right);

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_STATS_H_
