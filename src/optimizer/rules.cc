#include "optimizer/rules.h"

#include <algorithm>
#include <map>

namespace qsteer {

OpTree OpTree::Leaf(GroupId group) {
  OpTree t;
  t.is_leaf = true;
  t.leaf_group = group;
  return t;
}

OpTree OpTree::Node(Operator op, std::vector<OpTree> children) {
  OpTree t;
  t.op = std::move(op);
  t.children = std::move(children);
  return t;
}

ExprId FindLogicalExpr(const Memo& memo, GroupId group, OpKind kind) {
  for (ExprId id : memo.group(group).exprs) {
    const GroupExpr& e = memo.expr(id);
    if (e.is_logical && e.op.kind == kind) return id;
  }
  return kInvalidExpr;
}

bool GroupProvidesColumns(const Memo& memo, GroupId group, const std::vector<ColumnId>& cols) {
  const std::vector<ColumnId>& have = memo.group(group).output_columns;
  for (ColumnId c : cols) {
    if (!std::binary_search(have.begin(), have.end(), c)) return false;
  }
  return true;
}

namespace {

bool PredicateBoundByGroup(const Memo& memo, GroupId group, const ExprPtr& predicate) {
  if (predicate == nullptr) return true;
  std::vector<ColumnId> cols;
  predicate->CollectColumns(&cols);
  return GroupProvidesColumns(memo, group, cols);
}

Operator MakeSelect(ExprPtr predicate) {
  Operator op;
  op.kind = OpKind::kSelect;
  op.predicate = std::move(predicate);
  return op;
}

/// Maps an aggregate function to the function that re-aggregates its partial
/// results (COUNT re-aggregates via SUM; the rest are idempotent).
AggFunc ReaggFunc(AggFunc f) { return f == AggFunc::kCount ? AggFunc::kSum : f; }

bool DuplicateInsensitive(AggFunc f) { return f == AggFunc::kMin || f == AggFunc::kMax; }

}  // namespace

// ---------------------------------------------------------------------------
// Select rules
// ---------------------------------------------------------------------------

void CollapseSelectsRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  const Memo& memo = *ctx.memo;
  ExprId inner_id = FindLogicalExpr(memo, expr.children[0], OpKind::kSelect);
  if (inner_id == kInvalidExpr) return;
  const GroupExpr& inner = memo.expr(inner_id);
  // Depth of the Select stack rooted here distinguishes the rule variants.
  int stack = 2;
  GroupId probe = inner.children[0];
  while (stack < 16) {
    ExprId next = FindLogicalExpr(memo, probe, OpKind::kSelect);
    if (next == kInvalidExpr) break;
    ++stack;
    probe = memo.expr(next).children[0];
  }
  if (!stack_window_.Contains(stack)) return;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  std::vector<ExprPtr> inner_conjuncts = SplitConjuncts(inner.op.predicate);
  conjuncts.insert(conjuncts.end(), inner_conjuncts.begin(), inner_conjuncts.end());
  out->push_back(OpTree::Node(MakeSelect(MakeConjunction(std::move(conjuncts))),
                              {OpTree::Leaf(inner.children[0])}));
}

void SelectOnTrueRule::Apply(const RuleContext&, const GroupExpr& expr,
                             std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  if (expr.op.predicate == nullptr || expr.op.predicate->kind() == ExprKind::kTrue) {
    out->push_back(OpTree::Leaf(expr.children[0]));
  }
}

void SelectSplitConjunctionRule::Apply(const RuleContext&, const GroupExpr& expr,
                                       std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  if (conjuncts.size() < 2 || !conjunct_window_.Contains(static_cast<int>(conjuncts.size()))) {
    return;
  }
  OpTree tree = OpTree::Leaf(expr.children[0]);
  for (size_t i = conjuncts.size(); i-- > 0;) {
    tree = OpTree::Node(MakeSelect(conjuncts[i]), {std::move(tree)});
  }
  out->push_back(std::move(tree));
}

void SelectPredNormalizeRule::Apply(const RuleContext&, const GroupExpr& expr,
                                    std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  if (conjuncts.size() < 2) return;
  std::vector<ExprPtr> sorted = conjuncts;
  std::sort(sorted.begin(), sorted.end(),
            [](const ExprPtr& a, const ExprPtr& b) { return a->Hash(true) < b->Hash(true); });
  bool changed = false;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != conjuncts[i]) changed = true;
  }
  if (!changed) return;
  out->push_back(
      OpTree::Node(MakeSelect(Expr::And(std::move(sorted))), {OpTree::Leaf(expr.children[0])}));
}

void PushSelectBelowUnaryRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                     std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  if (expr.op.predicate == nullptr ||
      !atom_window_.Contains(expr.op.predicate->CountAtoms())) {
    return;
  }
  const Memo& memo = *ctx.memo;
  ExprId target_id = FindLogicalExpr(memo, expr.children[0], target_);
  if (target_id == kInvalidExpr) return;
  const GroupExpr& target = memo.expr(target_id);
  if (target.children.empty()) return;
  GroupId grandchild = target.children[0];
  if (!PredicateBoundByGroup(memo, grandchild, expr.op.predicate)) return;
  if (target_ == OpKind::kGroupBy) {
    // Only predicates on grouping keys commute with aggregation.
    std::vector<ColumnId> cols;
    expr.op.predicate->CollectColumns(&cols);
    for (ColumnId c : cols) {
      if (std::find(target.op.group_keys.begin(), target.op.group_keys.end(), c) ==
          target.op.group_keys.end()) {
        return;
      }
    }
  }
  std::vector<OpTree> new_children;
  new_children.push_back(
      OpTree::Node(MakeSelect(expr.op.predicate), {OpTree::Leaf(grandchild)}));
  for (size_t i = 1; i < target.children.size(); ++i) {
    new_children.push_back(OpTree::Leaf(target.children[i]));
  }
  out->push_back(OpTree::Node(target.op, std::move(new_children)));
}

void PushSelectBelowJoinRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                    std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  if (expr.op.predicate == nullptr ||
      !atom_window_.Contains(expr.op.predicate->CountAtoms())) {
    return;
  }
  const Memo& memo = *ctx.memo;
  ExprId join_id = FindLogicalExpr(memo, expr.children[0], OpKind::kJoin);
  if (join_id == kInvalidExpr) return;
  const GroupExpr& join = memo.expr(join_id);
  GroupId left = join.children[0];
  GroupId right = join.children[1];

  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  if (conjuncts.empty()) return;
  std::vector<ExprPtr> to_left, to_right, residual;
  for (const ExprPtr& c : conjuncts) {
    bool left_ok = PredicateBoundByGroup(memo, left, c);
    // Pushing below the null-padding side of an outer join is invalid, and a
    // semi join exposes no right columns above it, so right-side pushdown is
    // inner-join-only.
    bool right_ok =
        join.op.join_type == JoinType::kInner && PredicateBoundByGroup(memo, right, c);
    if (left_ok && (side_ == 0 || side_ == 2)) {
      to_left.push_back(c);
    } else if (right_ok && (side_ == 1 || side_ == 2)) {
      to_right.push_back(c);
    } else {
      residual.push_back(c);
    }
  }
  if (to_left.empty() && to_right.empty()) return;

  OpTree left_tree = OpTree::Leaf(left);
  if (!to_left.empty()) {
    left_tree = OpTree::Node(MakeSelect(MakeConjunction(std::move(to_left))),
                             {std::move(left_tree)});
  }
  OpTree right_tree = OpTree::Leaf(right);
  if (!to_right.empty()) {
    right_tree = OpTree::Node(MakeSelect(MakeConjunction(std::move(to_right))),
                              {std::move(right_tree)});
  }
  OpTree join_tree = OpTree::Node(join.op, {std::move(left_tree), std::move(right_tree)});
  if (!residual.empty()) {
    join_tree = OpTree::Node(MakeSelect(MakeConjunction(std::move(residual))),
                             {std::move(join_tree)});
  }
  out->push_back(std::move(join_tree));
}

void PushSelectBelowUnionRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                     std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  const Memo& memo = *ctx.memo;
  ExprId union_id = FindLogicalExpr(memo, expr.children[0], OpKind::kUnionAll);
  if (union_id == kInvalidExpr) return;
  const GroupExpr& u = memo.expr(union_id);
  if (!branch_window_.Contains(static_cast<int>(u.children.size()))) return;
  std::vector<OpTree> branches;
  branches.reserve(u.children.size());
  for (GroupId child : u.children) {
    if (!PredicateBoundByGroup(memo, child, expr.op.predicate)) return;
    branches.push_back(OpTree::Node(MakeSelect(expr.op.predicate), {OpTree::Leaf(child)}));
  }
  out->push_back(OpTree::Node(u.op, std::move(branches)));
}

void MergeSelectIntoJoinRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                    std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  const Memo& memo = *ctx.memo;
  ExprId join_id = FindLogicalExpr(memo, expr.children[0], OpKind::kJoin);
  if (join_id == kInvalidExpr) return;
  const GroupExpr& join = memo.expr(join_id);
  if (join.op.join_type != JoinType::kInner) return;
  if (!key_window_.Contains(static_cast<int>(join.op.left_keys.size()))) return;
  Operator merged = join.op;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(merged.predicate);
  std::vector<ExprPtr> extra = SplitConjuncts(expr.op.predicate);
  if (extra.empty()) return;
  conjuncts.insert(conjuncts.end(), extra.begin(), extra.end());
  merged.predicate = MakeConjunction(std::move(conjuncts));
  out->push_back(OpTree::Node(std::move(merged),
                              {OpTree::Leaf(join.children[0]), OpTree::Leaf(join.children[1])}));
}

void SelectPartitionsRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                 std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  const Memo& memo = *ctx.memo;
  ExprId get_id = FindLogicalExpr(memo, expr.children[0], OpKind::kGet);
  if (get_id == kInvalidExpr) return;
  const GroupExpr& get = memo.expr(get_id);
  if (get.op.partition_fraction < 1.0) return;  // already pruned
  // The pruning predicate must be an equality on the stream's partition
  // column (schema column 0).
  ColumnId partition_col = kInvalidColumn;
  for (ColumnId c : get.op.scan_columns) {
    const ColumnInfo& info = ctx.universe->info(c);
    if (!info.derived && info.column_index == 0) partition_col = c;
  }
  if (partition_col == kInvalidColumn) return;
  bool has_eq = false;
  for (const ExprPtr& c : SplitConjuncts(expr.op.predicate)) {
    if (c->kind() == ExprKind::kCompare && c->cmp() == CmpOp::kEq &&
        c->children()[0]->kind() == ExprKind::kColumn &&
        c->children()[0]->column() == partition_col &&
        c->children()[1]->kind() == ExprKind::kLiteral) {
      has_eq = true;
    }
  }
  if (!has_eq) return;
  Operator pruned = get.op;
  // An equality keeps at most one hash partition of the stream.
  pruned.partition_fraction = 0.125;
  out->push_back(
      OpTree::Node(expr.op, {OpTree::Node(std::move(pruned), {})}));
}

// ---------------------------------------------------------------------------
// Project rules
// ---------------------------------------------------------------------------

void ProjectMergeRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                             std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kProject) return;
  const Memo& memo = *ctx.memo;
  ExprId inner_id = FindLogicalExpr(memo, expr.children[0], OpKind::kProject);
  if (inner_id == kInvalidExpr) return;
  const GroupExpr& inner = memo.expr(inner_id);
  std::map<ColumnId, const NamedExpr*> inner_defs;
  for (const NamedExpr& p : inner.op.projections) inner_defs[p.output] = &p;

  Operator merged;
  merged.kind = OpKind::kProject;
  for (const NamedExpr& p : expr.op.projections) {
    if (p.pass_through) {
      auto it = inner_defs.find(p.output);
      if (it == inner_defs.end()) return;
      merged.projections.push_back(*it->second);
    } else {
      // Composition is only attempted when all inputs pass through the
      // inner projection unchanged.
      for (ColumnId in : p.inputs) {
        auto it = inner_defs.find(in);
        if (it == inner_defs.end() || !it->second->pass_through) return;
      }
      merged.projections.push_back(p);
    }
  }
  out->push_back(OpTree::Node(std::move(merged), {OpTree::Leaf(inner.children[0])}));
}

void RemoveNoopProjectRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                  std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kProject) return;
  const Memo& memo = *ctx.memo;
  for (const NamedExpr& p : expr.op.projections) {
    if (!p.pass_through) return;
  }
  const Group& child = memo.group(expr.children[0]);
  std::vector<ColumnId> outputs;
  for (const NamedExpr& p : expr.op.projections) outputs.push_back(p.output);
  std::sort(outputs.begin(), outputs.end());
  outputs.erase(std::unique(outputs.begin(), outputs.end()), outputs.end());
  if (outputs != child.output_columns) return;
  out->push_back(OpTree::Leaf(expr.children[0]));
}

void PushProjectBelowUnionRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                      std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kProject) return;
  const Memo& memo = *ctx.memo;
  ExprId union_id = FindLogicalExpr(memo, expr.children[0], OpKind::kUnionAll);
  if (union_id == kInvalidExpr) return;
  const GroupExpr& u = memo.expr(union_id);
  if (!branch_window_.Contains(static_cast<int>(u.children.size()))) return;
  std::vector<ColumnId> needed;
  for (const NamedExpr& p : expr.op.projections) {
    for (ColumnId in : p.inputs) needed.push_back(in);
  }
  std::vector<OpTree> branches;
  for (GroupId child : u.children) {
    if (!GroupProvidesColumns(memo, child, needed)) return;
    branches.push_back(OpTree::Node(expr.op, {OpTree::Leaf(child)}));
  }
  out->push_back(OpTree::Node(u.op, std::move(branches)));
}

// ---------------------------------------------------------------------------
// Join order rules
// ---------------------------------------------------------------------------

void JoinCommuteRule::Apply(const RuleContext&, const GroupExpr& expr,
                            std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kJoin || expr.op.join_type != JoinType::kInner) return;
  if (!key_window_.Contains(static_cast<int>(expr.op.left_keys.size()))) return;
  Operator swapped = expr.op;
  std::swap(swapped.left_keys, swapped.right_keys);
  out->push_back(
      OpTree::Node(std::move(swapped), {OpTree::Leaf(expr.children[1]), OpTree::Leaf(expr.children[0])}));
}

void JoinAssocRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                          std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kJoin || expr.op.join_type != JoinType::kInner) return;
  if (expr.op.predicate != nullptr && expr.op.predicate->kind() != ExprKind::kTrue) return;
  if (!key_window_.Contains(static_cast<int>(expr.op.left_keys.size()))) return;
  const Memo& memo = *ctx.memo;
  if (direction_ == 0) {
    // (A ⋈ B) ⋈ C  ->  A ⋈ (B ⋈ C); requires the outer keys to bind to B.
    ExprId inner_id = FindLogicalExpr(memo, expr.children[0], OpKind::kJoin);
    if (inner_id == kInvalidExpr) return;
    const GroupExpr& inner = memo.expr(inner_id);
    if (inner.op.join_type != JoinType::kInner) return;
    if (inner.op.predicate != nullptr && inner.op.predicate->kind() != ExprKind::kTrue) return;
    GroupId a = inner.children[0], b = inner.children[1], c = expr.children[1];
    if (!GroupProvidesColumns(memo, b, expr.op.left_keys)) return;
    Operator bc;
    bc.kind = OpKind::kJoin;
    bc.join_type = JoinType::kInner;
    bc.left_keys = expr.op.left_keys;
    bc.right_keys = expr.op.right_keys;
    Operator abc;
    abc.kind = OpKind::kJoin;
    abc.join_type = JoinType::kInner;
    abc.left_keys = inner.op.left_keys;
    abc.right_keys = inner.op.right_keys;
    out->push_back(OpTree::Node(
        std::move(abc),
        {OpTree::Leaf(a), OpTree::Node(std::move(bc), {OpTree::Leaf(b), OpTree::Leaf(c)})}));
  } else {
    // A ⋈ (B ⋈ C)  ->  (A ⋈ B) ⋈ C; requires the outer keys to bind to B.
    ExprId inner_id = FindLogicalExpr(memo, expr.children[1], OpKind::kJoin);
    if (inner_id == kInvalidExpr) return;
    const GroupExpr& inner = memo.expr(inner_id);
    if (inner.op.join_type != JoinType::kInner) return;
    if (inner.op.predicate != nullptr && inner.op.predicate->kind() != ExprKind::kTrue) return;
    GroupId a = expr.children[0], b = inner.children[0], c = inner.children[1];
    if (!GroupProvidesColumns(memo, b, expr.op.right_keys)) return;
    Operator ab;
    ab.kind = OpKind::kJoin;
    ab.join_type = JoinType::kInner;
    ab.left_keys = expr.op.left_keys;
    ab.right_keys = expr.op.right_keys;
    Operator abc;
    abc.kind = OpKind::kJoin;
    abc.join_type = JoinType::kInner;
    abc.left_keys = inner.op.left_keys;
    abc.right_keys = inner.op.right_keys;
    out->push_back(OpTree::Node(
        std::move(abc),
        {OpTree::Node(std::move(ab), {OpTree::Leaf(a), OpTree::Leaf(b)}), OpTree::Leaf(c)}));
  }
}

// ---------------------------------------------------------------------------
// Aggregation rules
// ---------------------------------------------------------------------------

void PushGroupByBelowUnionRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                      std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kGroupBy || expr.op.partial_agg) return;
  const Memo& memo = *ctx.memo;
  ExprId union_id = FindLogicalExpr(memo, expr.children[0], OpKind::kUnionAll);
  if (union_id == kInvalidExpr) return;
  const GroupExpr& u = memo.expr(union_id);
  if (!branch_window_.Contains(static_cast<int>(u.children.size()))) return;

  // Per-branch aggregates feed re-aggregation at the top: COUNT -> SUM of
  // counts; SUM/MIN/MAX are re-applied.
  Operator branch_agg;
  branch_agg.kind = OpKind::kGroupBy;
  branch_agg.group_keys = expr.op.group_keys;
  Operator final_agg;
  final_agg.kind = OpKind::kGroupBy;
  final_agg.group_keys = expr.op.group_keys;
  for (const AggExpr& agg : expr.op.aggs) {
    ColumnId mid = ctx.universe->AddDerivedColumn("partial_" + std::to_string(agg.output),
                                                  /*ndv_hint=*/1e6);
    branch_agg.aggs.push_back(AggExpr{agg.func, agg.arg, mid});
    final_agg.aggs.push_back(AggExpr{ReaggFunc(agg.func), mid, agg.output});
  }
  std::vector<OpTree> branches;
  for (GroupId child : u.children) {
    branches.push_back(OpTree::Node(branch_agg, {OpTree::Leaf(child)}));
  }
  out->push_back(
      OpTree::Node(std::move(final_agg), {OpTree::Node(u.op, std::move(branches))}));
}

void PushGroupByBelowJoinRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                     std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kGroupBy || expr.op.partial_agg) return;
  const Memo& memo = *ctx.memo;
  ExprId join_id = FindLogicalExpr(memo, expr.children[0], OpKind::kJoin);
  if (join_id == kInvalidExpr) return;
  const GroupExpr& join = memo.expr(join_id);
  if (join.op.join_type != JoinType::kInner) return;
  GroupId side_group = side_ == 0 ? join.children[0] : join.children[1];
  GroupId other_group = side_ == 0 ? join.children[1] : join.children[0];
  const std::vector<ColumnId>& side_join_keys = side_ == 0 ? join.op.left_keys
                                                           : join.op.right_keys;

  // Join fan-out duplicates rows, so only duplicate-insensitive aggregates
  // (MIN/MAX) whose arguments come from the pushed side are eligible.
  std::vector<ColumnId> needed_args;
  for (const AggExpr& agg : expr.op.aggs) {
    if (!DuplicateInsensitive(agg.func)) return;
    needed_args.push_back(agg.arg);
  }
  if (!GroupProvidesColumns(memo, side_group, needed_args)) return;

  // The inner aggregation keys: grouping keys from this side + join keys.
  std::vector<ColumnId> inner_keys;
  for (ColumnId key : expr.op.group_keys) {
    if (GroupProvidesColumns(memo, side_group, {key})) inner_keys.push_back(key);
  }
  inner_keys.insert(inner_keys.end(), side_join_keys.begin(), side_join_keys.end());
  std::sort(inner_keys.begin(), inner_keys.end());
  inner_keys.erase(std::unique(inner_keys.begin(), inner_keys.end()), inner_keys.end());

  Operator inner_agg;
  inner_agg.kind = OpKind::kGroupBy;
  inner_agg.group_keys = inner_keys;
  Operator outer_agg;
  outer_agg.kind = OpKind::kGroupBy;
  outer_agg.group_keys = expr.op.group_keys;
  for (const AggExpr& agg : expr.op.aggs) {
    ColumnId mid = ctx.universe->AddDerivedColumn("eager_" + std::to_string(agg.output),
                                                  /*ndv_hint=*/1e6);
    inner_agg.aggs.push_back(AggExpr{agg.func, agg.arg, mid});
    outer_agg.aggs.push_back(AggExpr{agg.func, mid, agg.output});
  }
  // The outer grouping keys from the other side must still be available.
  std::vector<ColumnId> outer_key_check;
  for (ColumnId key : expr.op.group_keys) {
    if (!GroupProvidesColumns(memo, side_group, {key})) outer_key_check.push_back(key);
  }
  if (!GroupProvidesColumns(memo, other_group, outer_key_check)) return;

  OpTree agg_side = OpTree::Node(std::move(inner_agg), {OpTree::Leaf(side_group)});
  std::vector<OpTree> join_children;
  if (side_ == 0) {
    join_children = {std::move(agg_side), OpTree::Leaf(other_group)};
  } else {
    join_children = {OpTree::Leaf(other_group), std::move(agg_side)};
  }
  out->push_back(OpTree::Node(
      std::move(outer_agg), {OpTree::Node(join.op, std::move(join_children))}));
}

void PartialAggregationRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                   std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kGroupBy || expr.op.partial_agg) return;
  if (expr.op.group_keys.empty()) return;
  if (!key_window_.Contains(static_cast<int>(expr.op.group_keys.size()))) return;
  Operator partial;
  partial.kind = OpKind::kGroupBy;
  partial.partial_agg = true;
  partial.group_keys = expr.op.group_keys;
  Operator final_agg;
  final_agg.kind = OpKind::kGroupBy;
  final_agg.group_keys = expr.op.group_keys;
  for (const AggExpr& agg : expr.op.aggs) {
    ColumnId mid = ctx.universe->AddDerivedColumn("local_" + std::to_string(agg.output),
                                                  /*ndv_hint=*/1e6);
    partial.aggs.push_back(AggExpr{agg.func, agg.arg, mid});
    final_agg.aggs.push_back(AggExpr{ReaggFunc(agg.func), mid, agg.output});
  }
  out->push_back(OpTree::Node(std::move(final_agg),
                              {OpTree::Node(std::move(partial), {OpTree::Leaf(expr.children[0])})}));
}

void NormalizeReduceRule::Apply(const RuleContext&, const GroupExpr& expr,
                                std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kGroupBy) return;
  std::vector<ColumnId> keys = expr.op.group_keys;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys == expr.op.group_keys) return;
  Operator normalized = expr.op;
  normalized.group_keys = std::move(keys);
  out->push_back(OpTree::Node(std::move(normalized), {OpTree::Leaf(expr.children[0])}));
}

// ---------------------------------------------------------------------------
// Union rules
// ---------------------------------------------------------------------------

void PushJoinBelowUnionRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                   std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kJoin || expr.op.join_type != only_type_) return;
  const Memo& memo = *ctx.memo;
  GroupId union_group = expr.children[union_side_ == 0 ? 0 : 1];
  GroupId other = expr.children[union_side_ == 0 ? 1 : 0];
  ExprId union_id = FindLogicalExpr(memo, union_group, OpKind::kUnionAll);
  if (union_id == kInvalidExpr) return;
  const GroupExpr& u = memo.expr(union_id);
  if (static_cast<int>(u.children.size()) > max_branches_) return;
  std::vector<OpTree> branches;
  for (GroupId branch : u.children) {
    std::vector<OpTree> join_children;
    if (union_side_ == 0) {
      join_children = {OpTree::Leaf(branch), OpTree::Leaf(other)};
    } else {
      join_children = {OpTree::Leaf(other), OpTree::Leaf(branch)};
    }
    branches.push_back(OpTree::Node(expr.op, std::move(join_children)));
  }
  Operator union_op;
  union_op.kind = OpKind::kUnionAll;
  out->push_back(OpTree::Node(std::move(union_op), std::move(branches)));
}

void PushProcessBelowUnionRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                      std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kProcess) return;
  const Memo& memo = *ctx.memo;
  ExprId union_id = FindLogicalExpr(memo, expr.children[0], OpKind::kUnionAll);
  if (union_id == kInvalidExpr) return;
  const GroupExpr& u = memo.expr(union_id);
  if (!branch_window_.Contains(static_cast<int>(u.children.size()))) return;
  std::vector<OpTree> branches;
  for (GroupId child : u.children) {
    branches.push_back(OpTree::Node(expr.op, {OpTree::Leaf(child)}));
  }
  out->push_back(OpTree::Node(u.op, std::move(branches)));
}

void UnionFlattenRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                             std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kUnionAll) return;
  const Memo& memo = *ctx.memo;
  bool flattened = false;
  std::vector<OpTree> children;
  for (GroupId child : expr.children) {
    ExprId nested = FindLogicalExpr(memo, child, OpKind::kUnionAll);
    // Guard against self-reference (a union expression whose child group is
    // its own group cannot occur, but nested unions resolve one level).
    if (nested != kInvalidExpr && memo.expr(nested).group != expr.group) {
      for (GroupId grandchild : memo.expr(nested).children) {
        children.push_back(OpTree::Leaf(grandchild));
      }
      flattened = true;
    } else {
      children.push_back(OpTree::Leaf(child));
    }
  }
  if (!flattened) return;
  out->push_back(OpTree::Node(expr.op, std::move(children)));
}

void PushTopBelowUnionRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                  std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kTop) return;
  const Memo& memo = *ctx.memo;
  ExprId union_id = FindLogicalExpr(memo, expr.children[0], OpKind::kUnionAll);
  if (union_id == kInvalidExpr) return;
  const GroupExpr& u = memo.expr(union_id);
  std::vector<OpTree> branches;
  for (GroupId child : u.children) {
    branches.push_back(OpTree::Node(expr.op, {OpTree::Leaf(child)}));
  }
  out->push_back(OpTree::Node(expr.op, {OpTree::Node(u.op, std::move(branches))}));
}

void TopProjectSwapRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                               std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kTop) return;
  const Memo& memo = *ctx.memo;
  ExprId project_id = FindLogicalExpr(memo, expr.children[0], OpKind::kProject);
  if (project_id == kInvalidExpr) return;
  const GroupExpr& project = memo.expr(project_id);
  // The sort keys must pass through the projection unchanged.
  for (ColumnId key : expr.op.sort_keys) {
    bool found = false;
    for (const NamedExpr& p : project.op.projections) {
      if (p.output == key && p.pass_through) found = true;
    }
    if (!found) return;
  }
  out->push_back(OpTree::Node(
      project.op, {OpTree::Node(expr.op, {OpTree::Leaf(project.children[0])})}));
}

void PredicateInferenceRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                   std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  const Memo& memo = *ctx.memo;
  ExprId join_id = FindLogicalExpr(memo, expr.children[0], OpKind::kJoin);
  if (join_id == kInvalidExpr) return;
  const GroupExpr& join = memo.expr(join_id);
  if (join.op.join_type != JoinType::kInner) return;

  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    const ExprPtr& c = conjuncts[ci];
    if (c->kind() != ExprKind::kCompare || c->cmp() != CmpOp::kEq) continue;
    if (c->children()[0]->kind() != ExprKind::kColumn ||
        c->children()[1]->kind() != ExprKind::kLiteral) {
      continue;
    }
    ColumnId col = c->children()[0]->column();
    int64_t value = c->children()[1]->literal();
    for (size_t k = 0; k < join.op.left_keys.size(); ++k) {
      ColumnId lk = join.op.left_keys[k];
      ColumnId rk = join.op.right_keys[k];
      if (col != lk && col != rk) continue;
      // Move the equality to both join inputs: filter each side on its own
      // key before joining (the equi-join makes the values equal).
      std::vector<ExprPtr> remaining;
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        if (j != ci) remaining.push_back(conjuncts[j]);
      }
      OpTree left = OpTree::Node(MakeSelect(Expr::Cmp(lk, CmpOp::kEq, value)),
                                 {OpTree::Leaf(join.children[0])});
      OpTree right = OpTree::Node(MakeSelect(Expr::Cmp(rk, CmpOp::kEq, value)),
                                  {OpTree::Leaf(join.children[1])});
      OpTree join_tree = OpTree::Node(join.op, {std::move(left), std::move(right)});
      if (!remaining.empty()) {
        join_tree = OpTree::Node(MakeSelect(MakeConjunction(std::move(remaining))),
                                 {std::move(join_tree)});
      }
      out->push_back(std::move(join_tree));
      return;
    }
  }
}

void UnsafeSelectBelowProcessRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                         std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  const Memo& memo = *ctx.memo;
  ExprId process_id = FindLogicalExpr(memo, expr.children[0], OpKind::kProcess);
  if (process_id == kInvalidExpr) return;
  const GroupExpr& process = memo.expr(process_id);
  GroupId grandchild = process.children[0];
  if (!PredicateBoundByGroup(memo, grandchild, expr.op.predicate)) return;
  out->push_back(OpTree::Node(
      process.op,
      {OpTree::Node(MakeSelect(expr.op.predicate), {OpTree::Leaf(grandchild)})}));
}

void SelectOrExpansionRule::Apply(const RuleContext&, const GroupExpr& expr,
                                  std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprPtr& c = conjuncts[i];
    if (c->kind() != ExprKind::kOr || c->children().size() != 2) continue;
    ExprPtr a = c->children()[0];
    ExprPtr b = c->children()[1];
    // Branch predicates: {a} and {b AND NOT a} (disjoint cover of the OR),
    // each conjoined with the remaining conjuncts.
    std::vector<ExprPtr> rest;
    for (size_t j = 0; j < conjuncts.size(); ++j) {
      if (j != i) rest.push_back(conjuncts[j]);
    }
    std::vector<ExprPtr> left = rest;
    left.push_back(a);
    std::vector<ExprPtr> right = rest;
    right.push_back(Expr::And({b, Expr::Not(a)}));
    Operator sel_a = MakeSelect(MakeConjunction(std::move(left)));
    Operator sel_b = MakeSelect(MakeConjunction(std::move(right)));
    Operator union_op;
    union_op.kind = OpKind::kUnionAll;
    out->push_back(OpTree::Node(
        std::move(union_op),
        {OpTree::Node(std::move(sel_a), {OpTree::Leaf(expr.children[0])}),
         OpTree::Node(std::move(sel_b), {OpTree::Leaf(expr.children[0])})}));
    return;  // expand one OR at a time; re-application handles the rest
  }
}

void RemoveDupPredicatesRule::Apply(const RuleContext&, const GroupExpr& expr,
                                    std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  std::vector<ExprPtr> unique;
  std::vector<uint64_t> seen;
  for (const ExprPtr& c : conjuncts) {
    uint64_t h = c->Hash(/*ignore_literals=*/false);
    if (std::find(seen.begin(), seen.end(), h) != seen.end()) continue;
    seen.push_back(h);
    unique.push_back(c);
  }
  if (unique.size() == conjuncts.size()) return;
  out->push_back(OpTree::Node(MakeSelect(MakeConjunction(std::move(unique))),
                              {OpTree::Leaf(expr.children[0])}));
}

void ConstantFoldingRule::Apply(const RuleContext&, const GroupExpr& expr,
                                std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kSelect) return;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(expr.op.predicate);
  std::vector<ExprPtr> kept;
  bool folded = false;
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() == ExprKind::kCompare &&
        c->children()[0]->kind() == ExprKind::kLiteral &&
        c->children()[1]->kind() == ExprKind::kLiteral) {
      int64_t lhs = c->children()[0]->literal();
      int64_t rhs = c->children()[1]->literal();
      bool value = false;
      switch (c->cmp()) {
        case CmpOp::kEq: value = lhs == rhs; break;
        case CmpOp::kNe: value = lhs != rhs; break;
        case CmpOp::kLt: value = lhs < rhs; break;
        case CmpOp::kLe: value = lhs <= rhs; break;
        case CmpOp::kGt: value = lhs > rhs; break;
        case CmpOp::kGe: value = lhs >= rhs; break;
      }
      if (value) {
        folded = true;  // trivially-true conjunct drops out
        continue;
      }
    }
    kept.push_back(c);
  }
  if (!folded) return;
  out->push_back(OpTree::Node(MakeSelect(MakeConjunction(std::move(kept))),
                              {OpTree::Leaf(expr.children[0])}));
}

void TopTopCollapseRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                               std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kTop) return;
  const Memo& memo = *ctx.memo;
  ExprId inner_id = FindLogicalExpr(memo, expr.children[0], OpKind::kTop);
  if (inner_id == kInvalidExpr) return;
  const GroupExpr& inner = memo.expr(inner_id);
  if (inner.op.sort_keys != expr.op.sort_keys) return;
  Operator collapsed = expr.op;
  collapsed.limit = std::min(expr.op.limit, inner.op.limit);
  out->push_back(OpTree::Node(std::move(collapsed), {OpTree::Leaf(inner.children[0])}));
}

void RareShapeRule::Apply(const RuleContext&, const GroupExpr& expr,
                          std::vector<OpTree>* out) const {
  // Rare-feature rules: they only match operator kinds the workload (almost)
  // never produces, and even then require a second same-kind child — a shape
  // the generator never emits. They exist so the configuration-search space
  // is honest about unused rules (Table 2).
  (void)out;
  if (expr.op.kind != match_kind_) return;
  // Matching would additionally require a same-kind child; no plan in this
  // algebra stacks two identical rare operators, so the rule never fires.
}

// ---------------------------------------------------------------------------
// Implementation rules
// ---------------------------------------------------------------------------

void SimpleImplRule::Apply(const RuleContext&, const GroupExpr& expr,
                           std::vector<OpTree>* out) const {
  if (expr.op.kind != logical_) return;
  Operator physical = expr.op;
  physical.kind = physical_;
  std::vector<OpTree> children;
  for (GroupId c : expr.children) children.push_back(OpTree::Leaf(c));
  out->push_back(OpTree::Node(std::move(physical), std::move(children)));
}

void JoinImplRule::Apply(const RuleContext&, const GroupExpr& expr,
                         std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kJoin) return;
  switch (expr.op.join_type) {
    case JoinType::kInner:
      if (!options_.allow_inner) return;
      break;
    case JoinType::kLeftOuter:
      if (!options_.allow_outer) return;
      break;
    case JoinType::kLeftSemi:
      if (!options_.allow_semi) return;
      break;
  }
  int keys = static_cast<int>(expr.op.left_keys.size());
  if (keys == 0 && options_.physical != OpKind::kLoopJoin) return;
  if (keys > options_.max_keys) return;
  if (options_.require_multi_key && keys < 2) return;
  // Outer joins cannot build/broadcast the preserved side.
  if (expr.op.join_type == JoinType::kLeftOuter && options_.build_side == 1) return;
  Operator physical = expr.op;
  physical.kind = options_.physical;
  physical.build_side = options_.build_side;
  out->push_back(OpTree::Node(std::move(physical),
                              {OpTree::Leaf(expr.children[0]), OpTree::Leaf(expr.children[1])}));
}

void IndexApplyJoinImplRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                                   std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kJoin || expr.op.join_type != JoinType::kInner) return;
  if (expr.op.predicate != nullptr && expr.op.predicate->kind() != ExprKind::kTrue) return;
  const Memo& memo = *ctx.memo;
  GroupId scan_group = expr.children[scan_side_ == 0 ? 1 : 0];
  GroupId probe_group = expr.children[scan_side_ == 0 ? 0 : 1];
  ExprId get_id = FindLogicalExpr(memo, scan_group, OpKind::kGet);
  if (get_id == kInvalidExpr) return;
  const GroupExpr& get = memo.expr(get_id);
  // The seek key must be the stream's leading (index) column.
  const std::vector<ColumnId>& inner_keys =
      scan_side_ == 0 ? expr.op.right_keys : expr.op.left_keys;
  if (inner_keys.size() != 1) return;
  const ColumnInfo& info = ctx.universe->info(inner_keys[0]);
  if (info.derived || info.column_index != 0) return;

  Operator physical = expr.op;
  physical.kind = OpKind::kIndexApplyJoin;
  physical.stream_id = get.op.stream_id;
  physical.stream_set_id = get.op.stream_set_id;
  physical.scan_columns = get.op.scan_columns;
  if (scan_side_ == 1) {
    // Probe side is the original right input; normalize keys so left_keys
    // always refer to the probe child.
    std::swap(physical.left_keys, physical.right_keys);
  }
  out->push_back(OpTree::Node(std::move(physical), {OpTree::Leaf(probe_group)}));
}

void AggImplRule::Apply(const RuleContext&, const GroupExpr& expr,
                        std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kGroupBy) return;
  if (expr.op.partial_agg != partial_only_) return;
  if (static_cast<int>(expr.op.group_keys.size()) > max_keys_) return;
  Operator physical = expr.op;
  physical.kind = physical_;
  out->push_back(OpTree::Node(std::move(physical), {OpTree::Leaf(expr.children[0])}));
}

void UnionImplRule::Apply(const RuleContext& ctx, const GroupExpr& expr,
                          std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kUnionAll) return;
  const Memo& memo = *ctx.memo;
  if (physical_ == OpKind::kVirtualDataset) {
    // Metadata-only union: every branch must be a directly scannable stream
    // of the same stream set (the "aligned daily streams" case).
    int set_id = -1;
    for (GroupId child : expr.children) {
      ExprId get_id = FindLogicalExpr(memo, child, OpKind::kGet);
      if (get_id == kInvalidExpr) return;
      const GroupExpr& get = memo.expr(get_id);
      if (set_id == -1) set_id = get.op.stream_set_id;
      if (get.op.stream_set_id != set_id) return;
    }
    if (require_same_partitions_ && static_cast<int>(expr.children.size()) > 4) return;
  }
  if (physical_ == OpKind::kSortedUnionAll) {
    // Merging union requires per-branch sorted runs; only branches that are
    // Top results have a defined order in this algebra.
    for (GroupId child : expr.children) {
      if (FindLogicalExpr(memo, child, OpKind::kTop) == kInvalidExpr) return;
    }
  }
  Operator physical = expr.op;
  physical.kind = physical_;
  std::vector<OpTree> children;
  for (GroupId c : expr.children) children.push_back(OpTree::Leaf(c));
  out->push_back(OpTree::Node(std::move(physical), std::move(children)));
}

void TopImplRule::Apply(const RuleContext&, const GroupExpr& expr,
                        std::vector<OpTree>* out) const {
  if (expr.op.kind != OpKind::kTop) return;
  if (expr.op.limit > max_limit_) return;
  Operator physical = expr.op;
  physical.kind = physical_;
  out->push_back(OpTree::Node(std::move(physical), {OpTree::Leaf(expr.children[0])}));
}

}  // namespace qsteer
