// Rule identity, categories, configurations and signatures (paper §3.2).
//
// The optimizer has exactly 256 rules, partitioned as in Table 2:
//   37 required, 46 off-by-default, 141 on-by-default, 32 implementation.
// A *rule configuration* (Definition 3.1) is the bit vector of enabled rules;
// the default configuration disables exactly the off-by-default rules. A
// *rule signature* (Definition 3.2) is the bit vector of rules that directly
// contributed to the final plan.
#ifndef QSTEER_OPTIMIZER_RULE_CONFIG_H_
#define QSTEER_OPTIMIZER_RULE_CONFIG_H_

#include <string>
#include <vector>

#include "common/bitvector.h"

namespace qsteer {

using RuleId = int;

enum class RuleCategory : uint8_t {
  kRequired,
  kOffByDefault,
  kOnByDefault,
  kImplementation,
};

constexpr int kNumRules = 256;
// Id layout (contiguous per category, mirroring Table 2's counts).
constexpr RuleId kRequiredBegin = 0;
constexpr int kNumRequired = 37;
constexpr RuleId kOffByDefaultBegin = 37;
constexpr int kNumOffByDefault = 46;
constexpr RuleId kOnByDefaultBegin = 83;
constexpr int kNumOnByDefault = 141;
constexpr RuleId kImplementationBegin = 224;
constexpr int kNumImplementation = 32;
constexpr int kNumNonRequired = kNumRules - kNumRequired;  // 219

RuleCategory CategoryOfRule(RuleId id);
const char* RuleCategoryName(RuleCategory category);

/// Bit vector of rules contributing to a final plan (Definition 3.2).
using RuleSignature = BitVector256;

/// A rule configuration: which of the 256 rules are enabled (Definition
/// 3.1). Required rules are always enabled; the class maintains that
/// invariant on every mutation.
class RuleConfig {
 public:
  /// All rules enabled except the off-by-default category.
  static RuleConfig Default();

  /// Every rule enabled (including experimental off-by-default rules).
  static RuleConfig AllEnabled();

  /// Default configuration with the listed rules force-disabled /
  /// force-enabled ("hints", §3.3). Required rules cannot be disabled.
  static RuleConfig WithHints(const std::vector<RuleId>& enable,
                              const std::vector<RuleId>& disable);

  RuleConfig();

  bool IsEnabled(RuleId id) const { return enabled_.Test(id); }
  void Enable(RuleId id);
  /// No-op for required rules.
  void Disable(RuleId id);

  const BitVector256& bits() const { return enabled_; }

  /// Number of enabled non-required rules.
  int EnabledNonRequiredCount() const;

  /// Rules disabled relative to the default configuration.
  std::vector<RuleId> DisabledVsDefault() const;

  uint64_t Hash() const { return enabled_.Hash(); }
  bool operator==(const RuleConfig& other) const { return enabled_ == other.enabled_; }
  bool operator!=(const RuleConfig& other) const { return enabled_ != other.enabled_; }

 private:
  BitVector256 enabled_;
};

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_RULE_CONFIG_H_
