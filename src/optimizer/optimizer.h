// The Cascades-style optimizer driver: exploration (transformation rules to
// fixpoint under budgets), implementation (logical -> physical), and
// cost-based extraction with property enforcement — the SCOPE-like query
// optimizer the steering pipeline operates on.
//
// Compile(job, rule_config) returns the chosen physical plan, its estimated
// cost, and the job's *rule signature* under that configuration — the three
// surfaces the paper's method needs.
#ifndef QSTEER_OPTIMIZER_OPTIMIZER_H_
#define QSTEER_OPTIMIZER_OPTIMIZER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "optimizer/cost_model.h"
#include "optimizer/memo.h"
#include "optimizer/rule_config.h"
#include "optimizer/rule_registry.h"
#include "optimizer/stats.h"
#include "plan/job.h"

namespace qsteer {

struct OptimizerOptions {
  /// Exploration budgets (SCOPE-style caps keep huge DAG jobs tractable).
  int max_exprs_per_group = 12;
  int max_total_exprs = 4000;
  int max_group_alias_copies = 4;

  /// Parallelism search.
  int max_dop = 128;
  double bytes_per_vertex = 2.56e8;  // sizing heuristic: ~256 MB per vertex

  CostParams cost_params = CostParams::OptimizerBeliefs();
};

/// Result of one compilation.
struct CompiledPlan {
  PlanNodePtr root;  // physical plan (DAG; shared fragments are shared)
  double est_cost = 0.0;
  RuleSignature signature;
  double est_output_rows = 0.0;
  int memo_groups = 0;
  int memo_exprs = 0;
};

/// The configuration a job runs with in production: the default plus the
/// customer's rule hints (§3.3).
RuleConfig ProductionConfig(const Job& job);

/// Compile-time budget: a cooperative cancellation token and/or a wall-clock
/// deadline. Both are polled between memo operations, so a pathological
/// exploration (huge DAG under an adversarial configuration) returns
/// kDeadlineExceeded instead of hanging the caller. Default-constructed
/// control imposes no budget.
struct CompileControl {
  /// Cooperative cancellation (e.g., superseded work in a service loop).
  const CancellationToken* cancel = nullptr;
  /// Wall-clock compile budget in seconds; <= 0 means unlimited. Note a
  /// wall-clock budget is inherently nondeterministic under load — use it in
  /// services, not in bit-reproducibility tests.
  double timeout_s = 0.0;

  bool Unbounded() const { return cancel == nullptr && timeout_s <= 0.0; }
};

/// Shares per-job compile artifacts across the many compiles of one job
/// (span probes, the default compile, candidate recompiles). Today it holds
/// the "seed memo": the memo contents right after the normalized input plan
/// was inserted. Normalization depends only on the configuration's
/// normalization-rule bits, so configurations sharing that projection reuse
/// one snapshot (Memo::Clone preserves every GroupId/ExprId, keeping results
/// bit-identical to a from-scratch compile).
///
/// Thread-safe: pipeline workers compiling candidates of the same job share
/// one session. First writer per key wins; concurrent writers compute
/// identical seeds by construction. A session must only ever see one job.
class CompileSession {
 public:
  struct SeedMemo {
    Memo memo;
    GroupId root = kInvalidGroup;
    std::vector<int> normalization_rules;
  };

  /// The seed a configuration maps to: a hash of the configuration's bits
  /// restricted to the rules input normalization consults (kept in sync with
  /// CompileState::NormalizeNode/PushSelectDown).
  static uint64_t NormalizationKey(const RuleConfig& config);

  std::shared_ptr<const SeedMemo> Find(uint64_t key) const;
  void Store(uint64_t key, const Memo& memo, GroupId root,
             const std::vector<int>& normalization_rules);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  mutable Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const SeedMemo>> seeds_ GUARDED_BY(mu_);
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
};

/// Thread-safety: an Optimizer is immutable after construction, and Compile
/// is reentrant — concurrent Compile calls on one `const Optimizer` (same or
/// different jobs, same or different configs) are data-race-free. All
/// mutable per-compilation state (memo, derived-stats cache, extraction
/// cache, rule-provenance log, column-universe overlay) lives in a per-call
/// context on the calling thread; the Catalog and the job's root
/// ColumnUniverse are only read. The parallel steering pipeline
/// (core/pipeline.h) relies on this to fan candidate recompilations out
/// over a thread pool. See DESIGN.md "Threading model".
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog, OptimizerOptions options = {});

  /// Compiles a job under a rule configuration. Fails with
  /// kCompilationFailed when the enabled implementation rules cannot cover
  /// some operator (the paper's "many configurations do not compile").
  ///
  /// Safe to call concurrently from multiple threads (see class comment).
  /// Deterministic: the same (job, config) yields a bit-identical plan no
  /// matter which thread runs it or what other compilations run in
  /// parallel. Rule-minted column ids restart at job.columns->size() for
  /// every call, so the returned plan must be interpreted against
  /// job.columns (ids beyond its size resolve to the canonical derived-
  /// column descriptor — plan/column.h).
  Result<CompiledPlan> Compile(const Job& job, const RuleConfig& config) const;

  /// As above, under a compile budget: returns kDeadlineExceeded when the
  /// control's token is cancelled or its wall-clock budget expires before
  /// optimization finishes (checked between memo operations; a compilation
  /// never hangs on pathological memo growth).
  Result<CompiledPlan> Compile(const Job& job, const RuleConfig& config,
                               const CompileControl& control) const;

  /// As above, sharing per-job artifacts through `session` (may be null).
  /// The session's seed memo skips re-normalizing and re-inserting the
  /// input plan when another compile of the same job already did so under
  /// the same normalization projection; the result is bit-identical to a
  /// sessionless compile.
  Result<CompiledPlan> Compile(const Job& job, const RuleConfig& config,
                               const CompileControl& control, CompileSession* session) const;

  const OptimizerOptions& options() const { return options_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
};

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_OPTIMIZER_H_
