// Rule framework: transformation (logical -> logical) and implementation
// (logical -> physical) rules applied against the memo.
//
// Every rule has a fixed RuleId in [0, 256) assigned by the registry
// (rule_registry.h); the id determines its category and default state.
// Rules report alternatives as OpTree fragments; the optimizer driver
// materializes them into the memo with provenance (rule id + source
// expression) so rule signatures can be logged.
#ifndef QSTEER_OPTIMIZER_RULES_H_
#define QSTEER_OPTIMIZER_RULES_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/memo.h"
#include "optimizer/rule_config.h"

namespace qsteer {

/// A new (sub)expression proposed by a rule: either a reference to an
/// existing memo group (leaf) or a new operator over child fragments.
struct OpTree {
  bool is_leaf = false;
  GroupId leaf_group = kInvalidGroup;
  Operator op;
  std::vector<OpTree> children;

  static OpTree Leaf(GroupId group);
  static OpTree Node(Operator op, std::vector<OpTree> children);
};

/// Inclusive integer match window used to split a rewrite family into
/// genuinely distinct registry variants (e.g. CorrelatedJoinOnUnionAll1..6
/// in SCOPE differ by shape restrictions).
struct IntWindow {
  int lo = 0;
  int hi = 1 << 30;
  bool Contains(int v) const { return v >= lo && v <= hi; }
};

struct RuleContext {
  const Memo* memo = nullptr;
  /// Mutable: rules may mint derived columns (e.g., partial-aggregate
  /// intermediates).
  ColumnUniverse* universe = nullptr;
};

class Rule {
 public:
  Rule(RuleId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Rule() = default;
  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  RuleId id() const { return id_; }
  const std::string& name() const { return name_; }
  RuleCategory category() const { return CategoryOfRule(id_); }

  /// True for implementation rules (logical -> physical).
  virtual bool is_implementation() const { return false; }

  /// Proposes alternative expressions equivalent to `expr` (appended to
  /// `out`). Must not mutate the memo.
  virtual void Apply(const RuleContext& ctx, const GroupExpr& expr,
                     std::vector<OpTree>* out) const = 0;

 private:
  RuleId id_;
  std::string name_;
};

// ---------------------------------------------------------------------------
// Helpers shared by rule implementations
// ---------------------------------------------------------------------------

/// Finds a logical expression of the given kind in a group; kInvalidExpr if
/// none.
ExprId FindLogicalExpr(const Memo& memo, GroupId group, OpKind kind);

/// True when every column of `cols` appears in the group's output columns.
bool GroupProvidesColumns(const Memo& memo, GroupId group, const std::vector<ColumnId>& cols);

// ---------------------------------------------------------------------------
// Transformation rules
// ---------------------------------------------------------------------------

/// Select(Select(x)) -> Select(x) with the conjunction of both predicates.
/// `min_stack` controls the variant: 2 collapses any pair; 3 requires a
/// stack of three (a genuinely distinct, narrower rule variant).
class CollapseSelectsRule : public Rule {
 public:
  CollapseSelectsRule(RuleId id, std::string name, IntWindow stack_window = {2, 1 << 30})
      : Rule(id, std::move(name)), stack_window_(stack_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow stack_window_;
};

/// Select with a trivially-true predicate -> child.
class SelectOnTrueRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Splits a conjunctive Select into a stack of single-conjunct Selects.
class SelectSplitConjunctionRule : public Rule {
 public:
  SelectSplitConjunctionRule(RuleId id, std::string name, IntWindow conjunct_window = {2, 6})
      : Rule(id, std::move(name)), conjunct_window_(conjunct_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow conjunct_window_;
};

/// Canonicalizes a conjunctive predicate by sorting conjuncts (the
/// "SelectPredNormalized" rewrite). Changes estimate backoff ordering only.
class SelectPredNormalizeRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Pushes a Select below a target unary operator (Project, Process, Window,
/// GroupBy, Sample) when the predicate is bound by the grandchild's columns.
class PushSelectBelowUnaryRule : public Rule {
 public:
  PushSelectBelowUnaryRule(RuleId id, std::string name, OpKind target,
                           IntWindow atom_window = {1, 1 << 30})
      : Rule(id, std::move(name)), target_(target), atom_window_(atom_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  OpKind target_;
  /// Variant restriction on the predicate's atom count.
  IntWindow atom_window_;
};

/// Pushes Select conjuncts below a Join to the side(s) that bind them.
/// side: 0 = left only, 1 = right only, 2 = both sides at once.
class PushSelectBelowJoinRule : public Rule {
 public:
  PushSelectBelowJoinRule(RuleId id, std::string name, int side,
                          IntWindow atom_window = {1, 1 << 30})
      : Rule(id, std::move(name)), side_(side), atom_window_(atom_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  int side_;
  IntWindow atom_window_;
};

/// Select(UnionAll(a, b, ...)) -> UnionAll(Select(a), Select(b), ...).
class PushSelectBelowUnionRule : public Rule {
 public:
  PushSelectBelowUnionRule(RuleId id, std::string name, IntWindow branch_window = {2, 1 << 30})
      : Rule(id, std::move(name)), branch_window_(branch_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow branch_window_;
};

/// Merges a Select above a Join into the join's residual predicate.
class MergeSelectIntoJoinRule : public Rule {
 public:
  MergeSelectIntoJoinRule(RuleId id, std::string name, IntWindow key_window = {1, 1 << 30})
      : Rule(id, std::move(name)), key_window_(key_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow key_window_;
};

/// Select(Get) with an equality conjunct on the stream's partition column
/// (column 0) -> Select(Get with reduced partition_fraction). Models
/// SCOPE's SelectPartitions partition-pruning rule.
class SelectPartitionsRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Project(Project(x)) -> Project(x) (composition of pass-through merges).
class ProjectMergeRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Removes a Project that is a pure pass-through of its child's columns.
class RemoveNoopProjectRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Project(UnionAll(...)) -> UnionAll(Project(...), ...) ("SequenceProject
/// on union").
class PushProjectBelowUnionRule : public Rule {
 public:
  PushProjectBelowUnionRule(RuleId id, std::string name, IntWindow branch_window = {2, 1 << 30})
      : Rule(id, std::move(name)), branch_window_(branch_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow branch_window_;
};

/// Join commutativity (inner joins only).
class JoinCommuteRule : public Rule {
 public:
  JoinCommuteRule(RuleId id, std::string name, IntWindow key_window = {1, 1 << 30})
      : Rule(id, std::move(name)), key_window_(key_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow key_window_;
};

/// Join associativity. direction 0: (A⋈B)⋈C -> A⋈(B⋈C);
/// direction 1: A⋈(B⋈C) -> (A⋈B)⋈C. Inner equi-joins only; key/column
/// binding is validated against group outputs.
class JoinAssocRule : public Rule {
 public:
  JoinAssocRule(RuleId id, std::string name, int direction, IntWindow key_window = {1, 1 << 30})
      : Rule(id, std::move(name)), direction_(direction), key_window_(key_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  int direction_;
  IntWindow key_window_;
};

/// GroupBy(UnionAll(...)) -> GroupBy_final(UnionAll(GroupBy_partial(...)))
/// ("GroupbyBelowUnionAll"). Valid for min/max aggregates and count/sum via
/// re-aggregation; this library restricts to duplicate-insensitive and
/// summable aggregates which is all the workload generates.
class PushGroupByBelowUnionRule : public Rule {
 public:
  PushGroupByBelowUnionRule(RuleId id, std::string name, IntWindow branch_window = {2, 1 << 30})
      : Rule(id, std::move(name)), branch_window_(branch_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow branch_window_;
};

/// Eager aggregation below a join ("GroupbyOnJoin"). side 0 pushes into the
/// left input, 1 into the right. Restricted to MIN/MAX aggregates whose
/// arguments come from the pushed side (duplicate-insensitive, so join fan-
/// out cannot corrupt results).
class PushGroupByBelowJoinRule : public Rule {
 public:
  PushGroupByBelowJoinRule(RuleId id, std::string name, int side)
      : Rule(id, std::move(name)), side_(side) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  int side_;
};

/// Splits a GroupBy into partial + final ("PartialAggregation"): the partial
/// half can be implemented shuffle-free (PreHashAgg).
class PartialAggregationRule : public Rule {
 public:
  PartialAggregationRule(RuleId id, std::string name, IntWindow key_window = {1, 1 << 30})
      : Rule(id, std::move(name)), key_window_(key_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow key_window_;
};

/// Canonicalizes GroupBy keys (dedup + sort) — "NormalizeReduce".
class NormalizeReduceRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Join pushdown below UnionAll ("CorrelatedJoinOnUnionAll" family, off by
/// default): Join(UnionAll(a,b,...), R) -> UnionAll(Join(a,R), Join(b,R),..).
/// union_side: 0 = union on the left input, 1 = on the right.
/// Join-type restriction and branch cap distinguish the numbered variants.
class PushJoinBelowUnionRule : public Rule {
 public:
  PushJoinBelowUnionRule(RuleId id, std::string name, int union_side, JoinType only_type,
                         int max_branches = 64)
      : Rule(id, std::move(name)),
        union_side_(union_side),
        only_type_(only_type),
        max_branches_(max_branches) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  int union_side_;
  JoinType only_type_;
  int max_branches_;
};

/// Process(UnionAll(...)) -> UnionAll(Process(...), ...)
/// ("ProcessOnUnionAll"). UDOs are row-wise, so the rewrite is always valid.
class PushProcessBelowUnionRule : public Rule {
 public:
  PushProcessBelowUnionRule(RuleId id, std::string name, IntWindow branch_window = {2, 1 << 30})
      : Rule(id, std::move(name)), branch_window_(branch_window) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  IntWindow branch_window_;
};

/// UnionAll(UnionAll(a,b), c) -> UnionAll(a,b,c).
class UnionFlattenRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Top(UnionAll(...)) -> Top(UnionAll(Top(branch)...)): per-branch limits
/// feed a final Top ("TopNPushdownUnion"; off-by-default aggressive variant
/// pushes below joins too and is represented by a separate never-matching
/// guard in this workload).
class PushTopBelowUnionRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Top(Project(x)) -> Project(Top(x)) when sort keys pass through
/// ("TopOnRestrRemap").
class TopProjectSwapRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Infers an equivalent predicate on the other join side from an equality
/// join key + a select above the join ("PredicateInference"): adds a
/// redundant-but-useful filter conjunct on the opposite key.
class PredicateInferenceRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Pushes a Select below a Process even though the UDO is opaque
/// (off-by-default: unsafe in general, here valid because generated UDOs are
/// row-wise and column-preserving).
class UnsafeSelectBelowProcessRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Select with a disjunctive conjunct: Select(x, a OR b) ->
/// UnionAll(Select(x, a), Select(x, b AND NOT a)) — the branches are
/// disjoint, so bag semantics are preserved ("SelectOrExpansion").
class SelectOrExpansionRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Removes duplicated conjuncts from a Select ("RemoveDupPredicates").
class RemoveDupPredicatesRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Folds literal-vs-literal comparisons that are trivially true out of a
/// conjunction ("ConstantFolding"). Trivially-false conjuncts are left in
/// place (this algebra has no empty-relation operator).
class ConstantFoldingRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// Top(Top(x)) with identical sort keys -> Top(x) with the smaller limit
/// ("TopTopCollapse").
class TopTopCollapseRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;
};

/// A rule whose match pattern involves operators or shapes this workload
/// never produces (rare-feature rules: cube/pivot/spool/recursive variants).
/// It genuinely participates in rule application (and so in configuration
/// search) but never fires — the source of Table 2's "unused rules".
class RareShapeRule : public Rule {
 public:
  RareShapeRule(RuleId id, std::string name, OpKind match_kind)
      : Rule(id, std::move(name)), match_kind_(match_kind) {}
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  OpKind match_kind_;
};

// ---------------------------------------------------------------------------
// Implementation rules
// ---------------------------------------------------------------------------

/// Single-node implementation: clones the logical operator payload into a
/// physical kind. Covers Get/Select/Project/Process/Window/Sample/Output and
/// simple operator families.
class SimpleImplRule : public Rule {
 public:
  SimpleImplRule(RuleId id, std::string name, OpKind logical, OpKind physical)
      : Rule(id, std::move(name)), logical_(logical), physical_(physical) {}
  bool is_implementation() const override { return true; }
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  OpKind logical_;
  OpKind physical_;
};

/// Join implementations. Variants differ by algorithm, build side and match
/// restrictions (join type, key count) — mirroring HashJoinImpl1/2,
/// BroadcastJoinImpl, MergeJoinImpl, LoopJoinImpl, SemiJoin* etc.
class JoinImplRule : public Rule {
 public:
  struct Options {
    OpKind physical = OpKind::kHashJoin;
    int build_side = 0;  // 0 = right, 1 = left
    bool allow_inner = true;
    bool allow_outer = false;
    bool allow_semi = false;
    int max_keys = 8;
    /// Grace-hash style: extra IO, smaller spill penalty (modeled via a
    /// distinct physical cost path is overkill; the flag only gates match
    /// to multi-key joins to keep variants genuinely distinct).
    bool require_multi_key = false;
  };
  JoinImplRule(RuleId id, std::string name, Options options)
      : Rule(id, std::move(name)), options_(options) {}
  bool is_implementation() const override { return true; }
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  Options options_;
};

/// IndexApplyJoin: right input must be a directly scannable Get; the join
/// seeks into the stream per probe row. Variant 2 applies on the left.
class IndexApplyJoinImplRule : public Rule {
 public:
  IndexApplyJoinImplRule(RuleId id, std::string name, int scan_side)
      : Rule(id, std::move(name)), scan_side_(scan_side) {}
  bool is_implementation() const override { return true; }
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  int scan_side_;
};

/// Aggregation implementations (hash / stream / pre-aggregation).
class AggImplRule : public Rule {
 public:
  AggImplRule(RuleId id, std::string name, OpKind physical, bool partial_only,
              int max_keys = 16)
      : Rule(id, std::move(name)),
        physical_(physical),
        partial_only_(partial_only),
        max_keys_(max_keys) {}
  bool is_implementation() const override { return true; }
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  OpKind physical_;
  bool partial_only_;
  int max_keys_;
};

/// UnionAll implementations: physical concat, or the metadata-only
/// VirtualDataset (children must all be scan-implementable groups of the
/// same stream set; `require_same_partition_count` marks the stricter
/// variant).
class UnionImplRule : public Rule {
 public:
  UnionImplRule(RuleId id, std::string name, OpKind physical,
                bool require_same_partition_count = false)
      : Rule(id, std::move(name)),
        physical_(physical),
        require_same_partitions_(require_same_partition_count) {}
  bool is_implementation() const override { return true; }
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  OpKind physical_;
  bool require_same_partitions_;
};

/// Top-N implementations.
class TopImplRule : public Rule {
 public:
  TopImplRule(RuleId id, std::string name, OpKind physical, int64_t max_limit = 1 << 30)
      : Rule(id, std::move(name)), physical_(physical), max_limit_(max_limit) {}
  bool is_implementation() const override { return true; }
  void Apply(const RuleContext& ctx, const GroupExpr& expr,
             std::vector<OpTree>* out) const override;

 private:
  OpKind physical_;
  int64_t max_limit_;
};

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_RULES_H_
