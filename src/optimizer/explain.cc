#include "optimizer/explain.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <unordered_map>

#include "optimizer/cost_model.h"
#include "optimizer/rule_registry.h"
#include "optimizer/stats.h"

namespace qsteer {

namespace {

std::string HumanRows(double rows) {
  char buf[32];
  if (rows >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fB", rows / 1e9);
  } else if (rows >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", rows / 1e6);
  } else if (rows >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", rows / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", rows);
  }
  return buf;
}

}  // namespace

std::string ExplainPlan(const Catalog& catalog, const Job& job, const CompiledPlan& plan,
                        const ExplainOptions& options) {
  EstimatedStatsView est(&catalog, job.columns.get(), job.day);
  TrueStatsView truth(&catalog, &job);
  CostParams params = CostParams::OptimizerBeliefs();

  // Bottom-up stats for both views.
  std::unordered_map<const PlanNode*, LogicalStats> est_stats, true_stats;
  VisitPlan(plan.root, [&](const PlanNode& node) {
    std::vector<const LogicalStats*> est_children, true_children;
    for (const PlanNodePtr& child : node.children) {
      est_children.push_back(&est_stats[child.get()]);
      true_children.push_back(&true_stats[child.get()]);
    }
    est_stats[&node] = DeriveStats(node.op, est_children, est);
    if (options.show_true_rows) {
      true_stats[&node] = DeriveStats(node.op, true_children, truth);
    }
  });

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "estimated cost: %.2f   memo: %d groups / %d exprs\n",
                plan.est_cost, plan.memo_groups, plan.memo_exprs);
  out += line;

  std::unordered_map<const PlanNode*, int> ids;
  std::function<void(const PlanNodePtr&, int)> render = [&](const PlanNodePtr& node,
                                                            int depth) {
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    auto it = ids.find(node.get());
    if (it != ids.end()) {
      out += indent + "@" + std::to_string(it->second) + " (shared)\n";
      return;
    }
    int id = static_cast<int>(ids.size());
    ids[node.get()] = id;

    std::vector<const LogicalStats*> est_children;
    for (const PlanNodePtr& child : node->children) {
      est_children.push_back(&est_stats[child.get()]);
    }
    OpCost local = ComputeOpCost(node->op, est_stats[node.get()], est_children,
                                 std::max(1, node->op.dop), params, est);

    out += indent + "@" + std::to_string(id) + " " + node->op.ToString();
    std::string rows_text = "  est_rows=" + HumanRows(est_stats[node.get()].rows);
    if (options.show_true_rows) {
      rows_text += " true_rows=" + HumanRows(true_stats[node.get()].rows);
    }
    std::snprintf(line, sizeof(line), "%s local_cost=%.3f\n", rows_text.c_str(),
                  local.latency);
    out += line;
    for (const PlanNodePtr& child : node->children) render(child, depth + 1);
  };
  render(plan.root, 0);

  if (options.show_signature) {
    const RuleRegistry& registry = RuleRegistry::Instance();
    out += "rule signature (" + std::to_string(plan.signature.Count()) + "): ";
    bool first = true;
    for (int id : plan.signature.ToIndices()) {
      if (!first) out += ", ";
      out += registry.name(id);
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace qsteer
