// Physical properties: how a plan fragment's output is distributed across
// vertices (partitioning scheme + degree of parallelism) and ordered.
// Property requests drive enforcer placement (Exchange, Sort) during
// cost-based optimization, exactly as in Cascades-style engines.
#ifndef QSTEER_OPTIMIZER_PROPERTIES_H_
#define QSTEER_OPTIMIZER_PROPERTIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/column.h"

namespace qsteer {

enum class PartScheme : uint8_t {
  /// Request-side only: any distribution is acceptable.
  kAny,
  /// Round-robin / unknown partitioning (what scans deliver).
  kRandom,
  /// Hash partitioned on `keys` across `dop` partitions.
  kHash,
  /// All rows on a single vertex.
  kSingleton,
  /// Full copy of the data on each of `dop` vertices.
  kBroadcast,
};

/// A required or delivered physical property.
struct PhysProp {
  PartScheme scheme = PartScheme::kAny;
  std::vector<ColumnId> part_keys;
  /// Required/delivered sort order; satisfaction is prefix-based.
  std::vector<ColumnId> sort_keys;
  /// Partition count. 0 on the request side means "optimizer's choice".
  int dop = 0;

  static PhysProp Any() { return PhysProp{}; }
  static PhysProp Hash(std::vector<ColumnId> keys, int dop);
  static PhysProp Singleton();
  static PhysProp Broadcast(int dop);

  /// True when a fragment delivering `delivered` satisfies this request.
  bool SatisfiedBy(const PhysProp& delivered) const;

  /// True when `delivered`'s sort order satisfies this request's.
  bool SortSatisfiedBy(const PhysProp& delivered) const;

  /// Hashable key for winner memoization.
  uint64_t Key() const;

  std::string ToString() const;
};

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_PROPERTIES_H_
