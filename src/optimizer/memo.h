// The Cascades memo: groups of equivalent expressions with provenance
// tracking. Provenance (which rule created each expression, derived from
// which source expression) is what lets the optimizer log *rule signatures* —
// the paper's central instrumentation ("we modified the SCOPE optimizer to
// log which rule contributes to any component of the final query plan").
#ifndef QSTEER_OPTIMIZER_MEMO_H_
#define QSTEER_OPTIMIZER_MEMO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/small_vector.h"
#include "optimizer/properties.h"
#include "plan/job.h"
#include "plan/operator.h"

namespace qsteer {

using GroupId = int32_t;
using ExprId = int32_t;
constexpr GroupId kInvalidGroup = -1;
constexpr ExprId kInvalidExpr = -1;

/// Child-group list of a memo expression. Nearly every operator has <= 4
/// inputs (only wide UnionAll fan-ins spill to the heap), so child lists
/// stay inline and the AddExpr hot path avoids a heap allocation per
/// expression.
using ChildVec = SmallVector<GroupId, 4>;

/// Sentinel for "compute op.Hash(false) yourself" in AddExpr.
constexpr uint64_t kNoOpHash = ~0ull;

struct GroupExpr {
  Operator op;
  ChildVec children;
  /// op.Hash(/*for_template=*/false), computed once at insertion. Dedup
  /// probes and group-alias copies re-use it instead of re-hashing the
  /// operator payload (the old hot-path cost of every AddExpr).
  uint64_t op_hash = 0;
  GroupId group = kInvalidGroup;
  /// Rule that created this expression; -1 for expressions of the initial
  /// (input) plan.
  int rule_id = -1;
  /// Expression this one was derived from (rewrite source / logical
  /// expression an implementation rule implemented); -1 for initial ones.
  ExprId source_expr = kInvalidExpr;
  bool is_logical = true;
};

/// Best implementation found for a (group, required property) pair.
struct Winner {
  ExprId expr = kInvalidExpr;
  double cost = 0.0;
  /// Chosen degree of parallelism for the winning expression.
  int dop = 1;
  /// Property requests issued to each child.
  std::vector<PhysProp> child_requests;
  /// Property the winning expression itself delivers (before enforcers).
  PhysProp delivered;
  /// Enforcer operators applied on top (bottom-up order), if any.
  std::vector<Operator> enforcers;
  bool valid = false;
};

struct Group {
  std::vector<ExprId> exprs;
  /// Sorted output column ids.
  std::vector<ColumnId> output_columns;
  /// Representative logical expression: the first logical expression the
  /// group ever contained. Statistics are derived from it, which makes
  /// estimates shape-sensitive across rule configurations (paper §5.3).
  ExprId representative = kInvalidExpr;

  // Lazily derived logical statistics (estimated by the optimizer).
  bool stats_derived = false;
  double est_rows = 0.0;
  double est_width = 8.0;
  std::unordered_map<ColumnId, double> est_ndv;

  // Winner table keyed by PhysProp::Key().
  std::unordered_map<uint64_t, Winner> winners;
};

class Memo {
 public:
  Memo() = default;
  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;
  Memo(Memo&&) = default;
  Memo& operator=(Memo&&) = default;

  /// Copies a logical plan DAG into the memo (deduplicating shared
  /// subtrees) and returns the root group.
  GroupId Insert(const PlanNodePtr& root);

  /// Adds an expression. If an identical (op, children) expression already
  /// exists anywhere, returns it unchanged (its group may differ from
  /// `target_group`; callers must check). Otherwise creates the expression
  /// in `target_group`, or in a fresh group when `target_group` is
  /// kInvalidGroup. `op_hash` may carry a precomputed op.Hash(false) (e.g.
  /// when aliasing an existing expression); kNoOpHash computes it here.
  ExprId AddExpr(Operator op, ChildVec children, GroupId target_group, int rule_id,
                 ExprId source_expr, uint64_t op_hash = kNoOpHash);

  const Group& group(GroupId id) const { return groups_[static_cast<size_t>(id)]; }
  Group& group(GroupId id) { return groups_[static_cast<size_t>(id)]; }
  const GroupExpr& expr(ExprId id) const { return exprs_[static_cast<size_t>(id)]; }
  GroupExpr& expr(ExprId id) { return exprs_[static_cast<size_t>(id)]; }

  int num_groups() const { return static_cast<int>(groups_.size()); }
  int num_exprs() const { return static_cast<int>(exprs_.size()); }

  /// Collects the transitive provenance rule ids of an expression: the rule
  /// that produced it plus the provenance of everything it was derived from.
  void CollectProvenance(ExprId id, std::vector<int>* rule_ids) const;

  /// Deep copy, preserving every GroupId/ExprId assignment exactly. The
  /// compile session's "seed memo" snapshot clones the freshly inserted
  /// logical plan once per normalization projection instead of re-running
  /// Insert for every candidate compile of a job.
  Memo Clone() const;

 private:
  static uint64_t ExprKey(uint64_t op_hash, const ChildVec& children);
  GroupId InsertNode(const PlanNode* node,
                     std::unordered_map<const PlanNode*, GroupId>* visited);

  std::vector<Group> groups_;
  std::vector<GroupExpr> exprs_;
  std::unordered_map<uint64_t, ExprId> dedup_;
};

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_MEMO_H_
