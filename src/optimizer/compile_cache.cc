#include "optimizer/compile_cache.h"

#include <algorithm>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/file_io.h"
#include "plan/serde.h"

namespace qsteer {

namespace {

int RoundUpPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Rough resident-size estimate of a cache entry: bookkeeping plus the plan
// DAG. PlanNode carries an Operator (payload vectors, strings) and a child
// vector; 384 bytes/node is a deliberate overestimate so the byte budget errs
// toward evicting early rather than blowing past --compile-cache-mb.
int64_t EstimateBytes(const Result<CompiledPlan>& result) {
  int64_t bytes = 512;  // entry bookkeeping, key, LRU node, hash slot
  if (result.ok()) {
    int nodes = 0;
    VisitPlan(result.value().root, [&nodes](const PlanNode&) { ++nodes; });
    bytes += static_cast<int64_t>(nodes) * 384;
  } else {
    bytes += static_cast<int64_t>(result.status().message().size());
  }
  return bytes;
}

}  // namespace

std::string CompileCacheStats::ToString() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " hit_rate=" << HitRate()
     << " inserts=" << inserts << " evictions=" << evictions << " entries=" << entries
     << " bytes=" << bytes << " shard_contention=" << shard_contention
     << " warm_loaded=" << warm_loaded << " warm_rejected=" << warm_rejected;
  return os.str();
}

CompileCache::CompileCache(CompileCacheOptions options) : options_(options) {
  int shards = RoundUpPow2(options_.shards < 1 ? 1 : options_.shards);
  options_.shards = shards;
  per_shard_capacity_ =
      options_.capacity_bytes > 0 ? options_.capacity_bytes / shards : 0;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

CompileCache::Shard& CompileCache::ShardFor(uint64_t key_hash) const {
  // Entries map by the raw key hash; pick the shard from independent (high)
  // bits so one shard's map doesn't see a systematically truncated key space.
  uint64_t mixed = Mix64(key_hash);
  return *shards_[static_cast<size_t>(mixed & static_cast<uint64_t>(options_.shards - 1))];
}

void CompileCache::AcquireShard(Shard& shard) const {
  if (!shard.mu.TryLock()) {
    contention_.fetch_add(1, std::memory_order_relaxed);
    shard.mu.Lock();
  }
}

std::optional<Result<CompiledPlan>> CompileCache::Lookup(const Key& key) {
  const uint64_t hash = key.Hash();
  Shard& shard = ShardFor(hash);
  AcquireShard(shard);
  MutexLock lock(shard.mu, kAdoptLock);
  auto it = shard.entries.find(hash);
  if (it == shard.entries.end() || !(it->second.key == key)) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  const Entry& entry = it->second;
  if (entry.ok) return Result<CompiledPlan>(entry.plan);
  return Result<CompiledPlan>(Status::CompilationFailed(entry.error_message));
}

void CompileCache::Insert(const Key& key, const Result<CompiledPlan>& result) {
  if (per_shard_capacity_ <= 0) return;
  // Only deterministic outcomes are cacheable: a successful plan, or the
  // permanent "configuration cannot cover some operator" failure. Timeouts
  // and cancellations depend on load, not on the key.
  if (!result.ok() && result.status().code() != StatusCode::kCompilationFailed) return;

  const uint64_t hash = key.Hash();
  Shard& shard = ShardFor(hash);
  AcquireShard(shard);
  MutexLock lock(shard.mu, kAdoptLock);
  if (shard.entries.count(hash) > 0) return;  // first writer wins

  Entry entry;
  entry.key = key;
  entry.ok = result.ok();
  if (result.ok()) {
    entry.plan = result.value();
  } else {
    entry.error_message = result.status().message();
  }
  entry.bytes = EstimateBytes(result);
  if (entry.bytes > per_shard_capacity_) return;  // would evict everything

  shard.lru.push_front(hash);
  entry.lru_pos = shard.lru.begin();
  shard.bytes += entry.bytes;
  shard.entries.emplace(hash, std::move(entry));
  ++shard.inserts;

  while (shard.bytes > per_shard_capacity_ && !shard.lru.empty()) {
    uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.entries.find(victim);
    shard.bytes -= vit->second.bytes;
    shard.entries.erase(vit);
    ++shard.evictions;
  }
}

CompileCacheStats CompileCache::stats() const {
  CompileCacheStats stats;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    AcquireShard(shard);
    MutexLock lock(shard.mu, kAdoptLock);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.evictions += shard.evictions;
    stats.entries += static_cast<int64_t>(shard.entries.size());
    stats.bytes += shard.bytes;
  }
  stats.shard_contention = contention_.load(std::memory_order_relaxed);
  stats.warm_loaded = warm_loaded_.load(std::memory_order_relaxed);
  stats.warm_rejected = warm_rejected_.load(std::memory_order_relaxed);
  return stats;
}

namespace {

/// Version-tagged text header ahead of the binary entry records. Bumping the
/// version (incompatible serde change) makes every older file reject cleanly.
constexpr char kCacheFileHeader[] = "qsteer-compile-cache v1\n";
constexpr size_t kCacheFileHeaderLen = sizeof(kCacheFileHeader) - 1;
constexpr size_t kHexKeyLen = 64;  // BitVector256::ToHexString length

}  // namespace

Status CompileCache::SaveToFile(const std::string& path, int day, bool sync) const {
  struct Saved {
    Key key;
    bool ok = false;
    CompiledPlan plan;
    std::string error_message;
  };
  std::vector<Saved> saved;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    AcquireShard(shard);
    MutexLock lock(shard.mu, kAdoptLock);
    for (const auto& [hash, entry] : shard.entries) {
      (void)hash;
      saved.push_back(Saved{entry.key, entry.ok, entry.plan, entry.error_message});
    }
  }
  // Deterministic bytes: two caches with equal contents serialize identically
  // regardless of shard hash order or insertion history.
  std::sort(saved.begin(), saved.end(), [](const Saved& a, const Saved& b) {
    if (a.key.fingerprint != b.key.fingerprint) return a.key.fingerprint < b.key.fingerprint;
    return a.key.projected < b.key.projected;
  });

  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(day));
  writer.PutU64(static_cast<uint64_t>(saved.size()));
  for (const Saved& s : saved) {
    writer.PutU64(s.key.fingerprint);
    writer.PutString(s.key.projected.ToHexString());
    writer.PutU8(s.ok ? 1 : 0);
    if (s.ok) {
      SerializePlan(s.plan.root, &writer);
      writer.PutDouble(s.plan.est_cost);
      writer.PutString(s.plan.signature.ToHexString());
      writer.PutDouble(s.plan.est_output_rows);
      writer.PutI32(s.plan.memo_groups);
      writer.PutI32(s.plan.memo_exprs);
    } else {
      writer.PutString(s.error_message);
    }
  }
  return WriteFileChecksummed(path, kCacheFileHeader + writer.Take(), sync);
}

Status CompileCache::WarmFromFile(const std::string& path, int expected_day, int64_t* loaded) {
  if (loaded != nullptr) *loaded = 0;
  auto reject = [this](Status status) {
    warm_rejected_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };

  bool had_checksum = false;
  Result<std::string> read = ReadFileChecksummed(path, &had_checksum);
  if (!read.ok()) return reject(read.status());
  const std::string& content = read.value();
  if (!had_checksum) {
    return reject(
        Status::InvalidArgument("compile-cache file has no crc32 footer: " + path));
  }
  if (content.size() < kCacheFileHeaderLen ||
      content.compare(0, kCacheFileHeaderLen, kCacheFileHeader) != 0) {
    return reject(
        Status::FailedPrecondition("unknown compile-cache version tag: " + path));
  }

  ByteReader reader(std::string_view(content).substr(kCacheFileHeaderLen));
  uint32_t day = 0;
  Status st = reader.GetU32(&day);
  if (!st.ok()) return reject(st);
  if (expected_day >= 0 && static_cast<int>(day) != expected_day) {
    return reject(Status::FailedPrecondition(
        "compile-cache day mismatch (statistics change daily): " + path));
  }
  uint64_t count = 0;
  st = reader.GetU64(&count);
  if (!st.ok()) return reject(st);
  // Each entry occupies at least fingerprint + key length prefix + ok byte.
  if (count > reader.remaining()) {
    return reject(Status::InvalidArgument("compile-cache entry count exceeds file size"));
  }

  int64_t inserted = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Key key;
    st = reader.GetU64(&key.fingerprint);
    if (!st.ok()) return reject(st);
    std::string projected_hex;
    st = reader.GetString(&projected_hex);
    if (!st.ok()) return reject(st);
    if (projected_hex.size() != kHexKeyLen) {
      return reject(Status::InvalidArgument("compile-cache key is not 64 hex digits"));
    }
    key.projected = BitVector256::FromHexString(projected_hex);
    // FromHexString yields all-zero on malformed input — disambiguate from a
    // legal all-zero projection by re-encoding.
    if (key.projected.ToHexString() != projected_hex) {
      return reject(Status::InvalidArgument("compile-cache key has non-hex digits"));
    }
    uint8_t ok = 0;
    st = reader.GetU8(&ok);
    if (!st.ok()) return reject(st);
    if (ok > 1) return reject(Status::InvalidArgument("compile-cache entry flag corrupt"));

    if (ok == 1) {
      CompiledPlan plan;
      Result<PlanNodePtr> root = DeserializePlan(&reader);
      if (!root.ok()) return reject(root.status());
      plan.root = std::move(root.value());
      if (plan.root == nullptr) {
        return reject(Status::InvalidArgument("compile-cache entry has a null plan"));
      }
      st = reader.GetDouble(&plan.est_cost);
      if (!st.ok()) return reject(st);
      std::string signature_hex;
      st = reader.GetString(&signature_hex);
      if (!st.ok()) return reject(st);
      if (signature_hex.size() != kHexKeyLen) {
        return reject(Status::InvalidArgument("compile-cache signature is not 64 hex digits"));
      }
      plan.signature = BitVector256::FromHexString(signature_hex);
      if (plan.signature.ToHexString() != signature_hex) {
        return reject(Status::InvalidArgument("compile-cache signature has non-hex digits"));
      }
      st = reader.GetDouble(&plan.est_output_rows);
      if (!st.ok()) return reject(st);
      st = reader.GetI32(&plan.memo_groups);
      if (!st.ok()) return reject(st);
      st = reader.GetI32(&plan.memo_exprs);
      if (!st.ok()) return reject(st);
      Insert(key, Result<CompiledPlan>(std::move(plan)));
    } else {
      std::string error_message;
      st = reader.GetString(&error_message);
      if (!st.ok()) return reject(st);
      Insert(key, Result<CompiledPlan>(Status::CompilationFailed(error_message)));
    }
    ++inserted;
  }
  if (!reader.AtEnd()) {
    return reject(Status::InvalidArgument("compile-cache file has trailing bytes"));
  }

  warm_loaded_.fetch_add(inserted, std::memory_order_relaxed);
  if (loaded != nullptr) *loaded = inserted;
  return Status::OK();
}

uint64_t JobFingerprint(const Job& job) {
  uint64_t h = PlanHash(job.root, /*for_template=*/false);
  h = HashCombine(h, static_cast<uint64_t>(job.day));
  h = HashCombine(h, job.columns != nullptr ? static_cast<uint64_t>(job.columns->size()) : 0);
  return h;
}

BitVector256 ProjectConfig(const RuleConfig& config, const BitVector256& span) {
  return config.bits().And(span);
}

Result<CompiledPlan> CachingCompiler::Compile(const Job& job, const RuleConfig& config) const {
  if (cache_ == nullptr) {
    return optimizer_->Compile(job, config, CompileControl{}, session_);
  }
  CompileCache::Key key{fingerprint_, config.bits()};
  if (std::optional<Result<CompiledPlan>> cached = cache_->Lookup(key)) {
    return std::move(*cached);
  }
  Result<CompiledPlan> result = optimizer_->Compile(job, config, CompileControl{}, session_);
  cache_->Insert(key, result);
  return result;
}

}  // namespace qsteer
