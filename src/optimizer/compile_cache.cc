#include "optimizer/compile_cache.h"

#include <sstream>
#include <utility>

namespace qsteer {

namespace {

int RoundUpPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Rough resident-size estimate of a cache entry: bookkeeping plus the plan
// DAG. PlanNode carries an Operator (payload vectors, strings) and a child
// vector; 384 bytes/node is a deliberate overestimate so the byte budget errs
// toward evicting early rather than blowing past --compile-cache-mb.
int64_t EstimateBytes(const Result<CompiledPlan>& result) {
  int64_t bytes = 512;  // entry bookkeeping, key, LRU node, hash slot
  if (result.ok()) {
    int nodes = 0;
    VisitPlan(result.value().root, [&nodes](const PlanNode&) { ++nodes; });
    bytes += static_cast<int64_t>(nodes) * 384;
  } else {
    bytes += static_cast<int64_t>(result.status().message().size());
  }
  return bytes;
}

}  // namespace

std::string CompileCacheStats::ToString() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " hit_rate=" << HitRate()
     << " inserts=" << inserts << " evictions=" << evictions << " entries=" << entries
     << " bytes=" << bytes << " shard_contention=" << shard_contention;
  return os.str();
}

CompileCache::CompileCache(CompileCacheOptions options) : options_(options) {
  int shards = RoundUpPow2(options_.shards < 1 ? 1 : options_.shards);
  options_.shards = shards;
  per_shard_capacity_ =
      options_.capacity_bytes > 0 ? options_.capacity_bytes / shards : 0;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

CompileCache::Shard& CompileCache::ShardFor(uint64_t key_hash) const {
  // Entries map by the raw key hash; pick the shard from independent (high)
  // bits so one shard's map doesn't see a systematically truncated key space.
  uint64_t mixed = Mix64(key_hash);
  return *shards_[static_cast<size_t>(mixed & static_cast<uint64_t>(options_.shards - 1))];
}

void CompileCache::AcquireShard(Shard& shard) const {
  if (!shard.mu.TryLock()) {
    contention_.fetch_add(1, std::memory_order_relaxed);
    shard.mu.Lock();
  }
}

std::optional<Result<CompiledPlan>> CompileCache::Lookup(const Key& key) {
  const uint64_t hash = key.Hash();
  Shard& shard = ShardFor(hash);
  AcquireShard(shard);
  MutexLock lock(shard.mu, kAdoptLock);
  auto it = shard.entries.find(hash);
  if (it == shard.entries.end() || !(it->second.key == key)) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  const Entry& entry = it->second;
  if (entry.ok) return Result<CompiledPlan>(entry.plan);
  return Result<CompiledPlan>(Status::CompilationFailed(entry.error_message));
}

void CompileCache::Insert(const Key& key, const Result<CompiledPlan>& result) {
  if (per_shard_capacity_ <= 0) return;
  // Only deterministic outcomes are cacheable: a successful plan, or the
  // permanent "configuration cannot cover some operator" failure. Timeouts
  // and cancellations depend on load, not on the key.
  if (!result.ok() && result.status().code() != StatusCode::kCompilationFailed) return;

  const uint64_t hash = key.Hash();
  Shard& shard = ShardFor(hash);
  AcquireShard(shard);
  MutexLock lock(shard.mu, kAdoptLock);
  if (shard.entries.count(hash) > 0) return;  // first writer wins

  Entry entry;
  entry.key = key;
  entry.ok = result.ok();
  if (result.ok()) {
    entry.plan = result.value();
  } else {
    entry.error_message = result.status().message();
  }
  entry.bytes = EstimateBytes(result);
  if (entry.bytes > per_shard_capacity_) return;  // would evict everything

  shard.lru.push_front(hash);
  entry.lru_pos = shard.lru.begin();
  shard.bytes += entry.bytes;
  shard.entries.emplace(hash, std::move(entry));
  ++shard.inserts;

  while (shard.bytes > per_shard_capacity_ && !shard.lru.empty()) {
    uint64_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.entries.find(victim);
    shard.bytes -= vit->second.bytes;
    shard.entries.erase(vit);
    ++shard.evictions;
  }
}

CompileCacheStats CompileCache::stats() const {
  CompileCacheStats stats;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    AcquireShard(shard);
    MutexLock lock(shard.mu, kAdoptLock);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.evictions += shard.evictions;
    stats.entries += static_cast<int64_t>(shard.entries.size());
    stats.bytes += shard.bytes;
  }
  stats.shard_contention = contention_.load(std::memory_order_relaxed);
  return stats;
}

uint64_t JobFingerprint(const Job& job) {
  uint64_t h = PlanHash(job.root, /*for_template=*/false);
  h = HashCombine(h, static_cast<uint64_t>(job.day));
  h = HashCombine(h, job.columns != nullptr ? static_cast<uint64_t>(job.columns->size()) : 0);
  return h;
}

BitVector256 ProjectConfig(const RuleConfig& config, const BitVector256& span) {
  return config.bits().And(span);
}

Result<CompiledPlan> CachingCompiler::Compile(const Job& job, const RuleConfig& config) const {
  if (cache_ == nullptr) {
    return optimizer_->Compile(job, config, CompileControl{}, session_);
  }
  CompileCache::Key key{fingerprint_, config.bits()};
  if (std::optional<Result<CompiledPlan>> cached = cache_->Lookup(key)) {
    return std::move(*cached);
  }
  Result<CompiledPlan> result = optimizer_->Compile(job, config, CompileControl{}, session_);
  cache_->Insert(key, result);
  return result;
}

}  // namespace qsteer
