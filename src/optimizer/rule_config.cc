#include "optimizer/rule_config.h"

namespace qsteer {

RuleCategory CategoryOfRule(RuleId id) {
  if (id < kOffByDefaultBegin) return RuleCategory::kRequired;
  if (id < kOnByDefaultBegin) return RuleCategory::kOffByDefault;
  if (id < kImplementationBegin) return RuleCategory::kOnByDefault;
  return RuleCategory::kImplementation;
}

const char* RuleCategoryName(RuleCategory category) {
  switch (category) {
    case RuleCategory::kRequired:
      return "Required";
    case RuleCategory::kOffByDefault:
      return "Off-by-default";
    case RuleCategory::kOnByDefault:
      return "On-by-default";
    case RuleCategory::kImplementation:
      return "Implementation";
  }
  return "?";
}

RuleConfig::RuleConfig() {
  enabled_ = BitVector256::AllSet();
  for (RuleId id = kOffByDefaultBegin; id < kOffByDefaultBegin + kNumOffByDefault; ++id) {
    enabled_.Reset(id);
  }
}

RuleConfig RuleConfig::Default() { return RuleConfig(); }

RuleConfig RuleConfig::AllEnabled() {
  RuleConfig config;
  config.enabled_ = BitVector256::AllSet();
  return config;
}

RuleConfig RuleConfig::WithHints(const std::vector<RuleId>& enable,
                                 const std::vector<RuleId>& disable) {
  RuleConfig config = Default();
  for (RuleId id : enable) config.Enable(id);
  for (RuleId id : disable) config.Disable(id);
  return config;
}

void RuleConfig::Enable(RuleId id) {
  if (id >= 0 && id < kNumRules) enabled_.Set(id);
}

void RuleConfig::Disable(RuleId id) {
  if (id < 0 || id >= kNumRules) return;
  if (CategoryOfRule(id) == RuleCategory::kRequired) return;
  enabled_.Reset(id);
}

int RuleConfig::EnabledNonRequiredCount() const {
  int count = 0;
  for (RuleId id = kNumRequired; id < kNumRules; ++id) {
    if (enabled_.Test(id)) ++count;
  }
  return count;
}

std::vector<RuleId> RuleConfig::DisabledVsDefault() const {
  RuleConfig def = Default();
  std::vector<RuleId> out;
  for (RuleId id = 0; id < kNumRules; ++id) {
    if (def.IsEnabled(id) && !IsEnabled(id)) out.push_back(id);
  }
  return out;
}

}  // namespace qsteer
