#include "optimizer/properties.h"

#include "common/hash.h"

namespace qsteer {

PhysProp PhysProp::Hash(std::vector<ColumnId> keys, int dop) {
  PhysProp p;
  p.scheme = PartScheme::kHash;
  p.part_keys = std::move(keys);
  p.dop = dop;
  return p;
}

PhysProp PhysProp::Singleton() {
  PhysProp p;
  p.scheme = PartScheme::kSingleton;
  p.dop = 1;
  return p;
}

PhysProp PhysProp::Broadcast(int dop) {
  PhysProp p;
  p.scheme = PartScheme::kBroadcast;
  p.dop = dop;
  return p;
}

bool PhysProp::SortSatisfiedBy(const PhysProp& delivered) const {
  if (sort_keys.empty()) return true;
  if (delivered.sort_keys.size() < sort_keys.size()) return false;
  for (size_t i = 0; i < sort_keys.size(); ++i) {
    if (delivered.sort_keys[i] != sort_keys[i]) return false;
  }
  return true;
}

bool PhysProp::SatisfiedBy(const PhysProp& delivered) const {
  if (!SortSatisfiedBy(delivered)) return false;
  switch (scheme) {
    case PartScheme::kAny:
      return true;
    case PartScheme::kRandom:
      // A request never asks for kRandom explicitly; treat as kAny.
      return true;
    case PartScheme::kSingleton:
      return delivered.scheme == PartScheme::kSingleton;
    case PartScheme::kBroadcast:
      return delivered.scheme == PartScheme::kBroadcast &&
             (dop == 0 || delivered.dop == dop);
    case PartScheme::kHash: {
      // Singleton data trivially satisfies any hash partitioning.
      if (delivered.scheme == PartScheme::kSingleton) return true;
      if (delivered.scheme != PartScheme::kHash) return false;
      if (dop != 0 && delivered.dop != dop) return false;
      return delivered.part_keys == part_keys;
    }
  }
  return false;
}

uint64_t PhysProp::Key() const {
  uint64_t h = Mix64(static_cast<uint64_t>(scheme) * 0x51 + 3);
  for (ColumnId c : part_keys) h = HashCombine(h, static_cast<uint64_t>(c) + 1);
  h = HashCombine(h, 0xbeef);
  for (ColumnId c : sort_keys) h = HashCombine(h, static_cast<uint64_t>(c) + 1);
  h = HashCombine(h, static_cast<uint64_t>(dop));
  return h;
}

std::string PhysProp::ToString() const {
  std::string out;
  switch (scheme) {
    case PartScheme::kAny:
      out = "any";
      break;
    case PartScheme::kRandom:
      out = "random";
      break;
    case PartScheme::kHash: {
      out = "hash(";
      for (size_t i = 0; i < part_keys.size(); ++i) {
        if (i > 0) out += ",";
        out += "c" + std::to_string(part_keys[i]);
      }
      out += ")";
      break;
    }
    case PartScheme::kSingleton:
      out = "singleton";
      break;
    case PartScheme::kBroadcast:
      out = "broadcast";
      break;
  }
  if (dop > 0) out += "@" + std::to_string(dop);
  if (!sort_keys.empty()) {
    out += " sorted(";
    for (size_t i = 0; i < sort_keys.size(); ++i) {
      if (i > 0) out += ",";
      out += "c" + std::to_string(sort_keys[i]);
    }
    out += ")";
  }
  return out;
}

}  // namespace qsteer
