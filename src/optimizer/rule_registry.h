// The full registry of the optimizer's 256 rules (paper Table 2):
//   37 Required, 46 Off-by-default, 141 On-by-default, 32 Implementation.
//
// Three kinds of entries:
//  * real transformation/implementation rules (Rule subclasses from
//    rules.h) that participate in exploration and implementation;
//  * enforcer/marker rules: correctness glue the optimizer applies itself
//    (exchanges, sorts, parallelism assignment, schema validation); they
//    cannot be disabled and are attributed in rule signatures when the
//    plan feature they govern appears;
//  * rare-feature rules whose match patterns this workload never produces —
//    the honest source of Table 2's "unused rules".
#ifndef QSTEER_OPTIMIZER_RULE_REGISTRY_H_
#define QSTEER_OPTIMIZER_RULE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "optimizer/rules.h"

namespace qsteer {

/// Well-known rule ids referenced by the optimizer driver.
namespace rules {
// Required implementation / enforcer rules.
constexpr RuleId kBuildOutput = 0;
constexpr RuleId kGetToRange = 1;
constexpr RuleId kSelectToFilter = 2;
constexpr RuleId kProjectToCompute = 3;
constexpr RuleId kProcessToVertex = 4;
constexpr RuleId kEnforceExchange = 5;
constexpr RuleId kEnforceSort = 6;
constexpr RuleId kEnforceGather = 7;
constexpr RuleId kEnforceBroadcast = 8;
// Required markers attributed from final-plan features.
constexpr RuleId kAssignParallelism = 9;
constexpr RuleId kInitialPartitioning = 10;
constexpr RuleId kSerializeOutput = 11;
constexpr RuleId kNormalizePredicates = 12;
constexpr RuleId kResolveUdoSchema = 13;
constexpr RuleId kWindowToSegment = 14;
constexpr RuleId kSampleToScan = 15;
constexpr RuleId kValidateUnionSchema = 16;
constexpr RuleId kEnforceRowLimit = 17;
constexpr RuleId kAggOutputNormalize = 19;
constexpr RuleId kJoinKeyTypeCheck = 20;
constexpr RuleId kUnionBranchValidate = 21;
constexpr RuleId kIndexGetToSeek = 23;
constexpr RuleId kStreamSetVersionCheck = 28;
constexpr RuleId kDefaultColumnResolver = 29;
constexpr RuleId kPartitionSpecValidate = 30;
constexpr RuleId kTokenBudgetGuard = 32;
// Frequently-referenced non-required rules.
constexpr RuleId kCorrelatedJoinOnUnionAll1 = 37;
constexpr RuleId kCorrelatedJoinOnUnionAll2 = 38;
constexpr RuleId kGroupbyOnJoin1 = 43;
constexpr RuleId kGroupbyOnJoin2 = 44;
constexpr RuleId kCollapseSelects = 83;
constexpr RuleId kSelectOnTrue = 85;
constexpr RuleId kSelectPredNormalized = 87;
constexpr RuleId kSelectOnProject = 88;
constexpr RuleId kJoinCommute = 104;
constexpr RuleId kGroupbyBelowUnionAll = 108;
constexpr RuleId kProcessOnUnionAll = 110;
constexpr RuleId kTopOnRestrRemap = 113;
constexpr RuleId kHashJoinImpl1 = 224;
constexpr RuleId kHashJoinImpl2 = 225;
constexpr RuleId kBroadcastJoinImpl1 = 226;
constexpr RuleId kMergeJoinImpl = 228;
constexpr RuleId kLoopJoinImpl = 229;
constexpr RuleId kHashAggImpl = 236;
constexpr RuleId kStreamAggImpl = 237;
constexpr RuleId kPreHashAggImpl = 238;
constexpr RuleId kUnionAllToUnionAll = 240;
constexpr RuleId kUnionAllToVirtualDataset = 241;
}  // namespace rules

class RuleRegistry {
 public:
  /// The singleton registry (construction is deterministic and immutable).
  static const RuleRegistry& Instance();

  RuleRegistry(const RuleRegistry&) = delete;
  RuleRegistry& operator=(const RuleRegistry&) = delete;

  /// Rule object for an id; nullptr for marker-only ids.
  const Rule* rule(RuleId id) const { return rules_[static_cast<size_t>(id)].get(); }

  const std::string& name(RuleId id) const { return names_[static_cast<size_t>(id)]; }

  /// RuleId for a name; -1 if unknown.
  RuleId FindByName(const std::string& name) const;

  /// Real transformation rules (logical -> logical), ascending id.
  const std::vector<const Rule*>& transformation_rules() const { return transformations_; }
  /// Real implementation rules (logical -> physical), ascending id.
  const std::vector<const Rule*>& implementation_rules() const { return implementations_; }

  /// All ids in a category.
  std::vector<RuleId> IdsInCategory(RuleCategory category) const;

 private:
  RuleRegistry();

  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::string> names_;
  std::vector<const Rule*> transformations_;
  std::vector<const Rule*> implementations_;
};

/// Marker attribution: required-rule bits implied by features of the final
/// physical plan (see registry docs above). Sets bits in `signature`.
void AttributeMarkerRules(const PlanNodePtr& physical_root, RuleSignature* signature);

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_RULE_REGISTRY_H_
