// Per-operator cost formulas, shared by the optimizer's estimated cost (the
// SCOPE cost model approximates runtime latency, paper §3.1) and the
// execution simulator's true runtime model. Evaluating the same formulas
// against EstimatedStatsView vs TrueStatsView yields estimated cost vs real
// behaviour; additional truth-only effects (partition skew, spills computed
// from true sizes) are folded in through the view's TopValueShare and the
// view-dependent row counts.
#ifndef QSTEER_OPTIMIZER_COST_MODEL_H_
#define QSTEER_OPTIMIZER_COST_MODEL_H_

#include <vector>

#include "optimizer/stats.h"
#include "plan/operator.h"

namespace qsteer {

/// Work-rate constants. Units: seconds of single-vertex time per row/byte.
struct CostParams {
  double read_per_byte = 1.0e-8;    // ~100 MB/s sequential read
  double write_per_byte = 2.0e-8;   // ~50 MB/s write
  double net_per_byte = 2.5e-8;     // ~40 MB/s shuffle bandwidth
  double cpu_per_cmp = 5.0e-8;      // per row per predicate atom
  double cpu_per_projection = 4.0e-8;
  double hash_build_per_row = 3.0e-7;
  double hash_probe_per_row = 1.5e-7;
  double merge_per_row = 8.0e-8;
  double loop_per_row_pair = 2.0e-8;
  double seek_per_row = 5.0e-4;     // index-apply random access
  double agg_update_per_row = 2.5e-7;
  double stream_agg_per_row = 8.0e-8;
  double sort_per_row_log = 3.0e-8;  // * log2(rows)
  double topn_per_row = 6.0e-8;
  double emit_per_row = 5.0e-8;
  double udo_per_row_unit = 4.0e-7;  // * operator cost-per-row factor
  double vertex_startup = 1.2;       // stage launch latency, seconds
  double coordination_per_vertex = 0.012;  // scheduling latency per vertex
  double memory_per_vertex_bytes = 6.0e8;
  double spill_penalty = 3.5;  // hash/sort work multiplier when spilling
  double virtual_dataset_overhead = 0.05;

  /// The parameters the optimizer uses for costing. Identical work rates but
  /// optimistic about parallelism overheads — one of the paper's systematic
  /// cost-model errors (the real cluster pays more for wide stages).
  static CostParams OptimizerBeliefs();
  /// The parameters the simulated cluster actually exhibits.
  static CostParams ClusterTruth();
  /// OptimizerBeliefs with work rates rescaled by calibration-fitted
  /// weights (catalog/calibration.h): `cpu_scale` multiplies per-row
  /// compute rates, `io_scale` per-byte rates, `startup_scale` the stage
  /// startup and coordination overheads the optimizer systematically
  /// under-costs.
  static CostParams Calibrated(double cpu_scale, double io_scale, double startup_scale);
};

/// Local (per-operator) cost decomposition.
struct OpCost {
  /// Wall-clock seconds contributed by this operator at its chosen DOP.
  double latency = 0.0;
  /// Total compute seconds summed over all vertices.
  double cpu = 0.0;
  /// Total IO seconds (read + write + network) summed over all vertices.
  double io = 0.0;
  /// Bytes crossing the network or disk in this operator.
  double bytes_moved = 0.0;
};

/// Computes one operator's local cost given its derived output stats and
/// children stats, at the given degree of parallelism.
OpCost ComputeOpCost(const Operator& op, const LogicalStats& output,
                     const std::vector<const LogicalStats*>& children, int dop,
                     const CostParams& params, const StatsView& view);

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_COST_MODEL_H_
