#include "optimizer/rule_registry.h"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace qsteer {

namespace {

/// A rule that exists in the catalog but is pure glue or targets a feature
/// this algebra cannot express; it never proposes alternatives. Required
/// markers among these are attributed via AttributeMarkerRules.
class MarkerRule : public Rule {
 public:
  using Rule::Rule;
  void Apply(const RuleContext&, const GroupExpr&, std::vector<OpTree>*) const override {}
};

}  // namespace

const RuleRegistry& RuleRegistry::Instance() {
  static const RuleRegistry* registry = new RuleRegistry();
  return *registry;
}

RuleId RuleRegistry::FindByName(const std::string& name) const {
  for (RuleId id = 0; id < kNumRules; ++id) {
    if (names_[static_cast<size_t>(id)] == name) return id;
  }
  return -1;
}

std::vector<RuleId> RuleRegistry::IdsInCategory(RuleCategory category) const {
  std::vector<RuleId> out;
  for (RuleId id = 0; id < kNumRules; ++id) {
    if (CategoryOfRule(id) == category) out.push_back(id);
  }
  return out;
}

RuleRegistry::RuleRegistry() {
  rules_.resize(kNumRules);
  names_.resize(kNumRules);
  int next_auto = 0;  // detects gaps at construction time

  auto add = [&](RuleId id, std::unique_ptr<Rule> rule) {
    if (id != next_auto) {
      std::fprintf(stderr, "rule registry: id %d out of order (expected %d)\n", id, next_auto);
      std::abort();
    }
    next_auto = id + 1;
    names_[static_cast<size_t>(id)] = rule->name();
    rules_[static_cast<size_t>(id)] = std::move(rule);
  };
  auto marker = [&](RuleId id, const char* name) {
    add(id, std::make_unique<MarkerRule>(id, name));
  };
  auto rare = [&](RuleId id, const char* name, OpKind kind) {
    add(id, std::make_unique<RareShapeRule>(id, name, kind));
  };

  // =========================================================================
  // Required rules [0, 37): correctness glue, cannot be disabled.
  // =========================================================================
  add(0, std::make_unique<SimpleImplRule>(0, "BuildOutput", OpKind::kOutput,
                                          OpKind::kOutputWriter));
  add(1, std::make_unique<SimpleImplRule>(1, "GetToRange", OpKind::kGet, OpKind::kRangeScan));
  add(2, std::make_unique<SimpleImplRule>(2, "SelectToFilter", OpKind::kSelect,
                                          OpKind::kFilter));
  add(3, std::make_unique<SimpleImplRule>(3, "ProjectToCompute", OpKind::kProject,
                                          OpKind::kCompute));
  add(4, std::make_unique<SimpleImplRule>(4, "ProcessToVertex", OpKind::kProcess,
                                          OpKind::kProcessVertex));
  marker(5, "EnforceExchange");
  marker(6, "EnforceSort");
  marker(7, "EnforceGather");
  marker(8, "EnforceBroadcast");
  marker(9, "AssignParallelism");
  marker(10, "InitialPartitioning");
  marker(11, "SerializeOutput");
  marker(12, "NormalizePredicates");
  marker(13, "ResolveUdoSchema");
  add(14, std::make_unique<SimpleImplRule>(14, "WindowToSegment", OpKind::kWindow,
                                           OpKind::kWindowSegment));
  add(15, std::make_unique<SimpleImplRule>(15, "SampleToScan", OpKind::kSample,
                                           OpKind::kSampleScan));
  marker(16, "ValidateUnionSchema");
  marker(17, "EnforceRowLimit");
  marker(18, "CubeToCompute");
  marker(19, "AggOutputNormalize");
  marker(20, "JoinKeyTypeCheck");
  marker(21, "UnionBranchValidate");
  marker(22, "SpoolInsert");
  marker(23, "IndexGetToSeek");
  marker(24, "CrossApplyNormalize");
  marker(25, "RecursiveCteGuard");
  marker(26, "OuterUnionNormalize");
  marker(27, "ScriptCombinerGlue");
  marker(28, "StreamSetVersionCheck");
  marker(29, "DefaultColumnResolver");
  marker(30, "PartitionSpecValidate");
  marker(31, "CheckpointInsert");
  marker(32, "TokenBudgetGuard");
  marker(33, "LineageAnnotate");
  marker(34, "DeterminismGuard");
  marker(35, "LegacyDecimalRewrite");
  marker(36, "UnicodeNormalizeGuard");

  // =========================================================================
  // Off-by-default rules [37, 83): experimental / estimate-sensitive.
  // =========================================================================
  add(37, std::make_unique<PushJoinBelowUnionRule>(37, "CorrelatedJoinOnUnionAll1", 0,
                                                   JoinType::kInner));
  add(38, std::make_unique<PushJoinBelowUnionRule>(38, "CorrelatedJoinOnUnionAll2", 1,
                                                   JoinType::kInner));
  add(39, std::make_unique<PushJoinBelowUnionRule>(39, "CorrelatedJoinOnUnionAll3", 0,
                                                   JoinType::kInner, /*max_branches=*/4));
  add(40, std::make_unique<PushJoinBelowUnionRule>(40, "CorrelatedJoinOnUnionAll4", 0,
                                                   JoinType::kLeftSemi));
  add(41, std::make_unique<PushJoinBelowUnionRule>(41, "CorrelatedJoinOnUnionAll5", 0,
                                                   JoinType::kLeftOuter));
  add(42, std::make_unique<PushJoinBelowUnionRule>(42, "CorrelatedJoinOnUnionAll6", 1,
                                                   JoinType::kInner, /*max_branches=*/4));
  add(43, std::make_unique<PushGroupByBelowJoinRule>(43, "GroupbyOnJoin1", 0));
  add(44, std::make_unique<PushGroupByBelowJoinRule>(44, "GroupbyOnJoin2", 1));
  add(45, std::make_unique<UnsafeSelectBelowProcessRule>(45, "SelectBelowUdo"));
  add(46, std::make_unique<PredicateInferenceRule>(46, "TransitivePredicateExperimental"));
  // Experimental rules for features/shapes this workload never produces.
  rare(47, "CrossJoinToUnion", OpKind::kWindow);
  rare(48, "NestedAggDecompose", OpKind::kWindow);
  rare(49, "RecursiveUnionUnroll", OpKind::kWindow);
  rare(50, "PivotOnJoin", OpKind::kWindow);
  rare(51, "MapJoinExperimental", OpKind::kWindow);
  rare(52, "AdaptiveBloomFilter", OpKind::kWindow);
  rare(53, "DynamicPartitionElim2", OpKind::kWindow);
  rare(54, "SkewHintJoin", OpKind::kWindow);
  rare(55, "RangeJoinRewrite", OpKind::kWindow);
  rare(56, "IntervalJoinRewrite", OpKind::kWindow);
  rare(57, "TemporalUnionMerge", OpKind::kWindow);
  rare(58, "ApproxDistinctRewrite", OpKind::kSample);
  rare(59, "SketchAggRewrite", OpKind::kSample);
  rare(60, "StratifiedSampleRewrite", OpKind::kSample);
  rare(61, "BernoulliToSystemSample", OpKind::kSample);
  rare(62, "SampleBelowJoin", OpKind::kSample);
  rare(63, "SampleBelowUnion", OpKind::kSample);
  rare(64, "WindowSplitExperimental", OpKind::kWindow);
  rare(65, "WindowMergeExperimental", OpKind::kWindow);
  rare(66, "WindowBelowJoin", OpKind::kWindow);
  rare(67, "CorrelatedApplyDecorrelate", OpKind::kWindow);
  rare(68, "SubqueryToSemiJoin2", OpKind::kWindow);
  rare(69, "AntiJoinReorder", OpKind::kWindow);
  rare(70, "OuterJoinSimplify2", OpKind::kWindow);
  rare(71, "StarJoinCollapse", OpKind::kWindow);
  rare(72, "SnowflakeFlatten", OpKind::kWindow);
  rare(73, "FactDimSwap", OpKind::kWindow);
  rare(74, "GroupingSetsExpand", OpKind::kWindow);
  rare(75, "RollupDecompose", OpKind::kWindow);
  rare(76, "CubeToUnionAll", OpKind::kWindow);
  rare(77, "MultiAggFusion", OpKind::kSample);
  rare(78, "CommonPlanDedup", OpKind::kSample);
  rare(79, "ViewMaterializeHint", OpKind::kSample);
  rare(80, "ResultCacheRewrite", OpKind::kSample);
  rare(81, "ShuffleElimExperimental", OpKind::kSample);
  rare(82, "ColocatedJoinExperimental", OpKind::kSample);

  // =========================================================================
  // On-by-default rules [83, 224): the stock rewrite catalog.
  // =========================================================================
  add(83, std::make_unique<CollapseSelectsRule>(83, "CollapseSelects", IntWindow{2, 2}));
  add(84, std::make_unique<CollapseSelectsRule>(84, "CollapseSelects2", IntWindow{3, 1 << 30}));
  add(85, std::make_unique<SelectOnTrueRule>(85, "SelectOnTrue"));
  add(86, std::make_unique<SelectSplitConjunctionRule>(86, "SelectSplitConjunction",
                                                       IntWindow{2, 3}));
  add(87, std::make_unique<SelectPredNormalizeRule>(87, "SelectPredNormalized"));
  add(88, std::make_unique<PushSelectBelowUnaryRule>(88, "SelectOnProject", OpKind::kProject,
                                                     IntWindow{1, 1}));
  add(89, std::make_unique<PushSelectBelowUnaryRule>(89, "SelectOnProject2", OpKind::kProject,
                                                     IntWindow{2, 1 << 30}));
  add(90, std::make_unique<PushSelectBelowUnaryRule>(90, "SelectOnGroupBy", OpKind::kGroupBy,
                                                     IntWindow{1, 1}));
  add(91, std::make_unique<PushSelectBelowUnaryRule>(91, "SelectOnGroupBy2", OpKind::kGroupBy,
                                                     IntWindow{2, 1 << 30}));
  add(92, std::make_unique<PushSelectBelowUnaryRule>(92, "SelectOnWindow", OpKind::kWindow));
  add(93, std::make_unique<PushSelectBelowUnaryRule>(93, "SelectOnSample", OpKind::kSample));
  add(94, std::make_unique<PushSelectBelowJoinRule>(94, "SelectOnJoinLeft", 0,
                                                    IntWindow{1, 1}));
  add(95, std::make_unique<PushSelectBelowJoinRule>(95, "SelectOnJoinLeft2", 0,
                                                    IntWindow{2, 1 << 30}));
  add(96, std::make_unique<PushSelectBelowJoinRule>(96, "SelectOnJoinRight", 1,
                                                    IntWindow{1, 1}));
  add(97, std::make_unique<PushSelectBelowJoinRule>(97, "SelectOnJoinRight2", 1,
                                                    IntWindow{2, 1 << 30}));
  add(98, std::make_unique<PushSelectBelowJoinRule>(98, "SelectOnJoinBoth", 2,
                                                    IntWindow{2, 1 << 30}));
  add(99, std::make_unique<PushSelectBelowUnionRule>(99, "SelectOnUnionAll", IntWindow{2, 5}));
  add(100, std::make_unique<PushSelectBelowUnionRule>(100, "SelectOnUnionAll2",
                                                      IntWindow{6, 1 << 30}));
  add(101, std::make_unique<MergeSelectIntoJoinRule>(101, "SelectIntoJoin", IntWindow{1, 1}));
  add(102, std::make_unique<MergeSelectIntoJoinRule>(102, "SelectIntoJoin2",
                                                     IntWindow{2, 1 << 30}));
  add(103, std::make_unique<SelectPartitionsRule>(103, "SelectPartitions"));
  add(104, std::make_unique<JoinCommuteRule>(104, "JoinCommute", IntWindow{1, 1}));
  add(105, std::make_unique<JoinCommuteRule>(105, "JoinCommute2", IntWindow{2, 1 << 30}));
  add(106, std::make_unique<JoinAssocRule>(106, "JoinAssocLeft", 0, IntWindow{1, 1}));
  add(107, std::make_unique<JoinAssocRule>(107, "JoinAssocLeft2", 0, IntWindow{2, 1 << 30}));
  add(108, std::make_unique<PushGroupByBelowUnionRule>(108, "GroupbyBelowUnionAll",
                                                       IntWindow{2, 5}));
  add(109, std::make_unique<PushGroupByBelowUnionRule>(109, "GroupbyBelowUnionAll2",
                                                       IntWindow{6, 1 << 30}));
  add(110, std::make_unique<PushProcessBelowUnionRule>(110, "ProcessOnUnionAll",
                                                       IntWindow{2, 5}));
  add(111, std::make_unique<PushProcessBelowUnionRule>(111, "ProcessOnUnionAll2",
                                                       IntWindow{6, 1 << 30}));
  add(112, std::make_unique<PushTopBelowUnionRule>(112, "TopNPushdownUnion"));
  add(113, std::make_unique<TopProjectSwapRule>(113, "TopOnRestrRemap"));
  add(114, std::make_unique<ProjectMergeRule>(114, "ProjectMerge"));
  add(115, std::make_unique<RemoveNoopProjectRule>(115, "RemoveNoopProject"));
  add(116, std::make_unique<PushProjectBelowUnionRule>(116, "SequenceProjectOnUnion",
                                                       IntWindow{2, 5}));
  add(117, std::make_unique<PushProjectBelowUnionRule>(117, "SequenceProjectOnUnion2",
                                                       IntWindow{6, 1 << 30}));
  add(118, std::make_unique<JoinAssocRule>(118, "JoinAssocRight", 1, IntWindow{1, 1}));
  add(119, std::make_unique<JoinAssocRule>(119, "JoinAssocRight2", 1, IntWindow{2, 1 << 30}));
  add(120, std::make_unique<NormalizeReduceRule>(120, "NormalizeReduce"));
  add(121, std::make_unique<PartialAggregationRule>(121, "PartialAggregation",
                                                    IntWindow{1, 1}));
  add(122, std::make_unique<PartialAggregationRule>(122, "PartialAggregation2",
                                                    IntWindow{2, 1 << 30}));
  add(123, std::make_unique<UnionFlattenRule>(123, "UnionAllFlatten"));
  add(124, std::make_unique<PredicateInferenceRule>(124, "PredicateInference"));
  add(125, std::make_unique<SelectOrExpansionRule>(125, "SelectOrExpansion"));
  add(126, std::make_unique<RemoveDupPredicatesRule>(126, "RemoveDupPredicates"));
  add(127, std::make_unique<ConstantFoldingRule>(127, "ConstantFolding"));
  add(128, std::make_unique<TopTopCollapseRule>(128, "TopTopCollapse"));
  // The remainder of the on-by-default catalog: rewrites for operator
  // shapes and features (windows, samples, rare combinations) that this
  // workload seldom or never produces. These participate in configuration
  // search and span computation but do not fire — matching Table 2's
  // observation that dozens of on-by-default rules go unused.
  static constexpr const char* kOnByDefaultTail[] = {
      "SelectRangeMerge",         "SelectInlineCast",
      "FilterIntoScanHint",       "ProjectFunctionHoist",     "ProjectConstantInline",
      "ProjectDedupColumns",      "ColumnPruneJoin",          "ColumnPruneGroupBy",
      "ColumnPruneUnionAll",      "ColumnPruneProcess",       "ColumnPruneWindow",
      "JoinToSemiRewrite",        "SemiToInnerRewrite",       "OuterToInnerSimplify",
      "JoinPredSimplify",         "JoinNullRejectInfer",      "JoinKeyDedup",
      "GroupByKeyPrune",          "GroupByEmptyElim",         "AggDistinctSplit",
      "AggCaseRewrite",           "CountStarShortcut",        "MinMaxIndexShortcut",
      "TopEliminate",             "TopIntoSortMerge",
      "WindowToAggRewrite",       "WindowFrameSimplify",      "WindowPartitionPrune",
      "SampleFractionFold",       "SampleEliminate",          "UnionBranchPruneEmpty",
      "UnionDuplicateBranch",     "ExchangeElimCoLocated",    "ExchangeMergeAdjacent",
      "SortElimSorted",           "SortBelowUnionMerge",      "IsNullSimplify",
      "NotNotElim",
      "CmpLiteralFold",           "BetweenToRange",           "InListToJoin",
      "InListPrune",              "LikePrefixToRange",        "CaseToFilter",
      "CoalesceSimplify",         "CastElim",                 "ArithmeticIdentityFold",
      "BooleanShortCircuit",      "DeMorganNormalize",        "CnfConversion",
      "DnfConversionLimited",     "PredicateRangeIntersect",  "PredicateContradictionDetect",
      "JoinInputSwapHint",        "BroadcastThresholdHint",   "ShuffleHashHint",
      "ScanCombineAdjacent",      "ScanShareCommon",          "SubplanMemoizeHint",
      "UdoFusionAdjacent",        "UdoSplitParallel",         "UdoPushdownHint",
      "ReduceCombinerInsert",     "ReduceRecursiveSplit",     "PairwiseUnionBalance",
      "UnionToAppendHint",        "VirtualViewInline",        "ViewPredicatePush",
      "NestedFieldPrune",         "ComplexTypeFlatten",       "JsonPathSimplify",
      "StringFunctionFold",       "DateRangeNormalize",       "PartitionKeyAlign",
      "BucketJoinAlign",          "SortMergeBucketHint",      "ZOrderScanHint",
      "StatisticsInjectHint",     "CardinalityClampGuard",    "RowGoalInsert",
      "RowGoalRemove",            "ParallelInsertHint",       "SerialFallbackGuard",
      "MemoryGrantHint",          "SpillAvoidanceHint",       "PipelineBreakInsert",
      "VectorizeHint",            "CodegenFusionHint",        "LateMaterializeHint",
      "EarlyMaterializeHint",     "DictionaryEncodeHint",     "RunLengthEncodeHint",
      "CompressionSelectHint",    "ColumnGroupSelect",        "PrefetchDepthHint",
  };
  RuleId next = 129;
  for (const char* name : kOnByDefaultTail) {
    if (next >= kImplementationBegin) {
      std::fprintf(stderr, "rule registry: on-by-default tail overflows into id %d\n", next);
      std::abort();
    }
    // Alternate the rare anchor kinds so the dead rules are spread over the
    // rare operators rather than piling on one.
    OpKind anchor = (next % 2 == 0) ? OpKind::kWindow : OpKind::kSample;
    rare(next, name, anchor);
    ++next;
  }
  if (next != kImplementationBegin) {
    std::fprintf(stderr, "rule registry: on-by-default block ends at %d, want %d\n", next,
                 kImplementationBegin);
    std::abort();
  }

  // =========================================================================
  // Implementation rules [224, 256).
  // =========================================================================
  using JO = JoinImplRule::Options;
  add(224, std::make_unique<JoinImplRule>(
               224, "HashJoinImpl1",
               JO{OpKind::kHashJoin, /*build_side=*/0, true, true, false, 8, false}));
  add(225, std::make_unique<JoinImplRule>(
               225, "HashJoinImpl2",
               JO{OpKind::kHashJoin, /*build_side=*/1, true, false, false, 8, false}));
  add(226, std::make_unique<JoinImplRule>(
               226, "BroadcastJoinImpl1",
               JO{OpKind::kBroadcastHashJoin, /*build_side=*/0, true, true, false, 8, false}));
  add(227, std::make_unique<JoinImplRule>(
               227, "BroadcastJoinImpl2",
               JO{OpKind::kBroadcastHashJoin, /*build_side=*/1, true, false, false, 8, false}));
  add(228, std::make_unique<JoinImplRule>(
               228, "MergeJoinImpl",
               JO{OpKind::kMergeJoin, /*build_side=*/0, true, true, true, 4, false}));
  add(229, std::make_unique<JoinImplRule>(
               229, "LoopJoinImpl",
               JO{OpKind::kLoopJoin, /*build_side=*/0, true, false, false, 8, false}));
  add(230, std::make_unique<JoinImplRule>(
               230, "SemiJoinHashImpl",
               JO{OpKind::kHashJoin, /*build_side=*/0, false, false, true, 8, false}));
  add(231, std::make_unique<JoinImplRule>(
               231, "SemiJoinBroadcastImpl",
               JO{OpKind::kBroadcastHashJoin, /*build_side=*/0, false, false, true, 8, false}));
  add(232, std::make_unique<IndexApplyJoinImplRule>(232, "JoinToApplyIndex1", 0));
  add(233, std::make_unique<IndexApplyJoinImplRule>(233, "JoinToApplyIndex2", 1));
  add(234, std::make_unique<JoinImplRule>(
               234, "GraceHashJoinImpl",
               JO{OpKind::kHashJoin, /*build_side=*/0, true, false, false, 8, true}));
  add(235, std::make_unique<JoinImplRule>(
               235, "MergeJoinImpl2",
               JO{OpKind::kMergeJoin, /*build_side=*/0, true, false, false, 8, true}));
  add(236, std::make_unique<AggImplRule>(236, "HashAggImpl", OpKind::kHashAgg,
                                         /*partial_only=*/false));
  add(237, std::make_unique<AggImplRule>(237, "StreamAggImpl", OpKind::kStreamAgg,
                                         /*partial_only=*/false));
  add(238, std::make_unique<AggImplRule>(238, "PreHashAggImpl", OpKind::kPreHashAgg,
                                         /*partial_only=*/true));
  add(239, std::make_unique<AggImplRule>(239, "HashAggDictImpl", OpKind::kHashAgg,
                                         /*partial_only=*/false, /*max_keys=*/1));
  add(240, std::make_unique<UnionImplRule>(240, "UnionAllToUnionAll",
                                           OpKind::kPhysicalUnionAll));
  add(241, std::make_unique<UnionImplRule>(241, "UnionAllToVirtualDataset",
                                           OpKind::kVirtualDataset));
  add(242, std::make_unique<UnionImplRule>(242, "UnionAllToVirtualDataset2",
                                           OpKind::kVirtualDataset,
                                           /*require_same_partition_count=*/true));
  add(243, std::make_unique<UnionImplRule>(243, "SortedUnionAllImpl",
                                           OpKind::kSortedUnionAll));
  add(244, std::make_unique<TopImplRule>(244, "TopNSortImpl", OpKind::kTopNSort));
  add(245, std::make_unique<TopImplRule>(245, "TopNHeapImpl", OpKind::kTopNHeap,
                                         /*max_limit=*/100000));
  // Implementation slots for rare features; the window/sample impls live in
  // the required block, and these variants target shapes that do not occur.
  add(246, std::make_unique<JoinImplRule>(
               246, "RangePartitionJoinImpl",
               JO{OpKind::kMergeJoin, /*build_side=*/0, true, false, false, 1, true}));
  add(247, std::make_unique<JoinImplRule>(
               247, "BroadcastLoopJoinImpl",
               JO{OpKind::kLoopJoin, /*build_side=*/0, false, true, false, 0, false}));
  add(248, std::make_unique<AggImplRule>(248, "StreamAggSegmentedImpl", OpKind::kStreamAgg,
                                         /*partial_only=*/true, /*max_keys=*/1));
  add(249, std::make_unique<TopImplRule>(249, "TopNSampledImpl", OpKind::kTopNHeap,
                                         /*max_limit=*/0));
  rare(250, "WindowHashImpl", OpKind::kOutputWriter);
  rare(251, "SampleBlockImpl", OpKind::kOutputWriter);
  rare(252, "SpoolImpl", OpKind::kOutputWriter);
  rare(253, "CrossApplyImpl", OpKind::kOutputWriter);
  rare(254, "PivotImpl", OpKind::kOutputWriter);
  rare(255, "UnpivotImpl", OpKind::kOutputWriter);

  if (next_auto != kNumRules) {
    std::fprintf(stderr, "rule registry: %d rules registered, want %d\n", next_auto, kNumRules);
    std::abort();
  }

  for (const auto& rule : rules_) {
    if (rule == nullptr) continue;
    if (rule->is_implementation()) {
      implementations_.push_back(rule.get());
    } else {
      transformations_.push_back(rule.get());
    }
  }
}

void AttributeMarkerRules(const PlanNodePtr& physical_root, RuleSignature* signature) {
  if (physical_root == nullptr) return;
  signature->Set(rules::kAssignParallelism);
  int exchanges = 0;
  VisitPlan(physical_root, [&](const PlanNode& node) {
    switch (node.op.kind) {
      case OpKind::kRangeScan:
        signature->Set(rules::kInitialPartitioning);
        signature->Set(rules::kStreamSetVersionCheck);
        if (node.op.partition_fraction < 1.0) signature->Set(rules::kPartitionSpecValidate);
        break;
      case OpKind::kOutputWriter:
        signature->Set(rules::kSerializeOutput);
        break;
      case OpKind::kFilter:
        if (node.op.predicate != nullptr && node.op.predicate->CountAtoms() >= 2) {
          signature->Set(rules::kNormalizePredicates);
        }
        break;
      case OpKind::kCompute:
        signature->Set(rules::kDefaultColumnResolver);
        break;
      case OpKind::kProcessVertex:
        signature->Set(rules::kResolveUdoSchema);
        break;
      case OpKind::kHashJoin:
      case OpKind::kBroadcastHashJoin:
      case OpKind::kMergeJoin:
      case OpKind::kLoopJoin:
        signature->Set(rules::kJoinKeyTypeCheck);
        break;
      case OpKind::kIndexApplyJoin:
        signature->Set(rules::kJoinKeyTypeCheck);
        signature->Set(rules::kIndexGetToSeek);
        break;
      case OpKind::kHashAgg:
      case OpKind::kStreamAgg:
      case OpKind::kPreHashAgg:
        signature->Set(rules::kAggOutputNormalize);
        break;
      case OpKind::kPhysicalUnionAll:
      case OpKind::kSortedUnionAll:
        signature->Set(rules::kValidateUnionSchema);
        break;
      case OpKind::kVirtualDataset:
        signature->Set(rules::kValidateUnionSchema);
        signature->Set(rules::kUnionBranchValidate);
        break;
      case OpKind::kTopNSort:
      case OpKind::kTopNHeap:
        signature->Set(rules::kEnforceRowLimit);
        break;
      case OpKind::kExchange:
        ++exchanges;
        break;
      default:
        break;
    }
  });
  if (exchanges >= 2) signature->Set(rules::kTokenBudgetGuard);
}

}  // namespace qsteer
