#include "optimizer/stats.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace qsteer {

double LogicalStats::NdvOf(ColumnId col) const {
  auto it = ndv.find(col);
  if (it == ndv.end()) return std::max(1.0, rows * 0.1);
  return it->second;
}

// ---------------------------------------------------------------------------
// Histogram join math
// ---------------------------------------------------------------------------

double HistogramJoinMatchProbability(const Histogram& left, const Histogram& right) {
  const std::vector<HistogramBucket>& a = left.buckets();
  const std::vector<HistogramBucket>& b = right.buckets();
  if (a.empty() || b.empty()) {
    return 1.0 / std::max({static_cast<double>(left.domain()),
                           static_cast<double>(right.domain()), 1.0});
  }
  size_t i = 0;
  size_t j = 0;
  double p = 0.0;
  while (i < a.size() && j < b.size()) {
    int64_t lo = std::max(a[i].lo, b[j].lo);
    int64_t hi = std::min(a[i].hi, b[j].hi);
    if (lo <= hi) {
      // Per-value mass within each bucket (uniform among its values).
      double per_a = a[i].row_fraction / static_cast<double>(a[i].hi - a[i].lo + 1);
      double per_b = b[j].row_fraction / static_cast<double>(b[j].hi - b[j].lo + 1);
      p += static_cast<double>(hi - lo + 1) * per_a * per_b;
    }
    if (a[i].hi < b[j].hi) {
      ++i;
    } else if (b[j].hi < a[i].hi) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return std::clamp(p, 1e-12, 1.0);
}

double UdfTrueSelectivity(const std::string& name) {
  uint64_t h = Mix64(HashString(name) ^ 0xabcdULL);
  return 0.05 + 0.9 * (static_cast<double>(h & 0xffff) / 65535.0);
}

double UdoTrueSelectivity(const std::string& name) {
  uint64_t h = Mix64(HashString(name) ^ 0x7d0ULL);
  return 0.05 + 0.95 * (static_cast<double>(h & 0xffff) / 65535.0);
}

// ---------------------------------------------------------------------------
// EstimatedStatsView
// ---------------------------------------------------------------------------

EstimatedStatsView::EstimatedStatsView(const Catalog* catalog, const ColumnUniverse* universe,
                                       int day)
    : EstimatedStatsView(catalog, universe, day, nullptr) {}

EstimatedStatsView::EstimatedStatsView(const Catalog* catalog, const ColumnUniverse* universe,
                                       int day, const StatsModel* model)
    : StatsView(universe),
      catalog_(catalog),
      day_(day),
      model_(model != nullptr ? model : &catalog->stats_model()) {}

const OptimizerStreamStats& EstimatedStatsView::StatsFor(int stream_id) const {
  MutexLock lock(mu_);
  auto it = cache_.find(stream_id);
  if (it == cache_.end()) {
    it = cache_.emplace(stream_id, model_->StreamStats(*catalog_, stream_id, day_)).first;
  }
  return it->second;
}

ColumnDistribution EstimatedStatsView::ColumnDist(ColumnId col) const {
  const ColumnInfo& info = universe_->info(col);
  ColumnDistribution dist;
  if (info.derived) {
    dist.ndv = std::max(1.0, info.derived_ndv);
    dist.domain = dist.ndv;
    dist.avg_width = info.avg_width;
    return dist;
  }
  const StreamSet& set = catalog_->stream_set(info.stream_set_id);
  // Optimizer-believed NDV: use the set's first stream (errors are keyed per
  // (set, column), so any member stream carries the same believed NDV).
  const OptimizerStreamStats& stats = StatsFor(set.stream_ids.front());
  dist.ndv = std::max(1.0, stats.distinct_counts[static_cast<size_t>(info.column_index)]);
  const ColumnDef& def = set.columns[static_cast<size_t>(info.column_index)];
  // The optimizer knows the declared domain but believes values are uniform
  // over it (no skew knowledge).
  dist.domain = std::max(1.0, static_cast<double>(def.distinct_count));
  dist.zipf_skew = 0.0;
  dist.null_fraction = def.null_fraction;
  dist.avg_width = def.avg_width;
  if (model_->histogram_grade()) {
    // Histogram-grade beliefs: NDV/domain exact as of the build day, plus
    // the histogram itself for bucket-level selectivity.
    ColumnSummary summary =
        model_->Summarize(*catalog_, info.stream_set_id, info.column_index, day_);
    dist.ndv = std::max(1.0, summary.ndv);
    dist.domain = std::max(1.0, summary.domain);
    dist.histogram = summary.histogram;
  }
  return dist;
}

double EstimatedStatsView::TopValueShare(ColumnId col) const {
  if (!model_->histogram_grade()) return 0.0;
  ColumnDistribution dist = ColumnDist(col);
  if (dist.histogram == nullptr) return 0.0;
  return dist.histogram->TopValueShare();
}

double EstimatedStatsView::StreamRows(int stream_id) const {
  return static_cast<double>(StatsFor(stream_id).row_count);
}

double EstimatedStatsView::StreamWidth(int stream_id) const {
  return StatsFor(stream_id).avg_row_width;
}

double EstimatedStatsView::UdfSelectivity(const Expr& udf) const {
  return udf.udf_selectivity_guess();
}

double EstimatedStatsView::ProcessSelectivity(const Operator& op) const {
  return op.udo_selectivity_guess;
}

double EstimatedStatsView::ProcessCostPerRow(const Operator& op) const {
  return op.udo_cost_per_row_guess;
}

// ---------------------------------------------------------------------------
// TrueStatsView
// ---------------------------------------------------------------------------

TrueStatsView::TrueStatsView(const Catalog* catalog, const Job* job)
    : StatsView(job->columns.get()), catalog_(catalog), job_(job) {}

ColumnDistribution TrueStatsView::ColumnDist(ColumnId col) const {
  const ColumnInfo& info = universe_->info(col);
  ColumnDistribution dist;
  if (info.derived) {
    dist.ndv = std::max(1.0, info.derived_ndv);
    dist.domain = dist.ndv;
    dist.avg_width = info.avg_width;
    return dist;
  }
  const StreamSet& set = catalog_->stream_set(info.stream_set_id);
  const ColumnDef& def = set.columns[static_cast<size_t>(info.column_index)];
  // Truth is generative *on the job's day*: domains grow and skew drifts,
  // which is exactly what statistics built on an earlier day cannot see.
  dist.ndv = std::max(
      1.0, static_cast<double>(
               catalog_->TrueDistinctCount(info.stream_set_id, info.column_index, job_->day)));
  dist.domain = dist.ndv;
  dist.zipf_skew = catalog_->TrueZipfSkew(info.stream_set_id, info.column_index, job_->day);
  dist.null_fraction = def.null_fraction;
  dist.avg_width = def.avg_width;
  return dist;
}

double TrueStatsView::Correlation(ColumnId a, ColumnId b) const {
  const ColumnInfo& ia = universe_->info(a);
  const ColumnInfo& ib = universe_->info(b);
  if (ia.derived || ib.derived) return 0.0;
  if (ia.stream_set_id != ib.stream_set_id) return 0.0;
  return catalog_->stream_set(ia.stream_set_id)
      .CorrelationBetween(ia.column_index, ib.column_index);
}

double TrueStatsView::StreamRows(int stream_id) const {
  return static_cast<double>(catalog_->TrueRowCount(stream_id, job_->day));
}

double TrueStatsView::StreamWidth(int stream_id) const {
  return catalog_->TrueRowWidth(catalog_->stream(stream_id).stream_set_id);
}

double TrueStatsView::UdfSelectivity(const Expr& udf) const {
  return UdfTrueSelectivity(udf.udf_name());
}

double TrueStatsView::ProcessSelectivity(const Operator& op) const {
  double sel = UdoTrueSelectivity(op.udo_name) * job_->udo_true_selectivity;
  return std::clamp(sel, 0.005, 1.0);
}

double TrueStatsView::ProcessCostPerRow(const Operator& op) const {
  // True per-row cost: name-keyed base factor scaled by the job's latent.
  uint64_t h = Mix64(HashString(op.udo_name) ^ 0xc057ULL);
  double base = 0.5 + 8.0 * (static_cast<double>(h & 0xffff) / 65535.0);
  return base * job_->udo_true_cost_per_row;
}

double TrueStatsView::TopValueShare(ColumnId col) const {
  ColumnDistribution dist = ColumnDist(col);
  return ZipfPmf(1.0, dist.ndv, dist.zipf_skew);
}

// ---------------------------------------------------------------------------
// Predicate selectivity
// ---------------------------------------------------------------------------

namespace {

double AtomSelectivity(const Expr& atom, const StatsView& view) {
  switch (atom.kind()) {
    case ExprKind::kTrue:
      return 1.0;
    case ExprKind::kIsNotNull:
      return 1.0 - view.ColumnDist(atom.column()).null_fraction;
    case ExprKind::kUdfPredicate:
      return std::clamp(view.UdfSelectivity(atom), 0.0, 1.0);
    case ExprKind::kCompare: {
      const Expr& lhs = *atom.children()[0];
      const Expr& rhs = *atom.children()[1];
      if (lhs.kind() == ExprKind::kColumn && rhs.kind() == ExprKind::kLiteral) {
        ColumnDistribution dist = view.ColumnDist(lhs.column());
        double not_null = 1.0 - dist.null_fraction;
        double v = static_cast<double>(rhs.literal());
        if (dist.histogram != nullptr) {
          // Histogram-grade beliefs: bucket interpolation for ranges,
          // per-bucket NDV for equality. Values beyond the histogram's
          // domain get a floor, not a uniform guess — a stale histogram is
          // confidently (and possibly wrongly) certain they are rare.
          const Histogram& h = *dist.histogram;
          constexpr double kUnseenValueFloor = 1e-9;
          switch (atom.cmp()) {
            case CmpOp::kEq:
              return not_null * std::max(h.EqSelectivity(v), kUnseenValueFloor);
            case CmpOp::kNe:
              return not_null * (1.0 - h.EqSelectivity(v));
            case CmpOp::kLt:
              return not_null * h.CdfLe(v - 1.0);
            case CmpOp::kLe:
              return not_null * h.CdfLe(v);
            case CmpOp::kGt:
              return not_null * (1.0 - h.CdfLe(v));
            case CmpOp::kGe:
              return not_null * (1.0 - h.CdfLe(v - 1.0));
          }
          return 0.3;
        }
        switch (atom.cmp()) {
          case CmpOp::kEq:
            return not_null * ZipfPmf(v, dist.domain, dist.zipf_skew) *
                   (dist.zipf_skew > 0.0 ? 1.0 : dist.domain / std::max(dist.ndv, 1.0));
          case CmpOp::kNe:
            return not_null * (1.0 - ZipfPmf(v, dist.domain, dist.zipf_skew));
          case CmpOp::kLt:
            return not_null * ZipfCdf(v - 1.0, dist.domain, dist.zipf_skew);
          case CmpOp::kLe:
            return not_null * ZipfCdf(v, dist.domain, dist.zipf_skew);
          case CmpOp::kGt:
            return not_null * (1.0 - ZipfCdf(v, dist.domain, dist.zipf_skew));
          case CmpOp::kGe:
            return not_null * (1.0 - ZipfCdf(v - 1.0, dist.domain, dist.zipf_skew));
        }
        return 0.3;
      }
      if (lhs.kind() == ExprKind::kColumn && rhs.kind() == ExprKind::kColumn) {
        ColumnDistribution dl = view.ColumnDist(lhs.column());
        ColumnDistribution dr = view.ColumnDist(rhs.column());
        if (atom.cmp() == CmpOp::kEq) {
          if (dl.histogram != nullptr && dr.histogram != nullptr) {
            return HistogramJoinMatchProbability(*dl.histogram, *dr.histogram);
          }
          return 1.0 / std::max({dl.ndv, dr.ndv, 1.0});
        }
        return 0.3;
      }
      return 0.3;
    }
    default:
      return 0.3;
  }
}

// Columns referenced by one conjunct (first one found used for correlation
// bookkeeping).
std::vector<ColumnId> ConjunctColumns(const ExprPtr& conjunct) {
  std::vector<ColumnId> cols;
  conjunct->CollectColumns(&cols);
  return cols;
}

}  // namespace

double PredicateSelectivity(const ExprPtr& predicate, const StatsView& view) {
  if (predicate == nullptr) return 1.0;
  switch (predicate->kind()) {
    case ExprKind::kAnd: {
      std::vector<ExprPtr> conjuncts = SplitConjuncts(predicate);
      std::vector<double> sels;
      sels.reserve(conjuncts.size());
      if (view.UseExponentialBackoff()) {
        // SQL-Server-2014-style exponential backoff: most selective conjunct
        // fully, then square-root decay. This makes the estimate depend on
        // whether conjuncts are collapsed into one Select or stacked in
        // separate Selects — the shape-sensitivity of paper §5.3.
        for (const ExprPtr& c : conjuncts) sels.push_back(PredicateSelectivity(c, view));
        std::sort(sels.begin(), sels.end());
        double sel = 1.0;
        double exponent = 1.0;
        for (size_t i = 0; i < sels.size() && i < 4; ++i) {
          sel *= std::pow(sels[i], exponent);
          exponent *= 0.5;
        }
        return std::clamp(sel, 0.0, 1.0);
      }
      // Truth: correlation-aware product. A conjunct correlated with an
      // already-applied column contributes a dampened factor s^(1-c).
      std::sort(conjuncts.begin(), conjuncts.end(),
                [](const ExprPtr& a, const ExprPtr& b) { return a->Hash(false) < b->Hash(false); });
      std::vector<ColumnId> applied;
      double sel = 1.0;
      for (const ExprPtr& c : conjuncts) {
        double s = PredicateSelectivity(c, view);
        std::vector<ColumnId> cols = ConjunctColumns(c);
        double max_corr = 0.0;
        for (ColumnId mine : cols) {
          for (ColumnId prev : applied) {
            max_corr = std::max(max_corr, view.Correlation(mine, prev));
          }
        }
        sel *= std::pow(std::clamp(s, 1e-12, 1.0), 1.0 - max_corr);
        applied.insert(applied.end(), cols.begin(), cols.end());
      }
      return std::clamp(sel, 0.0, 1.0);
    }
    case ExprKind::kOr: {
      double keep = 1.0;
      for (const ExprPtr& c : predicate->children()) {
        keep *= 1.0 - PredicateSelectivity(c, view);
      }
      return std::clamp(1.0 - keep, 0.0, 1.0);
    }
    case ExprKind::kNot:
      return std::clamp(1.0 - PredicateSelectivity(predicate->children()[0], view), 0.0, 1.0);
    default:
      return std::clamp(AtomSelectivity(*predicate, view), 0.0, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Operator stats derivation
// ---------------------------------------------------------------------------

namespace {

// Collapses physical operator kinds onto their logical estimation semantics.
OpKind LogicalKindOf(OpKind kind) {
  switch (kind) {
    case OpKind::kRangeScan:
      return OpKind::kGet;
    case OpKind::kFilter:
      return OpKind::kSelect;
    case OpKind::kCompute:
      return OpKind::kProject;
    case OpKind::kHashJoin:
    case OpKind::kBroadcastHashJoin:
    case OpKind::kMergeJoin:
    case OpKind::kLoopJoin:
    case OpKind::kIndexApplyJoin:
      return OpKind::kJoin;
    case OpKind::kHashAgg:
    case OpKind::kStreamAgg:
      return OpKind::kGroupBy;
    case OpKind::kPhysicalUnionAll:
    case OpKind::kVirtualDataset:
    case OpKind::kSortedUnionAll:
      return OpKind::kUnionAll;
    case OpKind::kTopNSort:
    case OpKind::kTopNHeap:
      return OpKind::kTop;
    case OpKind::kProcessVertex:
      return OpKind::kProcess;
    case OpKind::kWindowSegment:
      return OpKind::kWindow;
    case OpKind::kSampleScan:
      return OpKind::kSample;
    case OpKind::kOutputWriter:
      return OpKind::kOutput;
    default:
      return kind;
  }
}

void CapNdvToRows(LogicalStats* stats) {
  for (auto& [col, ndv] : stats->ndv) {
    ndv = std::max(1.0, std::min(ndv, stats->rows));
  }
}

double WidthOfColumns(const std::vector<ColumnId>& cols, const StatsView& view) {
  double width = 0.0;
  for (ColumnId c : cols) width += view.ColumnDist(c).avg_width;
  return std::max(1.0, width);
}

}  // namespace

LogicalStats DeriveStats(const Operator& op, const std::vector<const LogicalStats*>& children,
                         const StatsView& view) {
  LogicalStats out;
  switch (LogicalKindOf(op.kind)) {
    case OpKind::kGet: {
      // partition_fraction is a read-cost reduction (pruning), not a
      // cardinality change: the pruned partitions provably contain no
      // matches for the pruning predicate, which stays in the plan.
      out.rows = view.StreamRows(op.stream_id);
      out.width = view.StreamWidth(op.stream_id);
      for (ColumnId c : op.scan_columns) {
        out.ndv[c] = std::min(view.ColumnDist(c).ndv, out.rows);
      }
      break;
    }
    case OpKind::kSelect: {
      const LogicalStats& child = *children.at(0);
      double sel = PredicateSelectivity(op.predicate, view);
      out.rows = child.rows * sel;
      out.width = child.width;
      out.ndv = child.ndv;
      break;
    }
    case OpKind::kProject: {
      const LogicalStats& child = *children.at(0);
      out.rows = child.rows;
      std::vector<ColumnId> out_cols;
      for (const NamedExpr& p : op.projections) {
        out_cols.push_back(p.output);
        if (p.pass_through && !p.inputs.empty()) {
          out.ndv[p.output] = child.NdvOf(p.inputs[0]);
        } else {
          out.ndv[p.output] = std::min(view.ColumnDist(p.output).ndv, child.rows);
        }
      }
      out.width = WidthOfColumns(out_cols, view);
      break;
    }
    case OpKind::kJoin: {
      const LogicalStats& left = *children.at(0);
      // IndexApplyJoin embeds its inner stream; synthesize its stats.
      LogicalStats synthesized;
      if (children.size() < 2) {
        synthesized.rows = view.StreamRows(op.stream_id);
        synthesized.width = view.StreamWidth(op.stream_id);
        for (ColumnId c : op.scan_columns) {
          synthesized.ndv[c] = std::min(view.ColumnDist(c).ndv, synthesized.rows);
        }
      }
      const LogicalStats& right = children.size() >= 2 ? *children.at(1) : synthesized;
      double match_p = 1.0;
      for (size_t i = 0; i < op.left_keys.size(); ++i) {
        ColumnDistribution dl = view.ColumnDist(op.left_keys[i]);
        ColumnDistribution dr = view.ColumnDist(op.right_keys[i]);
        if (dl.histogram != nullptr && dr.histogram != nullptr) {
          // Bucket-level match probability captures skew the scalar NDV
          // formula cannot (hot keys matching hot keys dominate join size).
          match_p *= HistogramJoinMatchProbability(*dl.histogram, *dr.histogram);
          continue;
        }
        double ndv_l = std::min(left.NdvOf(op.left_keys[i]), dl.ndv);
        double ndv_r = std::min(right.NdvOf(op.right_keys[i]), dr.ndv);
        match_p *= ZipfJoinMatchProbability(ndv_l, dl.zipf_skew, ndv_r, dr.zipf_skew);
      }
      double residual = PredicateSelectivity(op.predicate, view);
      out.rows = left.rows * right.rows * match_p * residual;
      if (op.join_type == JoinType::kLeftOuter) {
        out.rows = std::max(out.rows, left.rows);
      } else if (op.join_type == JoinType::kLeftSemi) {
        out.rows = std::min(left.rows, out.rows);
      }
      out.ndv = left.ndv;
      if (op.join_type != JoinType::kLeftSemi) {
        for (const auto& [col, ndv] : right.ndv) out.ndv[col] = ndv;
        out.width = left.width + right.width;
      } else {
        out.width = left.width;
      }
      break;
    }
    case OpKind::kGroupBy: {
      const LogicalStats& child = *children.at(0);
      double joint = 1.0;
      for (ColumnId key : op.group_keys) joint *= std::max(1.0, child.NdvOf(key));
      // Correlated keys reduce the joint distinct count.
      for (size_t i = 0; i < op.group_keys.size(); ++i) {
        for (size_t j = i + 1; j < op.group_keys.size(); ++j) {
          double corr = view.Correlation(op.group_keys[i], op.group_keys[j]);
          if (corr > 0.0) {
            double smaller = std::min(child.NdvOf(op.group_keys[i]),
                                      child.NdvOf(op.group_keys[j]));
            joint /= std::pow(std::max(1.0, smaller), corr);
          }
        }
      }
      out.rows = std::min(child.rows, joint);
      std::vector<ColumnId> out_cols = op.group_keys;
      for (ColumnId key : op.group_keys) {
        out.ndv[key] = std::min(child.NdvOf(key), out.rows);
      }
      for (const AggExpr& agg : op.aggs) {
        out.ndv[agg.output] = out.rows;
        out_cols.push_back(agg.output);
      }
      out.width = WidthOfColumns(out_cols, view);
      // Partial (pre-shuffle) aggregation only collapses duplicates within
      // each partition; assume a nominal partition count when the physical
      // DOP is not yet fixed.
      if (op.kind == OpKind::kPreHashAgg || op.partial_agg) {
        int partitions = op.dop > 1 ? op.dop : 64;
        out.rows = std::min(child.rows, joint * partitions);
      }
      break;
    }
    case OpKind::kUnionAll: {
      out.rows = 0.0;
      double width = 8.0;
      for (const LogicalStats* child : children) {
        out.rows += child->rows;
        width = child->width;
        for (const auto& [col, ndv] : child->ndv) {
          auto it = out.ndv.find(col);
          out.ndv[col] = (it == out.ndv.end()) ? ndv : std::max(it->second, ndv);
        }
      }
      out.width = width;
      break;
    }
    case OpKind::kProcess: {
      const LogicalStats& child = *children.at(0);
      out.rows = child.rows * std::clamp(view.ProcessSelectivity(op), 0.0, 1.0);
      out.width = child.width;
      out.ndv = child.ndv;
      break;
    }
    case OpKind::kTop: {
      const LogicalStats& child = *children.at(0);
      out.rows = std::min(child.rows, static_cast<double>(std::max<int64_t>(op.limit, 1)));
      out.width = child.width;
      out.ndv = child.ndv;
      break;
    }
    case OpKind::kWindow: {
      const LogicalStats& child = *children.at(0);
      out.rows = child.rows;
      out.width = child.width;
      out.ndv = child.ndv;
      for (const NamedExpr& p : op.projections) {
        out.ndv[p.output] = std::min(view.ColumnDist(p.output).ndv, out.rows);
        out.width += view.ColumnDist(p.output).avg_width;
      }
      break;
    }
    case OpKind::kSample: {
      const LogicalStats& child = *children.at(0);
      out.rows = child.rows * std::clamp(op.sample_fraction, 0.0, 1.0);
      out.width = child.width;
      out.ndv = child.ndv;
      break;
    }
    default: {
      // Sorts, exchanges, output, filters-as-pass-through.
      if (!children.empty()) {
        out = *children.at(0);
      }
      break;
    }
  }
  out.rows = std::max(out.rows, 0.0);
  CapNdvToRows(&out);
  return out;
}

}  // namespace qsteer
