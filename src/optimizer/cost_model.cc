#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace qsteer {

CostParams CostParams::OptimizerBeliefs() {
  CostParams p;
  // The optimizer is optimistic about stage startup and scheduling: it
  // under-costs very wide stages (one of the systematic model errors that
  // make "low cost, high runtime" jobs exist — paper Figure 5).
  p.vertex_startup = 0.6;
  p.coordination_per_vertex = 0.004;
  return p;
}

CostParams CostParams::ClusterTruth() { return CostParams{}; }

CostParams CostParams::Calibrated(double cpu_scale, double io_scale, double startup_scale) {
  CostParams p = OptimizerBeliefs();
  cpu_scale = std::max(0.0, cpu_scale);
  io_scale = std::max(0.0, io_scale);
  startup_scale = std::max(0.0, startup_scale);
  p.read_per_byte *= io_scale;
  p.write_per_byte *= io_scale;
  p.net_per_byte *= io_scale;
  p.cpu_per_cmp *= cpu_scale;
  p.cpu_per_projection *= cpu_scale;
  p.hash_build_per_row *= cpu_scale;
  p.hash_probe_per_row *= cpu_scale;
  p.merge_per_row *= cpu_scale;
  p.loop_per_row_pair *= cpu_scale;
  p.seek_per_row *= cpu_scale;
  p.agg_update_per_row *= cpu_scale;
  p.stream_agg_per_row *= cpu_scale;
  p.sort_per_row_log *= cpu_scale;
  p.topn_per_row *= cpu_scale;
  p.emit_per_row *= cpu_scale;
  p.udo_per_row_unit *= cpu_scale;
  p.vertex_startup *= startup_scale;
  p.coordination_per_vertex *= startup_scale;
  return p;
}

namespace {

double Log2Of(double x) { return std::log2(std::max(2.0, x)); }

/// Effective parallelism of key-partitioned work: the hottest partition
/// holds at least TopValueShare of the rows, so dop beyond 1/share buys
/// nothing. Views believing uniformity return share 0 -> full dop.
double EffectiveDop(int dop, const StatsView& view, const std::vector<ColumnId>& keys) {
  double d = std::max(1, dop);
  if (keys.empty()) return d;
  // Multiple partition keys spread the hot value of any single column.
  double share = view.TopValueShare(keys[0]);
  for (size_t i = 1; i < keys.size(); ++i) {
    share *= std::max(view.TopValueShare(keys[i]), 0.02);
  }
  if (share <= 0.0) return d;
  return std::min(d, 1.0 / std::max(share, 1.0 / d));
}

/// Spill multiplier for hash/sort work with the given resident bytes per
/// vertex.
double SpillFactor(double bytes, double eff_dop, const CostParams& params) {
  double per_vertex = bytes / std::max(1.0, eff_dop);
  if (per_vertex <= params.memory_per_vertex_bytes) return 1.0;
  // Extra passes grow with the overflow ratio, capped.
  double overflow = per_vertex / params.memory_per_vertex_bytes;
  return std::min(params.spill_penalty * (0.7 + 0.3 * overflow), params.spill_penalty * 3.0);
}

bool IsStageBoundary(OpKind kind) {
  switch (kind) {
    case OpKind::kRangeScan:
    case OpKind::kExchange:
    case OpKind::kSort:
    case OpKind::kPhysicalUnionAll:
    case OpKind::kOutputWriter:
      return true;
    default:
      return false;
  }
}

}  // namespace

OpCost ComputeOpCost(const Operator& op, const LogicalStats& output,
                     const std::vector<const LogicalStats*>& children, int dop,
                     const CostParams& params, const StatsView& view) {
  OpCost cost;
  double d = std::max(1, dop);
  double in_rows = children.empty() ? 0.0 : children[0]->rows;
  double in_bytes = children.empty() ? 0.0 : children[0]->Bytes();
  double compute = 0.0;  // single-thread seconds of CPU work
  double io = 0.0;       // single-thread seconds of IO work
  double eff_dop = d;

  switch (op.kind) {
    case OpKind::kRangeScan: {
      // Partition pruning reduces the bytes actually read.
      double bytes = output.Bytes() * std::clamp(op.partition_fraction, 0.0, 1.0);
      io = bytes * params.read_per_byte;
      compute = output.rows * params.emit_per_row;
      cost.bytes_moved = bytes;
      break;
    }
    case OpKind::kSampleScan: {
      // Pipelined sampling over the child scan: one cheap decision per
      // input row; the read cost lives in the child.
      compute = in_rows * params.cpu_per_cmp;
      break;
    }
    case OpKind::kFilter: {
      int atoms = op.predicate != nullptr ? std::max(1, op.predicate->CountAtoms()) : 1;
      compute = in_rows * atoms * params.cpu_per_cmp;
      break;
    }
    case OpKind::kCompute: {
      compute = in_rows * std::max<size_t>(1, op.projections.size()) * params.cpu_per_projection;
      break;
    }
    case OpKind::kHashJoin:
    case OpKind::kBroadcastHashJoin: {
      const LogicalStats& build = *children.at(op.build_side == 0 ? 1 : 0);
      const LogicalStats& probe = *children.at(op.build_side == 0 ? 0 : 1);
      // Broadcast joins keep the probe side's balanced partitioning; only
      // key-partitioned hash joins suffer partition skew.
      if (op.kind == OpKind::kHashJoin) {
        eff_dop = EffectiveDop(dop, view, op.left_keys);
      }
      double build_bytes = op.kind == OpKind::kBroadcastHashJoin
                               ? build.Bytes() * d  // full copy per vertex
                               : build.Bytes();
      double spill = SpillFactor(build_bytes, op.kind == OpKind::kBroadcastHashJoin ? d : eff_dop,
                                 params);
      compute = (build.rows * params.hash_build_per_row +
                 probe.rows * params.hash_probe_per_row) *
                    spill +
                output.rows * params.emit_per_row;
      if (spill > 1.0) io += build.Bytes() * (params.write_per_byte + params.read_per_byte);
      break;
    }
    case OpKind::kMergeJoin: {
      eff_dop = EffectiveDop(dop, view, op.left_keys);
      compute = (children.at(0)->rows + children.at(1)->rows) * params.merge_per_row +
                output.rows * params.emit_per_row;
      break;
    }
    case OpKind::kLoopJoin: {
      compute = children.at(0)->rows * children.at(1)->rows * params.loop_per_row_pair +
                output.rows * params.emit_per_row;
      break;
    }
    case OpKind::kIndexApplyJoin: {
      compute = children.at(0)->rows * params.seek_per_row + output.rows * params.emit_per_row;
      break;
    }
    case OpKind::kHashAgg: {
      eff_dop = EffectiveDop(dop, view, op.group_keys);
      double spill = SpillFactor(in_bytes, eff_dop, params);
      compute = in_rows * params.agg_update_per_row * spill + output.rows * params.emit_per_row;
      if (spill > 1.0) io += in_bytes * (params.write_per_byte + params.read_per_byte);
      break;
    }
    case OpKind::kStreamAgg: {
      eff_dop = EffectiveDop(dop, view, op.group_keys);
      compute = in_rows * params.stream_agg_per_row + output.rows * params.emit_per_row;
      break;
    }
    case OpKind::kPreHashAgg: {
      // Local partial aggregation: no shuffle, no skew exposure.
      compute = in_rows * params.agg_update_per_row * 0.7 + output.rows * params.emit_per_row;
      break;
    }
    case OpKind::kPhysicalUnionAll: {
      double bytes = 0.0;
      for (const LogicalStats* child : children) bytes += child->Bytes();
      // Concatenation rewrites the data into a fresh combined stream.
      io = bytes * (params.read_per_byte + params.write_per_byte);
      compute = output.rows * params.emit_per_row;
      cost.bytes_moved = bytes;
      break;
    }
    case OpKind::kVirtualDataset: {
      // Metadata-only union: downstream vertices read source partitions
      // directly.
      cost.latency = params.virtual_dataset_overhead;
      return cost;
    }
    case OpKind::kSortedUnionAll: {
      compute = output.rows * params.merge_per_row;
      break;
    }
    case OpKind::kSort: {
      double spill = SpillFactor(in_bytes, d, params);
      compute = in_rows * Log2Of(in_rows / d) * params.sort_per_row_log * spill;
      if (spill > 1.0) io += in_bytes * (params.write_per_byte + params.read_per_byte);
      break;
    }
    case OpKind::kTopNSort: {
      compute = in_rows * Log2Of(static_cast<double>(std::max<int64_t>(2, op.limit))) *
                params.topn_per_row;
      break;
    }
    case OpKind::kTopNHeap: {
      compute = in_rows * params.topn_per_row;
      break;
    }
    case OpKind::kExchange: {
      double bytes = in_bytes;
      switch (op.exchange) {
        case ExchangeKind::kRepartition: {
          eff_dop = EffectiveDop(dop, view, op.exchange_keys);
          io = bytes * params.net_per_byte;
          compute = in_rows * params.emit_per_row;
          cost.bytes_moved = bytes;
          break;
        }
        case ExchangeKind::kGather: {
          eff_dop = 1.0;
          io = bytes * params.net_per_byte;
          compute = in_rows * params.emit_per_row * 0.5;
          cost.bytes_moved = bytes;
          break;
        }
        case ExchangeKind::kBroadcast: {
          // Every one of the `dop` consumers receives the full input.
          double total = bytes * d;
          io = total * params.net_per_byte;
          compute = in_rows * params.emit_per_row;
          cost.bytes_moved = total;
          // Fan-out trees parallelize the sends.
          eff_dop = std::max(1.0, d / Log2Of(d + 1.0));
          break;
        }
      }
      break;
    }
    case OpKind::kProcessVertex: {
      compute = in_rows * view.ProcessCostPerRow(op) * params.udo_per_row_unit;
      break;
    }
    case OpKind::kWindowSegment: {
      eff_dop = EffectiveDop(dop, view, op.window_keys);
      compute = in_rows * params.stream_agg_per_row * 1.5;
      break;
    }
    case OpKind::kOutputWriter: {
      double bytes = output.Bytes();
      io = bytes * params.write_per_byte;
      cost.bytes_moved = bytes;
      break;
    }
    default: {
      // Logical operators have no physical cost.
      return cost;
    }
  }

  cost.cpu = compute;
  cost.io += io;
  double work = compute + io;
  cost.latency = work / std::max(1.0, eff_dop) + params.coordination_per_vertex * d;
  if (IsStageBoundary(op.kind)) cost.latency += params.vertex_startup;
  return cost;
}

}  // namespace qsteer
