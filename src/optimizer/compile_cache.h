// Sharded, thread-safe cache of compile results keyed by
// hash(job fingerprint, config ∩ job span).
//
// The paper's §4 span insight says two configurations that agree on a job's
// rule span must produce identical plans; projecting each configuration onto
// the span before keying therefore dedupes every span-equivalent candidate
// recompile to a single cached compile. Callers without a span in hand (the
// span loop itself, the serving path) key by the full configuration bits —
// a projection onto the universe, always sound.
//
// Entries store the full key (fingerprint + projected bits), so a 64-bit
// table collision degrades to a miss, never a wrong plan. Both successful
// compiles and permanent kCompilationFailed results are cached ("many
// configurations do not compile" — §5 — and they fail identically every
// time); transient kDeadlineExceeded results are not.
#ifndef QSTEER_OPTIMIZER_COMPILE_CACHE_H_
#define QSTEER_OPTIMIZER_COMPILE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "optimizer/optimizer.h"

namespace qsteer {

struct CompileCacheOptions {
  /// Total byte budget across all shards; each shard evicts LRU entries past
  /// its share. <= 0 never stores anything (every lookup misses).
  int64_t capacity_bytes = 64ll << 20;
  /// Shard count (rounded up to a power of two). Keys distribute by hash, so
  /// pipeline workers rarely contend on one shard mutex.
  int shards = 8;
};

struct CompileCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;
  int64_t entries = 0;
  int64_t bytes = 0;
  /// Lookups/inserts that found their shard's mutex already held (the
  /// sharding-efficiency signal: should stay ~0 under normal fan-out).
  int64_t shard_contention = 0;
  /// Entries pre-loaded from a persisted cache file (WarmFromFile).
  int64_t warm_loaded = 0;
  /// Warm-load attempts rejected whole (missing/corrupt/torn file, version
  /// or day mismatch). Each rejection degrades to cold compiles — never a
  /// wrong plan.
  int64_t warm_rejected = 0;

  double HitRate() const {
    int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
  std::string ToString() const;
};

class CompileCache {
 public:
  struct Key {
    /// JobFingerprint(job).
    uint64_t fingerprint = 0;
    /// config.bits() ∩ span (or the full bits when no span applies).
    BitVector256 projected;

    uint64_t Hash() const { return HashCombine(fingerprint, projected.Hash()); }
    bool operator==(const Key& other) const {
      return fingerprint == other.fingerprint && projected == other.projected;
    }
  };

  explicit CompileCache(CompileCacheOptions options = {});

  /// Returns the cached compile result — a plan or a permanent failure — or
  /// nullopt on miss. A hit refreshes the entry's LRU position. The returned
  /// CompiledPlan shares the immutable plan DAG with the cache (PlanNode is
  /// const; sharing across threads is safe).
  std::optional<Result<CompiledPlan>> Lookup(const Key& key);

  /// Stores a compile result. Transient failures (kDeadlineExceeded and
  /// anything other than kCompilationFailed) are ignored, as is everything
  /// when the capacity is <= 0.
  void Insert(const Key& key, const Result<CompiledPlan>& result);

  CompileCacheStats stats() const;

  /// Persists every cached entry (plans serialized via plan/serde.h,
  /// permanent failures as their message) to `path`: a version-tagged,
  /// day-stamped header, binary entry records in sorted key order (two
  /// caches with equal contents write identical bytes), an atomic rename
  /// and a crc32 footer. The nightly discovery pass ships these files to
  /// pre-warm tomorrow's serving caches.
  Status SaveToFile(const std::string& path, int day, bool sync = true) const;

  /// Pre-loads entries from a SaveToFile artifact. The whole file is
  /// rejected (kFailedPrecondition / kInvalidArgument, warm_rejected
  /// bumped) when the checksum fails, the version tag is unknown, or
  /// `expected_day` >= 0 disagrees with the recorded day — the cache then
  /// simply stays cold. Loaded entries still carry their full keys, so the
  /// existing full-key verification guards collisions exactly as for fresh
  /// inserts; a stale or foreign entry can cost a miss, never a wrong
  /// plan. `loaded` (optional) receives the number of entries inserted.
  Status WarmFromFile(const std::string& path, int expected_day, int64_t* loaded = nullptr);

 private:
  struct Entry {
    Key key;
    bool ok = false;
    CompiledPlan plan;          // valid when ok
    std::string error_message;  // kCompilationFailed message when !ok
    int64_t bytes = 0;
    std::list<uint64_t>::iterator lru_pos;
  };
  struct Shard {
    Mutex mu;
    std::unordered_map<uint64_t, Entry> entries GUARDED_BY(mu);  // by Key::Hash()
    std::list<uint64_t> lru GUARDED_BY(mu);                      // front = most recent
    int64_t bytes GUARDED_BY(mu) = 0;
    int64_t hits GUARDED_BY(mu) = 0;
    int64_t misses GUARDED_BY(mu) = 0;
    int64_t inserts GUARDED_BY(mu) = 0;
    int64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key_hash) const;
  /// Locks a shard, counting failed first tries as contention. Pair with
  /// `MutexLock lock(shard.mu, kAdoptLock)` for scoped release.
  void AcquireShard(Shard& shard) const ACQUIRE(shard.mu);

  CompileCacheOptions options_;
  int64_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<int64_t> contention_{0};
  std::atomic<int64_t> warm_loaded_{0};
  std::atomic<int64_t> warm_rejected_{0};
};

/// Cache identity of a job: the full structural plan hash (literals and all
/// operator payload included — exactly the identity the memo's own dedup
/// uses), the day (statistics change daily) and the column-universe size
/// (rule-minted column ids start there, so plans compiled against different
/// universes are not interchangeable). The job *name* is deliberately
/// excluded: recurring instances of one script share compiles.
uint64_t JobFingerprint(const Job& job);

/// The span projection of a configuration: its enabled bits restricted to
/// the span. Configurations with equal projections compile to identical
/// plans (paper §4).
BitVector256 ProjectConfig(const RuleConfig& config, const BitVector256& span);

/// Pairs an optimizer with an optional compile cache and per-job compile
/// session — one per job analysis, shared by the span loop and any other
/// full-configuration compiles of that job. Null cache/session degrade to a
/// plain Optimizer::Compile.
class CachingCompiler {
 public:
  CachingCompiler(const Optimizer* optimizer, CompileCache* cache, CompileSession* session,
                  uint64_t job_fingerprint)
      : optimizer_(optimizer),
        cache_(cache),
        session_(session),
        fingerprint_(job_fingerprint) {}

  /// Compiles under the full-configuration key (no span projection).
  Result<CompiledPlan> Compile(const Job& job, const RuleConfig& config) const;

 private:
  const Optimizer* optimizer_;
  CompileCache* cache_;
  CompileSession* session_;
  uint64_t fingerprint_;
};

}  // namespace qsteer

#endif  // QSTEER_OPTIMIZER_COMPILE_CACHE_H_
