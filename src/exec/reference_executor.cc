#include "exec/reference_executor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <unordered_map>

#include "catalog/datagen.h"
#include "common/hash.h"
#include "optimizer/stats.h"

namespace qsteer {

namespace {

/// RowAccessor over one row of a Relation.
class RelationRow : public RowAccessor {
 public:
  RelationRow(const std::vector<ColumnId>& columns, const std::vector<int64_t>* row)
      : columns_(columns), row_(row) {}
  void SetRow(const std::vector<int64_t>* row) { row_ = row; }

  int64_t Get(ColumnId column) const override {
    auto it = std::lower_bound(columns_.begin(), columns_.end(), column);
    if (it == columns_.end() || *it != column) return kNullValue;
    return (*row_)[static_cast<size_t>(it - columns_.begin())];
  }

 private:
  const std::vector<ColumnId>& columns_;
  const std::vector<int64_t>* row_;
};

int IndexOf(const std::vector<ColumnId>& columns, ColumnId col) {
  auto it = std::lower_bound(columns.begin(), columns.end(), col);
  if (it == columns.end() || *it != col) return -1;
  return static_cast<int>(it - columns.begin());
}

/// Deterministic computed-column function (matches nothing in the optimizer;
/// only result equality across plans matters).
int64_t ComputeDerived(uint64_t seed, const std::vector<int64_t>& inputs, double ndv_hint) {
  uint64_t h = Mix64(seed + 0x51);
  for (int64_t v : inputs) h = HashCombine(h, static_cast<uint64_t>(v) + 3);
  int64_t domain = std::max<int64_t>(1, static_cast<int64_t>(ndv_hint));
  return 1 + static_cast<int64_t>(Mix64(h) % static_cast<uint64_t>(domain));
}

/// True row-wise UDO decision; keyed by name and row content so it commutes
/// with selects and unions.
bool UdoKeepsRow(const std::string& name, double job_latent, const std::vector<int64_t>& row) {
  double rate = std::clamp(UdoTrueSelectivity(name) * job_latent, 0.005, 1.0);
  uint64_t h = HashString(name);
  for (int64_t v : row) h = HashCombine(h, static_cast<uint64_t>(v) + 17);
  return (static_cast<double>(Mix64(h) & 0xffffff) / 16777215.0) < rate;
}

struct AggState {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  bool has_value = false;

  void Update(AggFunc func, int64_t value, bool is_null) {
    if (func == AggFunc::kCount) {
      ++count;
      return;
    }
    if (is_null) return;
    if (!has_value) {
      has_value = true;
      sum = min = max = value;
      return;
    }
    sum += value;
    min = std::min(min, value);
    max = std::max(max, value);
  }

  int64_t Result(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return count;
      case AggFunc::kSum:
        return has_value ? sum : kNullValue;
      case AggFunc::kMin:
        return has_value ? min : kNullValue;
      case AggFunc::kMax:
        return has_value ? max : kNullValue;
    }
    return kNullValue;
  }
};

}  // namespace

std::string Relation::Fingerprint(const std::vector<ColumnId>& restrict_to) const {
  std::vector<int> keep;
  if (restrict_to.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) keep.push_back(static_cast<int>(i));
  } else {
    for (ColumnId c : restrict_to) {
      int idx = IndexOf(columns, c);
      if (idx >= 0) keep.push_back(idx);
    }
  }
  // Order-insensitive bag fingerprint: sort per-row hashes, then hash the
  // sorted sequence.
  std::vector<uint64_t> row_hashes;
  row_hashes.reserve(rows.size());
  for (const std::vector<int64_t>& row : rows) {
    uint64_t h = 0x5115;
    for (int idx : keep) h = HashCombine(h, static_cast<uint64_t>(row[static_cast<size_t>(idx)]));
    row_hashes.push_back(h);
  }
  std::sort(row_hashes.begin(), row_hashes.end());
  uint64_t h = 0x900d;
  for (uint64_t rh : row_hashes) h = HashCombine(h, rh);
  return std::to_string(keep.size()) + ":" + std::to_string(rows.size()) + ":" +
         std::to_string(h);
}

ReferenceExecutor::ReferenceExecutor(const Catalog* catalog, ReferenceExecutorOptions options)
    : catalog_(catalog), options_(options) {}

Relation ReferenceExecutor::Execute(const Job& job, const PlanNodePtr& root) const {
  std::unordered_map<const PlanNode*, Relation> cache;

  std::function<const Relation&(const PlanNode*)> exec =
      [&](const PlanNode* node) -> const Relation& {
    auto it = cache.find(node);
    if (it != cache.end()) return it->second;
    const Operator& op = node->op;
    Relation out;

    auto scan = [&](int stream_id, const std::vector<ColumnId>& scan_columns) {
      Relation rel;
      RowBatch batch =
          MaterializeStream(*catalog_, stream_id, job.day, options_.max_rows_per_stream);
      rel.columns = scan_columns;
      std::sort(rel.columns.begin(), rel.columns.end());
      rel.rows.reserve(static_cast<size_t>(batch.num_rows()));
      for (int64_t r = 0; r < batch.num_rows(); ++r) {
        std::vector<int64_t> row;
        row.reserve(rel.columns.size());
        for (ColumnId c : rel.columns) {
          const ColumnInfo& info = job.columns->info(c);
          row.push_back(batch.columns[static_cast<size_t>(info.column_index)]
                                     [static_cast<size_t>(r)]);
        }
        rel.rows.push_back(std::move(row));
      }
      return rel;
    };

    switch (op.kind) {
      case OpKind::kGet:
      case OpKind::kRangeScan: {
        out = scan(op.stream_id, op.scan_columns);
        break;
      }
      case OpKind::kSample:
      case OpKind::kSampleScan: {
        // Both forms are unary samplers over their child.
        Relation in = exec(node->children[0].get());
        out.columns = in.columns;
        for (const auto& row : in.rows) {
          uint64_t h = 0x5a;
          for (int64_t v : row) h = HashCombine(h, static_cast<uint64_t>(v));
          if ((static_cast<double>(Mix64(h) & 0xffffff) / 16777215.0) < op.sample_fraction) {
            out.rows.push_back(row);
          }
        }
        break;
      }
      case OpKind::kSelect:
      case OpKind::kFilter: {
        const Relation& in = exec(node->children[0].get());
        out.columns = in.columns;
        RelationRow accessor(in.columns, nullptr);
        for (const auto& row : in.rows) {
          accessor.SetRow(&row);
          if (op.predicate == nullptr || op.predicate->EvalPredicate(accessor)) {
            out.rows.push_back(row);
          }
        }
        break;
      }
      case OpKind::kProject:
      case OpKind::kCompute: {
        const Relation& in = exec(node->children[0].get());
        std::vector<ColumnId> outputs;
        for (const NamedExpr& p : op.projections) outputs.push_back(p.output);
        std::sort(outputs.begin(), outputs.end());
        outputs.erase(std::unique(outputs.begin(), outputs.end()), outputs.end());
        out.columns = outputs;
        for (const auto& row : in.rows) {
          std::vector<int64_t> new_row(out.columns.size(), kNullValue);
          for (const NamedExpr& p : op.projections) {
            int out_idx = IndexOf(out.columns, p.output);
            if (p.pass_through) {
              int in_idx = IndexOf(in.columns, p.inputs.empty() ? p.output : p.inputs[0]);
              new_row[static_cast<size_t>(out_idx)] =
                  in_idx >= 0 ? row[static_cast<size_t>(in_idx)] : kNullValue;
            } else {
              std::vector<int64_t> args;
              for (ColumnId c : p.inputs) {
                int in_idx = IndexOf(in.columns, c);
                args.push_back(in_idx >= 0 ? row[static_cast<size_t>(in_idx)] : kNullValue);
              }
              new_row[static_cast<size_t>(out_idx)] = ComputeDerived(
                  p.fn_seed, args, job.columns->info(p.output).derived_ndv);
            }
          }
          out.rows.push_back(std::move(new_row));
        }
        break;
      }
      case OpKind::kJoin:
      case OpKind::kHashJoin:
      case OpKind::kBroadcastHashJoin:
      case OpKind::kMergeJoin:
      case OpKind::kLoopJoin:
      case OpKind::kIndexApplyJoin: {
        const Relation& left = exec(node->children[0].get());
        Relation right_local;
        const Relation* right = nullptr;
        if (op.kind == OpKind::kIndexApplyJoin) {
          right_local = scan(op.stream_id, op.scan_columns);
          right = &right_local;
        } else {
          right = &exec(node->children[1].get());
        }

        // Column layout of the join output.
        if (op.join_type == JoinType::kLeftSemi) {
          out.columns = left.columns;
        } else {
          out.columns = left.columns;
          out.columns.insert(out.columns.end(), right->columns.begin(),
                             right->columns.end());
          std::sort(out.columns.begin(), out.columns.end());
          out.columns.erase(std::unique(out.columns.begin(), out.columns.end()),
                            out.columns.end());
        }

        // Hash the right side on its keys.
        std::vector<int> right_key_idx;
        for (ColumnId k : op.right_keys) right_key_idx.push_back(IndexOf(right->columns, k));
        std::unordered_map<uint64_t, std::vector<const std::vector<int64_t>*>> hash_table;
        for (const auto& row : right->rows) {
          uint64_t h = 0xbeef;
          bool null_key = false;
          for (int idx : right_key_idx) {
            int64_t v = idx >= 0 ? row[static_cast<size_t>(idx)] : kNullValue;
            if (v == kNullValue) null_key = true;
            h = HashCombine(h, static_cast<uint64_t>(v));
          }
          if (!null_key) hash_table[h].push_back(&row);
        }

        std::vector<int> left_key_idx;
        for (ColumnId k : op.left_keys) left_key_idx.push_back(IndexOf(left.columns, k));

        auto keys_equal = [&](const std::vector<int64_t>& lrow,
                              const std::vector<int64_t>& rrow) {
          for (size_t i = 0; i < left_key_idx.size(); ++i) {
            int64_t lv = left_key_idx[i] >= 0
                             ? lrow[static_cast<size_t>(left_key_idx[i])]
                             : kNullValue;
            int64_t rv = right_key_idx[i] >= 0
                             ? rrow[static_cast<size_t>(right_key_idx[i])]
                             : kNullValue;
            if (lv == kNullValue || rv == kNullValue || lv != rv) return false;
          }
          return true;
        };

        auto emit = [&](const std::vector<int64_t>& lrow,
                        const std::vector<int64_t>* rrow) {
          std::vector<int64_t> row(out.columns.size(), kNullValue);
          for (size_t i = 0; i < left.columns.size(); ++i) {
            int idx = IndexOf(out.columns, left.columns[i]);
            if (idx >= 0) row[static_cast<size_t>(idx)] = lrow[i];
          }
          if (rrow != nullptr) {
            for (size_t i = 0; i < right->columns.size(); ++i) {
              int idx = IndexOf(out.columns, right->columns[i]);
              if (idx >= 0) row[static_cast<size_t>(idx)] = (*rrow)[i];
            }
          }
          out.rows.push_back(std::move(row));
        };

        // Residual predicate evaluated over the combined row.
        RelationRow accessor(out.columns, nullptr);
        for (const auto& lrow : left.rows) {
          uint64_t h = 0xbeef;
          bool null_key = false;
          for (int idx : left_key_idx) {
            int64_t v = idx >= 0 ? lrow[static_cast<size_t>(idx)] : kNullValue;
            if (v == kNullValue) null_key = true;
            h = HashCombine(h, static_cast<uint64_t>(v));
          }
          bool matched = false;
          if (!null_key) {
            auto bucket = hash_table.find(h);
            if (bucket != hash_table.end()) {
              for (const auto* rrow : bucket->second) {
                if (!keys_equal(lrow, *rrow)) continue;
                if (op.join_type == JoinType::kLeftSemi) {
                  matched = true;
                  break;
                }
                size_t before = out.rows.size();
                emit(lrow, rrow);
                if (op.predicate != nullptr && op.predicate->kind() != ExprKind::kTrue) {
                  accessor.SetRow(&out.rows.back());
                  if (!op.predicate->EvalPredicate(accessor)) {
                    out.rows.resize(before);
                    continue;
                  }
                }
                matched = true;
              }
            }
          }
          if (op.join_type == JoinType::kLeftSemi && matched) {
            out.rows.push_back(lrow);
          } else if (op.join_type == JoinType::kLeftOuter && !matched) {
            emit(lrow, nullptr);
          }
        }
        break;
      }
      case OpKind::kGroupBy:
      case OpKind::kHashAgg:
      case OpKind::kStreamAgg:
      case OpKind::kPreHashAgg: {
        // Partial aggregation executes as a full grouping: re-aggregation at
        // the final stage yields identical results, and result equality is
        // all this executor asserts.
        const Relation& in = exec(node->children[0].get());
        std::vector<ColumnId> outputs = op.group_keys;
        for (const AggExpr& a : op.aggs) outputs.push_back(a.output);
        std::sort(outputs.begin(), outputs.end());
        outputs.erase(std::unique(outputs.begin(), outputs.end()), outputs.end());
        out.columns = outputs;

        std::vector<int> key_idx;
        for (ColumnId k : op.group_keys) key_idx.push_back(IndexOf(in.columns, k));
        std::vector<int> arg_idx;
        for (const AggExpr& a : op.aggs) arg_idx.push_back(IndexOf(in.columns, a.arg));

        std::map<std::vector<int64_t>, std::vector<AggState>> groups;
        for (const auto& row : in.rows) {
          std::vector<int64_t> key;
          key.reserve(key_idx.size());
          for (int idx : key_idx) {
            key.push_back(idx >= 0 ? row[static_cast<size_t>(idx)] : kNullValue);
          }
          auto& states = groups[key];
          if (states.empty()) states.resize(op.aggs.size());
          for (size_t a = 0; a < op.aggs.size(); ++a) {
            int64_t v = arg_idx[a] >= 0 ? row[static_cast<size_t>(arg_idx[a])] : kNullValue;
            states[a].Update(op.aggs[a].func, v, v == kNullValue);
          }
        }
        for (const auto& [key, states] : groups) {
          std::vector<int64_t> row(out.columns.size(), kNullValue);
          for (size_t i = 0; i < op.group_keys.size(); ++i) {
            int idx = IndexOf(out.columns, op.group_keys[i]);
            if (idx >= 0) row[static_cast<size_t>(idx)] = key[i];
          }
          for (size_t a = 0; a < op.aggs.size(); ++a) {
            int idx = IndexOf(out.columns, op.aggs[a].output);
            if (idx >= 0) row[static_cast<size_t>(idx)] = states[a].Result(op.aggs[a].func);
          }
          out.rows.push_back(std::move(row));
        }
        break;
      }
      case OpKind::kUnionAll:
      case OpKind::kPhysicalUnionAll:
      case OpKind::kVirtualDataset:
      case OpKind::kSortedUnionAll: {
        const Relation& first = exec(node->children[0].get());
        out.columns = first.columns;
        for (const PlanNodePtr& child : node->children) {
          const Relation& in = exec(child.get());
          for (const auto& row : in.rows) {
            if (in.columns == out.columns) {
              out.rows.push_back(row);
            } else {
              // Align by column id (schemas are id-compatible by builder
              // contract, but physical plans may order differently).
              std::vector<int64_t> aligned(out.columns.size(), kNullValue);
              for (size_t i = 0; i < out.columns.size(); ++i) {
                int idx = IndexOf(in.columns, out.columns[i]);
                if (idx >= 0) aligned[i] = row[static_cast<size_t>(idx)];
              }
              out.rows.push_back(std::move(aligned));
            }
          }
        }
        break;
      }
      case OpKind::kProcess:
      case OpKind::kProcessVertex: {
        const Relation& in = exec(node->children[0].get());
        out.columns = in.columns;
        for (const auto& row : in.rows) {
          if (UdoKeepsRow(op.udo_name, job.udo_true_selectivity, row)) {
            out.rows.push_back(row);
          }
        }
        break;
      }
      case OpKind::kWindow:
      case OpKind::kWindowSegment: {
        const Relation& in = exec(node->children[0].get());
        std::vector<ColumnId> outputs = in.columns;
        for (const NamedExpr& p : op.projections) outputs.push_back(p.output);
        std::sort(outputs.begin(), outputs.end());
        outputs.erase(std::unique(outputs.begin(), outputs.end()), outputs.end());
        out.columns = outputs;
        for (const auto& row : in.rows) {
          std::vector<int64_t> new_row(out.columns.size(), kNullValue);
          for (size_t i = 0; i < in.columns.size(); ++i) {
            int idx = IndexOf(out.columns, in.columns[i]);
            if (idx >= 0) new_row[static_cast<size_t>(idx)] = row[i];
          }
          for (const NamedExpr& p : op.projections) {
            std::vector<int64_t> args;
            for (ColumnId c : p.inputs) {
              int idx = IndexOf(in.columns, c);
              args.push_back(idx >= 0 ? row[static_cast<size_t>(idx)] : kNullValue);
            }
            int idx = IndexOf(out.columns, p.output);
            if (idx >= 0) {
              new_row[static_cast<size_t>(idx)] = ComputeDerived(
                  p.fn_seed, args, job.columns->info(p.output).derived_ndv);
            }
          }
          out.rows.push_back(std::move(new_row));
        }
        break;
      }
      case OpKind::kTop:
      case OpKind::kTopNSort:
      case OpKind::kTopNHeap: {
        Relation in = exec(node->children[0].get());  // copy: we sort it
        out.columns = in.columns;
        std::vector<int> key_idx;
        for (ColumnId k : op.sort_keys) key_idx.push_back(IndexOf(in.columns, k));
        // Deterministic total order: sort keys ascending (nulls last), then
        // whole-row lexicographic tiebreak.
        std::sort(in.rows.begin(), in.rows.end(),
                  [&](const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
                    for (int idx : key_idx) {
                      if (idx < 0) continue;
                      int64_t av = a[static_cast<size_t>(idx)];
                      int64_t bv = b[static_cast<size_t>(idx)];
                      bool an = av == kNullValue, bn = bv == kNullValue;
                      if (an != bn) return bn;  // nulls last
                      if (av != bv) return av < bv;
                    }
                    return a < b;
                  });
        int64_t limit = std::max<int64_t>(op.limit, 0);
        for (int64_t i = 0; i < limit && i < in.num_rows(); ++i) {
          out.rows.push_back(in.rows[static_cast<size_t>(i)]);
        }
        break;
      }
      case OpKind::kSort:
      case OpKind::kExchange:
      case OpKind::kOutput:
      case OpKind::kOutputWriter: {
        out = exec(node->children[0].get());
        break;
      }
      default: {
        if (!node->children.empty()) out = exec(node->children[0].get());
        break;
      }
    }
    return cache.emplace(node, std::move(out)).first->second;
  };

  return exec(root.get());
}

}  // namespace qsteer
