// Distributed execution simulator.
//
// Takes a compiled physical plan and "executes" it against the generative
// ground truth: true cardinalities (TrueStatsView), true cluster cost
// parameters, partition skew, spills computed from real sizes, a token
// budget (concurrent containers, paper §3.1.3 uses 50), and cluster noise.
// Reports the paper's three metrics: runtime, total CPU time, total IO time
// (§3.1.2).
#ifndef QSTEER_EXEC_SIMULATOR_H_
#define QSTEER_EXEC_SIMULATOR_H_

#include <unordered_map>
#include <vector>

#include "common/retry.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "plan/job.h"

namespace qsteer {

/// The paper's evaluation metrics (§3.1.2), plus the resilience counters the
/// fault layer reports. The fault fields stay zero (and `failed` false) when
/// the simulator runs without a fault profile.
struct ExecMetrics {
  /// Wall-clock latency, seconds (excludes queueing, as in the paper).
  double runtime = 0.0;
  /// Total CPU seconds across all vertices.
  double cpu_time = 0.0;
  /// Total IO seconds (read/write/shuffle) across all vertices.
  double io_time = 0.0;
  double bytes_moved = 0.0;
  /// Total true output rows of the job.
  double output_rows = 0.0;

  /// Vertex re-execution attempts after transient vertex failures.
  int retries = 0;
  /// Vertices that failed at least once during this run.
  int failed_vertices = 0;
  /// Stragglers mitigated by a speculative duplicate vertex.
  int speculative_copies = 0;
  /// Stages that lost part of their token allotment to preemption.
  int token_revocations = 0;
  /// CPU seconds spent on work that was thrown away (failed attempts,
  /// abandoned speculative copies, aborted-job progress).
  double wasted_cpu_time = 0.0;
  /// Terminal: the run did not complete (vertex retry budget exhausted or a
  /// job-level transient failure). Metrics describe the partial run; callers
  /// retry with a different nonce (see RetryPolicy).
  bool failed = false;
};

/// Deterministic fault-injection profile of the simulated cluster. Every
/// draw is a pure function of hash(job, plan, run_nonce, vertex), so fault
/// injection is bit-reproducible and independent of threading — the same
/// contract as the simulator's noise nonces. A default-constructed profile
/// injects nothing and leaves the simulator bit-identical to the
/// fault-free path.
struct FaultProfile {
  /// Probability that one vertex attempt fails transiently (lost container,
  /// bad node, revoked token mid-run). Failed attempts are retried with
  /// backoff up to `vertex_retry`; exhausting the budget fails the run.
  double vertex_failure_prob = 0.0;
  /// Probability that a vertex straggles (slow disk/network neighbor).
  double straggler_prob = 0.0;
  /// Lognormal parameters of the straggler slowdown multiplier (clamped to
  /// >= 1): multiplier = exp(mu + sigma * N(0,1)).
  double straggler_mu = 0.4;
  double straggler_sigma = 0.35;
  /// When > 0, a speculative duplicate launches once a straggler exceeds
  /// this multiple of the stage latency; the vertex then finishes at
  /// min(multiplier, threshold + 1) but the loser copy's CPU is wasted.
  double speculation_threshold = 1.5;
  /// Probability that a stage loses half its token allotment to preemption
  /// (runs in twice the waves).
  double token_revocation_prob = 0.0;
  /// Probability that the whole run aborts partway (job-manager failover,
  /// quota revocation): the run reports `failed` with partial metrics.
  double job_failure_prob = 0.0;
  /// Per-vertex retry budget and (simulated) backoff.
  RetryPolicy vertex_retry;

  bool Active() const {
    return vertex_failure_prob > 0.0 || straggler_prob > 0.0 ||
           token_revocation_prob > 0.0 || job_failure_prob > 0.0;
  }

  static FaultProfile Off() { return FaultProfile{}; }
  /// A realistically flaky cluster, scaled by `level` (1.0 = the default
  /// mix of occasional vertex failures, stragglers, and preemptions).
  static FaultProfile Flaky(double level = 1.0);
};

enum class Metric { kRuntime, kCpuTime, kIoTime };
double MetricOf(const ExecMetrics& m, Metric metric);
const char* MetricName(Metric metric);

struct SimulatorOptions {
  /// Concurrent container budget per job (the paper's A/B infrastructure
  /// fixes 50 tokens per job).
  int tokens = 50;
  CostParams cost_params = CostParams::ClusterTruth();
  /// Lognormal sigma of cluster noise for long jobs; short jobs get more
  /// (paper §3.1.1: ~10% variance on short jobs).
  double noise_sigma_long = 0.02;
  double noise_sigma_short = 0.08;
  /// Runtime (seconds) below which a job counts as "short" for noise.
  double short_job_threshold = 300.0;
  /// Disable noise entirely (unit tests).
  bool deterministic = false;
  /// Fault injection (strictly opt-in; default injects nothing). Orthogonal
  /// to `deterministic`: faults are themselves deterministic per nonce.
  FaultProfile fault_profile;
};

/// True output cardinality of one plan node, recorded in the simulator's
/// deterministic bottom-up evaluation order (shared fragments appear once).
/// Pairs with an estimator-side DeriveStats walk to form the (estimated,
/// true) samples the calibration harness fits against.
struct NodeTrueCardinality {
  const PlanNode* node = nullptr;
  double rows = 0.0;
};

class ExecutionSimulator {
 public:
  ExecutionSimulator(const Catalog* catalog, SimulatorOptions options = {});

  /// Simulates one execution of a compiled plan for `job`. `run_nonce`
  /// selects the noise draw: re-executions with different nonces model the
  /// run-to-run variance of the cluster. When `node_cards` is non-null the
  /// true per-node cardinalities of this run are appended to it.
  ExecMetrics Execute(const Job& job, const PlanNodePtr& physical_root, uint64_t run_nonce = 0,
                      std::vector<NodeTrueCardinality>* node_cards = nullptr) const;

  const SimulatorOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  SimulatorOptions options_;
};

/// Convenience: compile + execute under a configuration; fails when the
/// configuration does not compile.
struct AbRunResult {
  CompiledPlan plan;
  ExecMetrics metrics;
};

/// A/B testing harness (paper §3.1.3): re-executes jobs with alternative
/// rule configurations on fixed resources and reports all metrics.
class AbTestHarness {
 public:
  AbTestHarness(const Optimizer* optimizer, const ExecutionSimulator* simulator)
      : optimizer_(optimizer), simulator_(simulator) {}

  Result<AbRunResult> Run(const Job& job, const RuleConfig& config,
                          uint64_t run_nonce = 0) const;

 private:
  const Optimizer* optimizer_;
  const ExecutionSimulator* simulator_;
};

}  // namespace qsteer

#endif  // QSTEER_EXEC_SIMULATOR_H_
