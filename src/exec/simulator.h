// Distributed execution simulator.
//
// Takes a compiled physical plan and "executes" it against the generative
// ground truth: true cardinalities (TrueStatsView), true cluster cost
// parameters, partition skew, spills computed from real sizes, a token
// budget (concurrent containers, paper §3.1.3 uses 50), and cluster noise.
// Reports the paper's three metrics: runtime, total CPU time, total IO time
// (§3.1.2).
#ifndef QSTEER_EXEC_SIMULATOR_H_
#define QSTEER_EXEC_SIMULATOR_H_

#include <unordered_map>

#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "plan/job.h"

namespace qsteer {

/// The paper's evaluation metrics (§3.1.2).
struct ExecMetrics {
  /// Wall-clock latency, seconds (excludes queueing, as in the paper).
  double runtime = 0.0;
  /// Total CPU seconds across all vertices.
  double cpu_time = 0.0;
  /// Total IO seconds (read/write/shuffle) across all vertices.
  double io_time = 0.0;
  double bytes_moved = 0.0;
  /// Total true output rows of the job.
  double output_rows = 0.0;
};

enum class Metric { kRuntime, kCpuTime, kIoTime };
double MetricOf(const ExecMetrics& m, Metric metric);
const char* MetricName(Metric metric);

struct SimulatorOptions {
  /// Concurrent container budget per job (the paper's A/B infrastructure
  /// fixes 50 tokens per job).
  int tokens = 50;
  CostParams cost_params = CostParams::ClusterTruth();
  /// Lognormal sigma of cluster noise for long jobs; short jobs get more
  /// (paper §3.1.1: ~10% variance on short jobs).
  double noise_sigma_long = 0.02;
  double noise_sigma_short = 0.08;
  /// Runtime (seconds) below which a job counts as "short" for noise.
  double short_job_threshold = 300.0;
  /// Disable noise entirely (unit tests).
  bool deterministic = false;
};

class ExecutionSimulator {
 public:
  ExecutionSimulator(const Catalog* catalog, SimulatorOptions options = {});

  /// Simulates one execution of a compiled plan for `job`. `run_nonce`
  /// selects the noise draw: re-executions with different nonces model the
  /// run-to-run variance of the cluster.
  ExecMetrics Execute(const Job& job, const PlanNodePtr& physical_root,
                      uint64_t run_nonce = 0) const;

  const SimulatorOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  SimulatorOptions options_;
};

/// Convenience: compile + execute under a configuration; fails when the
/// configuration does not compile.
struct AbRunResult {
  CompiledPlan plan;
  ExecMetrics metrics;
};

/// A/B testing harness (paper §3.1.3): re-executes jobs with alternative
/// rule configurations on fixed resources and reports all metrics.
class AbTestHarness {
 public:
  AbTestHarness(const Optimizer* optimizer, const ExecutionSimulator* simulator)
      : optimizer_(optimizer), simulator_(simulator) {}

  Result<AbRunResult> Run(const Job& job, const RuleConfig& config,
                          uint64_t run_nonce = 0) const;

 private:
  const Optimizer* optimizer_;
  const ExecutionSimulator* simulator_;
};

}  // namespace qsteer

#endif  // QSTEER_EXEC_SIMULATOR_H_
