#include "exec/simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "common/hash.h"
#include "common/random.h"
#include "optimizer/stats.h"

namespace qsteer {

double MetricOf(const ExecMetrics& m, Metric metric) {
  switch (metric) {
    case Metric::kRuntime:
      return m.runtime;
    case Metric::kCpuTime:
      return m.cpu_time;
    case Metric::kIoTime:
      return m.io_time;
  }
  return 0.0;
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kRuntime:
      return "Runtime";
    case Metric::kCpuTime:
      return "CPU time";
    case Metric::kIoTime:
      return "IO time";
  }
  return "?";
}

ExecutionSimulator::ExecutionSimulator(const Catalog* catalog, SimulatorOptions options)
    : catalog_(catalog), options_(options) {}

namespace {

struct NodeResult {
  LogicalStats stats;
  /// Earliest completion time of this fragment (critical path).
  double finish = 0.0;
};

}  // namespace

ExecMetrics ExecutionSimulator::Execute(const Job& job, const PlanNodePtr& physical_root,
                                        uint64_t run_nonce) const {
  ExecMetrics metrics;
  if (physical_root == nullptr) return metrics;
  TrueStatsView truth(catalog_, &job);

  // Bottom-up over the DAG; shared fragments are evaluated (and their cost
  // counted) once, as in the real engine where a cooked intermediate stream
  // feeds several consumers.
  std::unordered_map<const PlanNode*, NodeResult> results;
  double total_cpu = 0.0;
  double total_io = 0.0;
  double total_bytes = 0.0;

  std::function<const NodeResult&(const PlanNode*)> evaluate =
      [&](const PlanNode* node) -> const NodeResult& {
    auto it = results.find(node);
    if (it != results.end()) return it->second;

    std::vector<const LogicalStats*> child_stats;
    double children_finish = 0.0;
    child_stats.reserve(node->children.size());
    for (const PlanNodePtr& child : node->children) {
      const NodeResult& r = evaluate(child.get());
      child_stats.push_back(&r.stats);
      children_finish = std::max(children_finish, r.finish);
    }

    NodeResult result;
    result.stats = DeriveStats(node->op, child_stats, truth);
    OpCost cost = ComputeOpCost(node->op, result.stats, child_stats,
                                std::max(1, node->op.dop), options_.cost_params, truth);

    // Token budget: a stage wider than the job's token allotment runs in
    // waves.
    double latency = cost.latency;
    if (node->op.dop > options_.tokens) {
      latency *= static_cast<double>(node->op.dop) / options_.tokens;
    }

    result.finish = children_finish + latency;
    total_cpu += cost.cpu;
    total_io += cost.io;
    total_bytes += cost.bytes_moved;
    return results.emplace(node, std::move(result)).first->second;
  };

  const NodeResult& root = evaluate(physical_root.get());
  metrics.runtime = root.finish;
  metrics.cpu_time = total_cpu;
  metrics.io_time = total_io;
  metrics.bytes_moved = total_bytes;
  metrics.output_rows = root.stats.rows;

  if (!options_.deterministic) {
    // Cluster noise: short jobs are noisier (resource allocation jitter,
    // scheduling) than long ones, as observed in the paper (§3.1.1).
    double sigma = metrics.runtime < options_.short_job_threshold
                       ? options_.noise_sigma_short
                       : options_.noise_sigma_long;
    uint64_t seed = HashCombine(HashString(job.name), PlanHash(physical_root, false));
    seed = HashCombine(seed, run_nonce + 0x777);
    Pcg32 rng(seed, /*stream=*/59);
    metrics.runtime *= std::exp(sigma * rng.NextGaussian());
    metrics.cpu_time *= std::exp(0.5 * sigma * rng.NextGaussian());
    metrics.io_time *= std::exp(0.5 * sigma * rng.NextGaussian());
  }
  return metrics;
}

Result<AbRunResult> AbTestHarness::Run(const Job& job, const RuleConfig& config,
                                       uint64_t run_nonce) const {
  Result<CompiledPlan> compiled = optimizer_->Compile(job, config);
  if (!compiled.ok()) return compiled.status();
  AbRunResult out;
  out.plan = std::move(compiled.value());
  out.metrics = simulator_->Execute(job, out.plan.root, run_nonce);
  return out;
}

}  // namespace qsteer
