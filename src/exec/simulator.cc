#include "exec/simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "common/hash.h"
#include "common/random.h"
#include "optimizer/stats.h"

namespace qsteer {

double MetricOf(const ExecMetrics& m, Metric metric) {
  switch (metric) {
    case Metric::kRuntime:
      return m.runtime;
    case Metric::kCpuTime:
      return m.cpu_time;
    case Metric::kIoTime:
      return m.io_time;
  }
  return 0.0;
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kRuntime:
      return "Runtime";
    case Metric::kCpuTime:
      return "CPU time";
    case Metric::kIoTime:
      return "IO time";
  }
  return "?";
}

FaultProfile FaultProfile::Flaky(double level) {
  level = std::max(0.0, level);
  FaultProfile profile;
  profile.vertex_failure_prob = std::min(0.5, 0.02 * level);
  profile.straggler_prob = std::min(0.5, 0.06 * level);
  profile.token_revocation_prob = std::min(0.5, 0.04 * level);
  profile.job_failure_prob = std::min(0.3, 0.015 * level);
  return profile;
}

ExecutionSimulator::ExecutionSimulator(const Catalog* catalog, SimulatorOptions options)
    : catalog_(catalog), options_(options) {}

namespace {

struct NodeResult {
  LogicalStats stats;
  /// Earliest completion time of this fragment (critical path).
  double finish = 0.0;
};

}  // namespace

ExecMetrics ExecutionSimulator::Execute(const Job& job, const PlanNodePtr& physical_root,
                                        uint64_t run_nonce,
                                        std::vector<NodeTrueCardinality>* node_cards) const {
  ExecMetrics metrics;
  if (physical_root == nullptr) return metrics;
  TrueStatsView truth(catalog_, &job);

  // Fault injection (opt-in): every draw comes from a per-stage Pcg32 seeded
  // by hash(job, plan, nonce, stage ordinal). Stage ordinals are assigned in
  // the (deterministic) bottom-up evaluation order, so injection is
  // bit-reproducible and independent of which thread runs the execution —
  // the same contract as the noise nonces.
  const FaultProfile& faults = options_.fault_profile;
  const bool inject = faults.Active();
  uint64_t fault_base = 0;
  if (inject) {
    fault_base = HashCombine(HashCombine(HashString(job.name), PlanHash(physical_root, false)),
                             run_nonce + 0xFA17);
  }
  uint64_t stage_ordinal = 0;

  // Bottom-up over the DAG; shared fragments are evaluated (and their cost
  // counted) once, as in the real engine where a cooked intermediate stream
  // feeds several consumers.
  std::unordered_map<const PlanNode*, NodeResult> results;
  double total_cpu = 0.0;
  double total_io = 0.0;
  double total_bytes = 0.0;

  std::function<const NodeResult&(const PlanNode*)> evaluate =
      [&](const PlanNode* node) -> const NodeResult& {
    auto it = results.find(node);
    if (it != results.end()) return it->second;

    std::vector<const LogicalStats*> child_stats;
    double children_finish = 0.0;
    child_stats.reserve(node->children.size());
    for (const PlanNodePtr& child : node->children) {
      const NodeResult& r = evaluate(child.get());
      child_stats.push_back(&r.stats);
      children_finish = std::max(children_finish, r.finish);
    }

    NodeResult result;
    result.stats = DeriveStats(node->op, child_stats, truth);
    OpCost cost = ComputeOpCost(node->op, result.stats, child_stats,
                                std::max(1, node->op.dop), options_.cost_params, truth);

    // Token budget: a stage wider than the job's token allotment runs in
    // waves.
    double latency = cost.latency;
    if (!inject) {
      if (node->op.dop > options_.tokens) {
        latency *= static_cast<double>(node->op.dop) / options_.tokens;
      }
    } else {
      Pcg32 rng(HashCombine(fault_base, stage_ordinal++), /*stream=*/113);
      int tokens = options_.tokens;
      // Preemption: the stage loses half its token allotment and runs in
      // more waves.
      if (faults.token_revocation_prob > 0.0 &&
          rng.NextDouble() < faults.token_revocation_prob) {
        tokens = std::max(1, tokens / 2);
        ++metrics.token_revocations;
      }
      if (node->op.dop > tokens) {
        latency *= static_cast<double>(node->op.dop) / tokens;
      }

      int width = std::max(1, node->op.dop);
      double vertex_cpu = cost.cpu / width;
      double vertex_latency = cost.latency;
      // Critical-path extension from the worst vertex of this stage.
      double extension = 0.0;
      for (int v = 0; v < width; ++v) {
        // Transient vertex failures: re-run with backoff until the retry
        // budget is exhausted (then the whole run fails).
        if (faults.vertex_failure_prob > 0.0) {
          int failures = 0;
          while (failures < faults.vertex_retry.max_attempts &&
                 rng.NextDouble() < faults.vertex_failure_prob) {
            ++failures;
          }
          if (failures > 0) {
            bool gave_up = failures >= faults.vertex_retry.max_attempts;
            int reruns = gave_up ? failures - 1 : failures;
            ++metrics.failed_vertices;
            metrics.retries += reruns;
            // Each failed attempt burns a partial run of the vertex.
            double burnt = 0.0;
            for (int a = 0; a < failures; ++a) burnt += vertex_cpu * rng.NextDouble();
            metrics.wasted_cpu_time += burnt;
            total_cpu += burnt;
            extension = std::max(
                extension, reruns * vertex_latency + faults.vertex_retry.TotalBackoff(reruns));
            if (gave_up) metrics.failed = true;
          }
        }
        // Stragglers: a lognormal slowdown; speculation caps the damage at
        // the launch threshold plus one fresh run, wasting the loser's CPU.
        if (faults.straggler_prob > 0.0 && rng.NextDouble() < faults.straggler_prob) {
          double multiplier = std::max(
              1.0, std::exp(faults.straggler_mu + faults.straggler_sigma * rng.NextGaussian()));
          if (faults.speculation_threshold > 0.0 &&
              multiplier > faults.speculation_threshold + 1.0) {
            multiplier = faults.speculation_threshold + 1.0;
            ++metrics.speculative_copies;
            metrics.wasted_cpu_time += vertex_cpu;
            total_cpu += vertex_cpu;
          }
          extension = std::max(extension, (multiplier - 1.0) * vertex_latency);
        }
      }
      latency += extension;
    }

    result.finish = children_finish + latency;
    if (node_cards != nullptr) node_cards->push_back({node, result.stats.rows});
    total_cpu += cost.cpu;
    total_io += cost.io;
    total_bytes += cost.bytes_moved;
    return results.emplace(node, std::move(result)).first->second;
  };

  const NodeResult& root = evaluate(physical_root.get());
  metrics.runtime = root.finish;
  metrics.cpu_time = total_cpu;
  metrics.io_time = total_io;
  metrics.bytes_moved = total_bytes;
  metrics.output_rows = root.stats.rows;

  if (!options_.deterministic) {
    // Cluster noise: short jobs are noisier (resource allocation jitter,
    // scheduling) than long ones, as observed in the paper (§3.1.1).
    double sigma = metrics.runtime < options_.short_job_threshold
                       ? options_.noise_sigma_short
                       : options_.noise_sigma_long;
    uint64_t seed = HashCombine(HashString(job.name), PlanHash(physical_root, false));
    seed = HashCombine(seed, run_nonce + 0x777);
    Pcg32 rng(seed, /*stream=*/59);
    metrics.runtime *= std::exp(sigma * rng.NextGaussian());
    metrics.cpu_time *= std::exp(0.5 * sigma * rng.NextGaussian());
    metrics.io_time *= std::exp(0.5 * sigma * rng.NextGaussian());
  }

  // Job-level transient failure (job-manager failover, quota revocation):
  // the run aborts partway; everything spent so far is wasted and the caller
  // is expected to retry under a different nonce.
  if (inject && faults.job_failure_prob > 0.0) {
    Pcg32 rng(HashCombine(fault_base, 0x0B5E55EDULL), /*stream=*/177);
    if (rng.NextDouble() < faults.job_failure_prob) {
      double progress = 0.15 + 0.7 * rng.NextDouble();
      metrics.failed = true;
      metrics.runtime *= progress;
      metrics.cpu_time *= progress;
      metrics.io_time *= progress;
      metrics.bytes_moved *= progress;
      metrics.wasted_cpu_time += metrics.cpu_time;
    }
  }
  return metrics;
}

Result<AbRunResult> AbTestHarness::Run(const Job& job, const RuleConfig& config,
                                       uint64_t run_nonce) const {
  Result<CompiledPlan> compiled = optimizer_->Compile(job, config);
  if (!compiled.ok()) return compiled.status();
  AbRunResult out;
  out.plan = std::move(compiled.value());
  out.metrics = simulator_->Execute(job, out.plan.root, run_nonce);
  return out;
}

}  // namespace qsteer
