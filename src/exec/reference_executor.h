// Row-at-a-time reference executor over materialized data.
//
// Used by tests to establish *semantic* correctness: every transformation
// and implementation rule must preserve query results, so any plan the
// optimizer produces for a job — under any rule configuration — must return
// the same rows as the original logical plan. Benchmarks never use this
// path (they use the analytic simulator); the executor caps input sizes.
#ifndef QSTEER_EXEC_REFERENCE_EXECUTOR_H_
#define QSTEER_EXEC_REFERENCE_EXECUTOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/job.h"

namespace qsteer {

/// A small materialized relation: `columns[i]` names the i-th value of each
/// row. Column order is canonical (ascending ColumnId).
struct Relation {
  std::vector<ColumnId> columns;
  std::vector<std::vector<int64_t>> rows;

  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }

  /// Canonical fingerprint of the bag of rows, order-insensitive. With a
  /// non-empty `restrict_to`, only those columns contribute — used to
  /// compare Top-N results, whose non-key columns are tie-dependent.
  std::string Fingerprint(const std::vector<ColumnId>& restrict_to = {}) const;
};

struct ReferenceExecutorOptions {
  /// Cap on rows materialized per stream (keeps tests fast).
  int64_t max_rows_per_stream = 4000;
};

class ReferenceExecutor {
 public:
  ReferenceExecutor(const Catalog* catalog, ReferenceExecutorOptions options = {});

  /// Executes a logical or physical plan for the job; exchanges/sorts are
  /// result-neutral. Deterministic, including Top-N tie-breaking (sort keys
  /// then whole-row lexicographic).
  Relation Execute(const Job& job, const PlanNodePtr& root) const;

 private:
  const Catalog* catalog_;
  ReferenceExecutorOptions options_;
};

}  // namespace qsteer

#endif  // QSTEER_EXEC_REFERENCE_EXECUTOR_H_
