#include "service/replication.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/hash.h"

namespace qsteer {

namespace {

std::string TailFrame(uint64_t epoch,
                      const std::vector<std::pair<uint64_t, std::string>>& entries) {
  std::string frame =
      "TAIL " + std::to_string(epoch) + " " + std::to_string(entries.size()) + "\n";
  for (const auto& [seq, payload] : entries) {
    frame += std::to_string(seq);
    frame += ' ';
    frame += payload;  // single-line by the WAL event grammar
    frame += '\n';
  }
  return frame;
}

}  // namespace

// ---------------------------------------------------------------- ReplicationLog

void ReplicationLog::Append(uint64_t seq, std::string payload) {
  MutexLock lock(mu_);
  // Entries must stay contiguous for Covers() to mean anything; a
  // non-adjacent append (possible only after a state rewind the caller
  // forgot to Clear() for) restarts the buffer rather than lying.
  if (!entries_.empty() && seq != entries_.back().first + 1) entries_.clear();
  entries_.emplace_back(seq, std::move(payload));
  while (entries_.size() > cap_) entries_.pop_front();
}

void ReplicationLog::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

bool ReplicationLog::Covers(uint64_t from_seq) const {
  MutexLock lock(mu_);
  if (entries_.empty()) return false;
  return entries_.front().first <= from_seq + 1 && from_seq <= entries_.back().first;
}

std::vector<std::pair<uint64_t, std::string>> ReplicationLog::TailFrom(
    uint64_t from_seq) const {
  MutexLock lock(mu_);
  std::vector<std::pair<uint64_t, std::string>> tail;
  for (const auto& entry : entries_) {
    if (entry.first > from_seq) tail.push_back(entry);
  }
  return tail;
}

size_t ReplicationLog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

// ------------------------------------------------------------------ ReplicaNode

Status ReplicaNode::Open() {
  auto store = std::make_shared<DurableRecommenderStore>(store_options_);
  Status status = store->Open();
  if (!status.ok()) return status;
  // Every journaled event — locally originated on a leader, replicated on
  // a follower — lands in the tail buffer, so whichever replica wins the
  // next election can ship tails immediately.
  store->SetMutationListener([this](uint64_t seq, const std::string& payload) {
    log_.Append(seq, payload);
  });
  store_.store(std::move(store), std::memory_order_release);
  return Status::OK();
}

Status ReplicaNode::Reopen() {
  // Process death takes the in-memory tail buffer and epoch knowledge
  // with it; only the disk state (snapshot + WAL) survives into Open().
  log_.Clear();
  epoch_synced_.store(0, std::memory_order_release);
  return Open();
}

uint64_t ReplicaNode::watermark() const {
  std::shared_ptr<DurableRecommenderStore> store = this->store();
  return store == nullptr ? 0 : store->applied_seq();
}

bool ReplicaNode::TryAdmit(int max_inflight) {
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >= max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

Status ReplicaNode::Deliver(std::string_view payload) {
  std::shared_ptr<DurableRecommenderStore> store = this->store();
  if (store == nullptr) return Status::FailedPrecondition("replica store not open");
  size_t newline = payload.find('\n');
  if (newline == std::string_view::npos) {
    return Status::InvalidArgument("replication frame missing header line");
  }
  std::istringstream header{std::string(payload.substr(0, newline))};
  std::string kind;
  uint64_t epoch = 0;
  if (!(header >> kind >> epoch)) {
    return Status::InvalidArgument("malformed replication frame header");
  }
  if (epoch < epoch_synced()) {
    return Status::FailedPrecondition(
        "stale epoch " + std::to_string(epoch) + " < " +
        std::to_string(epoch_synced()) + " at replica " + std::to_string(id_));
  }
  std::string_view body = payload.substr(newline + 1);

  if (kind == "SNAP") {
    Status status = store->InstallSnapshot(std::string(body));
    if (!status.ok()) return status;
    // The buffer predates the install (and may diverge from it); the
    // listener refills it from the install watermark onward.
    log_.Clear();
    set_tainted(false);
    set_epoch_synced(epoch);
    return Status::OK();
  }
  if (kind == "TAIL") {
    uint64_t count = 0;
    if (!(header >> count)) {
      return Status::InvalidArgument("TAIL frame missing entry count");
    }
    set_epoch_synced(epoch);
    std::istringstream lines{std::string(body)};
    std::string line;
    uint64_t applied = 0;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      size_t space = line.find(' ');
      if (space == std::string::npos) {
        return Status::InvalidArgument("malformed TAIL entry: " + line);
      }
      uint64_t seq = std::strtoull(line.c_str(), nullptr, 10);
      Status status = store->ApplyReplicated(seq, line.substr(space + 1));
      if (!status.ok()) return status;  // gap → leader falls back to install
      ++applied;
    }
    if (applied != count) {
      return Status::InvalidArgument("TAIL entry count mismatch: header said " +
                                     std::to_string(count) + ", frame held " +
                                     std::to_string(applied));
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown replication frame kind: " + kind);
}

// ------------------------------------------------------------- ReplicationFleet

ReplicationFleet::ReplicationFleet(FleetOptions options)
    : options_(std::move(options)), ring_(options_.ring_vnodes) {}

uint64_t ReplicationFleet::RouteKey(const RuleSignature& signature) {
  // Hash of the signature bits only — identical across processes and
  // runs, so placement is reproducible (and QL004-clean: no pointers).
  return HashString(signature.ToHexString());
}

Status ReplicationFleet::Start() {
  MutexLock lock(mu_);
  if (!replicas_.empty()) return Status::FailedPrecondition("fleet already started");
  if (options_.num_replicas < 1) {
    return Status::InvalidArgument("fleet needs at least one replica");
  }
  for (int i = 0; i < options_.num_replicas; ++i) {
    DurableStoreOptions store_options;
    store_options.snapshot_interval = options_.snapshot_interval;
    store_options.sync = options_.sync;
    store_options.recommender = options_.recommender;
    if (!options_.dir.empty()) {
      store_options.dir = options_.dir + "/replica_" + std::to_string(i);
      std::error_code ec;
      std::filesystem::create_directories(store_options.dir, ec);
      if (ec) {
        return Status::Internal("cannot create replica dir " + store_options.dir +
                                ": " + ec.message());
      }
    }
    auto node = std::make_unique<ReplicaNode>(static_cast<uint32_t>(i), store_options,
                                              options_.replication_log_cap);
    Status status = node->Open();
    if (!status.ok()) return status;
    status = transport_.Register(static_cast<uint32_t>(i), node.get());
    if (!status.ok()) return status;
    node->set_alive(true);
    ring_.AddReplica(static_cast<uint32_t>(i));
    replicas_.push_back(std::move(node));
  }
  // Initial election without a failover bump: a whole-fleet restart may
  // recover different watermarks per replica (some were behind at the
  // crash); the same rule as failover — max watermark, lowest id — picks
  // the leader, and everyone else catches up to it.
  epoch_ = 1;
  uint64_t best = 0;
  uint32_t winner = ConsistentHashRing::kNoReplica;
  for (const auto& node : replicas_) {
    uint64_t watermark = node->watermark();
    if (winner == ConsistentHashRing::kNoReplica || watermark > best) {
      winner = node->id();
      best = watermark;
    }
  }
  leader_id_ = winner;
  replicas_[leader_id_]->set_epoch_synced(epoch_);
  for (const auto& node : replicas_) {
    if (node->id() == leader_id_) continue;
    Status status = CatchUpLocked(node->id());
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status ReplicationFleet::EnsureLeaderLocked() {
  if (replicas_.empty()) return Status::FailedPrecondition("fleet not started");
  if (replicas_[leader_id_]->alive()) return Status::OK();
  return ElectLocked();
}

Status ReplicationFleet::ElectLocked() {
  // Deterministic: ascending id scan, strict > keeps the lowest id on
  // watermark ties. Every process running this over the same live set
  // picks the same leader.
  uint32_t winner = ConsistentHashRing::kNoReplica;
  uint64_t best = 0;
  for (const auto& node : replicas_) {
    // Partitioned (link-down) replicas are not electable: an acknowledged
    // mutation is guaranteed present only on replicas that were reachable
    // at ack time, so electing an unreachable one could lose acked data.
    if (!node->alive() || !transport_.link_up(node->id())) continue;
    uint64_t watermark = node->watermark();
    if (winner == ConsistentHashRing::kNoReplica || watermark > best) {
      winner = node->id();
      best = watermark;
    }
  }
  if (winner == ConsistentHashRing::kNoReplica) {
    return Status::Unavailable("no live reachable replica to elect");
  }
  leader_id_ = winner;
  ++epoch_;
  ++failovers_;
  replicas_[winner]->set_epoch_synced(epoch_);
  // Survivors may trail the winner (the dead leader acked only what every
  // reachable follower had, but the winner can still be ahead of the
  // rest); bring them level before serving resumes.
  for (const auto& node : replicas_) {
    if (!node->alive() || node->id() == leader_id_) continue;
    // qsteer-lint: allow(unchecked-status) best-effort; partitioned nodes heal on a later heartbeat
    (void)CatchUpLocked(node->id());
  }
  return Status::OK();
}

Status ReplicationFleet::ShipTailLocked(uint64_t from_seq) {
  ReplicaNode* leader = replicas_[leader_id_].get();
  std::vector<std::pair<uint64_t, std::string>> entries = leader->log().TailFrom(from_seq);
  if (entries.empty()) return Status::OK();
  std::string frame = TailFrame(epoch_, entries);
  for (const auto& node : replicas_) {
    if (!node->alive() || node->id() == leader_id_) continue;
    ++tail_ships_;
    Status status = transport_.Send(node->id(), frame);
    if (status.ok()) continue;
    if (status.code() == StatusCode::kUnavailable) continue;  // partitioned: heals later
    // Checksum reject or follower-side gap: re-derive what this follower
    // actually needs (fresh tail from its watermark, or an install).
    // qsteer-lint: allow(unchecked-status) best-effort; the next heartbeat retries the catch-up
    (void)CatchUpLocked(node->id());
  }
  return Status::OK();
}

Status ReplicationFleet::CatchUpLocked(uint32_t id) {
  ReplicaNode* node = replicas_[id].get();
  ReplicaNode* leader = replicas_[leader_id_].get();
  uint64_t follower_mark = node->watermark();
  uint64_t leader_mark = leader->watermark();
  bool tail_eligible =
      !node->tainted() && follower_mark <= leader_mark &&
      (follower_mark == leader_mark || leader->log().Covers(follower_mark));
  if (tail_eligible) {
    if (follower_mark == leader_mark) {
      node->set_epoch_synced(epoch_);
      return Status::OK();
    }
    std::string frame = TailFrame(epoch_, leader->log().TailFrom(follower_mark));
    ++tail_ships_;
    Status status = transport_.Send(id, frame);
    if (status.ok()) return Status::OK();
    if (status.code() == StatusCode::kUnavailable) return status;
    // fall through: a corrupted frame or unexpected reject → install
  }
  return ShipSnapshotLocked(id);
}

Status ReplicationFleet::ShipSnapshotLocked(uint32_t id) {
  ReplicaNode* leader = replicas_[leader_id_].get();
  std::shared_ptr<DurableRecommenderStore> store = leader->store();
  if (store == nullptr) return Status::FailedPrecondition("leader store not open");
  std::string frame = "SNAP " + std::to_string(epoch_) + "\n" +
                      store->SerializeForReplication();
  ++snapshot_ships_;
  Status status = transport_.Send(id, frame);
  if (status.ok() || status.code() == StatusCode::kUnavailable) return status;
  // One retry: a corrupted delivery consumed the fault-injection flag, so
  // the resend goes through (mirrors a real transport's retransmit).
  ++snapshot_ships_;
  return transport_.Send(id, frame);
}

Status ReplicationFleet::MutateOnLeader(
    const std::function<Status(DurableRecommenderStore&)>& fn) {
  MutexLock lock(mu_);
  Status status = EnsureLeaderLocked();
  if (!status.ok()) return status;
  std::shared_ptr<DurableRecommenderStore> store = replicas_[leader_id_]->store();
  uint64_t before = store->applied_seq();
  status = fn(*store);
  if (!status.ok()) return status;
  if (store->applied_seq() > before) return ShipTailLocked(before);
  return Status::OK();
}

Status ReplicationFleet::LearnFromAnalysis(const JobAnalysis& analysis, bool* learned) {
  return MutateOnLeader([&](DurableRecommenderStore& store) {
    bool did = store.LearnFromAnalysis(analysis);
    if (learned != nullptr) *learned = did;
    return Status::OK();
  });
}

Status ReplicationFleet::LearnCandidate(
    const SteeringRecommender::CandidateObservation& observation, bool* learned) {
  return MutateOnLeader([&](DurableRecommenderStore& store) {
    bool did = store.LearnCandidate(observation);
    if (learned != nullptr) *learned = did;
    return Status::OK();
  });
}

Status ReplicationFleet::ObserveValidation(const RuleSignature& signature,
                                           double runtime_change_pct) {
  return MutateOnLeader([&](DurableRecommenderStore& store) {
    store.ObserveValidation(signature, runtime_change_pct);
    return Status::OK();
  });
}

Status ReplicationFleet::ObserveOutcome(const RuleSignature& signature,
                                        double runtime_change_pct) {
  return MutateOnLeader([&](DurableRecommenderStore& store) {
    store.ObserveOutcome(signature, runtime_change_pct);
    return Status::OK();
  });
}

Status ReplicationFleet::Serve(const RuleSignature& signature, ServeResult* out) {
  Status status = ServeOnce(signature, out);
  int attempts = 1;
  while (!status.ok() && IsTransient(status.code()) &&
         attempts < std::max(1, options_.serve_retry.max_attempts)) {
    // A transient failure here means no live replica — usually a failover
    // window. Account the simulated backoff and retry: a Restart() racing
    // this serve makes the next attempt succeed.
    unavailable_retries_.fetch_add(1, std::memory_order_relaxed);
    retry_backoff_ms_.fetch_add(
        static_cast<int64_t>(options_.serve_retry.BackoffBeforeRetry(attempts) * 1000.0),
        std::memory_order_relaxed);
    ++attempts;
    status = ServeOnce(signature, out);
  }
  return status;
}

Status ReplicationFleet::ServeOnce(const RuleSignature& signature, ServeResult* out) {
  *out = ServeResult{};
  uint64_t key = RouteKey(signature);
  std::vector<uint32_t> preference;
  uint32_t leader = 0;
  uint64_t leader_mark = 0;
  {
    MutexLock lock(mu_);
    Status status = EnsureLeaderLocked();
    if (!status.ok()) return status;
    leader = leader_id_;
    leader_mark = replicas_[leader_id_]->watermark();
    preference = ring_.PreferenceFor(key, static_cast<int>(replicas_.size()));
  }
  serves_.fetch_add(1, std::memory_order_relaxed);

  for (uint32_t id : preference) {
    ReplicaNode* node = replicas_[id].get();
    if (!node->alive()) {
      out->rerouted = true;
      continue;
    }
    if (!node->TryAdmit(options_.max_inflight_per_replica)) {
      out->rerouted = true;
      continue;
    }
    if (id != leader) {
      // Staleness shed: a follower too far behind the leader must not
      // answer — its view can predate what clients already saw acked.
      if (node->watermark() + options_.staleness_bound < leader_mark) {
        node->Release();
        out->shed_stale = true;
        sheds_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    std::shared_ptr<DurableRecommenderStore> store = node->store();
    bool served =
        store != nullptr && store->TryRecommendPure(signature, &out->recommendation);
    node->Release();
    if (served) {
      out->replica = id;
      node->count_serve();
      if (out->rerouted) rerouted_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    // The lookup must mutate (open-breaker cooldown tick): leader path.
    break;
  }
  if (out->rerouted) rerouted_.fetch_add(1, std::memory_order_relaxed);

  // Leader fallback: shed, tick, or the whole preference list dead/full.
  MutexLock lock(mu_);
  Status status = EnsureLeaderLocked();
  if (!status.ok()) return status;
  ReplicaNode* node = replicas_[leader_id_].get();
  std::shared_ptr<DurableRecommenderStore> store = node->store();
  if (store == nullptr) return Status::FailedPrecondition("leader store not open");
  uint64_t before = store->applied_seq();
  out->recommendation = store->Recommend(signature);
  out->replica = leader_id_;
  node->count_serve();
  if (store->applied_seq() > before) {
    out->ticked = true;
    return ShipTailLocked(before);
  }
  return Status::OK();
}

Status ReplicationFleet::Kill(uint32_t id) {
  MutexLock lock(mu_);
  if (id >= replicas_.size()) return Status::InvalidArgument("unknown replica");
  ReplicaNode* node = replicas_[id].get();
  if (!node->alive()) return Status::FailedPrecondition("replica already dead");
  node->set_alive(false);
  transport_.SetLinkUp(id, false);
  if (id == leader_id_) {
    // The dying leader may hold journaled-but-unshipped (therefore
    // unacknowledged) events; on rejoin that suffix must be discarded,
    // never tailed on top of the new leader's history.
    node->set_tainted(true);
    Status status = ElectLocked();
    // A fully-dead fleet is legal (kUnavailable until a Restart); the
    // kill itself still succeeded.
    if (!status.ok() && status.code() != StatusCode::kUnavailable) return status;
  }
  return Status::OK();
}

Status ReplicationFleet::Restart(uint32_t id) {
  MutexLock lock(mu_);
  if (id >= replicas_.size()) return Status::InvalidArgument("unknown replica");
  ReplicaNode* node = replicas_[id].get();
  if (node->alive()) return Status::FailedPrecondition("replica already alive");
  Status status = node->Reopen();
  if (!status.ok()) return status;
  node->set_alive(true);
  transport_.SetLinkUp(id, true);
  if (!replicas_[leader_id_]->alive()) return ElectLocked();
  if (id != leader_id_) return CatchUpLocked(id);
  return Status::OK();
}

void ReplicationFleet::SetPartitioned(uint32_t id, bool partitioned) {
  MutexLock lock(mu_);
  transport_.SetLinkUp(id, !partitioned);
}

Status ReplicationFleet::CatchUpAll() {
  MutexLock lock(mu_);
  Status status = EnsureLeaderLocked();
  if (!status.ok()) return status;
  for (const auto& node : replicas_) {
    if (!node->alive() || node->id() == leader_id_) continue;
    Status one = CatchUpLocked(node->id());
    if (!one.ok() && status.ok()) status = one;
  }
  return status;
}

Status ReplicationFleet::CheckConvergence(std::string* detail) const {
  MutexLock lock(mu_);
  std::string reference;
  uint32_t reference_id = ConsistentHashRing::kNoReplica;
  for (const auto& node : replicas_) {
    if (!node->alive()) continue;
    std::shared_ptr<DurableRecommenderStore> store = node->store();
    if (store == nullptr) continue;
    std::string state = store->SerializeState();
    if (reference_id == ConsistentHashRing::kNoReplica) {
      reference = std::move(state);
      reference_id = node->id();
      continue;
    }
    if (state != reference) {
      if (detail != nullptr) {
        *detail = "replica " + std::to_string(node->id()) + " (" +
                  std::to_string(state.size()) + " bytes) diverges from replica " +
                  std::to_string(reference_id) + " (" +
                  std::to_string(reference.size()) + " bytes)";
      }
      return Status::Internal("replica state divergence");
    }
  }
  return Status::OK();
}

uint32_t ReplicationFleet::leader_id() const {
  MutexLock lock(mu_);
  return leader_id_;
}

uint64_t ReplicationFleet::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

std::shared_ptr<DurableRecommenderStore> ReplicationFleet::replica_store(
    uint32_t id) const {
  if (id >= replicas_.size()) return nullptr;
  return replicas_[id]->store();
}

FleetStatus ReplicationFleet::status() const {
  MutexLock lock(mu_);
  FleetStatus fleet;
  fleet.epoch = epoch_;
  fleet.leader_id = leader_id_;
  fleet.serves = serves_.load(std::memory_order_relaxed);
  fleet.rerouted = rerouted_.load(std::memory_order_relaxed);
  fleet.sheds = sheds_.load(std::memory_order_relaxed);
  fleet.failovers = failovers_;
  fleet.tail_ships = tail_ships_;
  fleet.snapshot_ships = snapshot_ships_;
  fleet.transport_frames = transport_.frames_sent();
  fleet.transport_send_failures = transport_.send_failures();
  fleet.transport_checksum_failures = transport_.checksum_failures();
  fleet.unavailable_retries = unavailable_retries_.load(std::memory_order_relaxed);
  fleet.retry_backoff_s =
      static_cast<double>(retry_backoff_ms_.load(std::memory_order_relaxed)) / 1000.0;
  for (const auto& node : replicas_) {
    FleetStatus::Replica replica;
    replica.id = node->id();
    replica.alive = node->alive();
    replica.leader = node->id() == leader_id_;
    replica.tainted = node->tainted();
    replica.watermark = node->watermark();
    replica.epoch_synced = node->epoch_synced();
    replica.serves = node->serves();
    std::shared_ptr<DurableRecommenderStore> store = node->store();
    if (store != nullptr) {
      replica.replicated_applied = store->replicated_applied();
      replica.replicated_skipped = store->replicated_skipped();
      replica.snapshot_installs = store->snapshot_installs();
    }
    fleet.replicas.push_back(replica);
  }
  return fleet;
}

std::string FleetStatus::ToString() const {
  std::ostringstream out;
  out << "fleet: epoch=" << epoch << " leader=" << leader_id << " serves=" << serves
      << " rerouted=" << rerouted << " sheds=" << sheds << " failovers=" << failovers
      << " unavailable_retries=" << unavailable_retries
      << " retry_backoff_s=" << retry_backoff_s << "\n";
  out << "ships: tail=" << tail_ships << " snapshot=" << snapshot_ships
      << " frames=" << transport_frames << " send_failures=" << transport_send_failures
      << " checksum_failures=" << transport_checksum_failures << "\n";
  for (const auto& replica : replicas) {
    out << "replica " << replica.id << ": " << (replica.alive ? "up" : "DOWN")
        << (replica.leader ? " leader" : "") << (replica.tainted ? " tainted" : "")
        << " seq=" << replica.watermark << " epoch=" << replica.epoch_synced
        << " applied=" << replica.replicated_applied
        << " skipped=" << replica.replicated_skipped
        << " installs=" << replica.snapshot_installs << " serves=" << replica.serves
        << "\n";
  }
  return out.str();
}

}  // namespace qsteer
