// The asynchronous steering service: the online half of the paper's system
// run as a long-lived process instead of a batch tool.
//
// Requests (jobs to compile-and-serve) enter through a bounded queue with
// admission control in front of it:
//
//   Submit ──▶ [deadline shed? queue full?] ──▶ BoundedQueue ──▶ workers
//                      │                                           │
//                      ▼                                           ▼
//               AdmitResult (reject,                    compile default →
//               caller never blocks)                    recommend (durable
//                                                       store) → steered
//                                                       A/B run → outcome
//
// Admission control sheds load instead of queueing it: when the estimated
// wait (queue depth × EWMA service time / workers) already exceeds the
// request's deadline, the request is rejected with kShedDeadline — a doomed
// request in the queue only delays the ones behind it. A full queue rejects
// with kQueueFull. Submit never blocks.
//
// All recommender mutations go through a DurableRecommenderStore (WAL +
// snapshots), so a crash — simulated by Kill() — loses no acknowledged
// learning; restart recovery replays to a bit-identical store. Clean
// Shutdown() drains the queue, snapshots, and joins.
//
// A background re-analysis worker holds a single pending slot: requesting a
// re-analysis cancels the previous request's CancellationToken, and a
// superseded analysis is abandoned (counted, not applied) instead of
// clobbering fresher learning.
#ifndef QSTEER_SERVICE_STEERING_SERVICE_H_
#define QSTEER_SERVICE_STEERING_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "service/durable_store.h"

namespace qsteer {

struct ServiceOptions {
  /// Compile/serve worker threads. 0 is a deterministic testing mode: the
  /// service accepts requests but never drains them (admission-control
  /// tests need a queue that stays put).
  int num_workers = 2;
  /// Bounded request queue capacity; a full queue rejects (kQueueFull).
  int queue_capacity = 64;
  /// Deadline applied to requests that do not carry their own; <= 0 means
  /// no deadline (no shedding for that request).
  double default_deadline_s = 0.0;
  /// Base seed for per-job execution nonces (deterministic simulation).
  uint64_t seed = 1;
  /// Seed of the service-time EWMA used by admission control, seconds.
  /// 0 starts the estimate at the first observed service time.
  double initial_service_time_ewma_s = 0.0;
  /// EWMA smoothing factor for observed service times.
  double ewma_alpha = 0.2;
  /// Enables the background re-analysis worker.
  bool enable_reanalysis = true;
  /// Pre-warm the compile cache from this SaveCompileCache artifact at
  /// Start() (empty = cold start). Rejection — corrupt, torn, version- or
  /// day-mismatched — is never fatal: the service starts cold and compiles
  /// fresh. The nightly sharded discovery pass ships these files.
  std::string warm_cache_file;
  /// Day the warm cache must be stamped with; -1 accepts any day.
  int warm_cache_day = -1;
  PipelineOptions pipeline;
  DurableStoreOptions store;
};

/// Outcome of Submit: exactly one of these, decided synchronously.
enum class AdmitResult {
  kAccepted = 0,
  /// Bounded queue at capacity.
  kQueueFull = 1,
  /// Estimated wait already exceeds the request's deadline: rejected now
  /// rather than timed out later (load shedding).
  kShedDeadline = 2,
  /// Service not started, draining, or shut down.
  kNotRunning = 3,
};
const char* AdmitResultName(AdmitResult result);

struct ServiceRequest {
  Job job;
  /// Seconds the caller is willing to wait; <= 0 falls back to
  /// ServiceOptions::default_deadline_s.
  double deadline_s = 0.0;
};

struct ServiceReply {
  Status status;
  /// True when a steered (non-default) plan was served.
  bool steered = false;
  /// True when the steered plan was a half-open breaker probe.
  bool probing = false;
  RuleConfig config;
  /// Signature of the default-compiled plan (the recommender group key);
  /// callers use it to report late outcome observations.
  RuleSignature default_signature;
  double default_runtime_s = 0.0;
  double served_runtime_s = 0.0;
  /// Admission-time wait estimate (what load shedding compared against).
  double wait_estimate_s = 0.0;
};

/// Health-endpoint-style status snapshot (internally consistent; fields are
/// read under the service lock at one instant).
struct ServiceStatusSnapshot {
  bool running = false;
  bool draining = false;
  int queue_depth = 0;
  int64_t queue_high_water = 0;
  int64_t accepted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t shed_deadline = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_not_running = 0;
  double service_time_ewma_s = 0.0;
  // Durable-store health.
  uint64_t applied_seq = 0;
  int64_t wal_lag = 0;
  int64_t snapshots_taken = 0;
  // Last recovery (what Start() found on disk): did a snapshot load, at
  // which watermark, how much WAL replayed/skipped, and how many torn
  // bytes were truncated. Zeroes for a fresh or ephemeral store.
  bool recovered_snapshot = false;
  uint64_t recovery_snapshot_seq = 0;
  int64_t recovery_wal_replayed = 0;
  int64_t recovery_wal_skipped = 0;
  int64_t recovery_wal_truncated_bytes = 0;
  // Recommender health.
  int groups = 0;
  int serving = 0;
  int open_breakers = 0;
  int retired = 0;
  int pending_validation = 0;
  // Re-analysis worker.
  int64_t reanalyses_completed = 0;
  int64_t reanalyses_abandoned = 0;
  // Compile-cache health (the serving path compiles through the pipeline's
  // cache, so recurring requests skip recompilation).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_entries = 0;
  int64_t cache_bytes = 0;
  /// Warm-start health: entries pre-loaded from the persisted cache file at
  /// Start(), and rejected warm-load attempts (degraded to cold compiles).
  int64_t cache_warm_loaded = 0;
  int64_t cache_warm_rejected = 0;
  int64_t span_duplicates_pruned = 0;
  // Budgeted candidate generation (SteeringPipeline::budget_stats()):
  // candidates scored by the ranker, actually compiled, skipped for
  // budget, improvements observed, and ranker training volume.
  int64_t candidates_scored = 0;
  int64_t candidates_compiled = 0;
  int64_t budget_skipped = 0;
  int64_t improvements_found = 0;
  int64_t ranker_examples_trained = 0;
  // Recommendation-table serving split: snapshot (lock-free) vs locked.
  int64_t rec_snapshot_serves = 0;
  int64_t rec_locked_serves = 0;

  std::string ToString() const;
};

class SteeringService {
 public:
  SteeringService(const Optimizer* optimizer, const ExecutionSimulator* simulator,
                  ServiceOptions options = {});
  /// Best-effort Shutdown() when still running.
  ~SteeringService();

  SteeringService(const SteeringService&) = delete;
  SteeringService& operator=(const SteeringService&) = delete;

  /// Recovers the durable store and spawns the workers. Fails (and stays
  /// stopped) when recovery fails — serving from silently partial state is
  /// worse than not serving.
  Status Start() EXCLUDES(mu_);

  /// Non-blocking admission. On kAccepted, `*reply` receives a future that
  /// the serving worker fulfills; on any rejection `*reply` is untouched
  /// and the request was not enqueued.
  AdmitResult Submit(const ServiceRequest& request, std::future<ServiceReply>* reply)
      EXCLUDES(mu_);

  /// Stops admission and waits until every accepted request has finished.
  void Drain() EXCLUDES(mu_);

  /// Graceful stop: Drain + final snapshot + join. Returns the snapshot
  /// status (workers are joined regardless). Exactly one concurrent
  /// Shutdown/Kill performs the stop; latecomers return immediately.
  Status Shutdown() EXCLUDES(mu_);

  /// Crash simulation: close the queue immediately, fail still-queued
  /// requests with an error reply, join workers. NO snapshot — recovery
  /// must come from the WAL, exactly like a real crash.
  void Kill() EXCLUDES(mu_);

  /// Queues a background re-analysis of `job`, superseding (cancelling) any
  /// previously queued one. Returns false when the service is not running
  /// or re-analysis is disabled.
  bool RequestReanalysis(const Job& job) EXCLUDES(mu_, reanalysis_mu_);

  ServiceStatusSnapshot status() const EXCLUDES(mu_, reanalysis_mu_);

  DurableRecommenderStore& store() { return store_; }
  const DurableRecommenderStore& store() const { return store_; }
  const ServiceOptions& options() const { return options_; }
  /// The service's pipeline (and thus its compile cache). Exposed so
  /// validation loops and tooling compile through the same cache the
  /// serving path populates.
  const SteeringPipeline& pipeline() const { return pipeline_; }

 private:
  struct QueueItem {
    ServiceRequest request;
    std::promise<ServiceReply> promise;
    double wait_estimate_s = 0.0;
  };

  void WorkerLoop();
  void ProcessRequest(QueueItem item);
  void FinishRequest(std::promise<ServiceReply> promise, ServiceReply reply,
                     double elapsed_s, bool failed) EXCLUDES(mu_);
  void ReanalysisLoop() EXCLUDES(reanalysis_mu_);

  /// Claims the exclusive right to stop the service and halts admission.
  /// Returns false when the service is not running or another Shutdown/Kill
  /// already claimed the stop (they join; the claimant cleans up).
  bool BeginStop() EXCLUDES(mu_);
  /// Moves the compile workers out under the lock and joins them lock-free
  /// (they take mu_ in FinishRequest, so joining under it would deadlock).
  void JoinWorkers() EXCLUDES(mu_);
  /// Signals and joins the re-analysis worker (idempotent).
  void StopReanalysisWorker() EXCLUDES(reanalysis_mu_);
  void MarkStopped() EXCLUDES(mu_);

  const Optimizer* optimizer_;
  const ExecutionSimulator* simulator_;
  ServiceOptions options_;
  SteeringPipeline pipeline_;
  DurableRecommenderStore store_;
  BoundedQueue<QueueItem> queue_;

  mutable Mutex mu_;
  CondVar drained_cv_;
  bool running_ GUARDED_BY(mu_) = false;
  bool draining_ GUARDED_BY(mu_) = false;
  /// Set by the one Shutdown/Kill that wins the stop race; concurrent
  /// stoppers bail out instead of double-joining the workers.
  bool stopping_ GUARDED_BY(mu_) = false;
  int64_t accepted_ GUARDED_BY(mu_) = 0;
  /// completed_ + failed_; Drain waits for == accepted_.
  int64_t finished_ GUARDED_BY(mu_) = 0;
  int64_t completed_ GUARDED_BY(mu_) = 0;
  int64_t failed_ GUARDED_BY(mu_) = 0;
  int64_t shed_deadline_ GUARDED_BY(mu_) = 0;
  int64_t rejected_queue_full_ GUARDED_BY(mu_) = 0;
  int64_t rejected_not_running_ GUARDED_BY(mu_) = 0;
  double service_time_ewma_s_ GUARDED_BY(mu_) = 0.0;
  /// Spawned by Start, moved out (under mu_) and joined lock-free by the
  /// stop path.
  std::vector<std::thread> workers_ GUARDED_BY(mu_);

  // Re-analysis worker: single pending slot, newest request wins.
  mutable Mutex reanalysis_mu_;
  CondVar reanalysis_cv_;
  bool reanalysis_stop_ GUARDED_BY(reanalysis_mu_) = false;
  std::optional<Job> reanalysis_pending_ GUARDED_BY(reanalysis_mu_);
  std::shared_ptr<CancellationToken> reanalysis_token_ GUARDED_BY(reanalysis_mu_);
  int64_t reanalyses_completed_ GUARDED_BY(reanalysis_mu_) = 0;
  int64_t reanalyses_abandoned_ GUARDED_BY(reanalysis_mu_) = 0;
  std::thread reanalysis_thread_ GUARDED_BY(reanalysis_mu_);
};

}  // namespace qsteer

#endif  // QSTEER_SERVICE_STEERING_SERVICE_H_
