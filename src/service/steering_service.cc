#include "service/steering_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/hash.h"

namespace qsteer {

const char* AdmitResultName(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAccepted:
      return "accepted";
    case AdmitResult::kQueueFull:
      return "queue-full";
    case AdmitResult::kShedDeadline:
      return "shed-deadline";
    case AdmitResult::kNotRunning:
      return "not-running";
  }
  return "?";
}

std::string ServiceStatusSnapshot::ToString() const {
  std::ostringstream out;
  out << "state: " << (running ? (draining ? "draining" : "running") : "stopped") << '\n'
      << "queue: depth=" << queue_depth << " high_water=" << queue_high_water << '\n'
      << "requests: accepted=" << accepted << " completed=" << completed
      << " failed=" << failed << " shed_deadline=" << shed_deadline
      << " queue_full=" << rejected_queue_full << " not_running=" << rejected_not_running
      << '\n'
      << "service_time_ewma_s: " << service_time_ewma_s << '\n'
      << "store: applied_seq=" << applied_seq << " wal_lag=" << wal_lag
      << " snapshots=" << snapshots_taken << '\n'
      << "recovery: snapshot=" << (recovered_snapshot ? "loaded" : "none")
      << " snapshot_seq=" << recovery_snapshot_seq
      << " wal_replayed=" << recovery_wal_replayed
      << " wal_skipped=" << recovery_wal_skipped
      << " wal_truncated_bytes=" << recovery_wal_truncated_bytes << '\n'
      << "recommender: groups=" << groups << " serving=" << serving
      << " open=" << open_breakers << " retired=" << retired
      << " pending_validation=" << pending_validation << '\n'
      << "reanalysis: completed=" << reanalyses_completed
      << " abandoned=" << reanalyses_abandoned << '\n'
      << "compile_cache: hits=" << cache_hits << " misses=" << cache_misses
      << " evictions=" << cache_evictions << " entries=" << cache_entries
      << " bytes=" << cache_bytes << " warm_loaded=" << cache_warm_loaded
      << " warm_rejected=" << cache_warm_rejected
      << " span_pruned=" << span_duplicates_pruned << '\n'
      << "budget: scored=" << candidates_scored << " compiled=" << candidates_compiled
      << " skipped=" << budget_skipped << " improvements=" << improvements_found
      << " improvements_per_compile="
      << (candidates_compiled > 0
              ? static_cast<double>(improvements_found) / static_cast<double>(candidates_compiled)
              : 0.0)
      << " ranker_examples=" << ranker_examples_trained << '\n'
      << "recommend_serves: snapshot=" << rec_snapshot_serves
      << " locked=" << rec_locked_serves << '\n';
  return out.str();
}

SteeringService::SteeringService(const Optimizer* optimizer,
                                 const ExecutionSimulator* simulator, ServiceOptions options)
    : optimizer_(optimizer),
      simulator_(simulator),
      options_(std::move(options)),
      pipeline_(optimizer, simulator, options_.pipeline),
      store_(options_.store),
      queue_(options_.queue_capacity) {}

SteeringService::~SteeringService() {
  // Unconditional: Shutdown() itself checks running_ under the lock (the
  // old `if (running_)` here read the flag without it).
  // qsteer-lint: allow(unchecked-status) destructors cannot propagate; Shutdown is idempotent
  (void)Shutdown();
}

Status SteeringService::Start() {
  MutexLock lock(mu_);
  if (running_) return Status::FailedPrecondition("service already running");
  if (queue_.closed()) {
    return Status::FailedPrecondition(
        "service cannot restart after Shutdown/Kill; create a new instance");
  }
  Status status = store_.Open();
  if (!status.ok()) return status;
  if (!options_.warm_cache_file.empty()) {
    // Never fatal: a rejected warm file (corrupt, torn, wrong version or
    // day) leaves the cache cold, and cold compiles are always correct.
    // The rejection is visible as cache_warm_rejected in the snapshot.
    // qsteer-lint: allow(unchecked-status) rejected warm files leave the cache cold, which is always correct
    (void)pipeline_.WarmCompileCache(options_.warm_cache_file, options_.warm_cache_day);
  }
  running_ = true;
  draining_ = false;
  stopping_ = false;
  service_time_ewma_s_ = options_.initial_service_time_ewma_s;
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.enable_reanalysis) {
    // mu_ -> reanalysis_mu_ is the only place both are held; nothing nests
    // the other way, so the ordering is acyclic.
    MutexLock reanalysis_lock(reanalysis_mu_);
    reanalysis_stop_ = false;
    reanalysis_thread_ = std::thread([this] { ReanalysisLoop(); });
  }
  return Status::OK();
}

AdmitResult SteeringService::Submit(const ServiceRequest& request,
                                    std::future<ServiceReply>* reply) {
  MutexLock lock(mu_);
  if (!running_ || draining_) {
    ++rejected_not_running_;
    return AdmitResult::kNotRunning;
  }
  // Load shedding: estimate how long this request would sit behind the work
  // already admitted (queued + in flight = accepted - finished). A request
  // that cannot make its deadline is rejected *now* — queueing it would only
  // delay requests that still can.
  int64_t ahead = accepted_ - finished_;
  double workers = static_cast<double>(std::max(1, options_.num_workers));
  double estimate = static_cast<double>(ahead) * service_time_ewma_s_ / workers;
  double deadline = request.deadline_s > 0.0 ? request.deadline_s : options_.default_deadline_s;
  if (deadline > 0.0 && estimate > deadline) {
    ++shed_deadline_;
    return AdmitResult::kShedDeadline;
  }
  QueueItem item;
  item.request = request;
  item.wait_estimate_s = estimate;
  std::future<ServiceReply> future = item.promise.get_future();
  if (!queue_.TryPush(std::move(item))) {
    ++rejected_queue_full_;
    return AdmitResult::kQueueFull;
  }
  ++accepted_;
  if (reply != nullptr) *reply = std::move(future);
  return AdmitResult::kAccepted;
}

void SteeringService::WorkerLoop() {
  QueueItem item;
  while (queue_.Pop(&item)) {
    ProcessRequest(std::move(item));
  }
}

void SteeringService::ProcessRequest(QueueItem item) {
  // qsteer-lint: allow(wall-clock) measures real service time for the admission-control EWMA
  auto start = std::chrono::steady_clock::now();
  ServiceReply reply;
  reply.wait_estimate_s = item.wait_estimate_s;
  const Job& job = item.request.job;
  auto elapsed = [&start] {
    // qsteer-lint: allow(wall-clock) same EWMA measurement as `start` above
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  uint64_t nonce = HashCombine(options_.seed, HashString(job.name));
  // Serving hot path: compile through the pipeline's compile cache
  // (recurring jobs hit; results are bit-identical to a fresh compile).
  Result<CompiledPlan> default_plan = pipeline_.CompileCached(job, RuleConfig::Default());
  if (!default_plan.ok()) {
    reply.status = default_plan.status();
    FinishRequest(std::move(item.promise), std::move(reply), elapsed(), /*failed=*/true);
    return;
  }
  reply.default_signature = default_plan.value().signature;
  ExecMetrics default_metrics =
      pipeline_.ExecuteWithRetry(job, default_plan.value().root, nonce);
  reply.default_runtime_s = default_metrics.runtime;
  reply.served_runtime_s = default_metrics.runtime;

  // Lock-free for the common pure lookups; open-breaker ticks still journal.
  SteeringRecommender::Recommendation rec =
      store_.RecommendFast(default_plan.value().signature);
  if (!rec.is_default) {
    Result<CompiledPlan> steered = pipeline_.CompileCached(job, rec.config);
    if (steered.ok()) {
      ExecMetrics steered_metrics = pipeline_.ExecuteWithRetry(
          job, steered.value().root, HashCombine(nonce, 0x9e3779b97f4a7c15ULL));
      double change_pct;
      if (steered_metrics.failed) {
        // A steered run that stays failed after retries is the worst
        // regression we can observe; drive the breaker accordingly.
        change_pct = 100.0;
      } else if (default_metrics.runtime > 0.0) {
        change_pct = (steered_metrics.runtime - default_metrics.runtime) /
                     default_metrics.runtime * 100.0;
      } else {
        change_pct = 0.0;
      }
      store_.ObserveOutcome(default_plan.value().signature, change_pct);
      if (!steered_metrics.failed) {
        reply.steered = true;
        reply.probing = rec.probing;
        reply.config = rec.config;
        reply.served_runtime_s = steered_metrics.runtime;
      }
    }
  }
  reply.status = Status::OK();
  FinishRequest(std::move(item.promise), std::move(reply), elapsed(), /*failed=*/false);
}

void SteeringService::FinishRequest(std::promise<ServiceReply> promise, ServiceReply reply,
                                    double elapsed_s, bool failed) {
  {
    MutexLock lock(mu_);
    if (service_time_ewma_s_ <= 0.0) {
      service_time_ewma_s_ = elapsed_s;
    } else {
      service_time_ewma_s_ = options_.ewma_alpha * elapsed_s +
                             (1.0 - options_.ewma_alpha) * service_time_ewma_s_;
    }
    ++finished_;
    if (failed) {
      ++failed_;
    } else {
      ++completed_;
    }
  }
  drained_cv_.NotifyAll();
  promise.set_value(std::move(reply));
}

void SteeringService::Drain() {
  MutexLock lock(mu_);
  if (!running_) return;
  draining_ = true;
  while (finished_ != accepted_) drained_cv_.Wait(mu_);
}

bool SteeringService::BeginStop() {
  MutexLock lock(mu_);
  if (!running_ || stopping_) return false;
  stopping_ = true;
  draining_ = true;  // stop admission immediately
  return true;
}

void SteeringService::JoinWorkers() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) worker.join();
}

void SteeringService::StopReanalysisWorker() {
  std::thread worker;
  {
    MutexLock lock(reanalysis_mu_);
    reanalysis_stop_ = true;
    if (reanalysis_token_ != nullptr) reanalysis_token_->RequestCancel();
    worker = std::move(reanalysis_thread_);
  }
  reanalysis_cv_.NotifyAll();
  if (worker.joinable()) worker.join();
}

void SteeringService::MarkStopped() {
  MutexLock lock(mu_);
  running_ = false;
  draining_ = false;
  stopping_ = false;
}

Status SteeringService::Shutdown() {
  Drain();
  // First stopper wins; a concurrent Shutdown/Kill already owns the join
  // (the old code let both paths join workers_ — a double-join race).
  if (!BeginStop()) return Status::OK();
  queue_.Close();
  JoinWorkers();
  StopReanalysisWorker();
  Status snapshot_status = store_.Snapshot();
  MarkStopped();
  return snapshot_status;
}

void SteeringService::Kill() {
  if (!BeginStop()) return;
  std::vector<QueueItem> abandoned = queue_.CloseAndDrain();
  for (QueueItem& item : abandoned) {
    ServiceReply reply;
    reply.status = Status::Internal("service killed");
    FinishRequest(std::move(item.promise), std::move(reply), /*elapsed_s=*/0.0,
                  /*failed=*/true);
  }
  JoinWorkers();
  StopReanalysisWorker();
  // Deliberately no snapshot: recovery must come from the WAL.
  MarkStopped();
}

bool SteeringService::RequestReanalysis(const Job& job) {
  {
    MutexLock lock(mu_);
    if (!running_ || draining_ || !options_.enable_reanalysis) return false;
  }
  {
    MutexLock lock(reanalysis_mu_);
    // Newest request wins: supersede (cancel) whatever is pending/in-flight.
    if (reanalysis_token_ != nullptr) reanalysis_token_->RequestCancel();
    if (reanalysis_pending_.has_value()) ++reanalyses_abandoned_;
    reanalysis_pending_ = job;
    reanalysis_token_ = std::make_shared<CancellationToken>();
  }
  reanalysis_cv_.NotifyAll();
  return true;
}

void SteeringService::ReanalysisLoop() {
  for (;;) {
    Job job;
    std::shared_ptr<CancellationToken> token;
    {
      MutexLock lock(reanalysis_mu_);
      while (!reanalysis_stop_ && !reanalysis_pending_.has_value()) {
        reanalysis_cv_.Wait(reanalysis_mu_);
      }
      if (reanalysis_stop_) return;
      job = std::move(*reanalysis_pending_);
      reanalysis_pending_.reset();
      token = reanalysis_token_;
    }
    JobAnalysis analysis = pipeline_.AnalyzeJob(job);
    {
      MutexLock lock(reanalysis_mu_);
      if (token->cancelled()) {
        // Superseded while analyzing: discard rather than apply stale work.
        ++reanalyses_abandoned_;
        continue;
      }
      ++reanalyses_completed_;
    }
    store_.LearnFromAnalysis(analysis);
  }
}

ServiceStatusSnapshot SteeringService::status() const {
  ServiceStatusSnapshot snapshot;
  {
    MutexLock lock(mu_);
    snapshot.running = running_;
    snapshot.draining = draining_;
    snapshot.accepted = accepted_;
    snapshot.completed = completed_;
    snapshot.failed = failed_;
    snapshot.shed_deadline = shed_deadline_;
    snapshot.rejected_queue_full = rejected_queue_full_;
    snapshot.rejected_not_running = rejected_not_running_;
    snapshot.service_time_ewma_s = service_time_ewma_s_;
  }
  snapshot.queue_depth = static_cast<int>(queue_.size());
  snapshot.queue_high_water = queue_.high_water();
  snapshot.applied_seq = store_.applied_seq();
  snapshot.wal_lag = store_.wal_lag();
  snapshot.snapshots_taken = store_.snapshots_taken();
  DurableRecommenderStore::RecoveryInfo recovery = store_.recovery();
  snapshot.recovered_snapshot = recovery.loaded_snapshot;
  snapshot.recovery_snapshot_seq = recovery.snapshot_seq;
  snapshot.recovery_wal_replayed = recovery.wal_records_replayed;
  snapshot.recovery_wal_skipped = recovery.wal_records_skipped;
  snapshot.recovery_wal_truncated_bytes = recovery.wal_truncated_bytes;
  snapshot.groups = store_.num_groups();
  snapshot.serving = store_.num_serving();
  snapshot.open_breakers = store_.num_open();
  snapshot.retired = store_.num_retired();
  snapshot.pending_validation = store_.num_pending_validation();
  CompileCacheStats cache_stats = pipeline_.compile_cache_stats();
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  snapshot.cache_entries = cache_stats.entries;
  snapshot.cache_bytes = cache_stats.bytes;
  snapshot.cache_warm_loaded = cache_stats.warm_loaded;
  snapshot.cache_warm_rejected = cache_stats.warm_rejected;
  snapshot.span_duplicates_pruned = pipeline_.span_duplicates_pruned();
  SteeringPipeline::BudgetStats budget = pipeline_.budget_stats();
  snapshot.candidates_scored = budget.candidates_scored;
  snapshot.candidates_compiled = budget.candidates_compiled;
  snapshot.budget_skipped = budget.budget_skipped;
  snapshot.improvements_found = budget.improvements_found;
  snapshot.ranker_examples_trained = budget.ranker_examples_trained;
  snapshot.rec_snapshot_serves = store_.fast_recommends();
  snapshot.rec_locked_serves = store_.locked_recommends();
  {
    MutexLock lock(reanalysis_mu_);
    snapshot.reanalyses_completed = reanalyses_completed_;
    snapshot.reanalyses_abandoned = reanalyses_abandoned_;
  }
  return snapshot;
}

}  // namespace qsteer
