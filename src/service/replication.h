// Replicated serving tier: a leader DurableRecommenderStore journals
// mutations exactly as in single-node operation, and a ReplicationFleet
// ships them to N follower stores over an in-process deterministic
// transport (common/transport.h) so recommendation serving survives the
// loss of any replica.
//
// Protocol (all frames crc32-checksummed by the transport):
//   * TAIL  <epoch> <count>\n<seq> <payload>\n...   — a WAL tail segment.
//     Followers apply entries through ApplyReplicated, which skips
//     seq <= the local `# seq N` watermark (idempotent against
//     overlapping segments) and rejects gaps with kFailedPrecondition —
//     the leader's cue to fall back to a snapshot install.
//   * SNAP  <epoch>\n<serialized store + watermark line>              —
//     a full-state install (InstallSnapshot), used when a follower is too
//     far behind the leader's in-memory ReplicationLog or might hold a
//     divergent suffix (a rejoining ex-leader).
//
// Acknowledgement = the leader applied the mutation AND shipped it to
// every reachable live follower before returning. A partitioned or dead
// follower is skipped (it catches up on heal), and — the other half of
// the bargain — elections only consider live, reachable replicas. So an
// acknowledged mutation is always present on every replica that could
// win the next election, which is how "zero lost acknowledged mutations"
// holds.
//
// Failover: when the leader dies, ElectLocked() deterministically picks
// the live replica with the highest watermark (ties broken by lowest id)
// and bumps the fleet epoch. The dead ex-leader is marked tainted: it may
// hold a locally-journaled suffix nobody acknowledged, so on rejoin it
// always receives a snapshot install (discarding that suffix) rather
// than a tail. A killed-and-restarted *follower* is never tainted and
// tail-catches-up from its disk-recovered watermark — the `# seq N`
// cursor doing double duty as the replication cursor.
//
// Routing: serving requests consistent-hash their job's rule-signature
// bits onto the replica ring (common/hash_ring.h). Ring membership is
// the configured fleet — churn never reshuffles placement; liveness is
// handled by walking the preference list. Each replica has an admission
// budget (max in-flight serves); a full or dead replica re-routes down
// the preference list (ownership snaps back the moment the replica
// returns), and a follower that has fallen
// more than `staleness_bound` events behind the leader sheds the request
// to the leader. Followers serve only pure reads (TryRecommendPure);
// open-breaker cooldown ticks are mutations and always run on the
// leader, journaled and replicated like any other event.
#ifndef QSTEER_SERVICE_REPLICATION_H_
#define QSTEER_SERVICE_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash_ring.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/transport.h"
#include "service/durable_store.h"

namespace qsteer {

/// In-memory buffer of recent journaled events, one per replica: the WAL
/// tail the leader can ship without touching disk. Capped — a follower
/// whose watermark predates the buffer gets a snapshot install instead.
/// Thread-safe (fed by the store's mutation listener under the store
/// mutex, drained by the fleet under its own).
class ReplicationLog {
 public:
  explicit ReplicationLog(size_t cap = 4096) : cap_(cap) {}

  void Append(uint64_t seq, std::string payload) EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);
  /// True when the log holds every entry with seq > from_seq (i.e. a tail
  /// shipped from from_seq would be gap-free). An empty log covers nothing.
  bool Covers(uint64_t from_seq) const EXCLUDES(mu_);
  /// All buffered entries with seq > from_seq, ascending.
  std::vector<std::pair<uint64_t, std::string>> TailFrom(uint64_t from_seq) const
      EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  size_t cap_;
  std::deque<std::pair<uint64_t, std::string>> entries_ GUARDED_BY(mu_);
};

/// One member of the fleet: a durable store plus the replication plumbing
/// around it (tail buffer, epoch tracking, admission counter). Implements
/// the transport endpoint that decodes TAIL/SNAP frames.
///
/// Kill/restart semantics: Kill only marks the node dead — the store
/// object survives so in-flight lock-free readers stay safe (they hold a
/// shared_ptr to it). Restart swaps in a fresh store recovered from the
/// same directory, which is exactly a process crash + reopen.
class ReplicaNode : public TransportEndpoint {
 public:
  ReplicaNode(uint32_t id, DurableStoreOptions store_options, size_t log_cap = 4096)
      : id_(id), store_options_(std::move(store_options)), log_(log_cap) {}

  /// Builds and opens the store (recovering from disk if durable) and
  /// attaches the mutation listener that feeds the replication log.
  Status Open();
  /// Crash-restart: discards the old store object and in-memory tail
  /// buffer, then recovers from disk like a fresh process.
  Status Reopen();

  Status Deliver(std::string_view payload) override;

  uint32_t id() const { return id_; }
  /// Never null after a successful Open(); lock-free to load so serving
  /// threads can read through it during churn.
  std::shared_ptr<DurableRecommenderStore> store() const {
    return store_.load(std::memory_order_acquire);
  }
  uint64_t watermark() const;

  uint64_t epoch_synced() const { return epoch_synced_.load(std::memory_order_acquire); }
  void set_epoch_synced(uint64_t epoch) {
    epoch_synced_.store(epoch, std::memory_order_release);
  }

  bool alive() const { return alive_.load(std::memory_order_acquire); }
  void set_alive(bool alive) { alive_.store(alive, std::memory_order_release); }

  /// A tainted replica (an ex-leader that died un-elected) may hold a
  /// divergent unacknowledged suffix; it must snapshot-install on rejoin.
  bool tainted() const { return tainted_.load(std::memory_order_acquire); }
  void set_tainted(bool tainted) { tainted_.store(tainted, std::memory_order_release); }

  /// Admission control: TryAdmit claims an in-flight slot (false = over
  /// budget, caller re-routes); Release returns it.
  bool TryAdmit(int max_inflight);
  void Release() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }
  int inflight() const { return inflight_.load(std::memory_order_acquire); }

  ReplicationLog& log() { return log_; }
  int64_t serves() const { return serves_.load(std::memory_order_relaxed); }
  void count_serve() { serves_.fetch_add(1, std::memory_order_relaxed); }

 private:
  const uint32_t id_;
  DurableStoreOptions store_options_;
  std::atomic<std::shared_ptr<DurableRecommenderStore>> store_;
  ReplicationLog log_;
  std::atomic<uint64_t> epoch_synced_{0};
  std::atomic<bool> alive_{false};
  std::atomic<bool> tainted_{false};
  std::atomic<int> inflight_{0};
  std::atomic<int64_t> serves_{0};
};

struct FleetOptions {
  /// Root directory; replica i persists under `<dir>/replica_<i>`
  /// (created on Start). Empty = ephemeral replicas (no durability —
  /// restart loses state and forces a snapshot install).
  std::string dir;
  int num_replicas = 3;
  /// Per-replica store snapshot interval (see DurableStoreOptions).
  int snapshot_interval = 64;
  bool sync = false;
  /// A follower more than this many events behind the leader sheds
  /// serving requests to the leader until it catches up.
  uint64_t staleness_bound = 128;
  /// Admission budget: concurrent serves per replica before re-routing.
  int max_inflight_per_replica = 64;
  /// Entries buffered in each replica's in-memory ReplicationLog.
  size_t replication_log_cap = 4096;
  int ring_vnodes = 64;
  /// Transient serve failures (kUnavailable: no live replica mid-failover)
  /// retry with simulated backoff under this policy before surfacing to the
  /// caller — an election in flight usually completes within one backoff.
  RetryPolicy serve_retry;
  RecommenderOptions recommender;
};

struct FleetStatus {
  struct Replica {
    uint32_t id = 0;
    bool alive = false;
    bool leader = false;
    bool tainted = false;
    uint64_t watermark = 0;
    uint64_t epoch_synced = 0;
    int64_t replicated_applied = 0;
    int64_t replicated_skipped = 0;
    int64_t snapshot_installs = 0;
    int64_t serves = 0;
  };
  uint64_t epoch = 0;
  uint32_t leader_id = 0;
  std::vector<Replica> replicas;
  int64_t serves = 0;
  int64_t rerouted = 0;
  int64_t sheds = 0;
  int64_t failovers = 0;
  int64_t tail_ships = 0;
  int64_t snapshot_ships = 0;
  int64_t transport_frames = 0;
  int64_t transport_send_failures = 0;
  int64_t transport_checksum_failures = 0;
  /// Serve() retries after a transient (kUnavailable) failure, and the
  /// simulated backoff those retries accumulated.
  int64_t unavailable_retries = 0;
  double retry_backoff_s = 0.0;
  std::string ToString() const;
};

class ReplicationFleet {
 public:
  explicit ReplicationFleet(FleetOptions options);
  ReplicationFleet(const ReplicationFleet&) = delete;
  ReplicationFleet& operator=(const ReplicationFleet&) = delete;

  /// Creates replica directories, opens every store (recovering from any
  /// prior run), elects the initial leader (highest recovered watermark,
  /// lowest id on ties) and brings followers up to it.
  Status Start() EXCLUDES(mu_);

  struct ServeResult {
    SteeringRecommender::Recommendation recommendation;
    /// Replica that answered.
    uint32_t replica = 0;
    /// The lookup journaled an open-breaker cooldown tick (leader path;
    /// replicated like any other mutation).
    bool ticked = false;
    /// The ring-preferred replica was dead or over budget.
    bool rerouted = false;
    /// A follower over the staleness bound shed this request to the leader.
    bool shed_stale = false;
  };
  /// Routes by consistent hash of the rule-signature bits. Transient
  /// failures (kUnavailable: every replica dead, typically mid-failover)
  /// retry under FleetOptions::serve_retry with simulated backoff;
  /// kUnavailable surfaces only after the policy is exhausted.
  Status Serve(const RuleSignature& signature, ServeResult* out) EXCLUDES(mu_);

  // Mutations: applied on the leader, synchronously shipped to every
  // reachable live follower before returning. OK = acknowledged.
  Status LearnFromAnalysis(const JobAnalysis& analysis, bool* learned = nullptr)
      EXCLUDES(mu_);
  Status LearnCandidate(const SteeringRecommender::CandidateObservation& observation,
                        bool* learned = nullptr) EXCLUDES(mu_);
  Status ObserveValidation(const RuleSignature& signature, double runtime_change_pct)
      EXCLUDES(mu_);
  Status ObserveOutcome(const RuleSignature& signature, double runtime_change_pct)
      EXCLUDES(mu_);

  // ---- Chaos / lifecycle ----

  /// Crash: the replica stops serving (requests re-route down its keys'
  /// preference lists); its disk state survives. Killing the leader
  /// triggers a deterministic election.
  Status Kill(uint32_t id) EXCLUDES(mu_);
  /// Recover from disk, reconnect transport, catch up (tail or snapshot
  /// install as the protocol dictates). Ring ownership snaps back.
  Status Restart(uint32_t id) EXCLUDES(mu_);
  /// Partition: the leader cannot ship to `id` but the replica keeps
  /// serving reads — the staleness bound is what protects clients.
  void SetPartitioned(uint32_t id, bool partitioned) EXCLUDES(mu_);
  /// Brings every live follower up to the leader's watermark (barrier
  /// helper for convergence checks).
  Status CatchUpAll() EXCLUDES(mu_);
  /// Compares SerializeState() across all live replicas; kInternal with a
  /// diff summary on divergence. Call after CatchUpAll() / quiesce.
  Status CheckConvergence(std::string* detail = nullptr) const EXCLUDES(mu_);

  uint32_t leader_id() const EXCLUDES(mu_);
  uint64_t epoch() const EXCLUDES(mu_);
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  FleetStatus status() const EXCLUDES(mu_);
  /// Exposed for fault injection (CorruptNextDelivery) and wire counters.
  InProcessTransport& transport() { return transport_; }
  /// Direct store access for tests/benches (e.g. golden-state compare).
  std::shared_ptr<DurableRecommenderStore> replica_store(uint32_t id) const;

  /// Process-stable routing key for a signature (hash of the bits only —
  /// no pointers, no per-run salt; see QL004).
  static uint64_t RouteKey(const RuleSignature& signature);

 private:
  /// One routing attempt (the pre-retry Serve body).
  Status ServeOnce(const RuleSignature& signature, ServeResult* out) EXCLUDES(mu_);
  Status MutateOnLeader(const std::function<Status(DurableRecommenderStore&)>& fn)
      EXCLUDES(mu_);
  Status EnsureLeaderLocked() REQUIRES(mu_);
  Status ElectLocked() REQUIRES(mu_);
  Status ShipTailLocked(uint64_t from_seq) REQUIRES(mu_);
  Status CatchUpLocked(uint32_t id) REQUIRES(mu_);
  Status ShipSnapshotLocked(uint32_t id) REQUIRES(mu_);

  FleetOptions options_;
  InProcessTransport transport_;
  /// Stable after Start(): serving threads index it without the mutex
  /// (per-node state is atomic); topology (ring, leader, epoch) is not.
  std::vector<std::unique_ptr<ReplicaNode>> replicas_;
  mutable Mutex mu_;
  ConsistentHashRing ring_ GUARDED_BY(mu_);
  uint32_t leader_id_ GUARDED_BY(mu_) = 0;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  int64_t failovers_ GUARDED_BY(mu_) = 0;
  int64_t tail_ships_ GUARDED_BY(mu_) = 0;
  int64_t snapshot_ships_ GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> serves_{0};
  std::atomic<int64_t> rerouted_{0};
  std::atomic<int64_t> sheds_{0};
  std::atomic<int64_t> unavailable_retries_{0};
  /// Milliseconds: atomic<double>::fetch_add is not portable.
  std::atomic<int64_t> retry_backoff_ms_{0};
};

}  // namespace qsteer

#endif  // QSTEER_SERVICE_REPLICATION_H_
