#include "service/durable_store.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/file_io.h"
#include "core/hints.h"

namespace qsteer {

namespace {

constexpr char kSnapshotFile[] = "snapshot.qrs";
constexpr char kWalFile[] = "wal.log";
constexpr char kSeqCommentPrefix[] = "# seq ";

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool ParseDoubleExact(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

}  // namespace

DurableRecommenderStore::DurableRecommenderStore(DurableStoreOptions options)
    : options_(std::move(options)), recommender_(options_.recommender) {}

// No snapshot on destruction on purpose: dropping the object is the chaos
// harness's crash simulation, and a crash does not get to flush. Clean
// shutdown paths call Snapshot() explicitly.
DurableRecommenderStore::~DurableRecommenderStore() = default;

std::string DurableRecommenderStore::snapshot_path() const {
  return options_.dir + "/" + kSnapshotFile;
}

std::string DurableRecommenderStore::wal_path() const {
  return options_.dir + "/" + kWalFile;
}

DurableRecommenderStore::RecoveryInfo DurableRecommenderStore::recovery() const {
  MutexLock lock(mu_);
  return recovery_;
}

Status DurableRecommenderStore::Open() {
  MutexLock lock(mu_);
  if (open_) return Status::FailedPrecondition("store already open");
  recovery_ = RecoveryInfo{};
  if (!durable()) {
    open_ = true;
    PublishViewLocked();
    return Status::OK();
  }

  // 1. Snapshot (atomic write + crc32 footer; a checksum mismatch means
  //    external corruption and is a hard error).
  Result<std::string> snapshot = ReadFileChecksummed(snapshot_path());
  if (snapshot.ok()) {
    uint64_t seq = 0;
    std::istringstream lines(snapshot.value());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind(kSeqCommentPrefix, 0) == 0) {
        seq = std::strtoull(line.c_str() + std::strlen(kSeqCommentPrefix), nullptr, 10);
      }
    }
    Status status = recommender_.Deserialize(snapshot.value());
    if (!status.ok()) {
      return Status::Internal("corrupt snapshot " + snapshot_path() + ": " +
                              status.message());
    }
    recovery_.loaded_snapshot = true;
    recovery_.snapshot_seq = seq;
    applied_seq_ = seq;
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  // 2. WAL tail: replay events the snapshot has not captured; skip the ones
  //    it has (crash between snapshot write and WAL reset). Recover()
  //    truncates any torn/corrupt suffix in place.
  Result<WriteAheadLog::RecoveryInfo> wal_info = WriteAheadLog::Recover(
      wal_path(), [&](uint64_t seq, std::string_view payload) -> Status {
        if (seq <= recovery_.snapshot_seq) {
          ++recovery_.wal_records_skipped;
          return Status::OK();
        }
        Status status = ApplyPayload(std::string(payload));
        if (!status.ok()) return status;
        applied_seq_ = seq;
        ++recovery_.wal_records_replayed;
        return Status::OK();
      });
  if (!wal_info.ok()) return wal_info.status();
  recovery_.wal_truncated_bytes = wal_info.value().truncated_bytes;
  events_since_snapshot_ = recovery_.wal_records_replayed;

  Status status = wal_.Open(wal_path(), options_.sync);
  if (!status.ok()) return status;
  open_ = true;
  PublishViewLocked();
  return Status::OK();
}

void DurableRecommenderStore::PublishViewLocked() {
  auto view = std::make_shared<RecommendationView>();
  for (SteeringRecommender::SnapshotEntry& row : recommender_.SnapshotRecommendations()) {
    RuleSignature signature = row.signature;
    view->rows.emplace(signature, std::move(row));
  }
  view_.store(std::move(view), std::memory_order_release);
}

SteeringRecommender::Recommendation DurableRecommenderStore::RecommendFast(
    const RuleSignature& signature) {
  std::shared_ptr<const RecommendationView> view = view_.load(std::memory_order_acquire);
  if (view != nullptr) {
    auto it = view->rows.find(signature);
    if (it == view->rows.end()) {
      // Unknown group: Recommend() would return the pure default without
      // touching state — serve it straight from the view.
      fast_recommends_.fetch_add(1, std::memory_order_relaxed);
      SteeringRecommender::Recommendation rec;
      rec.config = RuleConfig::Default();
      return rec;
    }
    if (!it->second.mutates_on_recommend) {
      fast_recommends_.fetch_add(1, std::memory_order_relaxed);
      return it->second.recommendation;
    }
  }
  // Open breaker (cooldown must tick and be journaled) or pre-Open call:
  // take the slow, locked path.
  locked_recommends_.fetch_add(1, std::memory_order_relaxed);
  return Recommend(signature);
}

Status DurableRecommenderStore::ApplyPayload(const std::string& payload) {
  // Payloads are single-line text events:
  //   L <sig-hex> <improvement-pct> <hint-string (may be empty)>
  //   V <sig-hex> <runtime-change-pct>
  //   O <sig-hex> <runtime-change-pct>
  //   R <sig-hex>
  std::istringstream in(payload);
  std::string type, sig_hex;
  if (!(in >> type >> sig_hex)) {
    return Status::InvalidArgument("malformed wal event: " + payload);
  }
  RuleSignature signature = BitVector256::FromHexString(sig_hex);
  if (signature.None() && sig_hex != std::string(64, '0')) {
    return Status::InvalidArgument("bad signature in wal event: " + payload);
  }
  if (type == "R") {
    recommender_.Recommend(signature);
    return Status::OK();
  }
  std::string change_text;
  if (!(in >> change_text)) {
    return Status::InvalidArgument("missing change in wal event: " + payload);
  }
  double change = 0.0;
  if (!ParseDoubleExact(change_text, &change)) {
    return Status::InvalidArgument("bad change in wal event: " + payload);
  }
  if (type == "V") {
    recommender_.ObserveValidation(signature, change);
    return Status::OK();
  }
  if (type == "O") {
    recommender_.ObserveOutcome(signature, change);
    return Status::OK();
  }
  if (type == "L") {
    std::string hints;
    std::getline(in, hints);
    if (!hints.empty() && hints.front() == ' ') hints.erase(0, 1);
    Result<RuleConfig> config = ParseHintString(hints);
    if (!config.ok()) return config.status();
    SteeringRecommender::CandidateObservation observation;
    observation.signature = signature;
    observation.config = config.value();
    observation.improvement_pct = change;
    recommender_.LearnCandidate(observation);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown wal event type: " + payload);
}

Status DurableRecommenderStore::JournalAndMark(const std::string& payload) {
  if (durable()) {
    Status status = wal_.Append(applied_seq_ + 1, payload);
    // Fail-stop: an unjournalable event is never applied, preserving the
    // invariant that in-memory state is always recoverable from disk.
    if (!status.ok()) return status;
  }
  ++applied_seq_;
  ++events_since_snapshot_;
  if (mutation_listener_) mutation_listener_(applied_seq_, payload);
  return Status::OK();
}

Status DurableRecommenderStore::MaybeSnapshotLocked() {
  if (options_.snapshot_interval > 0 && events_since_snapshot_ >= options_.snapshot_interval) {
    return SnapshotLocked();
  }
  return Status::OK();
}

Status DurableRecommenderStore::SnapshotLocked() {
  if (!durable()) return Status::OK();
  std::string content = recommender_.Serialize();
  content += kSeqCommentPrefix + std::to_string(applied_seq_) + "\n";
  Status status = WriteFileChecksummed(snapshot_path(), content, options_.sync);
  if (!status.ok()) return status;
  ++snapshots_taken_;
  events_since_snapshot_ = 0;
  if (options_.testing_skip_wal_reset_after_snapshot) return Status::OK();
  return wal_.Reset();
}

Status DurableRecommenderStore::Snapshot() {
  MutexLock lock(mu_);
  return SnapshotLocked();
}

bool DurableRecommenderStore::LearnFromAnalysis(const JobAnalysis& analysis) {
  std::optional<SteeringRecommender::CandidateObservation> observation =
      SteeringRecommender::ExtractCandidate(analysis, options_.recommender);
  if (!observation.has_value()) return false;
  return LearnCandidate(*observation);
}

bool DurableRecommenderStore::LearnCandidate(
    const SteeringRecommender::CandidateObservation& observation) {
  MutexLock lock(mu_);
  std::string payload = "L " + observation.signature.ToHexString() + " " +
                        FormatDouble(observation.improvement_pct) + " " +
                        ToHintString(observation.config);
  if (!JournalAndMark(payload).ok()) return false;
  bool changed = recommender_.LearnCandidate(observation);
  if (changed) PublishViewLocked();
  // qsteer-lint: allow(unchecked-status) snapshot is opportunistic; the WAL stays authoritative
  (void)MaybeSnapshotLocked();
  return changed;
}

void DurableRecommenderStore::ObserveValidation(const RuleSignature& signature,
                                                double runtime_change_pct) {
  MutexLock lock(mu_);
  std::string payload =
      "V " + signature.ToHexString() + " " + FormatDouble(runtime_change_pct);
  if (!JournalAndMark(payload).ok()) return;
  recommender_.ObserveValidation(signature, runtime_change_pct);
  PublishViewLocked();
  // qsteer-lint: allow(unchecked-status) snapshot is opportunistic; the WAL stays authoritative
  (void)MaybeSnapshotLocked();
}

void DurableRecommenderStore::ObserveOutcome(const RuleSignature& signature,
                                             double runtime_change_pct) {
  MutexLock lock(mu_);
  std::string payload =
      "O " + signature.ToHexString() + " " + FormatDouble(runtime_change_pct);
  if (!JournalAndMark(payload).ok()) return;
  recommender_.ObserveOutcome(signature, runtime_change_pct);
  PublishViewLocked();
  // qsteer-lint: allow(unchecked-status) snapshot is opportunistic; the WAL stays authoritative
  (void)MaybeSnapshotLocked();
}

SteeringRecommender::Recommendation DurableRecommenderStore::Recommend(
    const RuleSignature& signature) {
  MutexLock lock(mu_);
  // Only journal lookups that tick an open breaker's cooldown clock; plain
  // lookups are pure reads and must not bloat the WAL under serving load.
  if (recommender_.WouldMutateOnRecommend(signature)) {
    std::string payload = "R " + signature.ToHexString();
    if (!JournalAndMark(payload).ok()) {
      // Unjournalable: serve the default without mutating (fail-stop).
      SteeringRecommender::Recommendation rec;
      rec.config = RuleConfig::Default();
      return rec;
    }
    SteeringRecommender::Recommendation rec = recommender_.Recommend(signature);
    PublishViewLocked();
    // qsteer-lint: allow(unchecked-status) snapshot is opportunistic; the WAL stays authoritative
  (void)MaybeSnapshotLocked();
    return rec;
  }
  return recommender_.Recommend(signature);
}

bool DurableRecommenderStore::TryRecommendPure(
    const RuleSignature& signature, SteeringRecommender::Recommendation* out) const {
  std::shared_ptr<const RecommendationView> view = view_.load(std::memory_order_acquire);
  if (view == nullptr) return false;
  auto it = view->rows.find(signature);
  if (it == view->rows.end()) {
    fast_recommends_.fetch_add(1, std::memory_order_relaxed);
    *out = SteeringRecommender::Recommendation{};
    out->config = RuleConfig::Default();
    return true;
  }
  if (it->second.mutates_on_recommend) return false;
  fast_recommends_.fetch_add(1, std::memory_order_relaxed);
  *out = it->second.recommendation;
  return true;
}

void DurableRecommenderStore::SetMutationListener(MutationListener listener) {
  MutexLock lock(mu_);
  mutation_listener_ = std::move(listener);
}

Status DurableRecommenderStore::ApplyReplicated(uint64_t seq, const std::string& payload) {
  MutexLock lock(mu_);
  if (!open_) return Status::FailedPrecondition("store not open");
  if (seq <= applied_seq_) {
    // Idempotent skip: this entry is already part of the local state
    // (overlapping tail segment, duplicate shipment after a retry).
    ++replicated_skipped_;
    return Status::OK();
  }
  if (seq != applied_seq_ + 1) {
    return Status::FailedPrecondition(
        "replication gap: local watermark " + std::to_string(applied_seq_) +
        ", shipped seq " + std::to_string(seq) + " (snapshot install required)");
  }
  Status status = JournalAndMark(payload);
  if (!status.ok()) return status;
  status = ApplyPayload(payload);
  if (!status.ok()) return status;
  ++replicated_applied_;
  PublishViewLocked();
  // qsteer-lint: allow(unchecked-status) snapshot is opportunistic; the WAL stays authoritative
  (void)MaybeSnapshotLocked();
  return Status::OK();
}

std::string DurableRecommenderStore::SerializeForReplication() const {
  MutexLock lock(mu_);
  return recommender_.Serialize() + kSeqCommentPrefix + std::to_string(applied_seq_) + "\n";
}

Status DurableRecommenderStore::InstallSnapshot(const std::string& content) {
  MutexLock lock(mu_);
  if (!open_) return Status::FailedPrecondition("store not open");
  uint64_t seq = 0;
  {
    std::istringstream lines(content);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind(kSeqCommentPrefix, 0) == 0) {
        seq = std::strtoull(line.c_str() + std::strlen(kSeqCommentPrefix), nullptr, 10);
      }
    }
  }
  // Validate into the live recommender only after parsing succeeds; a
  // corrupt install must leave the current state untouched.
  SteeringRecommender incoming(options_.recommender);
  Status status = incoming.Deserialize(content);
  if (!status.ok()) {
    return Status::InvalidArgument("corrupt snapshot install: " + status.message());
  }
  if (durable()) {
    // WAL first, snapshot second — deliberately the inverse of the
    // periodic SnapshotLocked() ordering. An install may REWIND the local
    // watermark (a rejoining ex-leader discards its unacknowledged
    // suffix), so the local WAL can hold entries with seq beyond the
    // incoming snapshot's that must never replay on top of it. Resetting
    // the WAL first means a crash in the window leaves the old on-disk
    // snapshot + empty WAL: a consistent, merely stale state that the next
    // catch-up repairs. Snapshot-first would leave installed-state +
    // divergent-tail — silently wrong after recovery.
    status = wal_.Reset();
    if (!status.ok()) return status;
    if (!options_.testing_skip_snapshot_write_after_install_reset) {
      status = WriteFileChecksummed(snapshot_path(), content, options_.sync);
      if (!status.ok()) return status;
      ++snapshots_taken_;
    }
  }
  recommender_ = std::move(incoming);
  applied_seq_ = seq;
  events_since_snapshot_ = 0;
  ++snapshot_installs_;
  PublishViewLocked();
  return Status::OK();
}

int64_t DurableRecommenderStore::replicated_applied() const {
  MutexLock lock(mu_);
  return replicated_applied_;
}

int64_t DurableRecommenderStore::replicated_skipped() const {
  MutexLock lock(mu_);
  return replicated_skipped_;
}

int64_t DurableRecommenderStore::snapshot_installs() const {
  MutexLock lock(mu_);
  return snapshot_installs_;
}

std::vector<SteeringRecommender::ValidationRequest>
DurableRecommenderStore::PendingValidations() const {
  MutexLock lock(mu_);
  return recommender_.PendingValidations();
}

std::string DurableRecommenderStore::SerializeState() const {
  MutexLock lock(mu_);
  return recommender_.Serialize();
}

int DurableRecommenderStore::num_groups() const {
  MutexLock lock(mu_);
  return recommender_.num_groups();
}

int DurableRecommenderStore::num_serving() const {
  MutexLock lock(mu_);
  return recommender_.num_serving();
}

int DurableRecommenderStore::num_pending_validation() const {
  MutexLock lock(mu_);
  return recommender_.num_pending_validation();
}

int DurableRecommenderStore::num_retired() const {
  MutexLock lock(mu_);
  return recommender_.num_retired();
}

int DurableRecommenderStore::num_rollbacks() const {
  MutexLock lock(mu_);
  return recommender_.num_rollbacks();
}

int DurableRecommenderStore::num_open() const {
  MutexLock lock(mu_);
  return recommender_.num_open();
}

uint64_t DurableRecommenderStore::applied_seq() const {
  MutexLock lock(mu_);
  return applied_seq_;
}

int64_t DurableRecommenderStore::wal_lag() const {
  MutexLock lock(mu_);
  return events_since_snapshot_;
}

int64_t DurableRecommenderStore::snapshots_taken() const {
  MutexLock lock(mu_);
  return snapshots_taken_;
}

}  // namespace qsteer
