// Crash-safe wrapper around SteeringRecommender: write-ahead logging of
// every state-bearing event plus periodic atomic snapshots.
//
// Write path (all under one mutex, so WAL order == application order):
//   1. assign the event the next sequence number;
//   2. append it to the WAL (fsync per options);
//   3. apply it to the in-memory recommender;
//   4. every `snapshot_interval` events: serialize the recommender to
//      `snapshot.qrs` (atomic temp+fsync+rename write with a crc32 footer
//      and an embedded `# seq N` watermark), then reset the WAL.
//
// Recovery (Open): load the snapshot if present (checksum verified), then
// replay the WAL tail, *skipping* records with seq <= the snapshot's
// watermark — a crash between snapshot write and WAL reset must not apply
// events twice. Torn or corrupt WAL tails are detected by the per-record
// CRC and truncated; the store resumes from the last intact event.
//
// Because every journaled event is deterministic (LearnCandidate /
// ObserveValidation / ObserveOutcome / the cooldown tick of a Recommend on
// an open breaker), replaying the log reproduces the pre-crash store
// bit-for-bit — the property the chaos harness asserts.
#ifndef QSTEER_SERVICE_DURABLE_STORE_H_
#define QSTEER_SERVICE_DURABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/wal.h"
#include "core/recommender.h"

namespace qsteer {

struct DurableStoreOptions {
  /// Directory for `wal.log` + `snapshot.qrs`. Empty = ephemeral store (no
  /// files, no durability — the recommender alone). Must already exist.
  std::string dir;
  /// Journaled events between automatic snapshots; <= 0 disables automatic
  /// snapshots (the WAL then grows until Snapshot() is called explicitly).
  int snapshot_interval = 256;
  /// fsync the WAL on every append (and snapshots on write). Disabling
  /// keeps rename-atomicity but loses power-failure durability; crash
  /// consistency against process death is unaffected on a live kernel.
  bool sync = true;
  /// Testing hook (deterministic chaos): snapshots skip the WAL reset,
  /// simulating a crash in the window between the two — recovery must then
  /// skip the WAL's already-snapshotted prefix by sequence number.
  bool testing_skip_wal_reset_after_snapshot = false;
  /// Testing hook for the inverse window in InstallSnapshot (which resets
  /// the WAL *first*, then writes the installed snapshot — see the method
  /// comment): the install skips the snapshot write after the WAL reset,
  /// simulating a crash between the two. Recovery must come back to a
  /// consistent pre-install state, never a mix.
  bool testing_skip_snapshot_write_after_install_reset = false;
  RecommenderOptions recommender;
};

class DurableRecommenderStore {
 public:
  explicit DurableRecommenderStore(DurableStoreOptions options = {});
  ~DurableRecommenderStore();

  DurableRecommenderStore(const DurableRecommenderStore&) = delete;
  DurableRecommenderStore& operator=(const DurableRecommenderStore&) = delete;

  struct RecoveryInfo {
    bool loaded_snapshot = false;
    uint64_t snapshot_seq = 0;
    int64_t wal_records_replayed = 0;
    /// Records skipped because the snapshot already contained them (crash
    /// between snapshot write and WAL reset).
    int64_t wal_records_skipped = 0;
    int64_t wal_truncated_bytes = 0;
  };

  /// Recovers state from disk (no-op for an ephemeral store) and opens the
  /// WAL for appending. Corrupt snapshots and unreplayable WAL records are
  /// hard errors — silent partial state is worse than unavailability.
  Status Open() EXCLUDES(mu_);
  /// Snapshot of the last Open()'s recovery outcome (by value: the stored
  /// struct is guarded by the store mutex).
  RecoveryInfo recovery() const EXCLUDES(mu_);

  // ---- Journaled operations (thread-safe) ----

  /// ExtractCandidate + journal + LearnCandidate.
  bool LearnFromAnalysis(const JobAnalysis& analysis) EXCLUDES(mu_);
  bool LearnCandidate(const SteeringRecommender::CandidateObservation& observation)
      EXCLUDES(mu_);
  void ObserveValidation(const RuleSignature& signature, double runtime_change_pct)
      EXCLUDES(mu_);
  void ObserveOutcome(const RuleSignature& signature, double runtime_change_pct)
      EXCLUDES(mu_);
  /// Journals the lookup only when it mutates breaker state (open-breaker
  /// cooldown tick); plain lookups are reads and cost no WAL record.
  SteeringRecommender::Recommendation Recommend(const RuleSignature& signature) EXCLUDES(mu_);

  /// Serving-path Recommend: consults a read-mostly snapshot of the
  /// recommendation table (an immutable view republished after every store
  /// mutation and swapped in with one atomic shared_ptr exchange), so the
  /// overwhelmingly common pure lookups — unknown signatures and closed/
  /// half-open groups — never touch mu_. Lookups that must mutate (an open
  /// breaker's cooldown tick) fall through to the journaled Recommend().
  /// Returns exactly what Recommend(signature) would.
  SteeringRecommender::Recommendation RecommendFast(const RuleSignature& signature);

  /// How many RecommendFast calls were served lock-free from the snapshot
  /// vs. routed to the locked, journaled path.
  int64_t fast_recommends() const { return fast_recommends_.load(std::memory_order_relaxed); }
  int64_t locked_recommends() const {
    return locked_recommends_.load(std::memory_order_relaxed);
  }

  // ---- Replication seam (leader/follower fleet, src/service/replication.h) ----

  /// Pure lookup off the lock-free serving view: succeeds (and fills *out)
  /// for unknown signatures and non-mutating rows; returns false when the
  /// lookup would have to mutate the store (open-breaker cooldown tick) or
  /// the view is unpublished. Followers serve reads through this — a tick
  /// is a mutation and belongs on the leader, where it is journaled and
  /// replicated like any other event.
  bool TryRecommendPure(const RuleSignature& signature,
                        SteeringRecommender::Recommendation* out) const;

  /// Observer called (under the store mutex) with every journaled event,
  /// in exactly journal order — which is application order, because both
  /// happen under the same critical section. The replication layer buffers
  /// these as the WAL tail it ships to followers. Pass nullptr to detach.
  using MutationListener = std::function<void(uint64_t seq, const std::string& payload)>;
  void SetMutationListener(MutationListener listener) EXCLUDES(mu_);

  /// Follower apply path: journals `payload` into this store's own WAL at
  /// the leader's sequence number and applies it. Idempotent — seq <= the
  /// local watermark is skipped (OK) so overlapping tail segments are
  /// harmless; a gap (seq > watermark + 1) is a kFailedPrecondition, the
  /// signal to fall back to a snapshot install.
  Status ApplyReplicated(uint64_t seq, const std::string& payload) EXCLUDES(mu_);

  /// The store serialized exactly as a disk snapshot (state + `# seq N`
  /// watermark line): what the leader ships for a snapshot install.
  std::string SerializeForReplication() const EXCLUDES(mu_);

  /// Replaces this store's entire state with a shipped snapshot (the
  /// payload of SerializeForReplication), adopting its watermark — which
  /// may *rewind* applied_seq: a rejoining ex-leader's unacknowledged
  /// suffix is deliberately discarded. Durability ordering is the inverse
  /// of the periodic snapshot: the WAL is reset FIRST, then the installed
  /// snapshot is written. The local WAL can hold entries the incoming
  /// snapshot does not subsume (the divergent suffix), so snapshot-first
  /// would let a crash in the window replay them on top of the installed
  /// state. Reset-first degrades a crash to "still on the old snapshot,
  /// catch up again" — behind, never wrong.
  Status InstallSnapshot(const std::string& content) EXCLUDES(mu_);

  /// Replicated-apply counters (fleet catch-up accounting).
  int64_t replicated_applied() const EXCLUDES(mu_);
  int64_t replicated_skipped() const EXCLUDES(mu_);
  int64_t snapshot_installs() const EXCLUDES(mu_);

  // ---- Reads (thread-safe snapshots) ----

  std::vector<SteeringRecommender::ValidationRequest> PendingValidations() const
      EXCLUDES(mu_);
  /// Canonical serialized state (the recommender's sorted v2 text): equal
  /// stores yield equal bytes.
  std::string SerializeState() const EXCLUDES(mu_);
  int num_groups() const;
  int num_serving() const;
  int num_pending_validation() const;
  int num_retired() const;
  int num_rollbacks() const;
  int num_open() const;

  /// Sequence number of the last applied event (0 = none yet).
  uint64_t applied_seq() const;
  /// Events journaled since the last snapshot (WAL replay debt on crash).
  int64_t wal_lag() const;
  int64_t snapshots_taken() const;
  bool durable() const { return !options_.dir.empty(); }

  /// Serializes the store to the snapshot file and resets the WAL. Called
  /// automatically every snapshot_interval events and on clean shutdown.
  Status Snapshot() EXCLUDES(mu_);

  std::string snapshot_path() const;
  std::string wal_path() const;

 private:
  /// Immutable serving view: every store group's current recommendation.
  /// Published with an atomic shared_ptr swap (RCU: readers pin the old view
  /// with a refcount; no reader ever blocks a writer or vice versa).
  struct RecommendationView {
    std::unordered_map<RuleSignature, SteeringRecommender::SnapshotEntry, BitVector256Hasher>
        rows;
  };

  Status JournalAndMark(const std::string& payload) REQUIRES(mu_);  // assigns seq, appends
  Status SnapshotLocked() REQUIRES(mu_);
  Status MaybeSnapshotLocked() REQUIRES(mu_);  // interval-triggered, best-effort
  Status ApplyPayload(const std::string& payload) REQUIRES(mu_);  // replay dispatcher
  /// Rebuilds and publishes the serving view after any recommender mutation.
  void PublishViewLocked() REQUIRES(mu_);

  DurableStoreOptions options_;
  mutable Mutex mu_;
  SteeringRecommender recommender_ GUARDED_BY(mu_);
  /// Lock-free serving view (RCU). Published only under mu_ but read without
  /// it: the shared_ptr swap is the release point, and views are immutable.
  std::atomic<std::shared_ptr<const RecommendationView>> view_;
  mutable std::atomic<int64_t> fast_recommends_{0};
  mutable std::atomic<int64_t> locked_recommends_{0};
  /// Journal-then-apply: every append happens under the same critical
  /// section as the recommender mutation it logs, so WAL order is exactly
  /// application order.
  WriteAheadLog wal_ GUARDED_BY(mu_);
  RecoveryInfo recovery_ GUARDED_BY(mu_);
  MutationListener mutation_listener_ GUARDED_BY(mu_);
  uint64_t applied_seq_ GUARDED_BY(mu_) = 0;
  int64_t events_since_snapshot_ GUARDED_BY(mu_) = 0;
  int64_t snapshots_taken_ GUARDED_BY(mu_) = 0;
  int64_t replicated_applied_ GUARDED_BY(mu_) = 0;
  int64_t replicated_skipped_ GUARDED_BY(mu_) = 0;
  int64_t snapshot_installs_ GUARDED_BY(mu_) = 0;
  bool open_ GUARDED_BY(mu_) = false;
};

}  // namespace qsteer

#endif  // QSTEER_SERVICE_DURABLE_STORE_H_
