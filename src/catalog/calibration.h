// Cost-model calibration harness.
//
// Generates deterministic probe queries against a catalog, derives their
// estimated cardinalities under a StatsModel, executes them in the
// simulator for ground truth, and reports:
//   * selectivity q-error percentiles (how wrong the model's distribution
//     beliefs are — the dial the steering dynamics live on), and
//   * fitted cost-model weights (least-squares fit of true runtime against
//     the optimizer's estimated cpu/io/startup components).
//
// Probe generation is a pure function of (seed, catalog, day): every draw
// comes from a Pcg32 keyed on (seed, set, probe ordinal), so shard/parallel
// runs and repeated invocations produce bit-identical reports.
#ifndef QSTEER_CATALOG_CALIBRATION_H_
#define QSTEER_CATALOG_CALIBRATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/stats_model.h"
#include "optimizer/cost_model.h"
#include "plan/job.h"

namespace qsteer {

struct CalibrationOptions {
  uint64_t seed = 0xCA11BULL;
  /// Serve day: probes run on this day; stale models lag behind it.
  int day = 3;
  int probes_per_set = 6;
  /// Cap on probed stream sets (smoke runs probe a handful).
  int max_sets = 24;
};

/// q-error = max(est/true, true/est); 1.0 is a perfect estimate.
double QError(double estimated, double truth, double floor = 1e-12);

struct QErrorSummary {
  int count = 0;
  double p50 = 1.0;
  double p95 = 1.0;
  double max = 1.0;
};

QErrorSummary SummarizeQErrors(std::vector<double> q_errors);

/// One probe query's estimate-vs-truth outcome.
struct ProbeRecord {
  std::string name;
  double estimated_rows = 0.0;
  double true_rows = 0.0;
  /// q-error of the probe's *selectivity* (output/input fraction), which
  /// isolates distribution-modeling error from row-count staleness.
  double selectivity_q_error = 1.0;
};

/// Least-squares fit of true runtime against the optimizer's estimated cost
/// components. Scales plug into CostParams::Calibrated.
struct CostFit {
  double cpu_scale = 1.0;
  double io_scale = 1.0;
  double startup_scale = 1.0;
  /// Mean |predicted - true| / true runtime, before (the optimizer's own
  /// est_cost) and after (the fitted combination).
  double mean_rel_error_before = 0.0;
  double mean_rel_error_after = 0.0;

  CostParams Apply() const { return CostParams::Calibrated(cpu_scale, io_scale, startup_scale); }
};

struct CalibrationReport {
  std::string model_name;
  int day = 0;
  std::vector<ProbeRecord> probes;
  QErrorSummary selectivity_q_error;
  CostFit fit;

  /// Canonical deterministic text form; identical across repeated runs on
  /// the same (seed, catalog, day) — the smoke mode's purity check.
  std::string Serialize() const;
};

/// Runs the full harness for one model. Pure in (options.seed, catalog,
/// options.day); does not mutate or consult the catalog's active model.
CalibrationReport RunCalibration(const Catalog& catalog, const StatsModel& model,
                                 const CalibrationOptions& options = CalibrationOptions());

/// Per-node estimate-vs-truth cardinality q-error of one compiled plan
/// under the catalog's *active* model (p50/p95/max over all plan nodes).
/// Powers the `qsteer analyze` gap summary.
QErrorSummary PlanCardinalityQError(const Catalog& catalog, const Job& job,
                                    const PlanNodePtr& physical_root);

}  // namespace qsteer

#endif  // QSTEER_CATALOG_CALIBRATION_H_
