#include "catalog/stats_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/hash.h"
#include "common/zipf.h"

namespace qsteer {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram Histogram::BuildEquiDepth(int64_t domain, double skew, int num_buckets) {
  Histogram h;
  h.domain_ = std::max<int64_t>(1, domain);
  h.skew_ = std::max(0.0, skew);
  h.top_value_share_ = ZipfPmf(1.0, static_cast<double>(h.domain_), h.skew_);
  int buckets = std::max(1, num_buckets);
  if (static_cast<int64_t>(buckets) > h.domain_) buckets = static_cast<int>(h.domain_);

  double n = static_cast<double>(h.domain_);
  int64_t lo = 1;
  double cdf_before = 0.0;
  for (int b = 0; b < buckets && lo <= h.domain_; ++b) {
    int64_t hi;
    if (b + 1 == buckets) {
      hi = h.domain_;
    } else {
      // Smallest value whose CDF reaches the next equi-depth boundary; never
      // below `lo`, so every bucket holds at least one value.
      double target = static_cast<double>(b + 1) / buckets;
      int64_t search_lo = lo;
      int64_t search_hi = h.domain_;
      while (search_lo < search_hi) {
        int64_t mid = search_lo + (search_hi - search_lo) / 2;
        if (ZipfCdf(static_cast<double>(mid), n, h.skew_) >= target) {
          search_hi = mid;
        } else {
          search_lo = mid + 1;
        }
      }
      hi = search_lo;
    }
    HistogramBucket bucket;
    bucket.lo = lo;
    bucket.hi = hi;
    double cdf_hi = ZipfCdf(static_cast<double>(hi), n, h.skew_);
    bucket.row_fraction = std::max(0.0, cdf_hi - cdf_before);
    bucket.ndv = static_cast<double>(hi - lo + 1);
    h.buckets_.push_back(bucket);
    cdf_before = cdf_hi;
    lo = hi + 1;
  }
  return h;
}

double Histogram::CdfLe(double v) const {
  if (buckets_.empty() || v < 1.0) return 0.0;
  if (v >= static_cast<double>(domain_)) return 1.0;
  double cum = 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (v > static_cast<double>(b.hi)) {
      cum += b.row_fraction;
      continue;
    }
    // Linear interpolation inside the covering bucket: value counts are
    // assumed uniform among the bucket's distinct values.
    double inside = (std::floor(v) - static_cast<double>(b.lo) + 1.0) /
                    static_cast<double>(b.hi - b.lo + 1);
    return std::clamp(cum + b.row_fraction * std::clamp(inside, 0.0, 1.0), 0.0, 1.0);
  }
  return 1.0;
}

double Histogram::EqSelectivity(double v) const {
  if (buckets_.empty() || v < 1.0 || v > static_cast<double>(domain_)) return 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (v > static_cast<double>(b.hi)) continue;
    return b.row_fraction / std::max(1.0, b.ndv);
  }
  return 0.0;
}

std::string Histogram::Serialize() const {
  std::ostringstream out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "qsteer-histogram v1 domain=%lld skew=%.17g top=%.17g n=%d\n",
                static_cast<long long>(domain_), skew_, top_value_share_, num_buckets());
  out << buf;
  // buckets_ is an ordered vector; emission order is construction order.
  for (const HistogramBucket& b : buckets_) {
    std::snprintf(buf, sizeof(buf), "%lld %lld %.17g %.17g\n", static_cast<long long>(b.lo),
                  static_cast<long long>(b.hi), b.row_fraction, b.ndv);
    out << buf;
  }
  return out.str();
}

bool Histogram::Deserialize(std::string_view text, Histogram* out) {
  if (out == nullptr) return false;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line)) return false;
  long long domain = 0;
  double skew = 0.0;
  double top = 0.0;
  int n = 0;
  if (std::sscanf(line.c_str(), "qsteer-histogram v1 domain=%lld skew=%lg top=%lg n=%d", &domain,
                  &skew, &top, &n) != 4) {
    return false;
  }
  if (domain < 1 || n < 0) return false;
  Histogram h;
  h.domain_ = domain;
  h.skew_ = skew;
  h.top_value_share_ = top;
  h.buckets_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!std::getline(in, line)) return false;
    long long lo = 0;
    long long hi = 0;
    HistogramBucket b;
    if (std::sscanf(line.c_str(), "%lld %lld %lg %lg", &lo, &hi, &b.row_fraction, &b.ndv) != 4) {
      return false;
    }
    b.lo = lo;
    b.hi = hi;
    h.buckets_.push_back(b);
  }
  *out = std::move(h);
  return true;
}

// ---------------------------------------------------------------------------
// ScalarStatsModel
// ---------------------------------------------------------------------------

OptimizerStreamStats ScalarStatsModel::StreamStats(const Catalog& catalog, int stream_id,
                                                   int day) const {
  return catalog.GetOptimizerStats(stream_id, day);
}

ColumnSummary ScalarStatsModel::Summarize(const Catalog& catalog, int set_id, int column_index,
                                          int day) const {
  const StreamSet& set = catalog.stream_set(set_id);
  const ColumnDef& def = set.columns[static_cast<size_t>(column_index)];
  ColumnSummary summary;
  // Believed NDV comes from the set's first stream, exactly as the
  // estimator's per-stream cache always served it.
  OptimizerStreamStats stats = StreamStats(catalog, set.stream_ids.front(), day);
  summary.ndv = std::max(1.0, stats.distinct_counts[static_cast<size_t>(column_index)]);
  summary.domain = std::max(1.0, static_cast<double>(def.distinct_count));
  summary.null_fraction = def.null_fraction;
  summary.avg_width = def.avg_width;
  return summary;
}

// ---------------------------------------------------------------------------
// HistogramStatsModel
// ---------------------------------------------------------------------------

OptimizerStreamStats HistogramStatsModel::StreamStats(const Catalog& catalog, int stream_id,
                                                      int day) const {
  // Row-count beliefs stay scalar: histograms refine *distributions*.
  return catalog.GetOptimizerStats(stream_id, day);
}

std::shared_ptr<const Histogram> HistogramStatsModel::ColumnHistogram(const Catalog& catalog,
                                                                      int set_id, int column_index,
                                                                      int day) const {
  int build_day = std::max(0, day - options_.staleness_days);
  uint64_t key = HashCombine(static_cast<uint64_t>(set_id),
                             HashCombine(static_cast<uint64_t>(column_index),
                                         static_cast<uint64_t>(build_day)));
  {
    MutexLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Build outside the lock: construction is pure, so a racing double-build
  // produces identical histograms and the first insert wins.
  int64_t domain = catalog.TrueDistinctCount(set_id, column_index, build_day);
  double skew = catalog.TrueZipfSkew(set_id, column_index, build_day);
  auto built = std::make_shared<const Histogram>(
      Histogram::BuildEquiDepth(domain, skew, options_.num_buckets));
  MutexLock lock(mu_);
  auto [it, inserted] = cache_.emplace(key, std::move(built));
  return it->second;
}

ColumnSummary HistogramStatsModel::Summarize(const Catalog& catalog, int set_id, int column_index,
                                             int day) const {
  const StreamSet& set = catalog.stream_set(set_id);
  const ColumnDef& def = set.columns[static_cast<size_t>(column_index)];
  ColumnSummary summary;
  summary.histogram = ColumnHistogram(catalog, set_id, column_index, day);
  // Histogram-grade NDV/domain are exact as of the build day; staleness is
  // the only error source.
  summary.ndv = static_cast<double>(summary.histogram->domain());
  summary.domain = static_cast<double>(summary.histogram->domain());
  summary.null_fraction = def.null_fraction;
  summary.avg_width = def.avg_width;
  return summary;
}

}  // namespace qsteer
