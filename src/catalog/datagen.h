// Row materialization from the catalog's generative model.
//
// Used by the reference (row-at-a-time) executor in tests to check that
// optimizer transformation rules preserve query results, and that the
// analytic true-cardinality model agrees with actually-counted rows.
// Benchmarks never materialize rows; they use the analytic model.
#ifndef QSTEER_CATALOG_DATAGEN_H_
#define QSTEER_CATALOG_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"

namespace qsteer {

/// Null sentinel in materialized data. All column values are "value ids" in
/// [1, distinct_count]; rank 1 is the most frequent value under skew.
constexpr int64_t kNullValue = INT64_MIN;

/// Small columnar batch: columns[i][r] is row r of the set's i-th column.
struct RowBatch {
  std::vector<std::vector<int64_t>> columns;
  int64_t num_rows() const {
    return columns.empty() ? 0 : static_cast<int64_t>(columns[0].size());
  }
};

/// Materializes up to `max_rows` rows of a stream on the given day, honoring
/// the set's zipf skew, null fractions, and pairwise correlations.
/// Deterministic in (stream, day).
RowBatch MaterializeStream(const Catalog& catalog, int stream_id, int day, int64_t max_rows);

}  // namespace qsteer

#endif  // QSTEER_CATALOG_DATAGEN_H_
