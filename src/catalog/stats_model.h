// Pluggable statistics models: the seam between the catalog's generative
// truth and the optimizer's believed statistics.
//
// A StatsModel answers two questions for the estimator on a given day:
//   * StreamStats — per-stream row count / NDV / width beliefs,
//   * Summarize   — a per-column distribution summary (ColumnSummary).
//
// Two implementations coexist:
//   * ScalarStatsModel    — the original stale scalar beliefs (sampled NDVs,
//     uniformity, stale row counts). Behavior-preserving default: every
//     number it serves is bit-identical to the pre-seam code path.
//   * HistogramStatsModel — equi-depth histograms built analytically from
//     the generative ColumnDef truth on day d-k (the staleness knob k) and
//     served on day d. Accurate but stale: when a column's true domain
//     grows or its skew drifts between build and serve day, the histogram
//     confidently mis-estimates — the "stale histogram cliff".
//
// Histogram construction is a pure function of (catalog, set, column, day):
// no global state, no wall clock, no unseeded randomness — shard/parallel
// runs stay bit-identical.
#ifndef QSTEER_CATALOG_STATS_MODEL_H_
#define QSTEER_CATALOG_STATS_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qsteer {

/// One equi-depth bucket over the integer value domain [lo, hi].
struct HistogramBucket {
  int64_t lo = 1;
  int64_t hi = 1;
  /// Fraction of (non-null) rows whose value falls in [lo, hi].
  double row_fraction = 0.0;
  /// Distinct values inside the bucket (equal-distinct-count bookkeeping).
  double ndv = 1.0;
};

/// Deterministic equi-depth histogram over a Zipf(s) value distribution on
/// ranks [1, domain]. Built analytically by inverting the Zipf CDF — no row
/// materialization — so construction cost is O(buckets * log(domain)) and
/// the result is a pure function of (domain, skew, num_buckets).
class Histogram {
 public:
  Histogram() = default;

  /// Builds `num_buckets` buckets each holding ~1/num_buckets of the row
  /// mass. Buckets never split a value; with heavy skew the first buckets
  /// degenerate to singletons, capturing hot values exactly.
  static Histogram BuildEquiDepth(int64_t domain, double skew, int num_buckets);

  /// P(value <= v) with linear interpolation inside the covering bucket.
  /// Values beyond the histogram's domain saturate at 1 — the histogram has
  /// no evidence mass out there.
  double CdfLe(double v) const;

  /// P(value == v): covering bucket's row_fraction / ndv. Returns 0 for
  /// values outside [1, domain] — a stale histogram is *confidently* wrong
  /// about values born after its build day.
  double EqSelectivity(double v) const;

  /// Mass of the most frequent value (rank 1).
  double TopValueShare() const { return top_value_share_; }

  int64_t domain() const { return domain_; }
  double skew() const { return skew_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

  /// Deterministic text form (round-trips via Deserialize; byte-stable
  /// across platforms for a given build).
  std::string Serialize() const;
  static bool Deserialize(std::string_view text, Histogram* out);

 private:
  int64_t domain_ = 0;
  double skew_ = 0.0;
  double top_value_share_ = 0.0;
  std::vector<HistogramBucket> buckets_;
};

/// Per-column distribution summary as a StatsModel believes it on one day.
struct ColumnSummary {
  double ndv = 1.0;
  double domain = 1.0;
  double null_fraction = 0.0;
  double avg_width = 8.0;
  /// Present only for histogram-grade models; null under scalar beliefs.
  std::shared_ptr<const Histogram> histogram;
};

/// Abstract statistics model serving the optimizer's estimated view.
/// Implementations must be deterministic in (catalog, day) and safe to call
/// from concurrent pipeline workers.
class StatsModel {
 public:
  virtual ~StatsModel() = default;

  virtual const char* name() const = 0;

  /// True for models that attach histograms to ColumnSummary. Gates
  /// histogram-aware selectivity math and histogram-derived features.
  virtual bool histogram_grade() const { return false; }

  /// How many days behind the truth this model's summaries run.
  virtual int staleness_days() const { return 0; }

  /// Per-stream beliefs (row count, per-column NDVs, width) on `day`.
  virtual OptimizerStreamStats StreamStats(const Catalog& catalog, int stream_id,
                                           int day) const = 0;

  /// Per-column distribution summary on `day`.
  virtual ColumnSummary Summarize(const Catalog& catalog, int set_id, int column_index,
                                  int day) const = 0;
};

/// The original scalar stale-stats beliefs, now behind the seam. Serves
/// exactly the numbers Catalog::GetOptimizerStats always produced.
class ScalarStatsModel : public StatsModel {
 public:
  const char* name() const override { return "scalar"; }

  OptimizerStreamStats StreamStats(const Catalog& catalog, int stream_id,
                                   int day) const override;

  ColumnSummary Summarize(const Catalog& catalog, int set_id, int column_index,
                          int day) const override;
};

/// Histogram-grade beliefs: per-column equi-depth histograms built from the
/// generative truth as of day max(0, d - staleness_days) and served on day
/// d. Row-count beliefs stay scalar (histograms describe distributions, not
/// stream volumes), so switching models never perturbs input-size features.
class HistogramStatsModel : public StatsModel {
 public:
  struct Options {
    int num_buckets = 32;
    /// The staleness knob: histograms are built on day d-k, served on day d.
    int staleness_days = 3;
  };

  HistogramStatsModel() = default;
  explicit HistogramStatsModel(Options options) : options_(options) {}

  const char* name() const override { return "histogram"; }
  bool histogram_grade() const override { return true; }
  int staleness_days() const override { return options_.staleness_days; }
  const Options& options() const { return options_; }

  OptimizerStreamStats StreamStats(const Catalog& catalog, int stream_id,
                                   int day) const override;

  ColumnSummary Summarize(const Catalog& catalog, int set_id, int column_index,
                          int day) const override;

  /// The histogram served for (set, column) on `day` — built from the truth
  /// at day - staleness_days. Cached; pure in (catalog, day).
  std::shared_ptr<const Histogram> ColumnHistogram(const Catalog& catalog, int set_id,
                                                   int column_index, int day) const;

 private:
  Options options_;
  // Built histograms are immutable and keyed by (set, column, build day);
  // concurrent pipeline workers share one model instance.
  mutable Mutex mu_;
  mutable std::map<uint64_t, std::shared_ptr<const Histogram>> cache_ GUARDED_BY(mu_);
};

}  // namespace qsteer

#endif  // QSTEER_CATALOG_STATS_MODEL_H_
