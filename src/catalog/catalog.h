// Catalog of stream sets (logical tables) and streams (physical inputs).
//
// SCOPE jobs read *streams*: daily-partitioned physical inputs that share a
// logical schema (a "stream set"). Recurring jobs are the same script run
// over new streams every day (paper §3.1.1). The catalog therefore models:
//
//   StreamSet  — a logical schema + *true* generative statistics (skew,
//                pairwise correlations, per-day growth),
//   Stream     — one physical input of a set (a day/shard), with a true row
//                count per day.
//
// Crucially the catalog serves two views of statistics:
//   * TrueStats      — the generative ground truth, used by the execution
//                      simulator to compute actual cardinalities;
//   * OptimizerStats — the stale, simplified view (uniformity, independence,
//                      sampled NDVs, stale row counts) used by the
//                      optimizer's cardinality estimator.
// The gap between the two is the paper's reason alternative rule
// configurations can beat the default plan.
#ifndef QSTEER_CATALOG_CATALOG_H_
#define QSTEER_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace qsteer {

class StatsModel;

enum class ColumnType { kInt64, kDouble, kString };

/// True generative description of one column of a stream set.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// True number of distinct values.
  int64_t distinct_count = 1000;
  /// Zipf exponent of the value-frequency distribution; 0 = uniform.
  double zipf_skew = 0.0;
  double null_fraction = 0.0;
  /// Average width in bytes (for IO estimates).
  double avg_width = 8.0;
  /// Per-day fractional growth of the true value domain: on day d the column
  /// really holds distinct_count * (1 + domain_growth)^d values. New values
  /// are invisible to statistics built before they were born (the
  /// stale-histogram cliff). 0 = static domain.
  double domain_growth = 0.0;
  /// Per-day additive drift of the true Zipf exponent (hot keys get hotter
  /// over time). 0 = stationary skew.
  double skew_drift = 0.0;
};

/// True pairwise correlation between two columns of the same set.
/// strength in [0, 1]: 0 = independent, 1 = functionally determined.
struct CorrelationSpec {
  int column_a = 0;
  int column_b = 0;
  double strength = 0.0;
};

/// One physical input (a day or shard of a stream set).
struct Stream {
  std::string name;
  int stream_set_id = 0;
  int variant_index = 0;
  /// True row count on day 0; actual rows on day d are
  /// base_rows * (1 + daily_growth)^d with deterministic jitter.
  int64_t base_rows = 0;
  int partition_count = 8;
  uint64_t InputHash() const;
};

/// A logical table: schema + true statistics shared by all its streams.
struct StreamSet {
  std::string name;
  int id = 0;
  std::vector<ColumnDef> columns;
  std::vector<CorrelationSpec> correlations;
  /// Daily fractional growth of all member streams.
  double daily_growth = 0.0;
  /// Indices into Catalog::streams() of the member streams.
  std::vector<int> stream_ids;

  /// True correlation strength between two columns (0 when unspecified).
  double CorrelationBetween(int col_a, int col_b) const;
};

/// Optimizer-visible statistics of one stream on one day: stale and
/// simplified relative to the generative truth.
struct OptimizerStreamStats {
  int64_t row_count = 0;
  /// Per-column NDV as the optimizer believes it (sampling error applied).
  std::vector<double> distinct_counts;
  double avg_row_width = 0.0;
};

/// Knobs controlling how wrong the optimizer-visible statistics are.
struct StatsErrorModel {
  /// Optimizer row counts lag the truth by this many days of growth.
  int staleness_days = 3;
  /// Log-space sigma of the per-column NDV sampling error.
  double ndv_error_sigma = 0.6;
  /// Log-space sigma of an additional per-stream row-count error.
  double rowcount_error_sigma = 0.15;
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a stream set; returns its id.
  int AddStreamSet(StreamSet set);

  /// Registers a stream under an existing set; returns its id.
  Result<int> AddStream(int stream_set_id, const std::string& name, int64_t base_rows,
                        int partition_count);

  const StreamSet& stream_set(int id) const { return *sets_[static_cast<size_t>(id)]; }
  const Stream& stream(int id) const { return streams_[static_cast<size_t>(id)]; }
  int num_stream_sets() const { return static_cast<int>(sets_.size()); }
  int num_streams() const { return static_cast<int>(streams_.size()); }

  const StreamSet* FindStreamSet(const std::string& name) const;
  const Stream* FindStream(const std::string& name) const;

  /// True row count of a stream on the given day (deterministic).
  int64_t TrueRowCount(int stream_id, int day) const;

  /// True distinct-value count of a set's column on the given day
  /// (distinct_count grown by ColumnDef::domain_growth).
  int64_t TrueDistinctCount(int stream_set_id, int column_index, int day) const;

  /// True Zipf exponent of a set's column on the given day
  /// (zipf_skew shifted by ColumnDef::skew_drift, floored at 0).
  double TrueZipfSkew(int stream_set_id, int column_index, int day) const;

  /// The stale, error-injected statistics the optimizer sees for a stream on
  /// the given day. Deterministic in (stream, day).
  OptimizerStreamStats GetOptimizerStats(int stream_id, int day) const;

  /// True average row width of a set's schema, bytes.
  double TrueRowWidth(int stream_set_id) const;

  void set_stats_error_model(const StatsErrorModel& model) { stats_error_ = model; }
  const StatsErrorModel& stats_error_model() const { return stats_error_; }

  /// The statistics model serving the optimizer's estimated view. Defaults
  /// to the scalar stale-stats model; never null.
  const StatsModel& stats_model() const;
  void set_stats_model(std::shared_ptr<const StatsModel> model) {
    stats_model_ = std::move(model);
  }

 private:
  std::vector<std::unique_ptr<StreamSet>> sets_;
  std::vector<Stream> streams_;
  std::map<std::string, int> set_by_name_;
  std::map<std::string, int> stream_by_name_;
  StatsErrorModel stats_error_;
  std::shared_ptr<const StatsModel> stats_model_;
};

}  // namespace qsteer

#endif  // QSTEER_CATALOG_CATALOG_H_
