#include "catalog/catalog.h"

#include <cmath>

#include "catalog/stats_model.h"
#include "common/hash.h"

namespace qsteer {

uint64_t Stream::InputHash() const { return HashString(name); }

double StreamSet::CorrelationBetween(int col_a, int col_b) const {
  for (const CorrelationSpec& c : correlations) {
    if ((c.column_a == col_a && c.column_b == col_b) ||
        (c.column_a == col_b && c.column_b == col_a)) {
      return c.strength;
    }
  }
  return 0.0;
}

int Catalog::AddStreamSet(StreamSet set) {
  int id = static_cast<int>(sets_.size());
  set.id = id;
  set_by_name_[set.name] = id;
  sets_.push_back(std::make_unique<StreamSet>(std::move(set)));
  return id;
}

Result<int> Catalog::AddStream(int stream_set_id, const std::string& name, int64_t base_rows,
                               int partition_count) {
  if (stream_set_id < 0 || stream_set_id >= num_stream_sets()) {
    return Status::InvalidArgument("unknown stream set id");
  }
  if (stream_by_name_.count(name) != 0) {
    return Status::InvalidArgument("duplicate stream name: " + name);
  }
  Stream s;
  s.name = name;
  s.stream_set_id = stream_set_id;
  s.variant_index = static_cast<int>(sets_[static_cast<size_t>(stream_set_id)]->stream_ids.size());
  s.base_rows = base_rows;
  s.partition_count = partition_count;
  int id = static_cast<int>(streams_.size());
  streams_.push_back(s);
  sets_[static_cast<size_t>(stream_set_id)]->stream_ids.push_back(id);
  stream_by_name_[name] = id;
  return id;
}

const StreamSet* Catalog::FindStreamSet(const std::string& name) const {
  auto it = set_by_name_.find(name);
  if (it == set_by_name_.end()) return nullptr;
  return sets_[static_cast<size_t>(it->second)].get();
}

const Stream* Catalog::FindStream(const std::string& name) const {
  auto it = stream_by_name_.find(name);
  if (it == stream_by_name_.end()) return nullptr;
  return &streams_[static_cast<size_t>(it->second)];
}

int64_t Catalog::TrueRowCount(int stream_id, int day) const {
  const Stream& s = streams_[static_cast<size_t>(stream_id)];
  const StreamSet& set = *sets_[static_cast<size_t>(s.stream_set_id)];
  double rows = static_cast<double>(s.base_rows) * std::pow(1.0 + set.daily_growth, day);
  // Deterministic per-(stream, day) jitter so daily inputs genuinely differ.
  Pcg32 rng(HashCombine(HashString(s.name), static_cast<uint64_t>(day)), /*stream=*/17);
  rows *= std::exp(0.08 * rng.NextGaussian());
  return std::max<int64_t>(1, static_cast<int64_t>(rows));
}

int64_t Catalog::TrueDistinctCount(int stream_set_id, int column_index, int day) const {
  const StreamSet& set = *sets_[static_cast<size_t>(stream_set_id)];
  const ColumnDef& col = set.columns[static_cast<size_t>(column_index)];
  if (col.domain_growth <= 0.0 || day <= 0) return col.distinct_count;
  double grown = static_cast<double>(col.distinct_count) * std::pow(1.0 + col.domain_growth, day);
  return std::max<int64_t>(1, static_cast<int64_t>(grown));
}

double Catalog::TrueZipfSkew(int stream_set_id, int column_index, int day) const {
  const StreamSet& set = *sets_[static_cast<size_t>(stream_set_id)];
  const ColumnDef& col = set.columns[static_cast<size_t>(column_index)];
  if (col.skew_drift == 0.0 || day <= 0) return col.zipf_skew;
  return std::max(0.0, col.zipf_skew + col.skew_drift * day);
}

const StatsModel& Catalog::stats_model() const {
  static const ScalarStatsModel kScalar;
  return stats_model_ != nullptr ? *stats_model_ : kScalar;
}

OptimizerStreamStats Catalog::GetOptimizerStats(int stream_id, int day) const {
  const Stream& s = streams_[static_cast<size_t>(stream_id)];
  const StreamSet& set = *sets_[static_cast<size_t>(s.stream_set_id)];
  OptimizerStreamStats stats;
  // The optimizer's row count is the truth as of `staleness_days` ago, with
  // an extra deterministic sampling error on top.
  int stale_day = std::max(0, day - stats_error_.staleness_days);
  double rows = static_cast<double>(TrueRowCount(stream_id, stale_day));
  Pcg32 rng(HashCombine(HashString(s.name), 0x5eedULL), /*stream=*/23);
  rows *= std::exp(stats_error_.rowcount_error_sigma * rng.NextGaussian());
  stats.row_count = std::max<int64_t>(1, static_cast<int64_t>(rows));

  stats.distinct_counts.reserve(set.columns.size());
  double width = 0.0;
  for (const ColumnDef& col : set.columns) {
    double ndv = static_cast<double>(col.distinct_count);
    // Per-column NDV sampling error, deterministic in (stream set, column).
    Pcg32 col_rng(HashCombine(HashString(set.name), HashString(col.name)), /*stream=*/31);
    ndv *= std::exp(stats_error_.ndv_error_sigma * col_rng.NextGaussian());
    ndv = std::min(ndv, static_cast<double>(stats.row_count));
    stats.distinct_counts.push_back(std::max(1.0, ndv));
    width += col.avg_width;
  }
  stats.avg_row_width = width;
  return stats;
}

double Catalog::TrueRowWidth(int stream_set_id) const {
  const StreamSet& set = *sets_[static_cast<size_t>(stream_set_id)];
  double width = 0.0;
  for (const ColumnDef& col : set.columns) width += col.avg_width;
  return width;
}

}  // namespace qsteer
