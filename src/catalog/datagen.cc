#include "catalog/datagen.h"

#include <algorithm>

#include "common/hash.h"

namespace qsteer {

namespace {

// Maps a correlated driver value to the dependent column's domain.
int64_t DerivedValue(int64_t driver_value, int64_t target_ndv) {
  if (target_ndv <= 0) return 1;
  return 1 + static_cast<int64_t>(Mix64(static_cast<uint64_t>(driver_value) * 0x9e3779b9ULL) %
                                  static_cast<uint64_t>(target_ndv));
}

}  // namespace

RowBatch MaterializeStream(const Catalog& catalog, int stream_id, int day, int64_t max_rows) {
  const Stream& stream = catalog.stream(stream_id);
  const StreamSet& set = catalog.stream_set(stream.stream_set_id);
  int64_t rows = std::min(max_rows, catalog.TrueRowCount(stream_id, day));
  rows = std::max<int64_t>(0, rows);

  RowBatch batch;
  batch.columns.assign(set.columns.size(), {});
  for (auto& col : batch.columns) col.reserve(static_cast<size_t>(rows));

  Pcg32 rng(HashCombine(HashString(stream.name), static_cast<uint64_t>(day) * 977),
            /*stream=*/41);

  // Per-column samplers over the *day's* true domain and skew (domain growth
  // and skew drift are part of the generative truth). Zipf skew 0
  // degenerates to uniform via UniformInt.
  std::vector<int64_t> true_ndv(set.columns.size(), 1);
  std::vector<std::unique_ptr<ZipfSampler>> samplers(set.columns.size());
  for (size_t c = 0; c < set.columns.size(); ++c) {
    true_ndv[c] = catalog.TrueDistinctCount(stream.stream_set_id, static_cast<int>(c), day);
    double skew = catalog.TrueZipfSkew(stream.stream_set_id, static_cast<int>(c), day);
    if (skew > 0.0) {
      samplers[c] = std::make_unique<ZipfSampler>(
          static_cast<int>(std::min<int64_t>(true_ndv[c], 2'000'000)), skew);
    }
  }

  // For each column, the strongest correlation in which it is the dependent
  // (second) member; generation makes column_b a deterministic function of
  // column_a with probability `strength`.
  std::vector<const CorrelationSpec*> driver_of(set.columns.size(), nullptr);
  for (const CorrelationSpec& corr : set.correlations) {
    size_t dep = static_cast<size_t>(corr.column_b);
    if (dep < driver_of.size() &&
        (driver_of[dep] == nullptr || corr.strength > driver_of[dep]->strength)) {
      driver_of[dep] = &corr;
    }
  }

  std::vector<int64_t> row(set.columns.size(), 0);
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < set.columns.size(); ++c) {
      const ColumnDef& def = set.columns[c];
      if (def.null_fraction > 0.0 && rng.NextBool(def.null_fraction)) {
        row[c] = kNullValue;
        continue;
      }
      const CorrelationSpec* corr = driver_of[c];
      if (corr != nullptr && static_cast<size_t>(corr->column_a) < c &&
          row[static_cast<size_t>(corr->column_a)] != kNullValue &&
          rng.NextBool(corr->strength)) {
        row[c] = DerivedValue(row[static_cast<size_t>(corr->column_a)], true_ndv[c]);
        continue;
      }
      if (samplers[c] != nullptr) {
        row[c] = samplers[c]->Sample(&rng);
      } else {
        row[c] = rng.UniformInt(1, std::max<int64_t>(1, true_ndv[c]));
      }
    }
    for (size_t c = 0; c < set.columns.size(); ++c) {
      batch.columns[c].push_back(row[c]);
    }
  }
  return batch;
}

}  // namespace qsteer
