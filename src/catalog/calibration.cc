#include "catalog/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/random.h"
#include "common/stats.h"
#include "exec/simulator.h"
#include "optimizer/optimizer.h"
#include "optimizer/stats.h"
#include "plan/expr.h"

namespace qsteer {

double QError(double estimated, double truth, double floor) {
  double e = std::max(estimated, floor);
  double t = std::max(truth, floor);
  return std::max(e / t, t / e);
}

QErrorSummary SummarizeQErrors(std::vector<double> q_errors) {
  QErrorSummary summary;
  summary.count = static_cast<int>(q_errors.size());
  if (q_errors.empty()) return summary;
  summary.max = *std::max_element(q_errors.begin(), q_errors.end());
  summary.p50 = Percentile(q_errors, 50.0);
  summary.p95 = Percentile(std::move(q_errors), 95.0);
  return summary;
}

namespace {

/// Stats of every node of a plan (logical or physical), derived bottom-up
/// under one view. Shared fragments are derived once.
void DeriveAllStats(const PlanNodePtr& root, const StatsView& view,
                    std::unordered_map<const PlanNode*, LogicalStats>* memo) {
  std::function<const LogicalStats&(const PlanNode*)> derive =
      [&](const PlanNode* node) -> const LogicalStats& {
    auto it = memo->find(node);
    if (it != memo->end()) return it->second;
    std::vector<const LogicalStats*> child_stats;
    child_stats.reserve(node->children.size());
    for (const PlanNodePtr& child : node->children) child_stats.push_back(&derive(child.get()));
    return memo->emplace(node, DeriveStats(node->op, child_stats, view)).first->second;
  };
  derive(root.get());
}

/// One deterministic probe: Output(Select(Get)) over one stream of one set,
/// with a comparison predicate whose literal is drawn from the *current*
/// true domain — so growing domains genuinely probe beyond stale summaries.
struct Probe {
  Job job;
  const PlanNode* get_node = nullptr;
  const PlanNode* select_node = nullptr;
};

Probe MakeProbe(const Catalog& catalog, int set_id, int probe_index, int day, uint64_t seed) {
  const StreamSet& set = catalog.stream_set(set_id);
  Probe probe;
  auto universe = std::make_shared<ColumnUniverse>();
  std::vector<ColumnId> cols;
  cols.reserve(set.columns.size());
  for (size_t c = 0; c < set.columns.size(); ++c) {
    cols.push_back(universe->GetOrAddBaseColumn(set_id, static_cast<int>(c), set.columns[c].name));
  }

  Pcg32 rng(HashCombine(seed, HashCombine(static_cast<uint64_t>(set_id),
                                          static_cast<uint64_t>(probe_index))),
            /*stream=*/43);
  int col_index = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(cols.size()) - 1));
  int64_t domain = std::max<int64_t>(1, catalog.TrueDistinctCount(set_id, col_index, day));

  ExprPtr predicate;
  switch (probe_index % 3) {
    case 0: {
      // Hot-value equality: under skew these values carry most of the mass.
      int64_t v = rng.UniformInt(1, std::min<int64_t>(10, domain));
      predicate = Expr::Cmp(cols[static_cast<size_t>(col_index)], CmpOp::kEq, v);
      break;
    }
    case 1: {
      // Range probe at a random point of the current domain.
      int64_t v = rng.UniformInt(1, domain);
      predicate = Expr::Cmp(cols[static_cast<size_t>(col_index)], CmpOp::kLe, v);
      break;
    }
    default: {
      // Equality anywhere in the current domain — may land on values born
      // after a stale summary's build day.
      int64_t v = rng.UniformInt(1, domain);
      predicate = Expr::Cmp(cols[static_cast<size_t>(col_index)], CmpOp::kEq, v);
      break;
    }
  }

  Operator get;
  get.kind = OpKind::kGet;
  get.stream_id = set.stream_ids[static_cast<size_t>(probe_index) % set.stream_ids.size()];
  get.stream_set_id = set_id;
  get.scan_columns = cols;
  PlanNodePtr get_plan = PlanNode::Make(std::move(get));

  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = std::move(predicate);
  PlanNodePtr select_plan = PlanNode::Make(std::move(select), {get_plan});

  Operator output;
  output.kind = OpKind::kOutput;
  PlanNodePtr root = PlanNode::Make(std::move(output), {select_plan});

  probe.get_node = get_plan.get();
  probe.select_node = select_plan.get();
  probe.job.name = "probe_" + set.name + "_" + std::to_string(probe_index);
  probe.job.day = day;
  probe.job.columns = std::move(universe);
  probe.job.root = std::move(root);
  return probe;
}

/// Estimated cost components of a compiled plan under one model's beliefs:
/// total compute seconds, total IO seconds, and the physical operator count
/// (the startup/coordination proxy).
struct EstCostComponents {
  double cpu = 0.0;
  double io = 0.0;
  double ops = 0.0;
};

EstCostComponents EstimateComponents(const PlanNodePtr& root, const StatsView& view,
                                     const CostParams& params) {
  EstCostComponents out;
  std::unordered_map<const PlanNode*, LogicalStats> memo;
  DeriveAllStats(root, view, &memo);
  std::function<void(const PlanNode*, std::unordered_map<const PlanNode*, bool>*)> walk =
      [&](const PlanNode* node, std::unordered_map<const PlanNode*, bool>* seen) {
        if ((*seen)[node]) return;
        (*seen)[node] = true;
        std::vector<const LogicalStats*> child_stats;
        child_stats.reserve(node->children.size());
        for (const PlanNodePtr& child : node->children) {
          walk(child.get(), seen);
          child_stats.push_back(&memo.at(child.get()));
        }
        OpCost cost = ComputeOpCost(node->op, memo.at(node), child_stats,
                                    std::max(1, node->op.dop), params, view);
        out.cpu += cost.cpu;
        out.io += cost.io;
        out.ops += 1.0;
      };
  std::unordered_map<const PlanNode*, bool> seen;
  walk(root.get(), &seen);
  return out;
}

/// Solves the 3x3 normal equations A w = b by Gaussian elimination.
/// Returns false when A is (near-)singular.
bool Solve3x3(double a[3][3], double b[3], double w[3]) {
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[pivot]][col])) pivot = r;
    }
    std::swap(perm[col], perm[pivot]);
    double lead = a[perm[col]][col];
    if (std::abs(lead) < 1e-12) return false;
    for (int r = col + 1; r < 3; ++r) {
      double f = a[perm[r]][col] / lead;
      for (int c = col; c < 3; ++c) a[perm[r]][c] -= f * a[perm[col]][c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (int col = 2; col >= 0; --col) {
    double sum = b[perm[col]];
    for (int c = col + 1; c < 3; ++c) sum -= a[perm[col]][c] * w[c];
    w[col] = sum / a[perm[col]][col];
  }
  return true;
}

}  // namespace

CalibrationReport RunCalibration(const Catalog& catalog, const StatsModel& model,
                                 const CalibrationOptions& options) {
  CalibrationReport report;
  report.model_name = model.name();
  report.day = options.day;

  Optimizer optimizer(&catalog);
  SimulatorOptions sim_options;
  sim_options.deterministic = true;
  ExecutionSimulator simulator(&catalog, sim_options);
  const CostParams beliefs = CostParams::OptimizerBeliefs();

  std::vector<double> q_errors;
  // Regression samples: true runtime against estimated (cpu, io, op-count).
  std::vector<EstCostComponents> xs;
  std::vector<double> runtimes;
  std::vector<double> est_costs;

  int sets = std::min(catalog.num_stream_sets(), options.max_sets);
  for (int set_id = 0; set_id < sets; ++set_id) {
    const StreamSet& set = catalog.stream_set(set_id);
    if (set.stream_ids.empty() || set.columns.empty()) continue;
    for (int p = 0; p < options.probes_per_set; ++p) {
      Probe probe = MakeProbe(catalog, set_id, p, options.day, options.seed);

      EstimatedStatsView est(&catalog, probe.job.columns.get(), probe.job.day, &model);
      TrueStatsView truth(&catalog, &probe.job);
      std::unordered_map<const PlanNode*, LogicalStats> est_memo;
      std::unordered_map<const PlanNode*, LogicalStats> true_memo;
      DeriveAllStats(probe.job.root, est, &est_memo);
      DeriveAllStats(probe.job.root, truth, &true_memo);

      ProbeRecord record;
      record.name = probe.job.name;
      record.estimated_rows = est_memo.at(probe.select_node).rows;
      record.true_rows = true_memo.at(probe.select_node).rows;
      double est_sel = record.estimated_rows / std::max(1.0, est_memo.at(probe.get_node).rows);
      double true_sel = record.true_rows / std::max(1.0, true_memo.at(probe.get_node).rows);
      record.selectivity_q_error = QError(est_sel, true_sel);
      q_errors.push_back(record.selectivity_q_error);
      report.probes.push_back(std::move(record));

      // Cost-fit sample: compile the probe and execute the physical plan.
      Result<CompiledPlan> compiled = optimizer.Compile(probe.job, RuleConfig::Default());
      if (!compiled.ok()) continue;
      ExecMetrics metrics = simulator.Execute(probe.job, compiled.value().root);
      if (metrics.failed || metrics.runtime <= 0.0) continue;
      xs.push_back(EstimateComponents(compiled.value().root, est, beliefs));
      runtimes.push_back(metrics.runtime);
      est_costs.push_back(compiled.value().est_cost);
    }
  }
  report.selectivity_q_error = SummarizeQErrors(q_errors);

  // Least-squares fit: runtime ~ w0*cpu + w1*io + w2*ops.
  if (!runtimes.empty()) {
    double a[3][3] = {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
    double b[3] = {0.0, 0.0, 0.0};
    for (size_t i = 0; i < runtimes.size(); ++i) {
      double x[3] = {xs[i].cpu, xs[i].io, xs[i].ops};
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) a[r][c] += x[r] * x[c];
        b[r] += x[r] * runtimes[i];
      }
    }
    double w[3] = {1.0, 1.0, 1.0};
    if (Solve3x3(a, b, w)) {
      report.fit.cpu_scale = std::max(0.0, w[0]);
      report.fit.io_scale = std::max(0.0, w[1]);
      // The per-operator fixed cost maps onto the startup knob relative to
      // the optimizer's believed stage-launch latency.
      report.fit.startup_scale = std::max(0.0, w[2] / std::max(1e-9, beliefs.vertex_startup));
    }
    double before = 0.0;
    double after = 0.0;
    for (size_t i = 0; i < runtimes.size(); ++i) {
      double predicted = report.fit.cpu_scale * xs[i].cpu + report.fit.io_scale * xs[i].io +
                         report.fit.startup_scale * beliefs.vertex_startup * xs[i].ops;
      before += std::abs(est_costs[i] - runtimes[i]) / runtimes[i];
      after += std::abs(predicted - runtimes[i]) / runtimes[i];
    }
    report.fit.mean_rel_error_before = before / static_cast<double>(runtimes.size());
    report.fit.mean_rel_error_after = after / static_cast<double>(runtimes.size());
  }
  return report;
}

std::string CalibrationReport::Serialize() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "calibration v1 model=%s day=%d probes=%d\n",
                model_name.c_str(), day, static_cast<int>(probes.size()));
  out << buf;
  // `probes` is an ordered vector; emission order is probe-generation order.
  for (const ProbeRecord& p : probes) {
    // qsteer-lint: allow(serialization-contract) human-readable report, never parsed back
    std::snprintf(buf, sizeof(buf), "probe %s est=%.6g true=%.6g q=%.6g\n", p.name.c_str(),
                  p.estimated_rows, p.true_rows, p.selectivity_q_error);
    out << buf;
  }
  // qsteer-lint: allow(serialization-contract) human-readable report, never parsed back
  std::snprintf(buf, sizeof(buf), "selectivity_q count=%d p50=%.6g p95=%.6g max=%.6g\n",
                selectivity_q_error.count, selectivity_q_error.p50, selectivity_q_error.p95,
                selectivity_q_error.max);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                // qsteer-lint: allow(serialization-contract) human-readable report, never parsed back
                "fit cpu=%.6g io=%.6g startup=%.6g err_before=%.6g err_after=%.6g\n",
                fit.cpu_scale, fit.io_scale, fit.startup_scale, fit.mean_rel_error_before,
                fit.mean_rel_error_after);
  out << buf;
  return out.str();
}

QErrorSummary PlanCardinalityQError(const Catalog& catalog, const Job& job,
                                    const PlanNodePtr& physical_root) {
  QErrorSummary summary;
  if (physical_root == nullptr) return summary;
  EstimatedStatsView est(&catalog, job.columns.get(), job.day);
  TrueStatsView truth(&catalog, &job);
  std::unordered_map<const PlanNode*, LogicalStats> est_memo;
  std::unordered_map<const PlanNode*, LogicalStats> true_memo;
  DeriveAllStats(physical_root, est, &est_memo);
  DeriveAllStats(physical_root, truth, &true_memo);
  std::vector<double> q_errors;
  q_errors.reserve(est_memo.size());
  // Collect in deterministic plan order (VisitPlan, not map order).
  VisitPlan(physical_root, [&](const PlanNode& node) {
    q_errors.push_back(
        QError(std::max(1.0, est_memo.at(&node).rows), std::max(1.0, true_memo.at(&node).rows),
               /*floor=*/1.0));
  });
  return SummarizeQErrors(std::move(q_errors));
}

}  // namespace qsteer
