#include "core/hints.h"

#include <cctype>

#include "optimizer/rule_registry.h"

namespace qsteer {

namespace {

void SkipSpace(const std::string& text, size_t* pos) {
  while (*pos < text.size() && std::isspace(static_cast<unsigned char>(text[*pos]))) ++*pos;
}

bool ConsumeKeyword(const std::string& text, size_t* pos, const std::string& keyword) {
  SkipSpace(text, pos);
  if (text.compare(*pos, keyword.size(), keyword) != 0) return false;
  *pos += keyword.size();
  return true;
}

bool ConsumeChar(const std::string& text, size_t* pos, char c) {
  SkipSpace(text, pos);
  if (*pos >= text.size() || text[*pos] != c) return false;
  ++*pos;
  return true;
}

std::string ReadName(const std::string& text, size_t* pos) {
  SkipSpace(text, pos);
  size_t start = *pos;
  while (*pos < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[*pos])) || text[*pos] == '_')) {
    ++*pos;
  }
  return text.substr(start, *pos - start);
}

}  // namespace

Result<RuleConfig> ParseHintString(const std::string& text) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  RuleConfig config = RuleConfig::Default();
  size_t pos = 0;
  SkipSpace(text, &pos);
  while (pos < text.size()) {
    bool enable;
    if (ConsumeKeyword(text, &pos, "ENABLE")) {
      enable = true;
    } else if (ConsumeKeyword(text, &pos, "DISABLE")) {
      enable = false;
    } else {
      return Status::InvalidArgument("expected ENABLE or DISABLE at position " +
                                     std::to_string(pos));
    }
    if (!ConsumeChar(text, &pos, '(')) {
      return Status::InvalidArgument("expected '(' after clause keyword");
    }
    for (;;) {
      std::string name = ReadName(text, &pos);
      if (name.empty()) return Status::InvalidArgument("expected rule name");
      RuleId id = registry.FindByName(name);
      if (id < 0) return Status::InvalidArgument("unknown rule: " + name);
      if (enable) {
        config.Enable(id);
      } else {
        if (CategoryOfRule(id) == RuleCategory::kRequired) {
          return Status::InvalidArgument("cannot disable required rule: " + name);
        }
        config.Disable(id);
      }
      if (ConsumeChar(text, &pos, ',')) continue;
      break;
    }
    if (!ConsumeChar(text, &pos, ')')) {
      return Status::InvalidArgument("expected ')' closing clause");
    }
    SkipSpace(text, &pos);
    if (pos < text.size()) {
      if (!ConsumeChar(text, &pos, ';')) {
        return Status::InvalidArgument("expected ';' between clauses");
      }
      SkipSpace(text, &pos);
    }
  }
  return config;
}

std::string ToHintString(const RuleConfig& config) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  RuleConfig def = RuleConfig::Default();
  std::string enables, disables;
  for (RuleId id = 0; id < kNumRules; ++id) {
    if (config.IsEnabled(id) == def.IsEnabled(id)) continue;
    std::string& target = config.IsEnabled(id) ? enables : disables;
    if (!target.empty()) target += ",";
    target += registry.name(id);
  }
  std::string out;
  if (!enables.empty()) out += "ENABLE(" + enables + ")";
  if (!disables.empty()) {
    if (!out.empty()) out += ";";
    out += "DISABLE(" + disables + ")";
  }
  return out;
}

}  // namespace qsteer
