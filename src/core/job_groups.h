// Rule-signature job groups (paper Definition 6.2): jobs whose default rule
// signature maps to the same bit vector. The signature is the granularity at
// which discovered configurations are extrapolated to unseen jobs (§6.4) —
// it is coarser than templates (tens of thousands) yet captures "which code
// path the job takes inside the optimizer".
#ifndef QSTEER_CORE_JOB_GROUPS_H_
#define QSTEER_CORE_JOB_GROUPS_H_

#include <unordered_map>
#include <vector>

#include "optimizer/rule_config.h"

namespace qsteer {

class JobGroupIndex {
 public:
  /// Registers a job's default signature; returns its group index (groups
  /// are numbered in first-seen order).
  int Add(const RuleSignature& default_signature);

  /// Group index for a signature, or -1 when unseen.
  int Find(const RuleSignature& default_signature) const;

  int num_groups() const { return static_cast<int>(signatures_.size()); }
  int num_jobs() const { return total_jobs_; }

  const RuleSignature& signature(int group) const {
    return signatures_[static_cast<size_t>(group)];
  }
  int group_size(int group) const { return sizes_[static_cast<size_t>(group)]; }

  /// Group sizes in descending order (paper Fig. 2d's distribution).
  std::vector<int> SizesDescending() const;

 private:
  std::unordered_map<RuleSignature, int, BitVector256Hasher> index_;
  std::vector<RuleSignature> signatures_;
  std::vector<int> sizes_;
  int total_jobs_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_CORE_JOB_GROUPS_H_
