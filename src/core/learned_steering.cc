#include "core/learned_steering.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/stats.h"

namespace qsteer {

LearnedSteering::LearnedSteering(const Optimizer* optimizer,
                                 const ExecutionSimulator* simulator, const Catalog* catalog,
                                 FeaturizerOptions featurizer_options, ThreadPool* pool)
    : optimizer_(optimizer),
      simulator_(simulator),
      featurizer_(catalog, featurizer_options),
      pool_(pool) {}

GroupDataset LearnedSteering::CollectDataset(const std::vector<Job>& jobs,
                                             const std::vector<RuleConfig>& configs,
                                             uint64_t seed) const {
  GroupDataset dataset;
  dataset.configs = configs;
  int k = dataset.k();

  // One row per job, built independently: the (job, arm) noise nonce is
  // hash(seed, job index, arm), so rows do not depend on collection order
  // and the whole loop fans out over the pool. Rows are merged in job order
  // below — the dataset is bit-identical for any worker count.
  struct JobRow {
    bool ok = false;
    RuleSignature default_signature;
    std::vector<double> features;
    std::vector<double> runtimes, cpu_times, io_times;
  };
  std::vector<JobRow> rows = ParallelMap<JobRow>(
      pool_, static_cast<int64_t>(jobs.size()), [&](int64_t j) {
        const Job& job = jobs[static_cast<size_t>(j)];
        JobRow row;
        std::vector<CompiledPlan> plans(static_cast<size_t>(k));
        std::vector<RuleDiff> diffs(static_cast<size_t>(k));
        std::vector<const CompiledPlan*> plan_ptrs(static_cast<size_t>(k), nullptr);
        std::vector<const RuleDiff*> diff_ptrs(static_cast<size_t>(k), nullptr);
        row.runtimes.assign(static_cast<size_t>(k), -1.0);
        row.cpu_times.assign(static_cast<size_t>(k), -1.0);
        row.io_times.assign(static_cast<size_t>(k), -1.0);

        Result<CompiledPlan> default_plan = optimizer_->Compile(job, RuleConfig::Default());
        if (!default_plan.ok()) return row;
        row.default_signature = default_plan.value().signature;

        for (int c = 0; c < k; ++c) {
          Result<CompiledPlan> plan =
              optimizer_->Compile(job, configs[static_cast<size_t>(c)]);
          if (!plan.ok()) continue;
          plans[static_cast<size_t>(c)] = std::move(plan.value());
          diffs[static_cast<size_t>(c)] = ComputeRuleDiff(
              default_plan.value().signature, plans[static_cast<size_t>(c)].signature);
          plan_ptrs[static_cast<size_t>(c)] = &plans[static_cast<size_t>(c)];
          diff_ptrs[static_cast<size_t>(c)] = &diffs[static_cast<size_t>(c)];
          uint64_t nonce = HashCombine(HashCombine(seed, static_cast<uint64_t>(j)),
                                       static_cast<uint64_t>(c));
          ExecMetrics metrics =
              simulator_->Execute(job, plans[static_cast<size_t>(c)].root, nonce);
          row.runtimes[static_cast<size_t>(c)] = metrics.runtime;
          row.cpu_times[static_cast<size_t>(c)] = metrics.cpu_time;
          row.io_times[static_cast<size_t>(c)] = metrics.io_time;
        }
        if (row.runtimes[0] < 0.0) return row;  // default must have executed

        row.features = featurizer_.Featurize(job, plan_ptrs, diff_ptrs, k);
        row.ok = true;
        return row;
      });

  for (size_t j = 0; j < rows.size(); ++j) {
    JobRow& row = rows[j];
    if (!row.ok) continue;
    if (dataset.features.empty()) dataset.group_signature = row.default_signature;
    dataset.features.push_back(std::move(row.features));
    dataset.runtimes.push_back(std::move(row.runtimes));
    dataset.cpu_times.push_back(std::move(row.cpu_times));
    dataset.io_times.push_back(std::move(row.io_times));
    dataset.job_names.push_back(jobs[j].name);
  }
  return dataset;
}

LearnedEvaluation LearnedSteering::TrainAndEvaluate(const GroupDataset& dataset,
                                                    const MlpOptions& options,
                                                    double train_frac, double val_frac,
                                                    Metric target) const {
  LearnedEvaluation eval;
  int n = dataset.size();
  int k = dataset.k();
  if (n < 5 || k < 2) return eval;
  const std::vector<std::vector<double>>& metric_matrix = dataset.MetricMatrix(target);

  // Random split (§7.4: 40% train / 20% validation / 40% test).
  Pcg32 rng(options.seed ^ 0x5b1d, 307);
  std::vector<size_t> order(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  int n_train = std::max(1, static_cast<int>(std::lround(train_frac * n)));
  int n_val = std::max(1, static_cast<int>(std::lround(val_frac * n)));
  n_val = std::min(n_val, n - n_train - 1);

  auto targets_for = [&](size_t idx) {
    // Missing (non-compiling) slots get the worst target (1.0).
    std::vector<double> runtimes = metric_matrix[idx];
    double worst = 0.0;
    for (double r : runtimes) worst = std::max(worst, r);
    for (double& r : runtimes) {
      if (r < 0.0) r = worst;
    }
    return NormalizeRuntimes(runtimes);
  };

  std::vector<std::vector<double>> train_x, train_y, val_x, val_y;
  std::vector<size_t> test_idx;
  MinMaxScaler scaler;
  {
    std::vector<std::vector<double>> raw_train;
    for (int i = 0; i < n_train; ++i) raw_train.push_back(dataset.features[order[i]]);
    // Encoded feature rows share one width per group; a ragged dataset means
    // the group was assembled wrong and no model trained on it is usable.
    if (!scaler.Fit(raw_train).ok()) return eval;
  }
  for (int i = 0; i < n; ++i) {
    size_t idx = order[static_cast<size_t>(i)];
    if (i < n_train) {
      train_x.push_back(scaler.Transform(dataset.features[idx]));
      train_y.push_back(targets_for(idx));
    } else if (i < n_train + n_val) {
      val_x.push_back(scaler.Transform(dataset.features[idx]));
      val_y.push_back(targets_for(idx));
    } else {
      test_idx.push_back(idx);
    }
  }

  Mlp model = Mlp::Train(train_x, train_y, val_x, val_y, k, options);
  eval.train_loss = model.Evaluate(train_x, train_y);

  std::vector<double> default_runtimes, best_runtimes, learned_runtimes;
  for (size_t idx : test_idx) {
    std::vector<double> prediction = model.Forward(scaler.Transform(dataset.features[idx]));
    const std::vector<double>& runtimes = metric_matrix[idx];
    // The model may prefer a non-compiling slot; fall back to default.
    int arm = 0;
    double best_pred = prediction[0];
    for (int c = 1; c < k; ++c) {
      if (runtimes[static_cast<size_t>(c)] < 0.0) continue;
      if (prediction[static_cast<size_t>(c)] < best_pred) {
        best_pred = prediction[static_cast<size_t>(c)];
        arm = c;
      }
    }
    double best_runtime = runtimes[0];
    for (double r : runtimes) {
      if (r >= 0.0) best_runtime = std::min(best_runtime, r);
    }
    LearnedChoice choice;
    choice.job_name = dataset.job_names[idx];
    choice.chosen_arm = arm;
    choice.chosen_runtime = runtimes[static_cast<size_t>(arm)];
    choice.default_runtime = runtimes[0];
    choice.best_runtime = best_runtime;
    eval.test_choices.push_back(choice);
    default_runtimes.push_back(choice.default_runtime);
    best_runtimes.push_back(choice.best_runtime);
    learned_runtimes.push_back(choice.chosen_runtime);
  }

  eval.mean_default = Mean(default_runtimes);
  eval.mean_best = Mean(best_runtimes);
  eval.mean_learned = Mean(learned_runtimes);
  eval.p90_default = Percentile(default_runtimes, 90.0);
  eval.p90_best = Percentile(best_runtimes, 90.0);
  eval.p90_learned = Percentile(learned_runtimes, 90.0);
  eval.p99_default = Percentile(default_runtimes, 99.0);
  eval.p99_best = Percentile(best_runtimes, 99.0);
  eval.p99_learned = Percentile(learned_runtimes, 99.0);
  return eval;
}

}  // namespace qsteer
