#include "core/featurize.h"

#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "optimizer/stats.h"

namespace qsteer {

namespace {

/// Logical operator kinds featurized as graph slots (fixed order).
constexpr OpKind kGraphKinds[] = {
    OpKind::kGet,     OpKind::kSelect, OpKind::kProject, OpKind::kJoin,
    OpKind::kGroupBy, OpKind::kUnionAll, OpKind::kProcess, OpKind::kTop,
    OpKind::kWindow,  OpKind::kSample,
};
constexpr int kNumGraphKinds = static_cast<int>(std::size(kGraphKinds));

int GraphSlot(OpKind kind) {
  for (int i = 0; i < kNumGraphKinds; ++i) {
    if (kGraphKinds[i] == kind) return i;
  }
  return -1;
}

double Log1p(double v) { return std::log1p(std::max(0.0, v)); }

/// Histogram-gated feature slots (appended only when the catalog's active
/// StatsModel is histogram-grade, so scalar feature vectors keep their
/// historical width): staleness age, max/mean hottest-bucket share of the
/// scanned columns, and mean log q-error of yesterday's row-count
/// estimates (past estimates are observable feedback in production).
constexpr int kNumHistogramFeatures = 4;

}  // namespace

JobFeaturizer::JobFeaturizer(const Catalog* catalog, FeaturizerOptions options)
    : catalog_(catalog), options_(options) {}

int JobFeaturizer::JobFeatureWidth() const {
  int width = 1 + 2 * options_.hash_bins + 2 * kNumGraphKinds;
  if (catalog_->stats_model().histogram_grade()) width += kNumHistogramFeatures;
  return width;
}

int JobFeaturizer::ConfigFeatureWidth() const { return 1 + options_.diff_bins; }

std::vector<double> JobFeaturizer::JobFeatures(const Job& job) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(JobFeatureWidth()));

  // (1a) Estimated total input size under the optimizer's (stale) view.
  EstimatedStatsView est(catalog_, job.columns.get(), job.day);
  double input_bytes = 0.0;
  for (int stream : job.InputStreams()) {
    input_bytes += est.StreamRows(stream) * est.StreamWidth(stream);
  }
  out.push_back(Log1p(input_bytes));

  // (1b) Input hashes, hashed one-hot (a job reads several inputs; each
  // sets one bin).
  std::vector<double> input_bins(static_cast<size_t>(options_.hash_bins), 0.0);
  for (uint64_t h : job.InputHashes()) {
    input_bins[static_cast<size_t>(HashToBin(h, options_.hash_bins))] = 1.0;
  }
  out.insert(out.end(), input_bins.begin(), input_bins.end());

  // (1c) Template hash, hashed one-hot.
  std::vector<double> template_bins(static_cast<size_t>(options_.hash_bins), 0.0);
  template_bins[static_cast<size_t>(HashToBin(job.TemplateHash(), options_.hash_bins))] = 1.0;
  out.insert(out.end(), template_bins.begin(), template_bins.end());

  // (2) Query-graph features: per operator kind, count and mean
  // log-cardinality estimate, derived bottom-up over the logical DAG.
  std::unordered_map<const PlanNode*, LogicalStats> stats;
  std::vector<double> counts(kNumGraphKinds, 0.0);
  std::vector<double> log_cards(kNumGraphKinds, 0.0);
  VisitPlan(job.root, [&](const PlanNode& node) {
    std::vector<const LogicalStats*> child_stats;
    child_stats.reserve(node.children.size());
    for (const PlanNodePtr& child : node.children) {
      child_stats.push_back(&stats[child.get()]);
    }
    LogicalStats s = DeriveStats(node.op, child_stats, est);
    int slot = GraphSlot(node.op.kind);
    if (slot >= 0) {
      counts[static_cast<size_t>(slot)] += 1.0;
      log_cards[static_cast<size_t>(slot)] += Log1p(s.rows);
    }
    stats[&node] = std::move(s);
  });
  for (int i = 0; i < kNumGraphKinds; ++i) {
    out.push_back(counts[static_cast<size_t>(i)]);
    double mean = counts[static_cast<size_t>(i)] > 0.0
                      ? log_cards[static_cast<size_t>(i)] / counts[static_cast<size_t>(i)]
                      : 0.0;
    out.push_back(mean);
  }

  // (2b) Histogram-derived features, gated on the active model so scalar
  // vectors keep their historical width.
  const StatsModel& model = catalog_->stats_model();
  if (model.histogram_grade()) {
    out.push_back(static_cast<double>(model.staleness_days()));
    double max_top_share = 0.0;
    double sum_top_share = 0.0;
    double num_cols = 0.0;
    VisitPlan(job.root, [&](const PlanNode& node) {
      // Job roots are logical plans; scans are kGet nodes.
      if (node.op.kind != OpKind::kGet) return;
      for (ColumnId c : node.op.scan_columns) {
        ColumnDistribution dist = est.ColumnDist(c);
        if (dist.histogram == nullptr) continue;
        double share = dist.histogram->TopValueShare();
        max_top_share = std::max(max_top_share, share);
        sum_top_share += share;
        num_cols += 1.0;
      }
    });
    out.push_back(max_top_share);
    out.push_back(num_cols > 0.0 ? sum_top_share / num_cols : 0.0);
    // Mean log q-error of yesterday's per-stream row-count estimates.
    double sum_log_q = 0.0;
    double num_streams = 0.0;
    int yesterday = std::max(0, job.day - 1);
    for (int stream : job.InputStreams()) {
      double believed =
          static_cast<double>(model.StreamStats(*catalog_, stream, yesterday).row_count);
      double actual = static_cast<double>(catalog_->TrueRowCount(stream, yesterday));
      double q = std::max(believed / std::max(1.0, actual), actual / std::max(1.0, believed));
      sum_log_q += std::log(std::max(1.0, q));
      num_streams += 1.0;
    }
    out.push_back(num_streams > 0.0 ? sum_log_q / num_streams : 0.0);
  }
  return out;
}

std::vector<double> JobFeaturizer::ConfigFeatures(const CompiledPlan& plan,
                                                  const RuleDiff& diff_vs_default) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(ConfigFeatureWidth()));
  out.push_back(Log1p(plan.est_cost));
  std::vector<double> bins(static_cast<size_t>(options_.diff_bins), 0.0);
  for (RuleId id : diff_vs_default.only_in_default) {
    bins[static_cast<size_t>(HashToBin(static_cast<uint64_t>(id), options_.diff_bins))] -= 1.0;
  }
  for (RuleId id : diff_vs_default.only_in_new) {
    bins[static_cast<size_t>(HashToBin(static_cast<uint64_t>(id) ^ 0xd1f, options_.diff_bins))] +=
        1.0;
  }
  out.insert(out.end(), bins.begin(), bins.end());
  return out;
}

std::vector<double> JobFeaturizer::Featurize(const Job& job,
                                             const std::vector<const CompiledPlan*>& plans,
                                             const std::vector<const RuleDiff*>& diffs,
                                             int k_slots) const {
  std::vector<double> out = JobFeatures(job);
  out.reserve(out.size() + static_cast<size_t>(k_slots * ConfigFeatureWidth()));
  for (int k = 0; k < k_slots; ++k) {
    if (k < static_cast<int>(plans.size()) && plans[static_cast<size_t>(k)] != nullptr) {
      std::vector<double> slot =
          ConfigFeatures(*plans[static_cast<size_t>(k)], *diffs[static_cast<size_t>(k)]);
      out.insert(out.end(), slot.begin(), slot.end());
    } else {
      out.insert(out.end(), static_cast<size_t>(ConfigFeatureWidth()), 0.0);
    }
  }
  return out;
}

}  // namespace qsteer
