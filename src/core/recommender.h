// The deployable steering service (paper §3.3 "ease of deployment as plan
// hint" + §6.4 extrapolation + the weekly-refresh regression mitigation).
//
// Offline, the recommender ingests pipeline analyses and remembers, per
// rule-signature job group, the configuration that improved the group's
// base jobs. Online, an incoming job is compiled under the default
// configuration, its signature looked up, and the stored configuration
// recommended when its track record is positive. Observed regressions
// demote and eventually retire a recommendation — the guardrail that makes
// "surprising regressions" operationally safe.
#ifndef QSTEER_CORE_RECOMMENDER_H_
#define QSTEER_CORE_RECOMMENDER_H_

#include <string>
#include <unordered_map>

#include "common/status.h"

#include "core/pipeline.h"

namespace qsteer {

struct RecommenderOptions {
  /// Minimum improvement (negative percentage) a base-job analysis must show
  /// before its configuration is adopted for the group.
  double min_improvement_pct = -10.0;
  /// A recommendation retires after this many observed regressions.
  int max_regressions = 2;
  /// Regression threshold when observing outcomes (percent runtime change).
  double regression_threshold_pct = 5.0;
};

class SteeringRecommender {
 public:
  explicit SteeringRecommender(RecommenderOptions options = {});

  /// Offline: learn from one analyzed job. Adopts the best configuration for
  /// the job's signature group when it clears the improvement bar; keeps the
  /// better of two candidate configurations when the group already has one.
  /// Returns true when the analysis changed the store.
  bool LearnFromAnalysis(const JobAnalysis& analysis);

  struct Recommendation {
    bool is_default = true;
    RuleConfig config;
    /// Improvement the configuration showed on its base job(s).
    double expected_improvement_pct = 0.0;
    /// Number of base jobs backing the recommendation.
    int support = 0;
  };

  /// Online: recommendation for a job whose default compilation produced
  /// `default_signature`.
  Recommendation Recommend(const RuleSignature& default_signature) const;

  /// Guardrail: report the observed runtime change of a recommended run
  /// (positive = regression). Retires configurations that regress
  /// repeatedly.
  void ObserveOutcome(const RuleSignature& default_signature, double runtime_change_pct);

  int num_groups() const { return static_cast<int>(store_.size()); }
  int num_retired() const { return retired_; }

  /// Persists the store as a line-oriented text file:
  ///   <signature-hex> <improvement%> <support> <regressions> <retired> <hints>
  /// The hint column uses the §3.2 flag syntax, so a stored recommendation
  /// is directly usable as a customer plan hint.
  Status SaveToFile(const std::string& path) const;
  /// Replaces the store with the file's contents.
  Status LoadFromFile(const std::string& path);

 private:
  struct Entry {
    RuleConfig config;
    double improvement_pct = 0.0;
    int support = 0;
    int regressions = 0;
    bool retired = false;
  };

  RecommenderOptions options_;
  std::unordered_map<RuleSignature, Entry, BitVector256Hasher> store_;
  int retired_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_CORE_RECOMMENDER_H_
