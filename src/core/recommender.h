// The deployable steering service (paper §3.3 "ease of deployment as plan
// hint" + §6.4 extrapolation), hardened with the guardrails that made
// steering shippable in production (the follow-up deployment paper,
// arXiv:2210.13625): validation runs, a per-group circuit breaker, and
// automatic rollback to the default configuration.
//
// Offline, the recommender ingests pipeline analyses and remembers, per
// rule-signature job group, the configuration that improved the group's
// base jobs. A remembered configuration is only a *candidate* until it
// survives N validation re-runs (driven by the caller under the cluster's
// fault profile). Online, an incoming job is compiled under the default
// configuration, its signature looked up, and the stored configuration
// recommended while the group's circuit breaker allows it:
//
//   closed ──(consecutive regressions)──▶ open        [automatic rollback]
//   open   ──(cooldown of default-served lookups)──▶ half-open
//   half-open ──(probe successes)──▶ closed
//   half-open ──(probe regression)──▶ open            [another rollback]
//
// While a breaker is open every lookup falls back to the default plan; a
// group whose breaker trips repeatedly is retired permanently.
#ifndef QSTEER_CORE_RECOMMENDER_H_
#define QSTEER_CORE_RECOMMENDER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

#include "core/pipeline.h"

namespace qsteer {

struct RecommenderOptions {
  /// Minimum improvement (negative percentage) a base-job analysis must show
  /// before its configuration becomes a candidate for the group.
  double min_improvement_pct = -10.0;
  /// Regression threshold when observing outcomes (percent runtime change;
  /// observations above it count as failures).
  double regression_threshold_pct = 5.0;
  /// Successful validation re-runs required before a candidate is adopted
  /// (0 adopts immediately — the pre-guardrail behavior).
  int validation_runs = 2;
  /// Consecutive online regressions that trip a closed breaker open.
  int breaker_open_after = 2;
  /// Default-served lookups to wait while open before probing (half-open).
  int breaker_cooldown = 8;
  /// Probe successes required to close a half-open breaker.
  int breaker_probe_successes = 2;
  /// A recommendation retires permanently after this many breaker trips
  /// (automatic rollbacks).
  int max_rollbacks = 2;
};

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
const char* BreakerStateName(BreakerState state);

class SteeringRecommender {
 public:
  explicit SteeringRecommender(RecommenderOptions options = {});

  /// The journal-able essence of one learn event: everything
  /// LearnFromAnalysis needs from a JobAnalysis, in a form the steering
  /// service's write-ahead log can serialize and replay (signature hex +
  /// hint string + improvement). Extracted *before* the store mutation so
  /// the WAL can record the event ahead of applying it.
  struct CandidateObservation {
    RuleSignature signature;
    RuleConfig config;
    double improvement_pct = 0.0;
  };

  /// Analysis-side half of LearnFromAnalysis: returns the observation a
  /// trustworthy, sufficiently-improving analysis yields, or nullopt when
  /// the analysis teaches nothing (failed baseline, no executed
  /// alternative, improvement above the bar). Pure: no store access.
  static std::optional<CandidateObservation> ExtractCandidate(
      const JobAnalysis& analysis, const RecommenderOptions& options);

  /// Store-side half: applies one (possibly replayed) observation.
  /// Remembers the best configuration for the signature group as a
  /// validation candidate; keeps the better of two candidates when the
  /// group already has one. Returns true when the store changed.
  bool LearnCandidate(const CandidateObservation& observation);

  /// Offline: learn from one analyzed job. Remembers the best configuration
  /// for the job's signature group as a validation candidate when it clears
  /// the improvement bar; keeps the better of two candidates when the group
  /// already has one. Analyses whose default run failed are ignored (their
  /// baseline is not trustworthy). Returns true when the store changed.
  /// Equivalent to ExtractCandidate + LearnCandidate.
  bool LearnFromAnalysis(const JobAnalysis& analysis);

  /// Candidates awaiting validation, in deterministic (signature) order.
  struct ValidationRequest {
    RuleSignature signature;
    RuleConfig config;
    /// Validation successes so far / required.
    int successes = 0;
    int required = 0;
  };
  std::vector<ValidationRequest> PendingValidations() const;

  /// Reports one validation re-run of a candidate (positive change =
  /// regression). A clean run counts toward adoption; a regressing run
  /// rejects the candidate outright (it never reaches production).
  void ObserveValidation(const RuleSignature& signature, double runtime_change_pct);

  struct Recommendation {
    bool is_default = true;
    RuleConfig config;
    /// Improvement the configuration showed on its base job(s).
    double expected_improvement_pct = 0.0;
    /// Number of base jobs backing the recommendation.
    int support = 0;
    /// True when the recommendation is a half-open probe (the caller should
    /// still report the outcome; a regression re-opens the breaker).
    bool probing = false;
  };

  /// Online: recommendation for a job whose default compilation produced
  /// `default_signature`. Non-const: while a group's breaker is open, each
  /// lookup serves the default and advances the cooldown clock toward
  /// half-open probing.
  Recommendation Recommend(const RuleSignature& default_signature);

  /// True when a Recommend(default_signature) call would mutate the store
  /// (the group's breaker is open, so the lookup advances the cooldown
  /// clock). Journal hook: a durable wrapper must log exactly the lookups
  /// that change state to replay to an identical store after a crash.
  bool WouldMutateOnRecommend(const RuleSignature& default_signature) const;

  /// One row of a read-only serving snapshot: the recommendation Recommend
  /// would return for `signature` right now, plus whether that call would
  /// mutate the store (open-breaker cooldown tick). Rows with
  /// mutates_on_recommend set cannot be served from a snapshot — the tick
  /// must reach the real store.
  struct SnapshotEntry {
    RuleSignature signature;
    Recommendation recommendation;
    bool mutates_on_recommend = false;
  };

  /// Pure snapshot of every group's current serving decision (signatures
  /// absent from the store are implicitly "serve the default" and need no
  /// row). The durable store publishes these as an RCU view so serving-path
  /// lookups bypass its mutex entirely.
  std::vector<SnapshotEntry> SnapshotRecommendations() const;

  /// Guardrail: report the observed runtime change of a recommended run
  /// (positive = regression). Drives the circuit breaker; tripping it rolls
  /// the group back to the default configuration automatically.
  void ObserveOutcome(const RuleSignature& default_signature, double runtime_change_pct);

  int num_groups() const { return static_cast<int>(store_.size()); }
  /// Groups adopted and currently serving (breaker not open, not retired).
  int num_serving() const;
  int num_pending_validation() const;
  int num_retired() const { return retired_; }
  /// Automatic rollbacks (breaker trips) across all groups, ever.
  int num_rollbacks() const { return rollbacks_; }
  /// Groups currently rolled back (breaker open).
  int num_open() const;

  /// The store as a line-oriented text blob (format v2):
  ///   # qsteer-recommender-store v2
  ///   <signature-hex> <improvement%> <support> <regressions> <retired>
  ///     <adopted> <validation-successes> <breaker-state> <consecutive-
  ///     failures> <cooldown> <probe-successes> <rollbacks> <hints>
  /// Entries are emitted in signature order, so two stores with identical
  /// state serialize to identical bytes (the chaos harness's bit-identity
  /// checks and the service snapshots rely on this). The hint column uses
  /// the §3.2 flag syntax, so a stored recommendation is directly usable as
  /// a customer plan hint.
  std::string Serialize() const;
  /// Replaces the store with the blob's contents. Blobs without the v2
  /// header parse in the legacy (v1) format: entries become adopted with a
  /// closed breaker. Comment lines (leading '#') are ignored.
  Status Deserialize(const std::string& content);

  /// Serialize() written atomically (temp file + fsync + rename) with a
  /// trailing `# crc32` footer, so a torn or partial write is detected at
  /// load instead of silently mis-parsing.
  Status SaveToFile(const std::string& path) const;
  /// Replaces the store with the file's contents, verifying the checksum
  /// footer when present. v1 files and v2 files written before the footer
  /// existed (no checksum) still load.
  Status LoadFromFile(const std::string& path);

 private:
  struct Entry {
    RuleConfig config;
    double improvement_pct = 0.0;
    int support = 0;
    /// Lifetime regressions observed online (validation + serving).
    int regressions = 0;
    bool retired = false;
    /// Validation gate.
    bool adopted = false;
    int validation_successes = 0;
    /// Circuit breaker.
    BreakerState breaker = BreakerState::kClosed;
    int consecutive_failures = 0;
    int cooldown_remaining = 0;
    int probe_successes = 0;
    int rollbacks = 0;
  };

  /// Trips the breaker open (one automatic rollback); retires the entry
  /// when it has rolled back too often.
  void TripBreaker(Entry* entry);
  void Retire(Entry* entry);

  RecommenderOptions options_;
  std::unordered_map<RuleSignature, Entry, BitVector256Hasher> store_;
  int retired_ = 0;
  int rollbacks_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_CORE_RECOMMENDER_H_
