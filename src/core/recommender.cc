#include "core/recommender.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/file_io.h"
#include "core/hints.h"

namespace qsteer {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

SteeringRecommender::SteeringRecommender(RecommenderOptions options) : options_(options) {}

std::optional<SteeringRecommender::CandidateObservation> SteeringRecommender::ExtractCandidate(
    const JobAnalysis& analysis, const RecommenderOptions& options) {
  if (analysis.default_plan.root == nullptr) return std::nullopt;
  // A failed default run has no trustworthy baseline to learn against.
  if (analysis.default_metrics.failed) return std::nullopt;
  const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
  if (best == nullptr) return std::nullopt;
  double change = analysis.BestRuntimeChangePct();
  if (change > options.min_improvement_pct) return std::nullopt;
  CandidateObservation observation;
  observation.signature = analysis.default_plan.signature;
  observation.config = best->config;
  observation.improvement_pct = change;
  return observation;
}

bool SteeringRecommender::LearnCandidate(const CandidateObservation& observation) {
  Entry& entry = store_[observation.signature];
  if (entry.retired) return false;
  bool fresh = entry.support == 0;
  if (fresh || observation.improvement_pct < entry.improvement_pct) {
    if (fresh || !(entry.config == observation.config)) {
      // A new or replaced configuration must (re-)pass the validation gate
      // before it serves.
      entry.adopted = options_.validation_runs <= 0;
      entry.validation_successes = 0;
    }
    entry.config = observation.config;
    entry.improvement_pct = observation.improvement_pct;
  }
  ++entry.support;
  return true;
}

bool SteeringRecommender::LearnFromAnalysis(const JobAnalysis& analysis) {
  std::optional<CandidateObservation> observation = ExtractCandidate(analysis, options_);
  return observation.has_value() && LearnCandidate(*observation);
}

std::vector<SteeringRecommender::ValidationRequest> SteeringRecommender::PendingValidations()
    const {
  std::vector<ValidationRequest> pending;
  for (const auto& [signature, entry] : store_) {
    if (entry.retired || entry.adopted) continue;
    ValidationRequest request;
    request.signature = signature;
    request.config = entry.config;
    request.successes = entry.validation_successes;
    request.required = options_.validation_runs;
    pending.push_back(std::move(request));
  }
  // unordered_map iteration order is not deterministic; validation drivers
  // (and their printed output) should be.
  std::sort(pending.begin(), pending.end(),
            [](const ValidationRequest& a, const ValidationRequest& b) {
              return a.signature.ToHexString() < b.signature.ToHexString();
            });
  return pending;
}

void SteeringRecommender::ObserveValidation(const RuleSignature& signature,
                                            double runtime_change_pct) {
  auto it = store_.find(signature);
  if (it == store_.end() || it->second.retired || it->second.adopted) return;
  Entry& entry = it->second;
  if (runtime_change_pct > options_.regression_threshold_pct) {
    // A candidate that regresses under validation never reaches production.
    ++entry.regressions;
    Retire(&entry);
    return;
  }
  if (++entry.validation_successes >= options_.validation_runs) {
    entry.adopted = true;
  }
}

SteeringRecommender::Recommendation SteeringRecommender::Recommend(
    const RuleSignature& default_signature) {
  Recommendation rec;
  rec.config = RuleConfig::Default();
  auto it = store_.find(default_signature);
  if (it == store_.end()) return rec;
  Entry& entry = it->second;
  if (entry.retired || !entry.adopted) return rec;

  if (entry.breaker == BreakerState::kOpen) {
    // Rolled back: serve the default while the cooldown clock runs.
    if (--entry.cooldown_remaining <= 0) {
      entry.breaker = BreakerState::kHalfOpen;
      entry.probe_successes = 0;
    }
    return rec;
  }

  rec.is_default = false;
  rec.config = entry.config;
  rec.expected_improvement_pct = entry.improvement_pct;
  rec.support = entry.support;
  rec.probing = entry.breaker == BreakerState::kHalfOpen;
  return rec;
}

std::vector<SteeringRecommender::SnapshotEntry> SteeringRecommender::SnapshotRecommendations()
    const {
  std::vector<SnapshotEntry> out;
  out.reserve(store_.size());
  // qsteer-lint: sorted consumer rebuilds an unordered map from these rows; order never reaches bytes
  for (const auto& [signature, entry] : store_) {
    SnapshotEntry row;
    row.signature = signature;
    row.recommendation.config = RuleConfig::Default();
    // Mirrors Recommend() without the open-breaker cooldown tick; rows that
    // would tick are flagged instead, and the snapshot's consumer routes
    // them to the mutating path.
    if (!entry.retired && entry.adopted) {
      if (entry.breaker == BreakerState::kOpen) {
        row.mutates_on_recommend = true;
      } else {
        row.recommendation.is_default = false;
        row.recommendation.config = entry.config;
        row.recommendation.expected_improvement_pct = entry.improvement_pct;
        row.recommendation.support = entry.support;
        row.recommendation.probing = entry.breaker == BreakerState::kHalfOpen;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

bool SteeringRecommender::WouldMutateOnRecommend(const RuleSignature& default_signature) const {
  auto it = store_.find(default_signature);
  if (it == store_.end()) return false;
  const Entry& entry = it->second;
  // Mirrors Recommend(): only an open breaker's cooldown tick writes state.
  return !entry.retired && entry.adopted && entry.breaker == BreakerState::kOpen;
}

void SteeringRecommender::ObserveOutcome(const RuleSignature& default_signature,
                                         double runtime_change_pct) {
  auto it = store_.find(default_signature);
  if (it == store_.end() || it->second.retired || !it->second.adopted) return;
  Entry& entry = it->second;
  bool regressed = runtime_change_pct > options_.regression_threshold_pct;

  switch (entry.breaker) {
    case BreakerState::kClosed:
      if (regressed) {
        ++entry.regressions;
        if (++entry.consecutive_failures >= options_.breaker_open_after) {
          TripBreaker(&entry);
        }
      } else {
        entry.consecutive_failures = 0;
      }
      break;
    case BreakerState::kHalfOpen:
      if (regressed) {
        ++entry.regressions;
        TripBreaker(&entry);
      } else if (++entry.probe_successes >= options_.breaker_probe_successes) {
        entry.breaker = BreakerState::kClosed;
        entry.consecutive_failures = 0;
        entry.probe_successes = 0;
      }
      break;
    case BreakerState::kOpen:
      // Open groups serve the default; a stray outcome report is ignored.
      break;
  }
}

void SteeringRecommender::TripBreaker(Entry* entry) {
  entry->breaker = BreakerState::kOpen;
  entry->cooldown_remaining = std::max(1, options_.breaker_cooldown);
  entry->consecutive_failures = 0;
  entry->probe_successes = 0;
  ++entry->rollbacks;
  ++rollbacks_;
  if (entry->rollbacks >= options_.max_rollbacks) Retire(entry);
}

void SteeringRecommender::Retire(Entry* entry) {
  if (entry->retired) return;
  entry->retired = true;
  ++retired_;
}

int SteeringRecommender::num_serving() const {
  int count = 0;
  // qsteer-lint: sorted integer count; commutative over iteration order
  for (const auto& [signature, entry] : store_) {
    if (!entry.retired && entry.adopted && entry.breaker != BreakerState::kOpen) ++count;
  }
  return count;
}

int SteeringRecommender::num_pending_validation() const {
  int count = 0;
  // qsteer-lint: sorted integer count; commutative over iteration order
  for (const auto& [signature, entry] : store_) {
    if (!entry.retired && !entry.adopted) ++count;
  }
  return count;
}

int SteeringRecommender::num_open() const {
  int count = 0;
  // qsteer-lint: sorted integer count; commutative over iteration order
  for (const auto& [signature, entry] : store_) {
    if (!entry.retired && entry.breaker == BreakerState::kOpen) ++count;
  }
  return count;
}

namespace {
constexpr char kStoreHeaderV2[] = "# qsteer-recommender-store v2";
}  // namespace

std::string SteeringRecommender::Serialize() const {
  // Deterministic entry order: two equal stores must serialize to equal
  // bytes (snapshot comparison, chaos bit-identity).
  std::vector<const decltype(store_)::value_type*> sorted;
  sorted.reserve(store_.size());
  for (const auto& kv : store_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first.ToHexString() < b->first.ToHexString();
  });
  std::ostringstream out;
  out.precision(17);  // round-trip doubles exactly
  out << kStoreHeaderV2 << '\n';
  for (const auto* kv : sorted) {
    const Entry& entry = kv->second;
    out << kv->first.ToHexString() << ' ' << entry.improvement_pct << ' ' << entry.support
        << ' ' << entry.regressions << ' ' << (entry.retired ? 1 : 0) << ' '
        << (entry.adopted ? 1 : 0) << ' ' << entry.validation_successes << ' '
        << static_cast<int>(entry.breaker) << ' ' << entry.consecutive_failures << ' '
        << entry.cooldown_remaining << ' ' << entry.probe_successes << ' ' << entry.rollbacks
        << ' ' << ToHintString(entry.config) << '\n';
  }
  return out.str();
}

Status SteeringRecommender::SaveToFile(const std::string& path) const {
  return WriteFileChecksummed(path, Serialize());
}

Status SteeringRecommender::Deserialize(const std::string& content) {
  std::istringstream in(content);
  std::unordered_map<RuleSignature, Entry, BitVector256Hasher> loaded;
  int retired = 0;
  int rollbacks = 0;
  std::string line;
  int line_number = 0;
  bool v2 = false;
  bool first_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (first_line) {
      first_line = false;
      if (line == kStoreHeaderV2) {
        v2 = true;
        continue;
      }
    }
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    std::string signature_hex, hints;
    Entry entry;
    int retired_flag = 0;
    if (!(fields >> signature_hex >> entry.improvement_pct >> entry.support >>
          entry.regressions >> retired_flag)) {
      return Status::InvalidArgument("malformed store line " + std::to_string(line_number));
    }
    if (v2) {
      int adopted_flag = 0, breaker_int = 0;
      if (!(fields >> adopted_flag >> entry.validation_successes >> breaker_int >>
            entry.consecutive_failures >> entry.cooldown_remaining >> entry.probe_successes >>
            entry.rollbacks)) {
        return Status::InvalidArgument("malformed v2 store line " +
                                       std::to_string(line_number));
      }
      if (breaker_int < 0 || breaker_int > 2) {
        return Status::InvalidArgument("bad breaker state on line " +
                                       std::to_string(line_number));
      }
      entry.adopted = adopted_flag != 0;
      entry.breaker = static_cast<BreakerState>(breaker_int);
    } else {
      // Legacy (v1) stores predate the validation gate and breaker: their
      // entries were already serving, so load them adopted and closed.
      entry.adopted = true;
    }
    std::getline(fields, hints);
    if (!hints.empty() && hints.front() == ' ') hints.erase(0, 1);
    RuleSignature signature = BitVector256::FromHexString(signature_hex);
    if (signature.None() && signature_hex != std::string(64, '0')) {
      return Status::InvalidArgument("bad signature on line " + std::to_string(line_number));
    }
    Result<RuleConfig> config = ParseHintString(hints);
    if (!config.ok()) return config.status();
    entry.config = config.value();
    entry.retired = retired_flag != 0;
    if (entry.retired) ++retired;
    rollbacks += entry.rollbacks;
    loaded.emplace(signature, std::move(entry));
  }
  store_ = std::move(loaded);
  retired_ = retired;
  rollbacks_ = rollbacks;
  return Status::OK();
}

Status SteeringRecommender::LoadFromFile(const std::string& path) {
  // Verifies the crc32 footer when present; v1 files and pre-checksum v2
  // files have none and load unchecked.
  Result<std::string> content = ReadFileChecksummed(path);
  if (!content.ok()) return content.status();
  return Deserialize(content.value());
}

}  // namespace qsteer
