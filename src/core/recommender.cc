#include "core/recommender.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/hints.h"

namespace qsteer {

SteeringRecommender::SteeringRecommender(RecommenderOptions options) : options_(options) {}

bool SteeringRecommender::LearnFromAnalysis(const JobAnalysis& analysis) {
  if (analysis.default_plan.root == nullptr) return false;
  const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
  if (best == nullptr) return false;
  double change = analysis.BestRuntimeChangePct();
  if (change > options_.min_improvement_pct) return false;

  Entry& entry = store_[analysis.default_plan.signature];
  if (entry.retired) return false;
  if (entry.support == 0 || change < entry.improvement_pct) {
    entry.config = best->config;
    entry.improvement_pct = change;
  }
  ++entry.support;
  return true;
}

SteeringRecommender::Recommendation SteeringRecommender::Recommend(
    const RuleSignature& default_signature) const {
  Recommendation rec;
  auto it = store_.find(default_signature);
  if (it == store_.end() || it->second.retired) {
    rec.config = RuleConfig::Default();
    return rec;
  }
  rec.is_default = false;
  rec.config = it->second.config;
  rec.expected_improvement_pct = it->second.improvement_pct;
  rec.support = it->second.support;
  return rec;
}

void SteeringRecommender::ObserveOutcome(const RuleSignature& default_signature,
                                         double runtime_change_pct) {
  auto it = store_.find(default_signature);
  if (it == store_.end() || it->second.retired) return;
  if (runtime_change_pct > options_.regression_threshold_pct) {
    if (++it->second.regressions >= options_.max_regressions) {
      it->second.retired = true;
      ++retired_;
    }
  }
}

Status SteeringRecommender::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::InvalidArgument("cannot open for write: " + path);
  out.precision(17);  // round-trip doubles exactly
  for (const auto& [signature, entry] : store_) {
    out << signature.ToHexString() << ' ' << entry.improvement_pct << ' ' << entry.support
        << ' ' << entry.regressions << ' ' << (entry.retired ? 1 : 0) << ' '
        << ToHintString(entry.config) << '\n';
  }
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Status SteeringRecommender::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::unordered_map<RuleSignature, Entry, BitVector256Hasher> loaded;
  int retired = 0;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string signature_hex, hints;
    Entry entry;
    int retired_flag = 0;
    if (!(fields >> signature_hex >> entry.improvement_pct >> entry.support >>
          entry.regressions >> retired_flag)) {
      return Status::InvalidArgument("malformed store line " + std::to_string(line_number));
    }
    std::getline(fields, hints);
    if (!hints.empty() && hints.front() == ' ') hints.erase(0, 1);
    RuleSignature signature = BitVector256::FromHexString(signature_hex);
    if (signature.None() && signature_hex != std::string(64, '0')) {
      return Status::InvalidArgument("bad signature on line " + std::to_string(line_number));
    }
    Result<RuleConfig> config = ParseHintString(hints);
    if (!config.ok()) return config.status();
    entry.config = config.value();
    entry.retired = retired_flag != 0;
    if (entry.retired) ++retired;
    loaded.emplace(signature, std::move(entry));
  }
  store_ = std::move(loaded);
  retired_ = retired;
  return Status::OK();
}

}  // namespace qsteer
