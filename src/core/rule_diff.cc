#include "core/rule_diff.h"

#include "optimizer/rule_registry.h"

namespace qsteer {

RuleDiff ComputeRuleDiff(const RuleSignature& default_signature,
                         const RuleSignature& new_signature) {
  RuleDiff diff;
  for (int id : default_signature.AndNot(new_signature).ToIndices()) {
    diff.only_in_default.push_back(id);
  }
  for (int id : new_signature.AndNot(default_signature).ToIndices()) {
    diff.only_in_new.push_back(id);
  }
  return diff;
}

std::vector<double> RuleDiff::ToFeatureVector() const {
  std::vector<double> out(kNumRules, 0.0);
  for (RuleId id : only_in_default) out[static_cast<size_t>(id)] = -1.0;
  for (RuleId id : only_in_new) out[static_cast<size_t>(id)] = 1.0;
  return out;
}

std::string RuleDiff::ToString() const {
  const RuleRegistry& registry = RuleRegistry::Instance();
  std::string out = "only in default plan: ";
  if (only_in_default.empty()) out += "-";
  for (size_t i = 0; i < only_in_default.size(); ++i) {
    if (i > 0) out += ", ";
    out += registry.name(only_in_default[i]);
  }
  out += " | only in new plan: ";
  if (only_in_new.empty()) out += "-";
  for (size_t i = 0; i < only_in_new.size(); ++i) {
    if (i > 0) out += ", ";
    out += registry.name(only_in_new[i]);
  }
  return out;
}

}  // namespace qsteer
