// The offline discovery pipeline (paper §4-§6): for selected jobs, compute
// the span, generate up to M candidate configurations, recompile all of
// them, pick the cheapest plans by estimated cost, and A/B-execute those to
// find configurations that actually improve runtimes.
#ifndef QSTEER_CORE_PIPELINE_H_
#define QSTEER_CORE_PIPELINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "core/config_search.h"
#include "core/rule_diff.h"
#include "core/span.h"
#include "exec/simulator.h"
#include "ml/ranker.h"
#include "optimizer/compile_cache.h"

namespace qsteer {

struct PipelineOptions {
  /// M: candidate configurations to recompile per job (§5: up to 1000).
  int max_candidate_configs = 200;
  /// Number of cheapest recompiled plans to A/B-execute per job (§6.1: 10).
  int configs_to_execute = 10;
  /// Job-selection window: jobs faster than this (seconds) are too noisy,
  /// longer ones too expensive to re-execute (§5.3: 5 minutes to 1 hour).
  double min_runtime_s = 300.0;
  double max_runtime_s = 3600.0;
  /// "Clearly cheaper" threshold for the cheaper-plans heuristic (§6.1).
  double cheaper_cost_ratio = 0.7;
  /// Low-cost/high-runtime heuristic thresholds (Fig. 5's top-left corner):
  /// estimated cost below this quantile and runtime above this quantile.
  double low_cost_quantile = 0.4;
  double high_runtime_quantile = 0.7;
  /// Base seed of the analysis. Per-candidate simulator noise is derived
  /// from hash(seed, candidate config), never from shared sequential RNG
  /// state, so results are independent of candidate evaluation order.
  uint64_t seed = 1;
  /// Worker threads for candidate recompilation, A/B execution, and the
  /// batch entry points. 0 = fully serial (no pool, today's single-core
  /// behavior); < 0 = one worker per hardware thread. Results are
  /// bit-identical for every value (see SteeringPipeline).
  int num_threads = 0;
  /// Retry policy for transient failures: compile timeouts and failed
  /// simulated executions (ExecMetrics::failed under a fault profile).
  /// Retried executions draw fresh noise/fault nonces derived from
  /// hash(base nonce, attempt), so retries stay order- and
  /// thread-independent.
  RetryPolicy retry;
  /// Wall-clock budget per candidate compilation; <= 0 = unlimited. A
  /// compilation that exceeds it returns kDeadlineExceeded and is retried
  /// under `retry` before the candidate is dropped.
  double compile_timeout_s = 0.0;
  /// Compile-cache budget in MiB (the --compile-cache-mb knob); <= 0
  /// disables caching entirely. Entries are keyed by hash(job fingerprint,
  /// config ∩ job span), so recurring jobs and span-equivalent candidates
  /// reuse compiles; results are bit-identical either way.
  int compile_cache_mb = 64;
  /// Testing-only deterministic compile fault: consulted before every
  /// compile attempt with the job and the 1-based attempt number; a non-OK
  /// return is treated as that attempt's result (no compile runs). Lets
  /// tests exercise the transient-retry path with codes the in-process
  /// optimizer never returns naturally (e.g. kUnavailable from a remote
  /// compile tier). Null in production.
  std::function<Status(const Job& job, int attempt)> compile_fault_for_testing;
  ConfigSearchOptions search;
  /// Budgeted discovery: cap on candidate compiles per job (<= 0 =
  /// unlimited). The full candidate stream is still generated and deduped;
  /// with ranking off the first `compile_budget` candidates of the stream
  /// are compiled (the unranked baseline), with ranking on the budget is
  /// spent on the top-scored slice instead.
  int compile_budget = 0;
  /// Score the candidate stream with the online CandidateRanker and spend
  /// `compile_budget` on the highest-ranked candidates. Selection is a
  /// *filter*, never a reorder: compilation and merging keep stream order,
  /// so with an unlimited budget the analysis is bit-identical to
  /// rank_candidates = false. When off (the default), the ranker does not
  /// exist and the pipeline behaves exactly as before this knob.
  bool rank_candidates = false;
  /// Ranker hyperparameters (used only when rank_candidates is set).
  RankerOptions ranker;
};

/// One recompiled (and possibly executed) alternative configuration.
struct ConfigOutcome {
  RuleConfig config;
  CompiledPlan plan;
  RuleDiff diff_vs_default;
  bool executed = false;
  ExecMetrics metrics;  // valid when executed
};

/// Full analysis of one job.
struct JobAnalysis {
  Job job;
  CompiledPlan default_plan;
  ExecMetrics default_metrics;
  SpanResult span;

  int candidates_generated = 0;
  /// Candidate draws pruned before compilation because their span projection
  /// matched an already-kept candidate or the default (paper §4: such
  /// configurations compile to the identical plan).
  int span_duplicates_pruned = 0;
  int recompiled_ok = 0;
  /// Candidates that failed to compile permanently (kCompilationFailed).
  int compile_failures = 0;
  /// Candidates dropped because compilation kept timing out even after the
  /// retry policy was exhausted (kDeadlineExceeded; disjoint from
  /// compile_failures).
  int compile_timeouts = 0;
  /// Executed alternatives whose runs stayed failed after the retry policy
  /// (degraded: they are excluded from BestBy and the default is kept).
  int exec_failures = 0;
  int cheaper_than_default = 0;
  /// Budgeted-mode accounting (see CandidateGenerationStats): candidates
  /// scored by the ranker, compiled within the compile budget, and skipped
  /// because the budget ran out. With budgeting off, candidates_compiled =
  /// candidates_generated and the others are 0.
  int candidates_scored = 0;
  int candidates_compiled = 0;
  int budget_skipped = 0;
  /// Ranker training examples, one per compiled candidate: the feature row
  /// scored for it and the improvement observed (estimated-cost improvement,
  /// replaced by measured runtime improvement for A/B-executed outcomes).
  /// Filled only when rank_candidates is on; consumed in deterministic job
  /// order by SteeringPipeline::TrainRanker.
  std::vector<RankerExample> ranker_examples;
  /// Estimated costs of all successfully recompiled candidates (Fig. 4).
  std::vector<double> candidate_costs;
  /// The executed alternatives (the N cheapest distinct plans).
  std::vector<ConfigOutcome> executed;

  /// Best executed outcome by a metric; nullptr when nothing improves on
  /// the default is NOT implied — callers compare against default_metrics.
  const ConfigOutcome* BestBy(Metric metric) const;

  /// Percentage change of the best executed runtime vs the default
  /// (negative = improvement; 0 when nothing executed beats default).
  double BestRuntimeChangePct() const;
};

/// Thread-safety: a SteeringPipeline is immutable after construction; all
/// entry points are const and safe to call concurrently. Parallelism is
/// internal — with options.num_threads != 0, candidate recompilations and
/// A/B executions fan out over an owned thread pool, and results are merged
/// in candidate order so every JobAnalysis is bit-identical to the serial
/// (num_threads = 0) path for a fixed seed, regardless of worker count.
class SteeringPipeline {
 public:
  SteeringPipeline(const Optimizer* optimizer, const ExecutionSimulator* simulator,
                   PipelineOptions options = {});
  ~SteeringPipeline();

  const PipelineOptions& options() const { return options_; }

  /// Runs span + search + recompilation (no execution) for a job.
  /// `default_metrics` may be supplied when already measured.
  JobAnalysis Recompile(const Job& job) const;

  /// Full §6 treatment: Recompile, then A/B-execute the cheapest distinct
  /// alternative plans and the default.
  JobAnalysis AnalyzeJob(const Job& job) const;

  /// Batch entry points: analyze a whole selection of jobs, parallelized
  /// over the pool (jobs outermost; per-job work runs inline on the claiming
  /// worker). out[i] corresponds to jobs[i].
  std::vector<JobAnalysis> RecompileJobs(const std::vector<Job>& jobs) const;
  std::vector<JobAnalysis> AnalyzeJobs(const std::vector<Job>& jobs) const;

  /// The internal pool (nullptr when num_threads == 0). Exposed for benches
  /// and for sharing with other batch stages (e.g. LearnedSteering).
  ThreadPool* pool() const { return pool_.get(); }

  /// Pool counters (zeroed stats when running serial).
  ThreadPoolStats pool_stats() const;

  /// Compiles a job under `config` through the compile cache (full-bits key:
  /// no span projection, always sound). This is the serving-path entry point
  /// — SteeringService and the CLI use it so recurring requests skip
  /// recompilation. Identical to CompileWithRetry when caching is disabled.
  Result<CompiledPlan> CompileCached(const Job& job, const RuleConfig& config) const;

  /// The compile cache (nullptr when compile_cache_mb <= 0).
  CompileCache* compile_cache() const { return cache_.get(); }

  /// Cache counters (zeroed stats when caching is disabled).
  CompileCacheStats compile_cache_stats() const;

  /// Persists the compile cache (CompileCache::SaveToFile): checksummed,
  /// version-tagged, stamped with `day`. kFailedPrecondition when caching
  /// is disabled. The nightly discovery pass uses this to ship warm caches
  /// to the serving tier.
  Status SaveCompileCache(const std::string& path, int day, bool sync = false) const;

  /// Pre-warms the compile cache from a file written by SaveCompileCache
  /// (CompileCache::WarmFromFile). `expected_day` >= 0 rejects a cache
  /// persisted for a different day; corrupt, torn or version-mismatched
  /// files are rejected whole. Rejection is always safe: the cache stays
  /// cold and compiles run fresh — never a wrong plan. kFailedPrecondition
  /// when caching is disabled.
  Status WarmCompileCache(const std::string& path, int expected_day,
                          int64_t* loaded = nullptr) const;

  /// Cumulative candidate draws pruned by span projection across all
  /// analyses run through this pipeline.
  int64_t span_duplicates_pruned() const {
    return ctr_span_pruned_.load(std::memory_order_relaxed);
  }

  /// True when this pipeline owns a CandidateRanker (rank_candidates).
  bool ranker_enabled() const { return options_.rank_candidates; }

  /// Trains the ranker on the examples of `analyses`, strictly in the given
  /// order (callers pass analyses in job order, so the trained bytes are
  /// independent of worker count). The batch entry points call this
  /// themselves after the merge; per-job callers (the shard orchestrator)
  /// call it once per deterministic batch. Returns examples consumed; 0
  /// when the ranker is disabled. Never call concurrently with analyses:
  /// scoring assumes a frozen ranker between training points.
  int64_t TrainRanker(const std::vector<JobAnalysis>& analyses) const;
  int64_t TrainRankerExamples(const std::vector<RankerExample>& examples) const;

  /// The ranker's full serialized state (empty when disabled). Equal bytes
  /// <=> equal state: the determinism tests compare these across worker
  /// counts and across sharded vs. unsharded discovery.
  std::string SerializeRanker() const;

  /// Persists / pre-warms the ranker (CandidateRanker::SaveToFile /
  /// WarmFromFile): checksummed and version-tagged, whole-file rejection on
  /// damage — a rejected warm leaves the ranker cold, never wrong.
  /// kFailedPrecondition when the ranker is disabled.
  Status SaveRanker(const std::string& path, bool sync = false) const;
  Status WarmRanker(const std::string& path) const;

  /// Cumulative budgeted-discovery counters across all analyses run through
  /// this pipeline (thread-safe snapshot; observability only).
  struct BudgetStats {
    int64_t candidates_scored = 0;
    int64_t candidates_compiled = 0;
    int64_t budget_skipped = 0;
    /// Executed alternatives that beat the default plan's measured runtime.
    int64_t improvements_found = 0;
    int64_t ranker_examples_trained = 0;
    double ImprovementsPerCompile() const {
      return candidates_compiled > 0
                 ? static_cast<double>(improvements_found) / candidates_compiled
                 : 0.0;
    }
  };
  BudgetStats budget_stats() const;

  /// Cumulative per-stage failure counters (compile timeouts/retries,
  /// execution retries/failures, fallbacks) across all analyses run through
  /// this pipeline. Thread-safe snapshot; counters never influence results.
  PipelineFailureStats failure_stats() const;

  /// Executes `root` under the simulator, retrying transient run failures
  /// (ExecMetrics::failed) per options().retry with nonces derived from
  /// hash(nonce, attempt). The returned metrics are the successful run's,
  /// with retries / failed_vertices / wasted_cpu_time accumulated across
  /// the failed attempts; `failed` stays set when every attempt failed.
  ExecMetrics ExecuteWithRetry(const Job& job, const PlanNodePtr& root, uint64_t nonce) const;

  /// §6.1 job-selection heuristics over a day of (already default-compiled
  /// and default-executed) jobs. Returns indices into `runtimes`/`costs`:
  /// jobs in the runtime window that either have clearly-cheaper recompiled
  /// plans (checked later) or sit in the low-cost/high-runtime corner.
  std::vector<int> SelectJobsInWindow(const std::vector<double>& default_runtimes) const;

  /// The Fig.-5 corner test given workload-level cost/runtime distributions.
  std::vector<int> SelectLowCostHighRuntime(const std::vector<double>& est_costs,
                                            const std::vector<double>& runtimes) const;

 private:
  /// Noise nonce of one candidate's A/B run: derived from the base seed and
  /// the candidate's configuration only (order- and thread-independent).
  uint64_t CandidateNonce(const RuleConfig& config) const;

  /// Compiles under options().compile_timeout_s, retrying transient
  /// deadline misses per options().retry. Permanent kCompilationFailed
  /// results are never retried (the same config always fails the same way).
  /// `session` (may be null) shares per-job artifacts across compiles.
  Result<CompiledPlan> CompileWithRetry(const Job& job, const RuleConfig& config,
                                        CompileSession* session = nullptr) const;

  /// CompileWithRetry behind a cache lookup/insert on `key`. Cached results
  /// are bit-identical to fresh compiles; transient timeouts are never
  /// cached. Equivalent to plain CompileWithRetry when caching is disabled.
  Result<CompiledPlan> CompileViaCache(const Job& job, const RuleConfig& config,
                                       const CompileCache::Key& key,
                                       CompileSession* session) const;

  const Optimizer* optimizer_;
  const ExecutionSimulator* simulator_;
  PipelineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Sharded and thread-safe; mutable state internal to the cache. Owned
  /// here so batch analyses and the serving path share one instance.
  std::unique_ptr<CompileCache> cache_;

  // Failure counters (relaxed atomics: observability only, never part of a
  // result; safe to bump from pool workers).
  mutable std::atomic<int64_t> ctr_compile_timeouts_{0};
  mutable std::atomic<int64_t> ctr_compile_unavailable_{0};
  /// Simulated backoff, accounted in milliseconds (atomic<double> has no
  /// portable fetch_add before C++20 libs caught up; ms granularity is
  /// plenty for observability).
  mutable std::atomic<int64_t> ctr_retry_backoff_ms_{0};
  mutable std::atomic<int64_t> ctr_compile_retries_{0};
  mutable std::atomic<int64_t> ctr_compile_failures_{0};
  mutable std::atomic<int64_t> ctr_exec_retries_{0};
  mutable std::atomic<int64_t> ctr_exec_failures_{0};
  mutable std::atomic<int64_t> ctr_fallbacks_{0};
  mutable std::atomic<int64_t> ctr_span_pruned_{0};

  // Budgeted-discovery counters (same relaxed-atomic observability contract).
  mutable std::atomic<int64_t> ctr_candidates_scored_{0};
  mutable std::atomic<int64_t> ctr_candidates_compiled_{0};
  mutable std::atomic<int64_t> ctr_budget_skipped_{0};
  mutable std::atomic<int64_t> ctr_improvements_found_{0};
  mutable std::atomic<int64_t> ctr_ranker_examples_{0};

  /// The candidate ranker (null unless options.rank_candidates). Scoring
  /// and training both hold ranker_mu_; determinism additionally relies on
  /// the train-at-batch-boundaries contract (see TrainRanker).
  mutable Mutex ranker_mu_;
  mutable std::unique_ptr<CandidateRanker> ranker_ GUARDED_BY(ranker_mu_);
};

}  // namespace qsteer

#endif  // QSTEER_CORE_PIPELINE_H_
