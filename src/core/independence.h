// Rule-independence discovery (paper §8 future work: "improvements can
// discover independent subsets of rules, which will make the space of rule
// configurations smaller, therefore enabling exploration of better
// configurations").
//
// Two span rules are treated as interacting when their single-rule
// *signature footprints* overlap: disabling rule a (alone) and rule b
// (alone) changes overlapping sets of used rules, i.e., they steer the same
// part of the plan. Independent groups are the connected components of the
// interaction graph; configurations can then be sampled per group, shrinking
// the search space from 2^|span| to sum(2^|group|) — the §5.2 example made
// empirical instead of assumed-by-category.
#ifndef QSTEER_CORE_INDEPENDENCE_H_
#define QSTEER_CORE_INDEPENDENCE_H_

#include <vector>

#include "core/config_search.h"
#include "optimizer/optimizer.h"

namespace qsteer {

struct IndependenceResult {
  /// Independent rule groups (connected components), each sorted ascending.
  std::vector<std::vector<RuleId>> groups;
  /// Per-span-rule footprint: the signature bits that toggling the rule
  /// alone changed (parallel to the sorted span id order).
  std::vector<BitVector256> footprints;
  double log2_naive = 0.0;
  double log2_grouped = 0.0;
  /// Compilations spent (|span| + 1).
  int compiles_used = 0;
};

/// Discovers empirically independent rule groups within a job's span.
IndependenceResult DiscoverIndependentGroups(const Optimizer& optimizer, const Job& job,
                                             const BitVector256& span);

/// Generates candidate configurations sampling each independent group
/// separately (mirrors GenerateCandidateConfigs, with measured groups
/// instead of the category-independence assumption).
std::vector<RuleConfig> GenerateGroupedConfigs(const IndependenceResult& independence,
                                               const ConfigSearchOptions& options);

}  // namespace qsteer

#endif  // QSTEER_CORE_INDEPENDENCE_H_
