// RuleDiff (paper Definition 6.1): the rules whose *usage* actually changed
// between two compilations of the same job — comparing rule signatures, not
// rule configurations, so no-op configuration changes do not show up.
#ifndef QSTEER_CORE_RULE_DIFF_H_
#define QSTEER_CORE_RULE_DIFF_H_

#include <string>
#include <vector>

#include "optimizer/rule_config.h"

namespace qsteer {

struct RuleDiff {
  /// Rules used by the default plan but not the new plan ("rules only in
  /// default plan").
  std::vector<RuleId> only_in_default;
  /// Rules used by the new plan but not the default plan.
  std::vector<RuleId> only_in_new;

  bool Empty() const { return only_in_default.empty() && only_in_new.empty(); }

  /// Fixed-width encoding over all 256 rules for featurization (§7.2):
  /// +1 = only in new plan, -1 = only in default, 0 = unchanged.
  std::vector<double> ToFeatureVector() const;

  /// Human-readable listing with rule names (Table 4 style).
  std::string ToString() const;
};

RuleDiff ComputeRuleDiff(const RuleSignature& default_signature,
                         const RuleSignature& new_signature);

}  // namespace qsteer

#endif  // QSTEER_CORE_RULE_DIFF_H_
