// Learned configuration selection (paper §7): per job group, collect
// runtimes of K candidate configurations over jobs from several weeks, train
// a small neural net to predict normalized runtimes (BCE loss), and choose
// the predicted-fastest configuration for unseen jobs.
#ifndef QSTEER_CORE_LEARNED_STEERING_H_
#define QSTEER_CORE_LEARNED_STEERING_H_

#include <vector>

#include "core/featurize.h"
#include "core/pipeline.h"
#include "ml/mlp.h"

namespace qsteer {

/// Training data for one job group.
struct GroupDataset {
  RuleSignature group_signature;
  /// The K candidate configurations. Slot 0 is always the default.
  std::vector<RuleConfig> configs;
  /// Per sample: the feature vector and the K measured values of each
  /// metric (a slot is negative when that configuration did not compile for
  /// the job).
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> runtimes;
  std::vector<std::vector<double>> cpu_times;
  std::vector<std::vector<double>> io_times;
  std::vector<std::string> job_names;

  const std::vector<std::vector<double>>& MetricMatrix(Metric metric) const {
    switch (metric) {
      case Metric::kCpuTime:
        return cpu_times;
      case Metric::kIoTime:
        return io_times;
      default:
        return runtimes;
    }
  }

  int k() const { return static_cast<int>(configs.size()); }
  int size() const { return static_cast<int>(features.size()); }
};

/// Per-test-job outcome of the learned model.
struct LearnedChoice {
  std::string job_name;
  int chosen_arm = 0;
  double chosen_runtime = 0.0;
  double default_runtime = 0.0;
  double best_runtime = 0.0;
};

struct LearnedEvaluation {
  std::vector<LearnedChoice> test_choices;
  /// Aggregates over the test set.
  double mean_default = 0.0;
  double mean_best = 0.0;
  double mean_learned = 0.0;
  double p90_default = 0.0, p90_best = 0.0, p90_learned = 0.0;
  double p99_default = 0.0, p99_best = 0.0, p99_learned = 0.0;
  double train_loss = 0.0;
};

/// Thread-safety: immutable after construction; all methods are const and
/// safe to call concurrently. Pass a ThreadPool to parallelize dataset
/// collection across jobs — per-sample noise nonces are pure functions of
/// (seed, job index, arm), so the dataset is bit-identical for any worker
/// count, including the serial pool == nullptr path.
class LearnedSteering {
 public:
  /// `pool` (optional, not owned, may outlive-requirement: must stay alive
  /// for the learner's lifetime) parallelizes CollectDataset over jobs.
  LearnedSteering(const Optimizer* optimizer, const ExecutionSimulator* simulator,
                  const Catalog* catalog, FeaturizerOptions featurizer_options = {},
                  ThreadPool* pool = nullptr);

  /// Executes every configuration for every job, producing the training
  /// dataset (the paper's "execute each of the K configurations for every
  /// job sampled over two weeks"). Jobs are processed in parallel over the
  /// pool; rows keep job order.
  GroupDataset CollectDataset(const std::vector<Job>& jobs,
                              const std::vector<RuleConfig>& configs, uint64_t seed) const;

  /// Random 40/20/40 train/validation/test split (paper §7.4), model
  /// training, and test-set evaluation. `target` selects which metric the
  /// model optimizes — the paper's §6.2 "separate models per metric" idea.
  LearnedEvaluation TrainAndEvaluate(const GroupDataset& dataset, const MlpOptions& options,
                                     double train_frac = 0.4, double val_frac = 0.2,
                                     Metric target = Metric::kRuntime) const;

 private:
  const Optimizer* optimizer_;
  const ExecutionSimulator* simulator_;
  JobFeaturizer featurizer_;
  ThreadPool* pool_ = nullptr;  // not owned
};

}  // namespace qsteer

#endif  // QSTEER_CORE_LEARNED_STEERING_H_
