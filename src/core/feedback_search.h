// Feedback-guided configuration search (paper §8 future work: "use feedback
// from the execution results to guide future iterations of the
// configuration search").
//
// Instead of executing the 10 cheapest candidates in one shot, the search
// runs in rounds: each executed configuration's runtime updates per-rule
// scores (how much disabling each span rule correlates with improvement),
// and the next round samples disables proportionally to those scores.
#ifndef QSTEER_CORE_FEEDBACK_SEARCH_H_
#define QSTEER_CORE_FEEDBACK_SEARCH_H_

#include <vector>

#include "core/pipeline.h"

namespace qsteer {

struct FeedbackSearchOptions {
  int rounds = 4;
  int configs_per_round = 4;
  /// Softmax temperature over per-rule scores (higher = more exploration).
  double temperature = 0.5;
  uint64_t seed = 1;
};

struct FeedbackSearchResult {
  double default_runtime = 0.0;
  /// All executed outcomes, in execution order.
  std::vector<ConfigOutcome> executed;
  /// Best runtime observed after each round (including the default).
  std::vector<double> best_after_round;
  /// The winning configuration (the default when nothing beat it).
  RuleConfig best_config;
  double best_runtime = 0.0;
  int executions = 0;

  double BestImprovementPct() const {
    return default_runtime > 0.0 ? (best_runtime - default_runtime) / default_runtime * 100.0
                                 : 0.0;
  }
};

class FeedbackSearch {
 public:
  FeedbackSearch(const Optimizer* optimizer, const ExecutionSimulator* simulator,
                 FeedbackSearchOptions options = {});

  /// Runs the round-based search for one job.
  FeedbackSearchResult Run(const Job& job) const;

 private:
  const Optimizer* optimizer_;
  const ExecutionSimulator* simulator_;
  FeedbackSearchOptions options_;
};

}  // namespace qsteer

#endif  // QSTEER_CORE_FEEDBACK_SEARCH_H_
