// Randomized configuration search (paper §5.2).
//
// Candidates are generated from the job span under the category-independence
// assumption: every rule outside the span stays enabled (including
// off-by-default rules — footnote 2: rules missed by the span heuristic can
// still matter), and within each category an independent random subset of
// the span is disabled.
#ifndef QSTEER_CORE_CONFIG_SEARCH_H_
#define QSTEER_CORE_CONFIG_SEARCH_H_

#include <vector>

#include "common/thread_pool.h"
#include "optimizer/rule_config.h"

namespace qsteer {

struct ConfigSearchOptions {
  /// M: number of unique candidate configurations to generate (§5 uses up
  /// to 1000 per job).
  int max_configs = 1000;
  /// Attempt budget per candidate before giving up on uniqueness.
  int max_attempts_factor = 8;
  uint64_t seed = 1;
  /// When false, ignore category structure and sample uniformly from the
  /// whole span (the §5.2 ablation baseline).
  bool per_category = true;
};

/// Generates up to `options.max_configs` unique candidate configurations for
/// a job with the given span. The default configuration itself is never
/// included.
std::vector<RuleConfig> GenerateCandidateConfigs(const BitVector256& span,
                                                 const ConfigSearchOptions& options);

/// Batch variant for workload-scale discovery: generates the candidate set
/// of every (span, options) pair, fanned out over `pool` (serial when pool
/// is null). out[i] equals GenerateCandidateConfigs(spans[i], options[i]) —
/// each pair draws from its own seeded generator, so results do not depend
/// on batch order or worker count. `spans` and `options` must be the same
/// length.
std::vector<std::vector<RuleConfig>> GenerateCandidateConfigsBatch(
    const std::vector<BitVector256>& spans, const std::vector<ConfigSearchOptions>& options,
    ThreadPool* pool = nullptr);

/// Size of the naive search space 2^|span| vs the category-factorized
/// sum of 2^|span ∩ category| (the §5.2 example: 2^5=32 vs 2^2+2^3=12).
/// Returned as log2 values to avoid overflow.
struct SearchSpaceSize {
  double log2_naive = 0.0;
  double log2_factorized = 0.0;
};
SearchSpaceSize ComputeSearchSpaceSize(const BitVector256& span);

}  // namespace qsteer

#endif  // QSTEER_CORE_CONFIG_SEARCH_H_
