// Randomized configuration search (paper §5.2).
//
// Candidates are generated from the job span under the category-independence
// assumption: every rule outside the span stays enabled (including
// off-by-default rules — footnote 2: rules missed by the span heuristic can
// still matter), and within each category an independent random subset of
// the span is disabled.
#ifndef QSTEER_CORE_CONFIG_SEARCH_H_
#define QSTEER_CORE_CONFIG_SEARCH_H_

#include <vector>

#include "common/thread_pool.h"
#include "optimizer/rule_config.h"

namespace qsteer {

struct ConfigSearchOptions {
  /// M: number of unique candidate configurations to generate (§5 uses up
  /// to 1000 per job).
  int max_configs = 1000;
  /// Attempt budget per candidate before giving up on uniqueness.
  int max_attempts_factor = 8;
  uint64_t seed = 1;
  /// When false, ignore category structure and sample uniformly from the
  /// whole span (the §5.2 ablation baseline).
  bool per_category = true;
};

/// Where the attempt budget of one GenerateCandidateConfigs call went.
struct CandidateGenerationStats {
  /// Configurations emitted.
  int generated = 0;
  /// Draws discarded because another emitted configuration (or the default)
  /// already had the same span projection — span-equivalent candidates would
  /// compile to the identical plan (paper §4), so they are pruned here and
  /// never reach the compile cache.
  int span_duplicates_pruned = 0;
  /// Draws that repeated an earlier draw bit-for-bit (RNG re-draws).
  int repeated_draws = 0;

  // Budgeted-mode accounting, filled by SteeringPipeline after generation
  // (generation itself never compiles): candidates scored by the
  // CandidateRanker, candidates actually compiled within the compile
  // budget, and candidates generated but skipped because the budget ran out.
  int candidates_scored = 0;
  int candidates_compiled = 0;
  int budget_skipped = 0;
};

/// Generates up to `options.max_configs` candidate configurations for a job
/// with the given span, unique *by span projection*: no two emitted
/// configurations agree on every span rule, and none matches the default's
/// projection (span-equivalent duplicates would recompile to the default
/// plan — wasted work). `stats`, when non-null, reports the dedup breakdown.
std::vector<RuleConfig> GenerateCandidateConfigs(const BitVector256& span,
                                                 const ConfigSearchOptions& options,
                                                 CandidateGenerationStats* stats = nullptr);

/// Batch variant for workload-scale discovery: generates the candidate set
/// of every (span, options) pair, fanned out over `pool` (serial when pool
/// is null). out[i] equals GenerateCandidateConfigs(spans[i], options[i]) —
/// each pair draws from its own seeded generator, so results do not depend
/// on batch order or worker count. `spans` and `options` must be the same
/// length.
std::vector<std::vector<RuleConfig>> GenerateCandidateConfigsBatch(
    const std::vector<BitVector256>& spans, const std::vector<ConfigSearchOptions>& options,
    ThreadPool* pool = nullptr);

/// Size of the naive search space 2^|span| vs the category-factorized
/// sum of 2^|span ∩ category| (the §5.2 example: 2^5=32 vs 2^2+2^3=12).
/// Returned as log2 values to avoid overflow.
struct SearchSpaceSize {
  double log2_naive = 0.0;
  double log2_factorized = 0.0;
};
SearchSpaceSize ComputeSearchSpaceSize(const BitVector256& span);

}  // namespace qsteer

#endif  // QSTEER_CORE_CONFIG_SEARCH_H_
