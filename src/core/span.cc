#include "core/span.h"

#include "optimizer/compile_cache.h"

namespace qsteer {

SpanResult ComputeJobSpan(const Optimizer& optimizer, const Job& job,
                          const SpanOptions& options, const CachingCompiler* compiler) {
  SpanResult result;
  RuleConfig config = RuleConfig::AllEnabled();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Result<CompiledPlan> plan = compiler != nullptr ? compiler->Compile(job, config)
                                                    : optimizer.Compile(job, config);
    if (!plan.ok()) {
      result.ended_on_compile_failure = true;
      break;
    }
    ++result.iterations;
    // on-rules of this signature, restricted to non-required rules (required
    // rules cannot be disabled, so they are not part of the span).
    BitVector256 on_rules;
    for (int id : plan.value().signature.ToIndices()) {
      if (CategoryOfRule(id) != RuleCategory::kRequired) on_rules.Set(id);
    }
    BitVector256 fresh = on_rules.AndNot(result.span);
    if (fresh.None()) break;
    result.span = result.span.Or(fresh);
    for (int id : fresh.ToIndices()) config.Disable(id);
  }

  for (int id : result.span.ToIndices()) {
    switch (CategoryOfRule(id)) {
      case RuleCategory::kOffByDefault:
        ++result.off_by_default;
        break;
      case RuleCategory::kOnByDefault:
        ++result.on_by_default;
        break;
      case RuleCategory::kImplementation:
        ++result.implementation;
        break;
      case RuleCategory::kRequired:
        break;
    }
  }
  return result;
}

}  // namespace qsteer
