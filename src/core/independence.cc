#include "core/independence.h"

#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/random.h"

namespace qsteer {

namespace {

/// Union-find over span indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

IndependenceResult DiscoverIndependentGroups(const Optimizer& optimizer, const Job& job,
                                             const BitVector256& span) {
  IndependenceResult result;
  std::vector<int> span_ids = span.ToIndices();
  if (span_ids.empty()) return result;

  Result<CompiledPlan> base = optimizer.Compile(job, RuleConfig::AllEnabled());
  ++result.compiles_used;
  if (!base.ok()) return result;

  // Footprint of each rule: signature bits changed by toggling it alone,
  // plus the rule itself (so a rule always belongs to its own footprint).
  result.footprints.resize(span_ids.size());
  for (size_t i = 0; i < span_ids.size(); ++i) {
    RuleConfig config = RuleConfig::AllEnabled();
    config.Disable(span_ids[i]);
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    ++result.compiles_used;
    BitVector256 footprint;
    footprint.Set(span_ids[i]);
    if (plan.ok()) {
      footprint = footprint.Or(base.value().signature.Xor(plan.value().signature));
    } else {
      // A rule whose removal breaks compilation touches everything it could
      // have implemented: treat its footprint as the whole base signature.
      footprint = footprint.Or(base.value().signature);
    }
    result.footprints[i] = footprint;
  }

  // Interaction graph: overlapping footprints -> same group.
  DisjointSets sets(span_ids.size());
  for (size_t i = 0; i < span_ids.size(); ++i) {
    for (size_t j = i + 1; j < span_ids.size(); ++j) {
      if (result.footprints[i].Intersects(result.footprints[j])) sets.Union(i, j);
    }
  }
  std::vector<std::vector<RuleId>> by_root(span_ids.size());
  for (size_t i = 0; i < span_ids.size(); ++i) {
    by_root[sets.Find(i)].push_back(span_ids[i]);
  }
  for (auto& group : by_root) {
    if (!group.empty()) result.groups.push_back(std::move(group));
  }

  result.log2_naive = static_cast<double>(span_ids.size());
  double combos = 0.0;
  for (const auto& group : result.groups) {
    combos += std::exp2(static_cast<double>(group.size()));
  }
  result.log2_grouped = combos > 0.0 ? std::log2(combos) : 0.0;
  return result;
}

std::vector<RuleConfig> GenerateGroupedConfigs(const IndependenceResult& independence,
                                               const ConfigSearchOptions& options) {
  std::vector<RuleConfig> out;
  if (independence.groups.empty()) return out;
  Pcg32 rng(options.seed, /*stream=*/613);
  std::unordered_set<uint64_t> seen = {RuleConfig::Default().Hash()};
  int attempts = options.max_configs * options.max_attempts_factor;
  while (static_cast<int>(out.size()) < options.max_configs && attempts-- > 0) {
    RuleConfig config = RuleConfig::AllEnabled();
    for (const std::vector<RuleId>& group : independence.groups) {
      int k = static_cast<int>(rng.UniformInt(0, static_cast<int>(group.size())));
      for (int idx : rng.SampleWithoutReplacement(static_cast<int>(group.size()), k)) {
        config.Disable(group[static_cast<size_t>(idx)]);
      }
    }
    if (seen.insert(config.Hash()).second) out.push_back(std::move(config));
  }
  return out;
}

}  // namespace qsteer
