#include "core/feedback_search.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/random.h"
#include "core/span.h"

namespace qsteer {

FeedbackSearch::FeedbackSearch(const Optimizer* optimizer,
                               const ExecutionSimulator* simulator,
                               FeedbackSearchOptions options)
    : optimizer_(optimizer), simulator_(simulator), options_(options) {}

FeedbackSearchResult FeedbackSearch::Run(const Job& job) const {
  FeedbackSearchResult result;
  Result<CompiledPlan> default_plan = optimizer_->Compile(job, RuleConfig::Default());
  if (!default_plan.ok()) return result;
  uint64_t nonce = options_.seed;
  result.default_runtime = simulator_->Execute(job, default_plan.value().root, ++nonce).runtime;
  result.best_runtime = result.default_runtime;
  result.best_config = RuleConfig::Default();

  SpanResult span = ComputeJobSpan(*optimizer_, job);
  std::vector<int> span_ids = span.span.ToIndices();
  if (span_ids.empty()) return result;

  // Per-span-rule score: positive when disabling the rule correlated with
  // faster executions. Off-by-default rules get an "enable" score instead
  // (their action in a candidate is being turned ON).
  std::vector<double> score(span_ids.size(), 0.0);
  Pcg32 rng(options_.seed ^ job.TemplateHash(), 509);
  std::unordered_set<uint64_t> seen_configs = {RuleConfig::Default().Hash()};
  std::unordered_set<uint64_t> seen_plans = {
      PlanHash(default_plan.value().root, /*for_template=*/false)};

  for (int round = 0; round < options_.rounds; ++round) {
    // Sampling weights from scores (softmax-ish).
    std::vector<double> weight(span_ids.size());
    for (size_t i = 0; i < span_ids.size(); ++i) {
      weight[i] = std::exp(std::clamp(score[i] / options_.temperature, -6.0, 6.0));
    }
    double total_weight = 0.0;
    for (double w : weight) total_weight += w;

    int executed_this_round = 0;
    for (int attempt = 0; attempt < options_.configs_per_round * 6 &&
                          executed_this_round < options_.configs_per_round;
         ++attempt) {
      // Sample a disable-set: each span rule joins with probability
      // proportional to its weight, targeting |span|/3 toggles on average.
      RuleConfig config = RuleConfig::AllEnabled();
      std::vector<size_t> toggled;
      double target = std::max(1.0, static_cast<double>(span_ids.size()) / 3.0);
      for (size_t i = 0; i < span_ids.size(); ++i) {
        double p = std::min(0.95, target * weight[i] / std::max(total_weight, 1e-9));
        if (rng.NextBool(p)) {
          config.Disable(span_ids[i]);
          toggled.push_back(i);
        }
      }
      if (toggled.empty() || !seen_configs.insert(config.Hash()).second) continue;

      Result<CompiledPlan> plan = optimizer_->Compile(job, config);
      if (!plan.ok()) {
        // Dead configurations teach too: damp the toggles that broke it.
        for (size_t i : toggled) score[i] -= 0.1;
        continue;
      }
      if (!seen_plans.insert(PlanHash(plan.value().root, false)).second) continue;

      ConfigOutcome outcome;
      outcome.config = config;
      outcome.diff_vs_default =
          ComputeRuleDiff(default_plan.value().signature, plan.value().signature);
      outcome.plan = std::move(plan.value());
      outcome.metrics = simulator_->Execute(job, outcome.plan.root, ++nonce);
      outcome.executed = true;
      ++executed_this_round;
      ++result.executions;

      double improvement = (result.default_runtime - outcome.metrics.runtime) /
                           std::max(result.default_runtime, 1e-9);
      for (size_t i : toggled) score[i] += improvement;
      if (outcome.metrics.runtime < result.best_runtime) {
        result.best_runtime = outcome.metrics.runtime;
        result.best_config = outcome.config;
      }
      result.executed.push_back(std::move(outcome));
    }
    result.best_after_round.push_back(result.best_runtime);
  }
  return result;
}

}  // namespace qsteer
