#include "core/config_search.h"

#include <cmath>
#include <unordered_set>

#include "common/random.h"

namespace qsteer {

std::vector<RuleConfig> GenerateCandidateConfigs(const BitVector256& span,
                                                 const ConfigSearchOptions& options,
                                                 CandidateGenerationStats* stats) {
  CandidateGenerationStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CandidateGenerationStats{};
  std::vector<RuleConfig> out;
  std::vector<int> span_ids = span.ToIndices();
  if (span_ids.empty()) return out;

  // Per-category views of the span.
  std::vector<std::vector<int>> by_category(4);
  for (int id : span_ids) {
    by_category[static_cast<int>(CategoryOfRule(id))].push_back(id);
  }

  Pcg32 rng(options.seed, /*stream=*/211);
  // Uniqueness is decided on the *span projection* (bits ∩ span): two
  // configurations that agree on every span rule compile to the same plan
  // (paper §4), so the weaker one is pure recompilation waste. Seeding with
  // the default's projection also prunes candidates that merely re-derive
  // the default plan. Full hashes are tracked separately only to tell RNG
  // re-draws apart from genuine span-equivalence in the stats.
  std::unordered_set<uint64_t> seen_projected;
  std::unordered_set<uint64_t> seen_full;
  seen_projected.insert(RuleConfig::Default().bits().And(span).Hash());

  int attempts_budget = options.max_configs * options.max_attempts_factor;
  while (static_cast<int>(out.size()) < options.max_configs && attempts_budget-- > 0) {
    // Start from everything enabled: rules outside the span cannot change
    // the plan if truly inapplicable, and keeping them on covers rules the
    // span heuristic missed.
    RuleConfig config = RuleConfig::AllEnabled();
    if (options.per_category) {
      // Independently per category, disable a random subset of the span.
      for (const std::vector<int>& ids : by_category) {
        if (ids.empty()) continue;
        int k = static_cast<int>(rng.UniformInt(0, static_cast<int>(ids.size())));
        for (int idx : rng.SampleWithoutReplacement(static_cast<int>(ids.size()), k)) {
          config.Disable(ids[static_cast<size_t>(idx)]);
        }
      }
    } else {
      int k = static_cast<int>(rng.UniformInt(0, static_cast<int>(span_ids.size())));
      for (int idx : rng.SampleWithoutReplacement(static_cast<int>(span_ids.size()), k)) {
        config.Disable(span_ids[static_cast<size_t>(idx)]);
      }
    }
    if (!seen_full.insert(config.Hash()).second) {
      ++stats->repeated_draws;
      continue;
    }
    if (!seen_projected.insert(config.bits().And(span).Hash()).second) {
      ++stats->span_duplicates_pruned;
      continue;
    }
    out.push_back(std::move(config));
  }
  stats->generated = static_cast<int>(out.size());
  return out;
}

std::vector<std::vector<RuleConfig>> GenerateCandidateConfigsBatch(
    const std::vector<BitVector256>& spans, const std::vector<ConfigSearchOptions>& options,
    ThreadPool* pool) {
  size_t n = spans.size() < options.size() ? spans.size() : options.size();
  return ParallelMap<std::vector<RuleConfig>>(
      pool, static_cast<int64_t>(n), [&](int64_t i) {
        return GenerateCandidateConfigs(spans[static_cast<size_t>(i)],
                                        options[static_cast<size_t>(i)]);
      });
}

SearchSpaceSize ComputeSearchSpaceSize(const BitVector256& span) {
  SearchSpaceSize size;
  int per_category[4] = {0, 0, 0, 0};
  int total = 0;
  for (int id : span.ToIndices()) {
    ++per_category[static_cast<int>(CategoryOfRule(id))];
    ++total;
  }
  size.log2_naive = static_cast<double>(total);
  double factorized = 0.0;
  for (int c = 0; c < 4; ++c) {
    if (per_category[c] > 0) factorized += std::exp2(static_cast<double>(per_category[c]));
  }
  size.log2_factorized = factorized > 0.0 ? std::log2(factorized) : 0.0;
  return size;
}

}  // namespace qsteer
