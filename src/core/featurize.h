// Job featurization for learned configuration selection (paper §7.2).
//
// Feature vector layout (fixed per job group):
//   (1) job-level: log estimated input size, input-hash one-hot over 50
//       hashed bins, template-hash one-hot over 50 hashed bins;
//   (2) query-graph: per logical operator kind, the operator count and the
//       average log-cardinality estimate;
//   (3) per candidate configuration (K slots): log estimated plan cost and
//       the RuleDiff-vs-default hashed into signed bins.
// Continuous features are later min-max scaled by the training harness.
#ifndef QSTEER_CORE_FEATURIZE_H_
#define QSTEER_CORE_FEATURIZE_H_

#include <vector>

#include "core/rule_diff.h"
#include "optimizer/optimizer.h"

namespace qsteer {

struct FeaturizerOptions {
  /// Hashed-bin count for large-alphabet categorical features (§7.2: 50).
  int hash_bins = 50;
  /// Signed hashed bins encoding each candidate's RuleDiff.
  int diff_bins = 24;
};

class JobFeaturizer {
 public:
  JobFeaturizer(const Catalog* catalog, FeaturizerOptions options = {});

  /// Job-level + query-graph features (sections 1-2 of the layout).
  std::vector<double> JobFeatures(const Job& job) const;

  /// Candidate-slot features (section 3) for one compiled alternative.
  std::vector<double> ConfigFeatures(const CompiledPlan& plan,
                                     const RuleDiff& diff_vs_default) const;

  /// Full vector: job features + K candidate slots (missing candidates are
  /// zero-padded so every sample in a group has identical width).
  std::vector<double> Featurize(const Job& job, const std::vector<const CompiledPlan*>& plans,
                                const std::vector<const RuleDiff*>& diffs, int k_slots) const;

  int JobFeatureWidth() const;
  int ConfigFeatureWidth() const;

 private:
  const Catalog* catalog_;
  FeaturizerOptions options_;
};

}  // namespace qsteer

#endif  // QSTEER_CORE_FEATURIZE_H_
