// Textual rule hints: the surface through which SCOPE customers (and this
// library's recommender) express configurations (paper §3.2: "SCOPE exposes
// flags, or 'hints', that allow end users to specify which rules should be
// enabled or disabled"; §3.3: deployment as plan hints).
//
// Grammar (whitespace-insensitive, case-sensitive rule names):
//   hint-string := clause (';' clause)*
//   clause      := 'ENABLE' '(' name (',' name)* ')'
//                | 'DISABLE' '(' name (',' name)* ')'
#ifndef QSTEER_CORE_HINTS_H_
#define QSTEER_CORE_HINTS_H_

#include <string>

#include "common/status.h"
#include "optimizer/rule_config.h"

namespace qsteer {

/// Parses a hint string into a configuration (default + the hints).
/// Unknown rule names and attempts to disable required rules are errors.
Result<RuleConfig> ParseHintString(const std::string& text);

/// Renders a configuration as the minimal hint string that reproduces it
/// from the default configuration (empty string for the default itself).
std::string ToHintString(const RuleConfig& config);

}  // namespace qsteer

#endif  // QSTEER_CORE_HINTS_H_
