// Job span (paper Definition 5.1 + Algorithm 1): the set of non-required
// rules that can affect a job's final plan, approximated by iteratively
// disabling every rule observed in the signature and recompiling to surface
// the alternatives.
#ifndef QSTEER_CORE_SPAN_H_
#define QSTEER_CORE_SPAN_H_

#include "optimizer/optimizer.h"

namespace qsteer {

class CachingCompiler;

struct SpanResult {
  /// Non-required rules that can impact the final plan.
  BitVector256 span;
  /// Iterations of the disable-recompile loop.
  int iterations = 0;
  /// Whether the loop ended because a configuration stopped compiling
  /// (implicit rule dependencies, §4 challenge 1).
  bool ended_on_compile_failure = false;
  /// Span size per rule category (required excluded by definition).
  int off_by_default = 0;
  int on_by_default = 0;
  int implementation = 0;
};

struct SpanOptions {
  /// Safety cap on disable-recompile iterations.
  int max_iterations = 24;
};

/// Approximates the job span per Algorithm 1. Starts from the configuration
/// enabling all 219 non-required rules ("config <- all rule ids w/o required
/// rules"), repeatedly removes the signature's on-rules, and recompiles
/// until no new rules appear or compilation fails.
///
/// When `compiler` is non-null, loop compiles go through it — reusing the
/// job's compile-cache entries and seed memo (the span loop probes full
/// configurations, so its cache keys are full-bits and always sound).
SpanResult ComputeJobSpan(const Optimizer& optimizer, const Job& job,
                          const SpanOptions& options = {},
                          const CachingCompiler* compiler = nullptr);

}  // namespace qsteer

#endif  // QSTEER_CORE_SPAN_H_
