#include "core/pipeline.h"

#include <algorithm>

#include "common/stats.h"

namespace qsteer {

const ConfigOutcome* JobAnalysis::BestBy(Metric metric) const {
  const ConfigOutcome* best = nullptr;
  for (const ConfigOutcome& outcome : executed) {
    if (!outcome.executed) continue;
    if (best == nullptr || MetricOf(outcome.metrics, metric) < MetricOf(best->metrics, metric)) {
      best = &outcome;
    }
  }
  return best;
}

double JobAnalysis::BestRuntimeChangePct() const {
  const ConfigOutcome* best = BestBy(Metric::kRuntime);
  if (best == nullptr || default_metrics.runtime <= 0.0) return 0.0;
  // Negative = improvement; positive when every alternative regresses.
  return (best->metrics.runtime - default_metrics.runtime) / default_metrics.runtime * 100.0;
}

SteeringPipeline::SteeringPipeline(const Optimizer* optimizer,
                                   const ExecutionSimulator* simulator,
                                   PipelineOptions options)
    : optimizer_(optimizer), simulator_(simulator), options_(std::move(options)) {}

JobAnalysis SteeringPipeline::Recompile(const Job& job) const {
  JobAnalysis analysis;
  analysis.job = job;

  Result<CompiledPlan> default_plan = optimizer_->Compile(job, RuleConfig::Default());
  if (!default_plan.ok()) {
    // The default configuration always compiles for generated workloads;
    // return an empty analysis defensively.
    return analysis;
  }
  analysis.default_plan = std::move(default_plan.value());
  analysis.span = ComputeJobSpan(*optimizer_, job);

  ConfigSearchOptions search = options_.search;
  search.max_configs = options_.max_candidate_configs;
  search.seed = options_.seed ^ job.TemplateHash();
  std::vector<RuleConfig> candidates = GenerateCandidateConfigs(analysis.span.span, search);
  analysis.candidates_generated = static_cast<int>(candidates.size());

  uint64_t default_plan_hash = PlanHash(analysis.default_plan.root, /*for_template=*/false);
  std::vector<uint64_t> seen_plans = {default_plan_hash};

  for (const RuleConfig& config : candidates) {
    Result<CompiledPlan> plan = optimizer_->Compile(job, config);
    if (!plan.ok()) {
      ++analysis.compile_failures;
      continue;
    }
    ++analysis.recompiled_ok;
    analysis.candidate_costs.push_back(plan.value().est_cost);
    if (plan.value().est_cost < analysis.default_plan.est_cost) {
      ++analysis.cheaper_than_default;
    }
    // Keep only configurations that produce genuinely different plans: the
    // rest cannot change any metric.
    uint64_t plan_hash = PlanHash(plan.value().root, /*for_template=*/false);
    if (std::find(seen_plans.begin(), seen_plans.end(), plan_hash) != seen_plans.end()) {
      continue;
    }
    seen_plans.push_back(plan_hash);
    ConfigOutcome outcome;
    outcome.config = config;
    outcome.plan = std::move(plan.value());
    outcome.diff_vs_default =
        ComputeRuleDiff(analysis.default_plan.signature, outcome.plan.signature);
    analysis.executed.push_back(std::move(outcome));
  }

  // Keep the N cheapest distinct plans (§6.1: "select the 10 cheapest
  // alternative rule configurations").
  std::sort(analysis.executed.begin(), analysis.executed.end(),
            [](const ConfigOutcome& a, const ConfigOutcome& b) {
              return a.plan.est_cost < b.plan.est_cost;
            });
  if (static_cast<int>(analysis.executed.size()) > options_.configs_to_execute) {
    analysis.executed.resize(static_cast<size_t>(options_.configs_to_execute));
  }
  return analysis;
}

JobAnalysis SteeringPipeline::AnalyzeJob(const Job& job) const {
  JobAnalysis analysis = Recompile(job);
  if (analysis.default_plan.root == nullptr) return analysis;
  // A/B execution on fixed resources (§3.1.3): one run of the default plan
  // and one per alternative, with independent noise draws.
  analysis.default_metrics = simulator_->Execute(job, analysis.default_plan.root,
                                                 /*run_nonce=*/options_.seed);
  uint64_t nonce = options_.seed;
  for (ConfigOutcome& outcome : analysis.executed) {
    outcome.metrics = simulator_->Execute(job, outcome.plan.root, ++nonce);
    outcome.executed = true;
  }
  return analysis;
}

std::vector<int> SteeringPipeline::SelectJobsInWindow(
    const std::vector<double>& default_runtimes) const {
  std::vector<int> out;
  for (size_t i = 0; i < default_runtimes.size(); ++i) {
    if (default_runtimes[i] >= options_.min_runtime_s &&
        default_runtimes[i] <= options_.max_runtime_s) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> SteeringPipeline::SelectLowCostHighRuntime(
    const std::vector<double>& est_costs, const std::vector<double>& runtimes) const {
  std::vector<int> out;
  if (est_costs.empty() || est_costs.size() != runtimes.size()) return out;
  double cost_threshold = Percentile(est_costs, options_.low_cost_quantile * 100.0);
  double runtime_threshold = Percentile(runtimes, options_.high_runtime_quantile * 100.0);
  for (size_t i = 0; i < est_costs.size(); ++i) {
    if (est_costs[i] <= cost_threshold && runtimes[i] >= runtime_threshold) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace qsteer
