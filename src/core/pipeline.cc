#include "core/pipeline.h"

#include <algorithm>

#include "common/hash.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace qsteer {

const ConfigOutcome* JobAnalysis::BestBy(Metric metric) const {
  const ConfigOutcome* best = nullptr;
  for (const ConfigOutcome& outcome : executed) {
    if (!outcome.executed) continue;
    if (best == nullptr || MetricOf(outcome.metrics, metric) < MetricOf(best->metrics, metric)) {
      best = &outcome;
    }
  }
  return best;
}

double JobAnalysis::BestRuntimeChangePct() const {
  const ConfigOutcome* best = BestBy(Metric::kRuntime);
  if (best == nullptr || default_metrics.runtime <= 0.0) return 0.0;
  // Negative = improvement; positive when every alternative regresses.
  return (best->metrics.runtime - default_metrics.runtime) / default_metrics.runtime * 100.0;
}

SteeringPipeline::SteeringPipeline(const Optimizer* optimizer,
                                   const ExecutionSimulator* simulator,
                                   PipelineOptions options)
    : optimizer_(optimizer), simulator_(simulator), options_(std::move(options)) {
  if (options_.num_threads != 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.compile_cache_mb > 0) {
    CompileCacheOptions cache_options;
    cache_options.capacity_bytes = static_cast<int64_t>(options_.compile_cache_mb) << 20;
    cache_ = std::make_unique<CompileCache>(cache_options);
  }
  if (options_.rank_candidates) {
    MutexLock lock(ranker_mu_);
    ranker_ = std::make_unique<CandidateRanker>(options_.ranker);
  }
}

SteeringPipeline::~SteeringPipeline() = default;

ThreadPoolStats SteeringPipeline::pool_stats() const {
  return pool_ != nullptr ? pool_->stats() : ThreadPoolStats{};
}

PipelineFailureStats SteeringPipeline::failure_stats() const {
  PipelineFailureStats stats;
  stats.compile_timeouts = ctr_compile_timeouts_.load(std::memory_order_relaxed);
  stats.compile_unavailable = ctr_compile_unavailable_.load(std::memory_order_relaxed);
  stats.retry_backoff_s =
      static_cast<double>(ctr_retry_backoff_ms_.load(std::memory_order_relaxed)) / 1000.0;
  stats.compile_retries = ctr_compile_retries_.load(std::memory_order_relaxed);
  stats.compile_failures = ctr_compile_failures_.load(std::memory_order_relaxed);
  stats.exec_retries = ctr_exec_retries_.load(std::memory_order_relaxed);
  stats.exec_failures = ctr_exec_failures_.load(std::memory_order_relaxed);
  stats.fallbacks = ctr_fallbacks_.load(std::memory_order_relaxed);
  return stats;
}

uint64_t SteeringPipeline::CandidateNonce(const RuleConfig& config) const {
  return HashCombine(options_.seed, config.Hash());
}

Result<CompiledPlan> SteeringPipeline::CompileWithRetry(const Job& job, const RuleConfig& config,
                                                        CompileSession* session) const {
  CompileControl control;
  control.timeout_s = options_.compile_timeout_s;
  auto attempt_compile = [&](int attempt) -> Result<CompiledPlan> {
    if (options_.compile_fault_for_testing != nullptr) {
      Status injected = options_.compile_fault_for_testing(job, attempt);
      if (!injected.ok()) return injected;
    }
    return optimizer_->Compile(job, config, control, session);
  };
  Result<CompiledPlan> plan = attempt_compile(1);
  // Only transient codes (deadline misses, an unavailable compile endpoint)
  // are retried; kCompilationFailed is a property of the configuration and
  // would fail identically on every attempt. Backoff is simulated seconds:
  // accounted in the failure stats, never slept (bit-reproducible tests).
  int attempts = 1;
  while (!plan.ok() && IsTransient(plan.status().code()) &&
         attempts < std::max(1, options_.retry.max_attempts)) {
    ctr_compile_retries_.fetch_add(1, std::memory_order_relaxed);
    ctr_retry_backoff_ms_.fetch_add(
        static_cast<int64_t>(options_.retry.BackoffBeforeRetry(attempts) * 1000.0),
        std::memory_order_relaxed);
    ++attempts;
    plan = attempt_compile(attempts);
  }
  if (!plan.ok()) {
    if (plan.status().code() == StatusCode::kDeadlineExceeded) {
      ctr_compile_timeouts_.fetch_add(1, std::memory_order_relaxed);
    } else if (plan.status().code() == StatusCode::kUnavailable) {
      ctr_compile_unavailable_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ctr_compile_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return plan;
}

Result<CompiledPlan> SteeringPipeline::CompileViaCache(const Job& job, const RuleConfig& config,
                                                       const CompileCache::Key& key,
                                                       CompileSession* session) const {
  if (cache_ == nullptr) return CompileWithRetry(job, config, session);
  if (std::optional<Result<CompiledPlan>> cached = cache_->Lookup(key)) {
    // Cached permanent failures skip the failure counters: those counters
    // track compilation *work*, and a hit does none.
    return std::move(*cached);
  }
  Result<CompiledPlan> plan = CompileWithRetry(job, config, session);
  cache_->Insert(key, plan);
  return plan;
}

Result<CompiledPlan> SteeringPipeline::CompileCached(const Job& job,
                                                     const RuleConfig& config) const {
  return CompileViaCache(job, config, CompileCache::Key{JobFingerprint(job), config.bits()},
                         /*session=*/nullptr);
}

CompileCacheStats SteeringPipeline::compile_cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CompileCacheStats{};
}

Status SteeringPipeline::SaveCompileCache(const std::string& path, int day, bool sync) const {
  if (cache_ == nullptr) {
    return Status::FailedPrecondition("compile cache disabled (compile_cache_mb <= 0)");
  }
  return cache_->SaveToFile(path, day, sync);
}

Status SteeringPipeline::WarmCompileCache(const std::string& path, int expected_day,
                                          int64_t* loaded) const {
  if (cache_ == nullptr) {
    return Status::FailedPrecondition("compile cache disabled (compile_cache_mb <= 0)");
  }
  return cache_->WarmFromFile(path, expected_day, loaded);
}

ExecMetrics SteeringPipeline::ExecuteWithRetry(const Job& job, const PlanNodePtr& root,
                                               uint64_t nonce) const {
  int max_attempts = std::max(1, options_.retry.max_attempts);
  ExecMetrics metrics;
  int carried_retries = 0;
  int carried_failed_vertices = 0;
  double carried_waste = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    uint64_t attempt_nonce =
        attempt == 0 ? nonce : HashCombine(nonce, static_cast<uint64_t>(attempt));
    metrics = simulator_->Execute(job, root, attempt_nonce);
    if (!metrics.failed) break;
    if (attempt + 1 < max_attempts) {
      ctr_exec_retries_.fetch_add(1, std::memory_order_relaxed);
      // The failed attempt's entire CPU spend is wasted (it produced no
      // usable result); carry the resilience counters into the final run.
      carried_retries += metrics.retries + 1;
      carried_failed_vertices += metrics.failed_vertices;
      carried_waste += metrics.cpu_time;
    }
  }
  if (metrics.failed) {
    ctr_exec_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  metrics.retries += carried_retries;
  metrics.failed_vertices += carried_failed_vertices;
  metrics.wasted_cpu_time += carried_waste;
  return metrics;
}

JobAnalysis SteeringPipeline::Recompile(const Job& job) const {
  JobAnalysis analysis;
  analysis.job = job;

  // All compiles of this job share one session (seed-memo snapshots) and the
  // pipeline-wide compile cache. Default and span compiles use full-bits
  // keys (no span known yet — unconditionally sound); candidate compiles
  // below use span-projected keys, so span-equivalent configurations across
  // recurring instances of this job collapse to one cache entry.
  const uint64_t fingerprint = JobFingerprint(job);
  CompileSession session;

  Result<CompiledPlan> default_plan = CompileViaCache(
      job, RuleConfig::Default(), CompileCache::Key{fingerprint, RuleConfig::Default().bits()},
      &session);
  if (!default_plan.ok()) {
    // The default configuration always compiles for generated workloads;
    // return an empty analysis defensively.
    return analysis;
  }
  analysis.default_plan = std::move(default_plan.value());
  CachingCompiler span_compiler(optimizer_, cache_.get(), &session, fingerprint);
  analysis.span = ComputeJobSpan(*optimizer_, job, SpanOptions{}, &span_compiler);

  ConfigSearchOptions search = options_.search;
  search.max_configs = options_.max_candidate_configs;
  search.seed = options_.seed ^ job.TemplateHash();
  CandidateGenerationStats gen_stats;
  std::vector<RuleConfig> candidates =
      GenerateCandidateConfigs(analysis.span.span, search, &gen_stats);
  analysis.candidates_generated = static_cast<int>(candidates.size());
  analysis.span_duplicates_pruned = gen_stats.span_duplicates_pruned;
  ctr_span_pruned_.fetch_add(gen_stats.span_duplicates_pruned, std::memory_order_relaxed);

  // Budgeted, optionally ranked selection of the stream. Selection is a
  // pure *filter*: `selected` stays in stream (generation) order, so an
  // unlimited budget reproduces the unbudgeted analysis bit for bit whether
  // ranking is on or off, and a budgeted unranked run compiles exactly the
  // stream prefix (the random-order baseline).
  std::vector<size_t> selected(candidates.size());
  for (size_t i = 0; i < selected.size(); ++i) selected[i] = i;
  std::vector<RankerExample> examples;  // parallel to `candidates`; rank mode only
  if (options_.rank_candidates) {
    std::vector<double> scores(candidates.size(), 0.0);
    {
      // Scoring holds the ranker lock but never mutates: between training
      // points (batch boundaries) the ranker is frozen, which is what makes
      // scores — and therefore budgeted analyses — independent of worker
      // count and evaluation order.
      MutexLock lock(ranker_mu_);
      RankerJobContext ctx;
      ctx.span = analysis.span.span;
      ctx.default_signature = analysis.default_plan.signature;
      ctx.default_est_cost = analysis.default_plan.est_cost;
      examples.reserve(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        examples.push_back(ranker_->MakeExample(ctx, candidates[i]));
        scores[i] = ranker_->Score(examples[i].features);
      }
    }
    gen_stats.candidates_scored = static_cast<int>(candidates.size());
    if (options_.compile_budget > 0 &&
        options_.compile_budget < static_cast<int>(candidates.size())) {
      // Top-budget by (score desc, stream index asc): the index tie-break
      // keeps a cold ranker (all scores equal) identical to the unranked
      // prefix. Then back to stream order for compilation and merge.
      std::sort(selected.begin(), selected.end(), [&](size_t a, size_t b) {
        if (scores[a] != scores[b]) return scores[a] > scores[b];
        return a < b;
      });
      selected.resize(static_cast<size_t>(options_.compile_budget));
      std::sort(selected.begin(), selected.end());
    }
  } else if (options_.compile_budget > 0 &&
             options_.compile_budget < static_cast<int>(candidates.size())) {
    selected.resize(static_cast<size_t>(options_.compile_budget));
  }
  gen_stats.candidates_compiled = static_cast<int>(selected.size());
  gen_stats.budget_skipped = static_cast<int>(candidates.size() - selected.size());
  analysis.candidates_scored = gen_stats.candidates_scored;
  analysis.candidates_compiled = gen_stats.candidates_compiled;
  analysis.budget_skipped = gen_stats.budget_skipped;
  ctr_candidates_scored_.fetch_add(gen_stats.candidates_scored, std::memory_order_relaxed);
  ctr_candidates_compiled_.fetch_add(gen_stats.candidates_compiled, std::memory_order_relaxed);
  ctr_budget_skipped_.fetch_add(gen_stats.budget_skipped, std::memory_order_relaxed);

  // Fan the candidate recompilations out over the pool: each candidate is
  // compiled independently (Optimizer::Compile is reentrant), then outcomes
  // are merged below in candidate order, so the analysis is bit-identical
  // to the serial path no matter how many workers ran.
  struct CandidateResult {
    bool ok = false;
    bool timed_out = false;
    CompiledPlan plan;
    uint64_t plan_hash = 0;
  };
  std::vector<CandidateResult> compiled = ParallelMap<CandidateResult>(
      pool_.get(), static_cast<int64_t>(selected.size()), [&](int64_t i) {
        CandidateResult r;
        const RuleConfig& config = candidates[selected[static_cast<size_t>(i)]];
        // Span-projected key: candidates only differ inside the span, so
        // the projection is a complete identity for them (paper §4), and
        // recurring instances of this job hit the same entries.
        CompileCache::Key key{fingerprint, ProjectConfig(config, analysis.span.span)};
        Result<CompiledPlan> plan = CompileViaCache(job, config, key, &session);
        if (!plan.ok()) {
          // Transient exhaustion (deadline or unavailable) is a drop, not a
          // configuration property; permanent failures count separately.
          r.timed_out = IsTransient(plan.status().code());
          return r;
        }
        r.ok = true;
        r.plan = std::move(plan.value());
        r.plan_hash = PlanHash(r.plan.root, /*for_template=*/false);
        return r;
      });

  uint64_t default_plan_hash = PlanHash(analysis.default_plan.root, /*for_template=*/false);
  std::vector<uint64_t> seen_plans = {default_plan_hash};

  for (size_t si = 0; si < compiled.size(); ++si) {
    const size_t i = selected[si];
    CandidateResult& candidate = compiled[si];
    if (!candidate.ok) {
      if (candidate.timed_out) {
        ++analysis.compile_timeouts;
      } else {
        ++analysis.compile_failures;
      }
      continue;
    }
    ++analysis.recompiled_ok;
    analysis.candidate_costs.push_back(candidate.plan.est_cost);
    if (candidate.plan.est_cost < analysis.default_plan.est_cost) {
      ++analysis.cheaper_than_default;
    }
    if (options_.rank_candidates) {
      // Every successful compile becomes a training example. The initial
      // label is the estimated-cost improvement fraction; AnalyzeJob
      // replaces it with the measured runtime improvement for the
      // alternatives it actually executes.
      RankerExample example = std::move(examples[i]);
      example.label = analysis.default_plan.est_cost > 0.0
                          ? std::clamp(1.0 - candidate.plan.est_cost /
                                                 analysis.default_plan.est_cost,
                                       0.0, 1.0)
                          : 0.0;
      analysis.ranker_examples.push_back(std::move(example));
    }
    // Keep only configurations that produce genuinely different plans: the
    // rest cannot change any metric.
    if (std::find(seen_plans.begin(), seen_plans.end(), candidate.plan_hash) !=
        seen_plans.end()) {
      continue;
    }
    seen_plans.push_back(candidate.plan_hash);
    ConfigOutcome outcome;
    outcome.config = candidates[i];
    outcome.plan = std::move(candidate.plan);
    outcome.diff_vs_default =
        ComputeRuleDiff(analysis.default_plan.signature, outcome.plan.signature);
    analysis.executed.push_back(std::move(outcome));
  }

  // Keep the N cheapest distinct plans (§6.1: "select the 10 cheapest
  // alternative rule configurations").
  std::sort(analysis.executed.begin(), analysis.executed.end(),
            [](const ConfigOutcome& a, const ConfigOutcome& b) {
              return a.plan.est_cost < b.plan.est_cost;
            });
  if (static_cast<int>(analysis.executed.size()) > options_.configs_to_execute) {
    analysis.executed.resize(static_cast<size_t>(options_.configs_to_execute));
  }
  return analysis;
}

JobAnalysis SteeringPipeline::AnalyzeJob(const Job& job) const {
  JobAnalysis analysis = Recompile(job);
  if (analysis.default_plan.root == nullptr) return analysis;
  // A/B execution on fixed resources (§3.1.3): one run of the default plan
  // and one per alternative, with independent noise draws. Each
  // alternative's noise nonce is a pure function of (seed, its config), so
  // executions can run concurrently — and in any order — without changing a
  // single bit of the result.
  analysis.default_metrics = ExecuteWithRetry(job, analysis.default_plan.root,
                                              /*nonce=*/options_.seed);
  ParallelFor(pool_.get(), static_cast<int64_t>(analysis.executed.size()), [&](int64_t i) {
    ConfigOutcome& outcome = analysis.executed[static_cast<size_t>(i)];
    outcome.metrics = ExecuteWithRetry(job, outcome.plan.root, CandidateNonce(outcome.config));
    // A run that stayed failed after the retry policy degrades gracefully:
    // the candidate is excluded from BestBy, so the default plan is kept.
    outcome.executed = !outcome.metrics.failed;
  });
  for (const ConfigOutcome& outcome : analysis.executed) {
    if (!outcome.executed) {
      ++analysis.exec_failures;
      ctr_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (outcome.metrics.runtime < analysis.default_metrics.runtime) {
      ctr_improvements_found_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (options_.rank_candidates && analysis.default_metrics.runtime > 0.0) {
    // Measured truth beats the estimate: executed alternatives overwrite
    // their example's estimated-cost label with the observed runtime
    // improvement (0 when the alternative regressed).
    for (const ConfigOutcome& outcome : analysis.executed) {
      if (!outcome.executed) continue;
      double gain = (analysis.default_metrics.runtime - outcome.metrics.runtime) /
                    analysis.default_metrics.runtime;
      for (RankerExample& example : analysis.ranker_examples) {
        if (example.config_hash == outcome.config.Hash()) {
          example.label = std::clamp(gain, 0.0, 1.0);
          break;
        }
      }
    }
  }
  return analysis;
}

std::vector<JobAnalysis> SteeringPipeline::RecompileJobs(const std::vector<Job>& jobs) const {
  std::vector<JobAnalysis> analyses = ParallelMap<JobAnalysis>(
      pool_.get(), static_cast<int64_t>(jobs.size()),
      [&](int64_t i) { return Recompile(jobs[static_cast<size_t>(i)]); });
  // Batch boundary: train on this batch's outcomes in job order (the merge
  // above restored it), so the ranker's bytes are worker-count-independent.
  TrainRanker(analyses);
  return analyses;
}

std::vector<JobAnalysis> SteeringPipeline::AnalyzeJobs(const std::vector<Job>& jobs) const {
  std::vector<JobAnalysis> analyses = ParallelMap<JobAnalysis>(
      pool_.get(), static_cast<int64_t>(jobs.size()),
      [&](int64_t i) { return AnalyzeJob(jobs[static_cast<size_t>(i)]); });
  TrainRanker(analyses);
  return analyses;
}

int64_t SteeringPipeline::TrainRanker(const std::vector<JobAnalysis>& analyses) const {
  if (!options_.rank_candidates) return 0;
  std::vector<RankerExample> examples;
  for (const JobAnalysis& analysis : analyses) {
    examples.insert(examples.end(), analysis.ranker_examples.begin(),
                    analysis.ranker_examples.end());
  }
  return TrainRankerExamples(examples);
}

int64_t SteeringPipeline::TrainRankerExamples(const std::vector<RankerExample>& examples) const {
  if (!options_.rank_candidates || examples.empty()) return 0;
  MutexLock lock(ranker_mu_);
  int64_t before = ranker_->examples_trained();
  ranker_->Train(examples);
  int64_t consumed = ranker_->examples_trained() - before;
  ctr_ranker_examples_.fetch_add(consumed, std::memory_order_relaxed);
  return consumed;
}

std::string SteeringPipeline::SerializeRanker() const {
  if (!options_.rank_candidates) return "";
  MutexLock lock(ranker_mu_);
  return ranker_->Serialize();
}

Status SteeringPipeline::SaveRanker(const std::string& path, bool sync) const {
  if (!options_.rank_candidates) {
    return Status::FailedPrecondition("ranker disabled (rank_candidates = false)");
  }
  MutexLock lock(ranker_mu_);
  return ranker_->SaveToFile(path, sync);
}

Status SteeringPipeline::WarmRanker(const std::string& path) const {
  if (!options_.rank_candidates) {
    return Status::FailedPrecondition("ranker disabled (rank_candidates = false)");
  }
  MutexLock lock(ranker_mu_);
  return ranker_->WarmFromFile(path);
}

SteeringPipeline::BudgetStats SteeringPipeline::budget_stats() const {
  BudgetStats stats;
  stats.candidates_scored = ctr_candidates_scored_.load(std::memory_order_relaxed);
  stats.candidates_compiled = ctr_candidates_compiled_.load(std::memory_order_relaxed);
  stats.budget_skipped = ctr_budget_skipped_.load(std::memory_order_relaxed);
  stats.improvements_found = ctr_improvements_found_.load(std::memory_order_relaxed);
  stats.ranker_examples_trained = ctr_ranker_examples_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<int> SteeringPipeline::SelectJobsInWindow(
    const std::vector<double>& default_runtimes) const {
  std::vector<int> out;
  for (size_t i = 0; i < default_runtimes.size(); ++i) {
    if (default_runtimes[i] >= options_.min_runtime_s &&
        default_runtimes[i] <= options_.max_runtime_s) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> SteeringPipeline::SelectLowCostHighRuntime(
    const std::vector<double>& est_costs, const std::vector<double>& runtimes) const {
  std::vector<int> out;
  if (est_costs.empty() || est_costs.size() != runtimes.size()) return out;
  double cost_threshold = Percentile(est_costs, options_.low_cost_quantile * 100.0);
  double runtime_threshold = Percentile(runtimes, options_.high_runtime_quantile * 100.0);
  for (size_t i = 0; i < est_costs.size(); ++i) {
    if (est_costs[i] <= cost_threshold && runtimes[i] >= runtime_threshold) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace qsteer
