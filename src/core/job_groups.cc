#include "core/job_groups.h"

#include <algorithm>

namespace qsteer {

int JobGroupIndex::Add(const RuleSignature& default_signature) {
  ++total_jobs_;
  auto it = index_.find(default_signature);
  if (it != index_.end()) {
    ++sizes_[static_cast<size_t>(it->second)];
    return it->second;
  }
  int group = static_cast<int>(signatures_.size());
  index_.emplace(default_signature, group);
  signatures_.push_back(default_signature);
  sizes_.push_back(1);
  return group;
}

int JobGroupIndex::Find(const RuleSignature& default_signature) const {
  auto it = index_.find(default_signature);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int> JobGroupIndex::SizesDescending() const {
  std::vector<int> sizes = sizes_;
  std::sort(sizes.begin(), sizes.end(), std::greater<int>());
  return sizes;
}

}  // namespace qsteer
