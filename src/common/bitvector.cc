#include "common/bitvector.h"

#include <bit>

namespace qsteer {

BitVector256 BitVector256::AllSet() {
  BitVector256 bv;
  bv.words_ = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
  return bv;
}

BitVector256 BitVector256::FromIndices(const std::vector<int>& indices) {
  BitVector256 bv;
  for (int idx : indices) {
    if (idx >= 0 && idx < kBits) bv.Set(idx);
  }
  return bv;
}

BitVector256 BitVector256::FromBinaryString(const std::string& text) {
  BitVector256 bv;
  int pos = 0;
  for (char c : text) {
    if (c != '0' && c != '1') continue;
    if (pos >= kBits) break;
    if (c == '1') bv.Set(pos);
    ++pos;
  }
  return bv;
}

void BitVector256::Set(int pos) {
  if (pos < 0 || pos >= kBits) return;
  words_[pos >> 6] |= (1ULL << (pos & 63));
}

void BitVector256::Reset(int pos) {
  if (pos < 0 || pos >= kBits) return;
  words_[pos >> 6] &= ~(1ULL << (pos & 63));
}

void BitVector256::Assign(int pos, bool value) {
  if (value) {
    Set(pos);
  } else {
    Reset(pos);
  }
}

bool BitVector256::Test(int pos) const {
  if (pos < 0 || pos >= kBits) return false;
  return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
}

int BitVector256::Count() const {
  int total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

bool BitVector256::IsSubsetOf(const BitVector256& other) const {
  for (int i = 0; i < 4; ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool BitVector256::Intersects(const BitVector256& other) const {
  for (int i = 0; i < 4; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

BitVector256 BitVector256::And(const BitVector256& other) const {
  BitVector256 out;
  for (int i = 0; i < 4; ++i) out.words_[i] = words_[i] & other.words_[i];
  return out;
}

BitVector256 BitVector256::Or(const BitVector256& other) const {
  BitVector256 out;
  for (int i = 0; i < 4; ++i) out.words_[i] = words_[i] | other.words_[i];
  return out;
}

BitVector256 BitVector256::Xor(const BitVector256& other) const {
  BitVector256 out;
  for (int i = 0; i < 4; ++i) out.words_[i] = words_[i] ^ other.words_[i];
  return out;
}

BitVector256 BitVector256::AndNot(const BitVector256& other) const {
  BitVector256 out;
  for (int i = 0; i < 4; ++i) out.words_[i] = words_[i] & ~other.words_[i];
  return out;
}

BitVector256 BitVector256::Not() const {
  BitVector256 out;
  for (int i = 0; i < 4; ++i) out.words_[i] = ~words_[i];
  return out;
}

std::vector<int> BitVector256::ToIndices() const {
  std::vector<int> out;
  out.reserve(Count());
  for (int w = 0; w < 4; ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out.push_back(w * 64 + bit);
      word &= word - 1;
    }
  }
  return out;
}

std::string BitVector256::ToBinaryString(int bits) const {
  if (bits < 0) bits = 0;
  if (bits > kBits) bits = kBits;
  std::string out;
  out.reserve(bits);
  for (int i = 0; i < bits; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

std::string BitVector256::ToHexString() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (uint64_t word : words_) {
    for (int nibble = 0; nibble < 16; ++nibble) {
      out.push_back(kDigits[(word >> (nibble * 4)) & 0xf]);
    }
  }
  return out;
}

BitVector256 BitVector256::FromHexString(const std::string& text) {
  BitVector256 out;
  if (text.size() != 64) return out;
  for (int w = 0; w < 4; ++w) {
    uint64_t word = 0;
    for (int nibble = 0; nibble < 16; ++nibble) {
      char c = text[static_cast<size_t>(w * 16 + nibble)];
      uint64_t v;
      if (c >= '0' && c <= '9') {
        v = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v = static_cast<uint64_t>(c - 'a') + 10;
      } else {
        return BitVector256();
      }
      word |= v << (nibble * 4);
    }
    out.words_[static_cast<size_t>(w)] = word;
  }
  return out;
}

uint64_t BitVector256::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words_) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (byte * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace qsteer
