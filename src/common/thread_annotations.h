// Clang thread-safety annotation macros (-Wthread-safety).
//
// These macros attach Clang's static lock-discipline attributes to mutexes,
// guarded members and locking functions; under any other compiler (the
// default g++ build) every macro expands to nothing, so the annotations are
// a zero-cost contract. CI builds the tree with clang++ and
// -Wthread-safety -Werror (the `static-analysis` job), turning a member
// read outside its mutex — today a flaky TSan repro at best — into a
// compile error on the PR that introduces it.
//
// Annotate with the types in common/mutex.h (qsteer::Mutex / MutexLock /
// CondVar): std::mutex and std::lock_guard carry no capability attributes
// in libstdc++, so the analysis cannot see them being locked.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef QSTEER_COMMON_THREAD_ANNOTATIONS_H_
#define QSTEER_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define QSTEER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QSTEER_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define CAPABILITY(x) QSTEER_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock).
#define SCOPED_CAPABILITY QSTEER_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be read or written while holding `x`.
#define GUARDED_BY(x) QSTEER_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself is
/// not).
#define PT_GUARDED_BY(x) QSTEER_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the caller must hold the listed capabilities (and
/// they stay held across the call).
#define REQUIRES(...) QSTEER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function precondition: the caller must NOT hold the listed capabilities
/// (deadlock guard for functions that acquire them internally).
#define EXCLUDES(...) QSTEER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) QSTEER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define RELEASE(...) QSTEER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability and returns `b` on success.
#define TRY_ACQUIRE(b, ...) QSTEER_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis
/// without acquiring).
#define ASSERT_CAPABILITY(x) QSTEER_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability (lock accessor).
#define RETURN_CAPABILITY(x) QSTEER_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis inside one function. Every use needs
/// a comment explaining why the discipline cannot be expressed statically.
#define NO_THREAD_SAFETY_ANALYSIS QSTEER_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // QSTEER_COMMON_THREAD_ANNOTATIONS_H_
