// Retry policy with capped exponential backoff.
//
// Shared by every layer that has to survive transient failures: the
// execution simulator's per-vertex re-execution, the steering pipeline's
// transient compile/execute retries, and the service loop's job-level
// retries. Backoff values are *simulated* seconds — callers account them in
// metrics (wasted wall-clock) instead of sleeping, which keeps tests fast
// and the fault layer bit-reproducible.
#ifndef QSTEER_COMMON_RETRY_H_
#define QSTEER_COMMON_RETRY_H_

#include <algorithm>

namespace qsteer {

struct RetryPolicy {
  /// Total tries including the first attempt; <= 1 disables retries.
  int max_attempts = 3;
  /// Backoff before the first retry (seconds, simulated).
  double initial_backoff_s = 2.0;
  /// Multiplier applied per further retry.
  double backoff_multiplier = 2.0;
  /// Per-retry backoff cap.
  double max_backoff_s = 60.0;

  /// Backoff before retry number `retry` (1-based: retry 1 is the first
  /// re-attempt). Returns 0 for retry <= 0.
  double BackoffBeforeRetry(int retry) const {
    if (retry <= 0) return 0.0;
    double backoff = initial_backoff_s;
    for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
    return std::min(backoff, max_backoff_s);
  }

  /// Total simulated seconds spent backing off across `retries` retries.
  double TotalBackoff(int retries) const {
    double total = 0.0;
    for (int r = 1; r <= retries; ++r) total += BackoffBeforeRetry(r);
    return total;
  }

  /// Retries available beyond the first attempt.
  int max_retries() const { return std::max(0, max_attempts - 1); }
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_RETRY_H_
