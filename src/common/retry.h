// Retry policy with capped exponential backoff.
//
// Shared by every layer that has to survive transient failures: the
// execution simulator's per-vertex re-execution, the steering pipeline's
// transient compile/execute retries, and the service loop's job-level
// retries. Backoff values are *simulated* seconds — callers account them in
// metrics (wasted wall-clock) instead of sleeping, which keeps tests fast
// and the fault layer bit-reproducible.
#ifndef QSTEER_COMMON_RETRY_H_
#define QSTEER_COMMON_RETRY_H_

#include <algorithm>
#include <cmath>

namespace qsteer {

struct RetryPolicy {
  /// Total tries including the first attempt; <= 1 disables retries.
  int max_attempts = 3;
  /// Backoff before the first retry (seconds, simulated).
  double initial_backoff_s = 2.0;
  /// Multiplier applied per further retry.
  double backoff_multiplier = 2.0;
  /// Per-retry backoff cap.
  double max_backoff_s = 60.0;

  /// Backoff before retry number `retry` (1-based: retry 1 is the first
  /// re-attempt). Returns 0 for retry <= 0. Saturates at max_backoff_s:
  /// the exponential stops multiplying once it reaches the cap, so huge
  /// retry numbers (the service's long-lived loops can pass attempt counts
  /// well past 32) neither overflow the double to infinity nor spin a
  /// billion-iteration loop before the cap applies.
  double BackoffBeforeRetry(int retry) const {
    if (retry <= 0) return 0.0;
    if (retry == 1 || backoff_multiplier == 1.0) {
      return std::min(initial_backoff_s, max_backoff_s);
    }
    // Closed form instead of a multiply loop: a loop both overflows the
    // accumulator to infinity for large exponents before the cap applies
    // and costs O(retry) work (retry can be INT_MAX in a long-lived
    // service loop). std::pow's +inf on overflow is absorbed by the cap.
    double backoff = initial_backoff_s * std::pow(backoff_multiplier, retry - 1);
    return std::min(backoff, max_backoff_s);
  }

  /// Total simulated seconds spent backing off across `retries` retries.
  /// Once the per-retry backoff saturates at the cap, the remaining retries
  /// contribute exactly max_backoff_s each (closed form, no O(n) loop).
  double TotalBackoff(int retries) const {
    if (retries <= 0) return 0.0;
    if (backoff_multiplier <= 1.0) {
      // Constant (or decaying-degenerate) backoff: treat as constant.
      return static_cast<double>(retries) * BackoffBeforeRetry(1);
    }
    double total = 0.0;
    for (int r = 1; r <= retries; ++r) {
      double backoff = BackoffBeforeRetry(r);
      if (backoff >= max_backoff_s) {
        total += max_backoff_s * static_cast<double>(retries - r + 1);
        break;
      }
      total += backoff;
    }
    return total;
  }

  /// Retries available beyond the first attempt.
  int max_retries() const { return std::max(0, max_attempts - 1); }
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_RETRY_H_
