#include "common/hash_ring.h"

#include <algorithm>

#include "common/hash.h"

namespace qsteer {

namespace {

/// Ring point for (replica, vnode): mixes both through SplitMix so nearby
/// ids land far apart. Stable across processes by construction.
uint64_t RingPoint(uint32_t replica_id, int vnode) {
  return HashCombine(Mix64(static_cast<uint64_t>(replica_id) + 1),
                     Mix64(static_cast<uint64_t>(vnode) + 1));
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(int vnodes) : vnodes_(vnodes < 1 ? 1 : vnodes) {}

void ConsistentHashRing::AddReplica(uint32_t replica_id) {
  if (replica_id == kNoReplica || Contains(replica_id)) return;
  points_.reserve(points_.size() + static_cast<size_t>(vnodes_));
  for (int v = 0; v < vnodes_; ++v) {
    points_.emplace_back(RingPoint(replica_id, v), replica_id);
  }
  std::sort(points_.begin(), points_.end());
}

void ConsistentHashRing::RemoveReplica(uint32_t replica_id) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [replica_id](const std::pair<uint64_t, uint32_t>& p) {
                                 return p.second == replica_id;
                               }),
                points_.end());
}

bool ConsistentHashRing::Contains(uint32_t replica_id) const {
  for (const auto& point : points_) {
    if (point.second == replica_id) return true;
  }
  return false;
}

int ConsistentHashRing::num_replicas() const {
  std::vector<uint32_t> ids;
  for (const auto& point : points_) ids.push_back(point.second);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return static_cast<int>(ids.size());
}

uint32_t ConsistentHashRing::RouteFor(uint64_t key_hash) const {
  if (points_.empty()) return kNoReplica;
  // Finalize the caller's hash before the ring lookup: weakly-avalanched
  // hashes (FNV over short, similar keys differs mostly in low bits) would
  // otherwise cluster on one arc and defeat the vnode spread.
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(Mix64(key_hash), uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

std::vector<uint32_t> ConsistentHashRing::PreferenceFor(uint64_t key_hash,
                                                        int count) const {
  std::vector<uint32_t> order;
  if (points_.empty() || count <= 0) return order;
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(Mix64(key_hash), uint32_t{0}));
  for (size_t walked = 0; walked < points_.size(); ++walked) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(order.begin(), order.end(), it->second) == order.end()) {
      order.push_back(it->second);
      if (static_cast<int>(order.size()) >= count) break;
    }
    ++it;
  }
  return order;
}

}  // namespace qsteer
