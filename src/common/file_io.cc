#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"

namespace qsteer {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("cannot fsync directory", dir);
  return Status::OK();
}

}  // namespace

// qsteer-lint: allow(crc-before-trust) this IS the raw-read primitive; verifying wrappers (ReadFileChecksummed) layer on top
Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read failed: " + path);
  return content;
}

Status AtomicWriteFile(const std::string& path, const std::string& content, bool sync) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", tmp);
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("write failed", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename failed", tmp);
  }
  // The rename itself must survive a crash: fsync the directory entry.
  if (sync) return SyncDir(DirOf(path));
  return Status::OK();
}

namespace {
constexpr char kCrcPrefix[] = "# crc32 ";
constexpr size_t kCrcPrefixLen = sizeof(kCrcPrefix) - 1;
constexpr size_t kCrcHexLen = 8;
}  // namespace

std::string Crc32FooterLine(const std::string& content) {
  char footer[kCrcPrefixLen + kCrcHexLen + 2];
  std::snprintf(footer, sizeof(footer), "%s%08x\n", kCrcPrefix, Crc32(content));
  return footer;
}

Status WriteFileChecksummed(const std::string& path, const std::string& content, bool sync) {
  return AtomicWriteFile(path, content + Crc32FooterLine(content), sync);
}

Result<std::string> ReadFileChecksummed(const std::string& path, bool* had_checksum) {
  if (had_checksum != nullptr) *had_checksum = false;
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read;
  std::string content = std::move(read.value());

  // The footer, when present, is the final "\n"-terminated line.
  const size_t footer_len = kCrcPrefixLen + kCrcHexLen + 1;
  if (content.size() < footer_len ||
      content.compare(content.size() - footer_len, kCrcPrefixLen, kCrcPrefix) != 0 ||
      content.back() != '\n') {
    return content;  // pre-checksum format
  }
  std::string hex = content.substr(content.size() - kCrcHexLen - 1, kCrcHexLen);
  uint32_t stored = 0;
  if (std::sscanf(hex.c_str(), "%8x", &stored) != 1) return content;
  content.resize(content.size() - footer_len);
  if (Crc32(content) != stored) {
    return Status::InvalidArgument("checksum mismatch (torn or corrupt file): " + path);
  }
  if (had_checksum != nullptr) *had_checksum = true;
  return content;
}

}  // namespace qsteer
