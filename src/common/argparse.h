// Validated command-line argument parsing for the CLI tools and examples.
//
// std::atoi silently turns garbage and overflow into 0 — a tool invoked as
// `qsteer analyze B four 7` would analyze template 0 without complaint.
// These helpers reject anything that is not a fully-consumed number inside
// the caller's range, so tools can print usage instead of silently running
// with the wrong inputs.
#ifndef QSTEER_COMMON_ARGPARSE_H_
#define QSTEER_COMMON_ARGPARSE_H_

namespace qsteer {

/// Parses `s` as a base-10 integer in [min_value, max_value]. Returns false
/// (leaving *out untouched) on null/empty input, trailing garbage, overflow,
/// or an out-of-range value.
bool ParseIntArg(const char* s, int min_value, int max_value, int* out);

/// Same contract for doubles ("1e3" and "0.25" accepted; "abc"/"3x" not).
bool ParseDoubleArg(const char* s, double min_value, double max_value, double* out);

}  // namespace qsteer

#endif  // QSTEER_COMMON_ARGPARSE_H_
