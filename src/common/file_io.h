// Crash-safe file I/O for durable service state.
//
// The failure model is a process crash (or kill -9) at any instruction:
// a plain ofstream rewrite can leave a half-written file that a later load
// mis-parses silently. Two defenses, used together by the recommender store
// and the service snapshots:
//
//  * AtomicWriteFile: write to `<path>.tmp`, flush + fsync the file, rename
//    over `path`, fsync the parent directory. Readers see either the old
//    complete content or the new complete content, never a mixture.
//  * A `# crc32 xxxxxxxx` footer line (WriteFileChecksummed /
//    ReadFileChecksummed) so a file torn by a non-atomic writer — or by a
//    filesystem that reorders the rename — is *detected* at load instead of
//    silently mis-parsed.
#ifndef QSTEER_COMMON_FILE_IO_H_
#define QSTEER_COMMON_FILE_IO_H_

#include <string>

#include "common/status.h"

namespace qsteer {

/// Reads the whole file; NotFound when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `content` (temp file + fsync + rename +
/// directory fsync). `sync` = false skips the fsyncs (tests, tmpfs) but
/// keeps the rename atomicity.
Status AtomicWriteFile(const std::string& path, const std::string& content, bool sync = true);

/// The checksum footer appended by WriteFileChecksummed: "# crc32 <8 hex>\n"
/// computed over every byte before the footer line.
std::string Crc32FooterLine(const std::string& content);

/// AtomicWriteFile of `content` + Crc32FooterLine(content).
Status WriteFileChecksummed(const std::string& path, const std::string& content,
                            bool sync = true);

/// Reads `path`; when the last line is a crc32 footer, verifies it (corrupt
/// or truncated content is an error) and strips it from the returned
/// content. Files without a footer are returned as-is with
/// `*had_checksum = false` — pre-checksum formats stay loadable.
Result<std::string> ReadFileChecksummed(const std::string& path, bool* had_checksum = nullptr);

}  // namespace qsteer

#endif  // QSTEER_COMMON_FILE_IO_H_
