#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qsteer {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double GeoMean(const std::vector<double>& values) {
  double log_sum = 0.0;
  int n = 0;
  for (double v : values) {
    if (v <= 0.0) continue;
    log_sum += std::log(v);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / n);
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = static_cast<int>(values.size());
  if (values.empty()) return s;
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = Percentile(values, 50.0);
  s.p90 = Percentile(values, 90.0);
  s.p99 = Percentile(values, 99.0);
  return s;
}

double ThreadPoolStats::Utilization() const {
  double capacity = static_cast<double>(num_threads) * wall_seconds;
  if (capacity <= 0.0) return 0.0;
  return std::clamp(busy_seconds / capacity, 0.0, 1.0);
}

std::string ThreadPoolStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "threads=%d tasks=%lld/%lld max_queue=%lld busy=%.3fs wall=%.3fs util=%.0f%%",
                num_threads, static_cast<long long>(tasks_run),
                static_cast<long long>(tasks_submitted),
                static_cast<long long>(max_queue_depth), busy_seconds, wall_seconds,
                100.0 * Utilization());
  return buf;
}

std::string PipelineFailureStats::ToString() const {
  char buf[280];
  std::snprintf(buf, sizeof(buf),
                "compile_timeouts=%lld compile_unavailable=%lld compile_retries=%lld "
                "compile_failures=%lld exec_retries=%lld exec_failures=%lld "
                "fallbacks=%lld retry_backoff=%.1fs",
                static_cast<long long>(compile_timeouts),
                static_cast<long long>(compile_unavailable),
                static_cast<long long>(compile_retries),
                static_cast<long long>(compile_failures),
                static_cast<long long>(exec_retries),
                static_cast<long long>(exec_failures),
                static_cast<long long>(fallbacks), retry_backoff_s);
  return buf;
}

}  // namespace qsteer
