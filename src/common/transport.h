// In-process deterministic transport for the replicated serving tier.
//
// Endpoints register under integer node ids; Send() frames the payload
// with a crc32 header, checks link state, and delivers synchronously to
// the receiver, which verifies the checksum before dispatching. There is
// no queueing, no timers, and no background thread — delivery order is
// exactly call order, which keeps replication chaos tests bit-reproducible
// (the fleet serializes shipments under its own mutex).
//
// Chaos hooks:
//   * SetLinkUp(node, false)  — sends to `node` fail with kUnavailable
//     (a partition: the node itself keeps running and serving reads);
//   * CorruptNextDelivery(node) — flips a payload bit in the next frame
//     delivered to `node`, exercising the receiver-side checksum path.
//
// Wire format per frame (little-endian):
//   u32 crc32(payload) | payload bytes
//
// The crc may look redundant for an in-process hop, but it is the same
// seam a real network transport needs, and the corruption hook proves
// followers actually verify it instead of trusting the sender.
#ifndef QSTEER_COMMON_TRANSPORT_H_
#define QSTEER_COMMON_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace qsteer {

/// A message sink: the receiving side of one replica's replication channel.
/// Deliver() returns the application's verdict (e.g. a follower rejecting a
/// stale-epoch tail); transport-level failures never reach it.
class TransportEndpoint {
 public:
  virtual ~TransportEndpoint() = default;
  virtual Status Deliver(std::string_view payload) = 0;
};

class InProcessTransport {
 public:
  InProcessTransport() = default;
  InProcessTransport(const InProcessTransport&) = delete;
  InProcessTransport& operator=(const InProcessTransport&) = delete;

  /// Registers `endpoint` under `node_id` (link starts up). The endpoint
  /// must outlive the transport or be Unregistered first.
  Status Register(uint32_t node_id, TransportEndpoint* endpoint) EXCLUDES(mu_);
  void Unregister(uint32_t node_id) EXCLUDES(mu_);

  /// Partition control: a downed link fails Send() with kUnavailable
  /// without consuming the payload. Unknown nodes are ignored.
  void SetLinkUp(uint32_t node_id, bool up) EXCLUDES(mu_);
  bool link_up(uint32_t node_id) const EXCLUDES(mu_);

  /// Fault injection: corrupt one bit of the next frame delivered to
  /// `node_id` (after the crc is computed), so the receiver must reject it.
  void CorruptNextDelivery(uint32_t node_id) EXCLUDES(mu_);

  /// Frames `payload` with its crc32 and delivers it synchronously.
  /// Returns kUnavailable for unknown/downed nodes, kInvalidArgument when
  /// the receiver-side checksum rejects the frame, or the endpoint's own
  /// status.
  Status Send(uint32_t node_id, std::string_view payload) EXCLUDES(mu_);

  /// Registered node ids with their link up, ascending (deterministic
  /// election order).
  std::vector<uint32_t> LiveNodes() const EXCLUDES(mu_);

  int64_t frames_sent() const EXCLUDES(mu_);
  int64_t bytes_sent() const EXCLUDES(mu_);
  int64_t send_failures() const EXCLUDES(mu_);
  int64_t checksum_failures() const EXCLUDES(mu_);

 private:
  struct Node {
    TransportEndpoint* endpoint = nullptr;
    bool up = true;
    bool corrupt_next = false;
  };

  mutable Mutex mu_;
  /// Ordered map: LiveNodes() iteration must be id-ordered, not hashed.
  std::map<uint32_t, Node> nodes_ GUARDED_BY(mu_);
  int64_t frames_sent_ GUARDED_BY(mu_) = 0;
  int64_t bytes_sent_ GUARDED_BY(mu_) = 0;
  int64_t send_failures_ GUARDED_BY(mu_) = 0;
  int64_t checksum_failures_ GUARDED_BY(mu_) = 0;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_TRANSPORT_H_
