// Bounded MPMC queue for the steering service's request path.
//
// Differs from the ThreadPool's task deque on purpose: admission control
// needs a *bounded* queue whose producer side never blocks — an overloaded
// service must reject (shed) a request immediately rather than stall the
// caller behind an unbounded backlog. Consumers (compile workers) block on
// Pop until work arrives or the queue is closed.
//
// Thread-safety: all members are safe to call concurrently. Closing is
// idempotent; after Close, TryPush fails and Pop drains the remaining items
// before returning false.
#ifndef QSTEER_COMMON_BOUNDED_QUEUE_H_
#define QSTEER_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace qsteer {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int capacity) : capacity_(std::max(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  int capacity() const { return capacity_; }

  /// Non-blocking: false when the queue is full or closed (the caller sheds
  /// or rejects; it never waits).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || static_cast<int>(items_.size()) >= capacity_) return false;
      items_.push_back(std::move(item));
      high_water_ = std::max(high_water_, static_cast<int64_t>(items_.size()));
      ++pushed_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* empty.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    if (items_.empty()) empty_cv_.notify_all();
    return true;
  }

  /// Stops admission and wakes all blocked consumers. Items already queued
  /// remain poppable (graceful drain).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
    empty_cv_.notify_all();
  }

  /// Closes and removes every queued item, returning them so the caller can
  /// fail their completions (crash simulation / hard stop).
  std::vector<T> CloseAndDrain() {
    std::vector<T> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      drained.assign(std::make_move_iterator(items_.begin()),
                     std::make_move_iterator(items_.end()));
      items_.clear();
    }
    cv_.notify_all();
    empty_cv_.notify_all();
    return drained;
  }

  /// Blocks until the queue is empty (drain barrier; pair with an in-flight
  /// counter for full quiescence).
  void WaitUntilEmpty() {
    std::unique_lock<std::mutex> lock(mu_);
    empty_cv_.wait(lock, [&] { return items_.empty(); });
  }

  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(items_.size());
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  int64_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  int64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable empty_cv_;
  std::deque<T> items_;
  bool closed_ = false;
  int64_t high_water_ = 0;
  int64_t pushed_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_BOUNDED_QUEUE_H_
