// Bounded MPMC queue for the steering service's request path.
//
// Differs from the ThreadPool's task deque on purpose: admission control
// needs a *bounded* queue whose producer side never blocks — an overloaded
// service must reject (shed) a request immediately rather than stall the
// caller behind an unbounded backlog. Consumers (compile workers) block on
// Pop until work arrives or the queue is closed.
//
// Thread-safety: all members are safe to call concurrently. Closing is
// idempotent; after Close, TryPush fails and Pop drains the remaining items
// before returning false.
#ifndef QSTEER_COMMON_BOUNDED_QUEUE_H_
#define QSTEER_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace qsteer {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int capacity) : capacity_(std::max(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  int capacity() const { return capacity_; }

  /// Non-blocking: false when the queue is full or closed (the caller sheds
  /// or rejects; it never waits).
  bool TryPush(T item) {
    {
      MutexLock lock(mu_);
      if (closed_ || static_cast<int>(items_.size()) >= capacity_) return false;
      items_.push_back(std::move(item));
      high_water_ = std::max(high_water_, static_cast<int64_t>(items_.size()));
      ++pushed_;
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* empty.
  bool Pop(T* out) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.Wait(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    if (items_.empty()) empty_cv_.NotifyAll();
    return true;
  }

  /// Stops admission and wakes all blocked consumers. Items already queued
  /// remain poppable (graceful drain).
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
    empty_cv_.NotifyAll();
  }

  /// Closes and removes every queued item, returning them so the caller can
  /// fail their completions (crash simulation / hard stop).
  std::vector<T> CloseAndDrain() {
    std::vector<T> drained;
    {
      MutexLock lock(mu_);
      closed_ = true;
      drained.assign(std::make_move_iterator(items_.begin()),
                     std::make_move_iterator(items_.end()));
      items_.clear();
    }
    cv_.NotifyAll();
    empty_cv_.NotifyAll();
    return drained;
  }

  /// Blocks until the queue is empty (drain barrier; pair with an in-flight
  /// counter for full quiescence).
  void WaitUntilEmpty() {
    MutexLock lock(mu_);
    while (!items_.empty()) empty_cv_.Wait(mu_);
  }

  int size() const {
    MutexLock lock(mu_);
    return static_cast<int>(items_.size());
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  int64_t high_water() const {
    MutexLock lock(mu_);
    return high_water_;
  }

  int64_t pushed() const {
    MutexLock lock(mu_);
    return pushed_;
  }

 private:
  const int capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  CondVar empty_cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  int64_t high_water_ GUARDED_BY(mu_) = 0;
  int64_t pushed_ GUARDED_BY(mu_) = 0;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_BOUNDED_QUEUE_H_
