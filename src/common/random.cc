#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace qsteer {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  state_ = 0;
  inc_ = (stream << 1u) | 1u;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Pcg32::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Pcg32::NextDouble() {
  // 53 random bits scaled to [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Pcg32::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (-range) % range;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return lo + static_cast<int64_t>(r % range);
  }
}

double Pcg32::UniformDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Pcg32::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Pcg32::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

bool Pcg32::NextBool(double p_true) { return NextDouble() < p_true; }

std::vector<int> Pcg32::SampleWithoutReplacement(int n, int k) {
  std::vector<int> out;
  if (n <= 0 || k <= 0) return out;
  k = std::min(k, n);
  if (k * 4 >= n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sample into a set.
  std::unordered_set<int> seen;
  out.reserve(k);
  while (static_cast<int>(out.size()) < k) {
    int candidate = static_cast<int>(UniformInt(0, n - 1));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

ZipfSampler::ZipfSampler(int n, double s) : n_(std::max(1, n)), s_(s) {
  cdf_.resize(static_cast<size_t>(n_));
  double total = 0.0;
  for (int k = 1; k <= n_; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s_);
    cdf_[static_cast<size_t>(k - 1)] = total;
  }
  for (double& v : cdf_) v /= total;
}

int ZipfSampler::Sample(Pcg32* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_;
  return static_cast<int>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(int k) const {
  if (k < 1 || k > n_) return 0.0;
  double prev = (k == 1) ? 0.0 : cdf_[static_cast<size_t>(k - 2)];
  return cdf_[static_cast<size_t>(k - 1)] - prev;
}

}  // namespace qsteer
