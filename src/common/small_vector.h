// SmallVector: a vector with inline storage for the first N elements.
//
// The memo's GroupExpr child lists are the hottest allocation site of a
// compile — almost every operator has <= 4 inputs, so keeping them inline
// removes one heap round-trip per memo expression (and per dedup probe).
// Only trivially copyable element types are supported; that keeps copies,
// moves and destruction branch-free memcpy-style loops.
#ifndef QSTEER_COMMON_SMALL_VECTOR_H_
#define QSTEER_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <type_traits>
#include <vector>

namespace qsteer {

template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector only supports trivially copyable elements");
  static_assert(N > 0, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) { Assign(init.begin(), init.size()); }

  /// Implicit conversion from std::vector keeps existing call sites (tests,
  /// rule code) source-compatible.
  SmallVector(const std::vector<T>& from) { Assign(from.data(), from.size()); }  // NOLINT

  SmallVector(const SmallVector& other) { Assign(other.data(), other.size_); }

  SmallVector(SmallVector&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = std::move(other.heap_);
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      Assign(other.inline_, other.size_);
      other.size_ = 0;
    }
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) Assign(other.data(), other.size_);
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    if (other.heap_ != nullptr) {
      heap_ = std::move(other.heap_);
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.capacity_ = N;
      other.size_ = 0;
    } else {
      heap_.reset();
      capacity_ = N;
      Assign(other.inline_, other.size_);
      other.size_ = 0;
    }
    return *this;
  }

  ~SmallVector() = default;

  T* data() { return heap_ != nullptr ? heap_.get() : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_.get() : inline_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t wanted) {
    if (wanted > capacity_) Grow(wanted);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = value;
  }

  bool operator==(const SmallVector& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }
  bool operator!=(const SmallVector& other) const { return !(*this == other); }

 private:
  void Assign(const T* from, size_t count) {
    reserve(count);
    std::copy(from, from + count, data());
    size_ = count;
  }

  void Grow(size_t wanted) {
    size_t capacity = std::max(wanted, capacity_ * 2);
    auto grown = std::make_unique<T[]>(capacity);
    std::copy(data(), data() + size_, grown.get());
    heap_ = std::move(grown);
    capacity_ = capacity;
  }

  T inline_[N] = {};
  std::unique_ptr<T[]> heap_;
  size_t capacity_ = N;
  size_t size_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_SMALL_VECTOR_H_
