// Minimal Status/Result error-propagation types (exception-free control flow,
// following the style-guide convention for database code).
#ifndef QSTEER_COMMON_STATUS_H_
#define QSTEER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace qsteer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  // The rule configuration cannot produce a complete physical plan (e.g.,
  // every implementation rule for some operator class is disabled).
  kCompilationFailed,
  // A compile budget (wall-clock deadline or cancellation token) expired
  // before optimization finished. Transient: retrying may succeed.
  kDeadlineExceeded,
  kInternal,
  // The target endpoint is down, partitioned, or over capacity. Transient:
  // the replication layer retries or re-routes around it.
  kUnavailable,
};

/// Lightweight status object; OK is the zero-cost common case.
///
/// [[nodiscard]]: silently dropping a Status is how torn writes, failed
/// recoveries, and half-applied mutations go unnoticed until much later.
/// Every caller must consume the result — branch on it, return it, or
/// discard it explicitly with `(void)` plus a
/// `// qsteer-lint: allow(unchecked-status) <why>` justification (QL007
/// enforces the same contract repo-wide, including through type-erased
/// call paths the compiler attribute cannot see).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status CompilationFailed(std::string m) {
    return Status(StatusCode::kCompilationFailed, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// True for codes that describe a transient condition (a budget expired, an
/// endpoint was down) where the identical request may succeed if retried.
/// Retry loops across the stack — the pipeline's compile retries, the
/// fleet's serve path — key off this one predicate so a new transient code
/// is classified once, not per call site.
inline bool IsTransient(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded || code == StatusCode::kUnavailable;
}

/// Result<T>: either a value or a Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), status_(Status::OK()) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  T value_{};
  Status status_;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_STATUS_H_
