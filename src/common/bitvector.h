// 256-bit fixed-width bit vector used to represent rule configurations and
// rule signatures (Definitions 3.1 and 3.2 of the paper).
#ifndef QSTEER_COMMON_BITVECTOR_H_
#define QSTEER_COMMON_BITVECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace qsteer {

/// Fixed-size bit vector over 256 positions.
///
/// The optimizer has exactly 256 rules (paper §3.2); both the *rule
/// configuration* (which rules are enabled) and the *rule signature* (which
/// rules contributed to the final plan) are bit vectors over rule ids, so a
/// fixed 4x64-bit representation is used everywhere. Value type: copyable,
/// hashable, totally ordered (lexicographic on words) so it can key maps.
class BitVector256 {
 public:
  static constexpr int kBits = 256;

  constexpr BitVector256() : words_{0, 0, 0, 0} {}

  /// Returns a vector with all 256 bits set.
  static BitVector256 AllSet();

  /// Builds a vector from the given set bit positions. Positions outside
  /// [0, 256) are ignored.
  static BitVector256 FromIndices(const std::vector<int>& indices);

  /// Parses a string of '0'/'1' characters, most significant (bit 0) first,
  /// as printed by ToBinaryString(). Other characters are skipped, which
  /// allows grouping separators.
  static BitVector256 FromBinaryString(const std::string& text);

  void Set(int pos);
  void Reset(int pos);
  void Assign(int pos, bool value);
  bool Test(int pos) const;

  /// Number of set bits.
  int Count() const;

  bool None() const { return Count() == 0; }
  bool Any() const { return Count() > 0; }

  /// True when every set bit of this vector is also set in `other`.
  bool IsSubsetOf(const BitVector256& other) const;

  /// True when the two vectors share at least one set bit.
  bool Intersects(const BitVector256& other) const;

  BitVector256 And(const BitVector256& other) const;
  BitVector256 Or(const BitVector256& other) const;
  BitVector256 Xor(const BitVector256& other) const;
  /// Bits set in this vector but not in `other`.
  BitVector256 AndNot(const BitVector256& other) const;
  BitVector256 Not() const;

  /// Indices of all set bits, ascending.
  std::vector<int> ToIndices() const;

  /// Bit 0 first; truncated to `bits` characters.
  std::string ToBinaryString(int bits = kBits) const;

  /// Compact 64-hex-digit encoding (words little-endian, low word first).
  std::string ToHexString() const;
  /// Parses ToHexString() output; returns an empty vector on malformed
  /// input of the wrong length or with non-hex characters.
  static BitVector256 FromHexString(const std::string& text);

  /// 64-bit hash of the contents (FNV-1a over the words).
  uint64_t Hash() const;

  bool operator==(const BitVector256& other) const { return words_ == other.words_; }
  bool operator!=(const BitVector256& other) const { return words_ != other.words_; }
  bool operator<(const BitVector256& other) const { return words_ < other.words_; }

 private:
  std::array<uint64_t, 4> words_;
};

/// std::hash adapter so BitVector256 can key unordered containers.
struct BitVector256Hasher {
  size_t operator()(const BitVector256& bv) const { return static_cast<size_t>(bv.Hash()); }
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_BITVECTOR_H_
