// CRC-32 (IEEE 802.3 polynomial, reflected) for durable-state integrity:
// WAL record checksums and the recommender-store file footer. Chosen over
// the 64-bit mixers in common/hash.h because CRC32 is the conventional
// storage checksum (detects torn/partial writes, not adversaries) and its
// value is stable across platforms and releases — it is written to disk.
#ifndef QSTEER_COMMON_CRC32_H_
#define QSTEER_COMMON_CRC32_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string_view>

namespace qsteer {

namespace internal {
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace internal

/// Incremental update: feed `crc` = 0 for the first chunk, the previous
/// return value for subsequent chunks.
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = internal::kCrc32Table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace qsteer

#endif  // QSTEER_COMMON_CRC32_H_
