// Analytic Zipf distribution math shared by the statistics stack.
//
// The generative truth models value frequencies as Zipf(s) over ranks
// {1..n}; both the optimizer's estimators (src/optimizer/stats.cc) and the
// catalog's histogram builder (src/catalog/stats_model.cc) need the same
// closed-form CDF/PMF so estimate-vs-truth gaps come from *modeling*
// choices (uniformity, staleness), never from divergent Zipf arithmetic.
#ifndef QSTEER_COMMON_ZIPF_H_
#define QSTEER_COMMON_ZIPF_H_

namespace qsteer {

/// Generalized harmonic number H(k, s) with Euler–Maclaurin approximation
/// for large k. Exposed for tests.
double GenHarmonic(double k, double s);
/// P(value <= k) under Zipf(s) on [1, n]; uniform when s == 0.
double ZipfCdf(double k, double n, double s);
/// P(value == k) under Zipf(s) on [1, n].
double ZipfPmf(double k, double n, double s);
/// Expected per-pair match probability of joining two aligned Zipf
/// distributions (the uniform/uniform case reduces to 1/max(n1, n2)).
double ZipfJoinMatchProbability(double n1, double s1, double n2, double s2);

}  // namespace qsteer

#endif  // QSTEER_COMMON_ZIPF_H_
