// Task scheduling for the parallel steering pipeline.
//
// The paper's offline discovery loop ran at Microsoft as a massively
// parallel batch job: every selected job is recompiled under up to 1000
// candidate rule configurations and the cheapest plans are A/B-executed.
// This header provides the small scheduling layer the reproduction uses to
// fan that work out: a fixed-size ThreadPool, index-space ParallelFor /
// ParallelMap helpers with deterministic result ordering, a Latch, and a
// cooperative CancellationToken.
//
// Design constraints (why this is not a generic work-stealing scheduler):
//  * All pipeline work units are index-addressable (candidate i, job i),
//    so ParallelFor over an atomic index counter is both sufficient and
//    deterministic in its result placement: result[i] only ever depends on
//    input i, never on which worker claimed it.
//  * Exceptions thrown by loop bodies must not kill worker threads: the
//    first exception is captured, remaining iterations are skipped, and the
//    exception is rethrown on the calling thread after the loop drains.
//  * Nested ParallelFor calls from inside a pool task run serially inline
//    instead of deadlocking (a worker blocking on a Latch that only other
//    tasks of the same pool can open).
//
// Thread-safety: ThreadPool, Latch and CancellationToken are safe to share
// across threads. ThreadPoolStats snapshots (see common/stats.h) are
// internally consistent but not atomic across fields.
#ifndef QSTEER_COMMON_THREAD_POOL_H_
#define QSTEER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace qsteer {

/// Cooperative cancellation: loop bodies and ParallelFor poll it between
/// work items; a cancelled loop stops claiming new indices but never
/// interrupts an item mid-flight.
class CancellationToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Single-use countdown latch (std::latch is C++20 but kept out of the hot
/// path here for the trivial needs we have; this also lets us expose Wait
/// with a predicate-free interface on every libstdc++ we target).
class Latch {
 public:
  explicit Latch(int count);

  /// Decrements the count; wakes waiters when it reaches zero. Calling more
  /// times than `count` is an error (checked in debug builds only).
  void CountDown();
  void Wait();

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ GUARDED_BY(mu_);
};

/// Fixed-size worker pool over a single FIFO queue.
///
/// Pipeline work units (one candidate recompilation, one A/B execution) are
/// coarse — hundreds of microseconds to seconds — so a mutex-guarded queue
/// is nowhere near contention; per-task steal counters exist to validate
/// that assumption in benches, not because stealing occurs.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);

  /// Drains already-queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not block on work that can only be executed
  /// by this same pool (use ParallelFor, which handles nesting, instead of
  /// hand-rolled fan-out when in doubt).
  void Submit(std::function<void()> task);

  /// Lightweight counters for benches and regression tests (definition in
  /// common/stats.h so reporting code does not pull in the scheduler).
  ThreadPoolStats stats() const;

  /// The pool the calling thread is currently a worker of, or nullptr.
  static const ThreadPool* Current();

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Written only by the constructor, joined only by the destructor; never
  /// touched while workers run, so it needs no guard.
  std::vector<std::thread> workers_;
  bool shutting_down_ GUARDED_BY(mu_) = false;

  // Counters (guarded by mu_ except the atomics).
  int64_t tasks_submitted_ GUARDED_BY(mu_) = 0;
  int64_t max_queue_depth_ GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> busy_micros_{0};
  std::chrono::steady_clock::time_point created_at_;
};

/// Runs fn(0) .. fn(n-1), partitioned dynamically over the pool's workers.
///
/// Serial fallbacks (all preserve exact serial semantics):
///  * `pool == nullptr` or `pool->num_threads() <= 1` or `n <= 1`;
///  * called from inside a task of the same pool (nesting would deadlock).
///
/// Determinism contract: fn is invoked exactly once per index (unless an
/// exception or cancellation stops the loop early); callers that write
/// results to slot i of a pre-sized vector observe the same final state
/// regardless of worker count or claim order.
///
/// The first exception thrown by any fn invocation is rethrown on the
/// calling thread after all in-flight iterations finish; remaining indices
/// are skipped. A cancelled token also stops new indices (no exception).
void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn,
                 CancellationToken* cancel = nullptr);

/// Deterministically-ordered map: out[i] = fn(i). Requires R to be default
/// constructible (slots for skipped indices after cancellation stay default).
template <typename R>
std::vector<R> ParallelMap(ThreadPool* pool, int64_t n, const std::function<R(int64_t)>& fn,
                           CancellationToken* cancel = nullptr) {
  std::vector<R> out(static_cast<size_t>(n > 0 ? n : 0));
  ParallelFor(
      pool, n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); }, cancel);
  return out;
}

}  // namespace qsteer

#endif  // QSTEER_COMMON_THREAD_POOL_H_
