#include "common/zipf.h"

#include <algorithm>
#include <cmath>

namespace qsteer {

double GenHarmonic(double k, double s) {
  if (k < 1.0) return 0.0;
  constexpr int kExactTerms = 64;
  double kf = std::floor(k);
  int exact_upto = static_cast<int>(std::min(kf, static_cast<double>(kExactTerms)));
  double h = 0.0;
  for (int i = 1; i <= exact_upto; ++i) h += std::pow(static_cast<double>(i), -s);
  if (kf <= kExactTerms) return h;
  // Euler–Maclaurin tail from kExactTerms to k.
  if (std::abs(s - 1.0) < 1e-9) {
    return h + std::log(kf / kExactTerms);
  }
  return h + (std::pow(kf, 1.0 - s) - std::pow(static_cast<double>(kExactTerms), 1.0 - s)) /
                 (1.0 - s);
}

double ZipfCdf(double k, double n, double s) {
  if (n < 1.0) return 1.0;
  k = std::clamp(k, 0.0, n);
  if (k <= 0.0) return 0.0;
  if (s <= 0.0) return k / n;
  return GenHarmonic(k, s) / GenHarmonic(n, s);
}

double ZipfPmf(double k, double n, double s) {
  if (n < 1.0 || k < 1.0 || k > n) return 0.0;
  if (s <= 0.0) return 1.0 / n;
  return std::pow(k, -s) / GenHarmonic(n, s);
}

double ZipfJoinMatchProbability(double n1, double s1, double n2, double s2) {
  n1 = std::max(1.0, n1);
  n2 = std::max(1.0, n2);
  if (s1 <= 0.0 && s2 <= 0.0) return 1.0 / std::max(n1, n2);
  double numer = GenHarmonic(std::min(n1, n2), s1 + s2);
  double denom = GenHarmonic(n1, s1) * GenHarmonic(n2, s2);
  return std::clamp(numer / denom, 1e-12, 1.0);
}

}  // namespace qsteer
