#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <utility>

namespace qsteer {

namespace {
/// Worker threads mark themselves so ParallelFor can detect (and serialize)
/// nested parallelism on the same pool instead of deadlocking.
thread_local const ThreadPool* current_pool = nullptr;
}  // namespace

Latch::Latch(int count) : count_(count) {}

void Latch::CountDown() {
  MutexLock lock(mu_);
  assert(count_ > 0);
  if (--count_ == 0) cv_.NotifyAll();
}

void Latch::Wait() {
  MutexLock lock(mu_);
  while (count_ > 0) cv_.Wait(mu_);
}

// qsteer-lint: allow(wall-clock) pool uptime for stats(); observability only, never steers results
ThreadPool::ThreadPool(int num_threads) : created_at_(std::chrono::steady_clock::now()) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    assert(!shutting_down_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
    max_queue_depth_ = std::max(max_queue_depth_, static_cast<int64_t>(queue_.size()));
  }
  cv_.NotifyOne();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats out;
  {
    MutexLock lock(mu_);
    out.tasks_submitted = tasks_submitted_;
    out.max_queue_depth = max_queue_depth_;
  }
  out.num_threads = num_threads();
  out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  out.busy_seconds = static_cast<double>(busy_micros_.load(std::memory_order_relaxed)) / 1e6;
  // qsteer-lint: allow(wall-clock) stats() report; observability only, never steers results
  out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   created_at_)
                         .count();
  return out;
}

const ThreadPool* ThreadPool::Current() { return current_pool; }

void ThreadPool::WorkerLoop() {
  current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) break;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // qsteer-lint: allow(wall-clock) per-task busy time for stats(); observability only
    auto start = std::chrono::steady_clock::now();
    task();  // tasks are noexcept wrappers built by ParallelFor / callers
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() -  // qsteer-lint: allow(wall-clock) busy-time measurement, observability only
                      start)
                      .count();
    busy_micros_.fetch_add(micros, std::memory_order_relaxed);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
  current_pool = nullptr;
}

void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn,
                 CancellationToken* cancel) {
  if (n <= 0) return;
  // Serial path: no pool, a single worker (no concurrency to gain), a
  // trivially small loop, or a nested call from one of this pool's own
  // workers (fanning out would block a worker on work only workers can do).
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1 ||
      ThreadPool::Current() == pool) {
    for (int64_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }

  struct LoopState {
    std::atomic<int64_t> next{0};
    std::atomic<bool> failed{false};
    Mutex error_mu;
    std::exception_ptr error GUARDED_BY(error_mu);
  };
  LoopState state;
  int fanout = static_cast<int>(std::min<int64_t>(pool->num_threads(), n));
  Latch done(fanout);

  auto body = [&state, &fn, cancel, n, &done] {
    while (!state.failed.load(std::memory_order_relaxed) &&
           (cancel == nullptr || !cancel->cancelled())) {
      int64_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(state.error_mu);
        if (state.error == nullptr) state.error = std::current_exception();
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
    done.CountDown();
  };
  for (int w = 0; w < fanout; ++w) pool->Submit(body);
  done.Wait();
  // Workers are done (the latch opened), but lock anyway: the uncontended
  // acquire is free and keeps the access statically provable.
  MutexLock lock(state.error_mu);
  if (state.error != nullptr) std::rethrow_exception(state.error);
}

}  // namespace qsteer
