#include "common/transport.h"

#include <cstring>

#include "common/crc32.h"

namespace qsteer {

Status InProcessTransport::Register(uint32_t node_id, TransportEndpoint* endpoint) {
  if (endpoint == nullptr) return Status::InvalidArgument("null transport endpoint");
  MutexLock lock(mu_);
  Node& node = nodes_[node_id];
  node.endpoint = endpoint;
  node.up = true;
  node.corrupt_next = false;
  return Status::OK();
}

void InProcessTransport::Unregister(uint32_t node_id) {
  MutexLock lock(mu_);
  nodes_.erase(node_id);
}

void InProcessTransport::SetLinkUp(uint32_t node_id, bool up) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node_id);
  if (it != nodes_.end()) it->second.up = up;
}

bool InProcessTransport::link_up(uint32_t node_id) const {
  MutexLock lock(mu_);
  auto it = nodes_.find(node_id);
  return it != nodes_.end() && it->second.up;
}

void InProcessTransport::CorruptNextDelivery(uint32_t node_id) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node_id);
  if (it != nodes_.end()) it->second.corrupt_next = true;
}

Status InProcessTransport::Send(uint32_t node_id, std::string_view payload) {
  TransportEndpoint* endpoint = nullptr;
  bool corrupt = false;
  {
    MutexLock lock(mu_);
    auto it = nodes_.find(node_id);
    if (it == nodes_.end() || !it->second.up) {
      ++send_failures_;
      return Status::Unavailable("node " + std::to_string(node_id) +
                                 (it == nodes_.end() ? " not registered" : " link down"));
    }
    endpoint = it->second.endpoint;
    corrupt = it->second.corrupt_next;
    it->second.corrupt_next = false;
    ++frames_sent_;
    bytes_sent_ += static_cast<int64_t>(4 + payload.size());
  }

  // Frame: u32 crc32(payload) | payload. The copy is the "wire"; the
  // corruption hook flips a bit after the crc is computed, exactly like
  // damage in flight.
  std::string frame(4 + payload.size(), '\0');
  uint32_t crc = Crc32(payload);
  frame[0] = static_cast<char>(crc & 0xff);
  frame[1] = static_cast<char>((crc >> 8) & 0xff);
  frame[2] = static_cast<char>((crc >> 16) & 0xff);
  frame[3] = static_cast<char>((crc >> 24) & 0xff);
  std::memcpy(frame.data() + 4, payload.data(), payload.size());
  if (corrupt && !payload.empty()) {
    frame[4 + payload.size() / 2] = static_cast<char>(frame[4 + payload.size() / 2] ^ 0x01);
  }

  // Receiver side: verify before dispatch. Delivery happens outside mu_ so
  // a slow endpoint never blocks unrelated sends or link-state changes.
  uint32_t stored = static_cast<uint8_t>(frame[0]) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(frame[1])) << 8) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(frame[2])) << 16) |
                    (static_cast<uint32_t>(static_cast<uint8_t>(frame[3])) << 24);
  std::string_view received(frame.data() + 4, frame.size() - 4);
  if (Crc32(received) != stored) {
    MutexLock lock(mu_);
    ++checksum_failures_;
    return Status::InvalidArgument("frame checksum mismatch delivering to node " +
                                   std::to_string(node_id));
  }
  return endpoint->Deliver(received);
}

std::vector<uint32_t> InProcessTransport::LiveNodes() const {
  MutexLock lock(mu_);
  std::vector<uint32_t> live;
  for (const auto& [id, node] : nodes_) {
    if (node.up) live.push_back(id);
  }
  return live;
}

int64_t InProcessTransport::frames_sent() const {
  MutexLock lock(mu_);
  return frames_sent_;
}

int64_t InProcessTransport::bytes_sent() const {
  MutexLock lock(mu_);
  return bytes_sent_;
}

int64_t InProcessTransport::send_failures() const {
  MutexLock lock(mu_);
  return send_failures_;
}

int64_t InProcessTransport::checksum_failures() const {
  MutexLock lock(mu_);
  return checksum_failures_;
}

}  // namespace qsteer
