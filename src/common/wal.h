// Checksummed write-ahead log for the steering service's durable state.
//
// Append-only binary record stream. Each record carries the application
// sequence number of the event it journals plus a CRC32 over the sequence
// and payload, so recovery can tell three situations apart:
//
//  * a complete, intact record           -> replay it;
//  * a torn tail (crash mid-append:      -> truncate it; every record
//    short header, short payload, or        before it is intact by the
//    CRC mismatch on the final record)      append ordering;
//  * corruption *before* intact records  -> also truncated, by the same
//    (bit rot, concurrent writer)           rule: replay keeps the longest
//                                           intact prefix.
//
// Record layout (little-endian, fixed 16-byte header):
//   u32 payload_size | u32 crc32(seq_le || payload) | u64 seq | payload
//
// Durability contract: Append() returns only after the record is written
// (and fsynced when `sync_each_append`); the caller applies the event to
// in-memory state *after* journaling it, so any state observable by other
// threads is always recoverable from disk.
//
// Thread-safety: NONE. WriteAheadLog carries no internal mutex by design —
// its one production owner (DurableRecommenderStore) already serializes
// every append under the store mutex (the member is declared
// `wal_ GUARDED_BY(mu_)`, so Clang's thread-safety analysis enforces the
// discipline there). Adding a second lock here would only hide ordering
// bugs: WAL order must equal application order, which a per-call lock
// cannot guarantee.
#ifndef QSTEER_COMMON_WAL_H_
#define QSTEER_COMMON_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qsteer {

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if missing) for appending. Run Recover() first: Open
  /// refuses nothing about a torn tail and would append after it, hiding
  /// the intact prefix behind a corrupt record.
  Status Open(const std::string& path, bool sync_each_append = true);
  bool is_open() const { return fd_ >= 0; }
  void Close();

  /// Journals one record. `seq` must be strictly increasing per log; this
  /// is the application's event sequence, used by recovery to skip events
  /// already captured by a snapshot.
  Status Append(uint64_t seq, std::string_view payload);

  /// Truncates the log to empty (after a successful snapshot made its
  /// records redundant). The log stays open for appending.
  Status Reset();

  int64_t appended_records() const { return appended_records_; }
  int64_t appended_bytes() const { return appended_bytes_; }

  struct RecoveryInfo {
    int64_t records = 0;         // intact records replayed
    uint64_t last_seq = 0;       // seq of the last intact record (0 if none)
    int64_t truncated_bytes = 0; // torn/corrupt tail removed from the file
  };

  /// Replays every intact record in file order through `fn(seq, payload)`
  /// and truncates any torn or corrupt tail in place. A missing file is a
  /// fresh log (zero RecoveryInfo). `fn` returning a non-OK status aborts
  /// the replay with that status (the tail is left untouched).
  static Result<RecoveryInfo> Recover(
      const std::string& path,
      const std::function<Status(uint64_t seq, std::string_view payload)>& fn);

  /// Records larger than this are treated as corruption by recovery (a
  /// wildly implausible size is almost certainly a torn length field).
  static constexpr uint32_t kMaxPayloadBytes = 1u << 20;

  /// Fault injection: the NEXT Append() writes only the first `max_bytes`
  /// of its record to disk, then fails with kInternal as a full device
  /// (ENOSPC) or kill-mid-write would. One-shot — the hook disarms itself.
  /// The fail-stop contract under test: a short-written frame must never be
  /// replayed by Recover(), and the log must keep working after reopening.
  void SetShortWriteForTesting(size_t max_bytes) {
    short_write_armed_ = true;
    short_write_max_bytes_ = max_bytes;
  }

 private:
  int fd_ = -1;
  std::string path_;
  bool sync_each_append_ = true;
  int64_t appended_records_ = 0;
  int64_t appended_bytes_ = 0;
  bool short_write_armed_ = false;
  size_t short_write_max_bytes_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_WAL_H_
