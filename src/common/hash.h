// Hashing utilities shared across modules (template hashing, feature hashing).
#ifndef QSTEER_COMMON_HASH_H_
#define QSTEER_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace qsteer {

/// 64-bit FNV-1a over arbitrary bytes.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// SplitMix64 finalizer; good avalanche for combining integer hashes.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Position-dependent hash of an integer sequence: every element is pre-mixed
/// with its index before the order-sensitive combine, and the length is folded
/// in last. Sequences that are permutations of each other (e.g. the children
/// of commutative operators) therefore get distinct hashes even when the
/// elements are small, near-equal integers — the collision family the memo's
/// expression dedup must never conflate.
template <typename It>
inline uint64_t HashRange(It begin, It end, uint64_t seed) {
  uint64_t h = Mix64(seed);
  uint64_t index = 0;
  for (It it = begin; it != end; ++it) {
    ++index;
    h = HashCombine(h, Mix64(static_cast<uint64_t>(*it) + (index << 32)));
  }
  return HashCombine(h, index);
}

/// Deterministic hashing-trick encoder: maps a categorical value with a large
/// alphabet to one of `bins` buckets (paper §7.2 uses 50 bins).
inline int HashToBin(uint64_t value, int bins) {
  if (bins <= 0) return 0;
  return static_cast<int>(Mix64(value) % static_cast<uint64_t>(bins));
}

}  // namespace qsteer

#endif  // QSTEER_COMMON_HASH_H_
