// Deterministic pseudo-random generation. All stochastic behaviour in the
// library (data synthesis, configuration sampling, cluster noise) flows from
// seeded Pcg32 instances so every experiment is reproducible bit-for-bit.
#ifndef QSTEER_COMMON_RANDOM_H_
#define QSTEER_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qsteer {

/// PCG-XSH-RR 32-bit generator (O'Neill 2014). Small, fast, seedable, and
/// independent of the C++ standard library distributions (whose outputs are
/// not portable across implementations).
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 0xda3e39cb94b95bdbULL);

  uint32_t NextU32();
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Lognormal with the given log-space mean and standard deviation.
  double NextLogNormal(double mu, double sigma);

  /// Bernoulli draw.
  bool NextBool(double p_true);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n). Returns fewer when k > n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_;
  uint64_t inc_;
  // Box-Muller produces pairs; cache the spare value.
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Zipf(s) sampler over ranks {1..n} using precomputed CDF; models skewed
/// key distributions in generated data (a core source of the optimizer's
/// uniformity-assumption errors).
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  /// Returns a rank in [1, n].
  int Sample(Pcg32* rng) const;

  int n() const { return n_; }
  double s() const { return s_; }

  /// Probability mass of rank k (1-based).
  double Pmf(int k) const;

 private:
  int n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_RANDOM_H_
