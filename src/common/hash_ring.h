// Consistent-hash ring for routing serving traffic across a replica fleet.
//
// Each replica id is projected onto the ring at `vnodes` deterministic
// points (a hash of the id and the virtual-node index — never a pointer or
// any per-process value, so placement is identical across processes and
// runs; see the determinism linter's QL004 rule). A key routes to the
// first point clockwise from its own hash. Virtual nodes smooth the load:
// with the default 64 points per replica the spread across a small fleet
// stays within a few percent of uniform, and adding or removing a replica
// moves only the keys whose closest point belonged to it (~1/N of the
// keyspace), never reshuffling the rest.
//
// Thread-safety: NONE — the owner (ReplicationFleet) guards the ring with
// its topology mutex, exactly like WriteAheadLog under the durable store.
#ifndef QSTEER_COMMON_HASH_RING_H_
#define QSTEER_COMMON_HASH_RING_H_

#include <cstdint>
#include <vector>

namespace qsteer {

class ConsistentHashRing {
 public:
  /// `vnodes` = ring points per replica; more points, smoother spread.
  explicit ConsistentHashRing(int vnodes = 64);

  /// Idempotent: re-adding a present replica is a no-op.
  void AddReplica(uint32_t replica_id);
  /// Idempotent: removing an absent replica is a no-op.
  void RemoveReplica(uint32_t replica_id);
  bool Contains(uint32_t replica_id) const;
  /// Distinct replicas on the ring.
  int num_replicas() const;
  bool empty() const { return points_.empty(); }

  /// Invalid-route sentinel (the ring never hosts this id).
  static constexpr uint32_t kNoReplica = 0xffffffffu;

  /// Primary owner of `key_hash`: the first ring point clockwise from it.
  /// kNoReplica on an empty ring.
  uint32_t RouteFor(uint64_t key_hash) const;

  /// Up to `count` distinct replicas in preference order (primary first,
  /// then successors clockwise). Re-routing walks this list when the
  /// primary is down or over its admission budget.
  std::vector<uint32_t> PreferenceFor(uint64_t key_hash, int count) const;

 private:
  int vnodes_;
  /// Sorted (point, replica_id); binary-searched on route. Points are a
  /// pure function of (replica_id, vnode_index).
  std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_HASH_RING_H_
