#include "common/argparse.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace qsteer {

bool ParseIntArg(const char* s, int min_value, int max_value, int* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (value < static_cast<long>(min_value) || value > static_cast<long>(max_value)) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseDoubleArg(const char* s, double min_value, double max_value, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (!(value >= min_value && value <= max_value)) return false;  // rejects NaN
  *out = value;
  return true;
}

}  // namespace qsteer
