// Small numeric summaries used by benches and the evaluation pipeline
// (means, percentiles — Table 5 reports mean / 90P / 99P runtimes), plus
// the counter snapshot ThreadPool exposes to benches.
#ifndef QSTEER_COMMON_STATS_H_
#define QSTEER_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qsteer {

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

/// Percentile with linear interpolation; `p` in [0, 100]. Returns 0 for an
/// empty input.
double Percentile(std::vector<double> values, double p);

/// Geometric mean of strictly positive values; non-positive entries are
/// skipped.
double GeoMean(const std::vector<double>& values);

struct Summary {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary Summarize(const std::vector<double>& values);

/// Counter snapshot of one ThreadPool (common/thread_pool.h). Lives here so
/// reporting code (benches, perf regressions) can consume pool counters
/// without pulling in the scheduler itself.
struct ThreadPoolStats {
  int num_threads = 0;
  int64_t tasks_submitted = 0;
  int64_t tasks_run = 0;
  /// High-water mark of the task queue (proxy for fan-out pressure; this
  /// pool has one FIFO queue, so "steal depth" degenerates to queue depth).
  int64_t max_queue_depth = 0;
  /// Sum of task-body wall time across workers.
  double busy_seconds = 0.0;
  /// Wall time since pool construction.
  double wall_seconds = 0.0;

  /// busy_seconds / (num_threads * wall_seconds), in [0, 1].
  double Utilization() const;
  std::string ToString() const;
};

/// Per-stage failure counters of one SteeringPipeline (core/pipeline.h).
/// Lives here, next to ThreadPoolStats, so reporting code can consume
/// resilience counters without pulling in the pipeline itself.
struct PipelineFailureStats {
  /// Candidate compilations that hit the compile deadline (transient).
  int64_t compile_timeouts = 0;
  /// Candidate compilations that stayed kUnavailable (a remote compile tier
  /// down/over capacity) after the retry policy. Disjoint from
  /// compile_timeouts; both codes are transient (common/status.h
  /// IsTransient) and retried with backoff before the candidate is dropped.
  int64_t compile_unavailable = 0;
  /// Candidate compilations re-attempted after a transient failure.
  int64_t compile_retries = 0;
  /// Candidate compilations that failed permanently (kCompilationFailed).
  int64_t compile_failures = 0;
  /// Simulated executions re-attempted after a transient run failure.
  int64_t exec_retries = 0;
  /// Executions still failed after exhausting the retry policy.
  int64_t exec_failures = 0;
  /// Candidates dropped from an analysis (degraded to the default config)
  /// because compilation or execution kept failing.
  int64_t fallbacks = 0;
  /// Simulated seconds spent backing off before transient-compile retries
  /// (RetryPolicy::BackoffBeforeRetry; accounted, never slept).
  double retry_backoff_s = 0.0;

  int64_t Total() const {
    return compile_timeouts + compile_unavailable + compile_failures + exec_failures +
           fallbacks;
  }
  std::string ToString() const;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_STATS_H_
