// Small numeric summaries used by benches and the evaluation pipeline
// (means, percentiles — Table 5 reports mean / 90P / 99P runtimes).
#ifndef QSTEER_COMMON_STATS_H_
#define QSTEER_COMMON_STATS_H_

#include <vector>

namespace qsteer {

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

/// Percentile with linear interpolation; `p` in [0, 100]. Returns 0 for an
/// empty input.
double Percentile(std::vector<double> values, double p);

/// Geometric mean of strictly positive values; non-positive entries are
/// skipped.
double GeoMean(const std::vector<double>& values);

struct Summary {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary Summarize(const std::vector<double>& values);

}  // namespace qsteer

#endif  // QSTEER_COMMON_STATS_H_
