// Annotated mutex primitives for Clang's thread-safety analysis.
//
// std::mutex / std::lock_guard / std::condition_variable carry no capability
// attributes in libstdc++, so code locking them is invisible to
// -Wthread-safety. These thin wrappers attach the attributes
// (common/thread_annotations.h) without changing behavior or cost: Mutex is
// exactly a std::mutex, MutexLock exactly a lock_guard, and CondVar waits on
// the wrapped std::mutex via the adopt/release idiom (no
// condition_variable_any indirection).
//
// Usage pattern enforced across the repo:
//
//   mutable Mutex mu_;
//   CondVar cv_;
//   int state_ GUARDED_BY(mu_);
//
//   void Wait() {
//     MutexLock lock(mu_);
//     while (state_ == 0) cv_.Wait(mu_);   // explicit loop, NOT a predicate
//   }                                      // lambda: the analysis treats a
//                                          // lambda as a separate function
//                                          // that does not hold mu_.
//
// CondVar::Wait releases and reacquires the mutex internally; the analysis
// (deliberately) does not model that window, matching the standard caveat of
// every annotated condition-variable wrapper: the capability is held at
// entry and at exit, which is what callers may rely on.
#ifndef QSTEER_COMMON_MUTEX_H_
#define QSTEER_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace qsteer {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this thread holds the mutex when that fact cannot be
  /// proven statically. No runtime effect.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the scoped-capability shape the analysis tracks through early
/// returns and exceptions.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }

  /// Adopts a mutex the caller already locked (e.g. via a contention-counting
  /// TryLock-then-Lock helper annotated ACQUIRE). The destructor releases it.
  struct AdoptT {};
  MutexLock(Mutex& mu, AdoptT) REQUIRES(mu) : mu_(&mu) {}

  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

inline constexpr MutexLock::AdoptT kAdoptLock{};

/// Condition variable bound to qsteer::Mutex. Wait requires the mutex held
/// and waits on the *wrapped* std::mutex directly (adopt/release), so there
/// is no extra internal lock and wakeups cost the same as a plain
/// std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One spurious-wakeup-prone wait; always call in a `while (!condition)`
  /// loop in the function that holds the lock.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qsteer

#endif  // QSTEER_COMMON_MUTEX_H_
