#include "common/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/crc32.h"

namespace qsteer {

namespace {

constexpr size_t kHeaderBytes = 16;  // u32 size | u32 crc | u64 seq

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

void PutU32(unsigned char* out, uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

void PutU64(unsigned char* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const unsigned char* in) {
  return static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
         static_cast<uint32_t>(in[2]) << 16 | static_cast<uint32_t>(in[3]) << 24;
}

uint64_t GetU64(const unsigned char* in) {
  return static_cast<uint64_t>(GetU32(in)) | static_cast<uint64_t>(GetU32(in + 4)) << 32;
}

uint32_t RecordCrc(uint64_t seq, std::string_view payload) {
  unsigned char seq_le[8];
  PutU64(seq_le, seq);
  uint32_t crc = Crc32Update(0, seq_le, sizeof(seq_le));
  return Crc32Update(crc, payload.data(), payload.size());
}

Status WriteAll(int fd, const unsigned char* data, size_t len, const std::string& path) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write failed", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path, bool sync_each_append) {
  Close();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open wal", path);
  fd_ = fd;
  path_ = path;
  sync_each_append_ = sync_each_append;
  return Status::OK();
}

void WriteAheadLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteAheadLog::Append(uint64_t seq, std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("wal payload too large");
  }
  // One buffered write per record: a crash can tear the record (recovery
  // truncates it) but never interleave two records.
  std::vector<unsigned char> record(kHeaderBytes + payload.size());
  PutU32(record.data(), static_cast<uint32_t>(payload.size()));
  PutU32(record.data() + 4, RecordCrc(seq, payload));
  PutU64(record.data() + 8, seq);
  std::memcpy(record.data() + kHeaderBytes, payload.data(), payload.size());
  if (short_write_armed_) {
    // Injected ENOSPC / crash-mid-write: persist only a prefix of the frame,
    // then fail. The torn frame is exactly what Recover() must truncate.
    short_write_armed_ = false;
    size_t prefix = std::min(short_write_max_bytes_, record.size());
    Status partial = WriteAll(fd_, record.data(), prefix, path_);
    if (!partial.ok()) return partial;
    if (sync_each_append_) ::fsync(fd_);
    return Status::Internal("injected short write (ENOSPC): " + path_);
  }
  Status status = WriteAll(fd_, record.data(), record.size(), path_);
  if (!status.ok()) return status;
  if (sync_each_append_ && ::fsync(fd_) != 0) return Errno("wal fsync failed", path_);
  ++appended_records_;
  appended_bytes_ += static_cast<int64_t>(record.size());
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
  if (::ftruncate(fd_, 0) != 0) return Errno("wal truncate failed", path_);
  if (sync_each_append_ && ::fsync(fd_) != 0) return Errno("wal fsync failed", path_);
  return Status::OK();
}

Result<WriteAheadLog::RecoveryInfo> WriteAheadLog::Recover(
    const std::string& path,
    const std::function<Status(uint64_t seq, std::string_view payload)>& fn) {
  RecoveryInfo info;
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return info;  // fresh log
    return Errno("cannot open wal", path);
  }

  off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    ::close(fd);
    return Errno("cannot seek wal", path);
  }
  ::lseek(fd, 0, SEEK_SET);

  std::string content(static_cast<size_t>(file_size), '\0');
  size_t read_total = 0;
  while (read_total < content.size()) {
    ssize_t n = ::read(fd, content.data() + read_total, content.size() - read_total);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("wal read failed", path);
    }
    if (n == 0) break;  // concurrent truncation; treat the rest as torn
    read_total += static_cast<size_t>(n);
  }
  content.resize(read_total);

  size_t offset = 0;
  while (true) {
    if (content.size() - offset < kHeaderBytes) break;  // torn or clean end
    const auto* header = reinterpret_cast<const unsigned char*>(content.data() + offset);
    uint32_t payload_size = GetU32(header);
    uint32_t stored_crc = GetU32(header + 4);
    uint64_t seq = GetU64(header + 8);
    if (payload_size > kMaxPayloadBytes) break;  // corrupt length field
    if (content.size() - offset - kHeaderBytes < payload_size) break;  // torn payload
    std::string_view payload(content.data() + offset + kHeaderBytes, payload_size);
    if (RecordCrc(seq, payload) != stored_crc) break;  // torn or corrupt record
    Status status = fn(seq, payload);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
    ++info.records;
    info.last_seq = seq;
    offset += kHeaderBytes + payload_size;
  }

  info.truncated_bytes = static_cast<int64_t>(content.size() - offset);
  if (info.truncated_bytes > 0) {
    if (::ftruncate(fd, static_cast<off_t>(offset)) != 0 || ::fsync(fd) != 0) {
      ::close(fd);
      return Errno("wal tail truncation failed", path);
    }
  }
  ::close(fd);
  return info;
}

}  // namespace qsteer
