#include "discovery/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace qsteer {

namespace {

constexpr char kArtifactHeader[] = "# qsteer-shard-artifact v1";
constexpr char kManifestHeader[] = "# qsteer-shard-manifest v1";

/// %.17g preserves every bit of a double across a text round trip.
std::string DoubleText(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string IdsText(const std::vector<int>& ids) {
  if (ids.empty()) return "-";
  std::ostringstream out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ',';
    out << ids[i];
  }
  return out.str();
}

Status ParseIds(const std::string& text, std::vector<int>* out) {
  out->clear();
  if (text == "-") return Status::OK();
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) return Status::InvalidArgument("empty rule id");
    char* end = nullptr;
    long v = std::strtol(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("malformed rule id: " + token);
    }
    out->push_back(static_cast<int>(v));
  }
  return Status::OK();
}

/// Splits `line` on tabs into exactly `min_fields`-or-more fields.
Status SplitTabs(const std::string& line, size_t min_fields,
                 std::vector<std::string>* fields) {
  fields->clear();
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields->push_back(line.substr(start));
      break;
    }
    fields->push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  if (fields->size() < min_fields) {
    return Status::InvalidArgument("too few fields in line: " + line);
  }
  return Status::OK();
}

Status ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::InvalidArgument("malformed double: " + text);
  }
  return Status::OK();
}

/// Line-oriented "key value" scanner over a header section.
class KeyValueLines {
 public:
  explicit KeyValueLines(std::istringstream* in) : in_(in) {}

  /// Reads the next line and checks its key; the remainder is the value.
  Status Expect(const std::string& key, std::string* value) {
    std::string line;
    if (!std::getline(*in_, line)) {
      return Status::InvalidArgument("missing field: " + key);
    }
    if (line.compare(0, key.size(), key) != 0 || line.size() <= key.size() ||
        line[key.size()] != ' ') {
      return Status::InvalidArgument("expected field '" + key + "', got: " + line);
    }
    *value = line.substr(key.size() + 1);
    return Status::OK();
  }

  Status ExpectInt(const std::string& key, int64_t* value) {
    std::string text;
    Status status = Expect(key, &text);
    if (!status.ok()) return status;
    char* end = nullptr;
    *value = std::strtoll(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || text.empty()) {
      return Status::InvalidArgument("malformed integer for '" + key + "': " + text);
    }
    return Status::OK();
  }

 private:
  std::istringstream* in_;
};

Status ParseShardOfLine(const std::string& value, int* index, int* total) {
  // "2 of 8"
  int i = 0;
  int n = 0;
  if (std::sscanf(value.c_str(), "%d of %d", &i, &n) != 2) {
    return Status::InvalidArgument("malformed shard line: " + value);
  }
  *index = i;
  *total = n;
  return Status::OK();
}

Status ParseHex64(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) {
    return Status::InvalidArgument("malformed 64-bit hex: " + text);
  }
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("malformed 64-bit hex: " + text);
  }
  return Status::OK();
}

}  // namespace

std::string ShardArtifactName(int shard_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%05d.artifact", shard_index);
  return buf;
}

std::string ShardManifestName(int shard_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%05d.manifest", shard_index);
  return buf;
}

std::string ShardArtifact::Serialize() const {
  std::ostringstream out;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, partition_hash);
  out << kArtifactHeader << "\n";
  out << "workload " << workload << "\n";
  out << "day " << day << "\n";
  out << "shard " << shard_index << " of " << num_shards << "\n";
  out << "partition_hash " << hex << "\n";
  out << "jobs " << jobs << "\n";
  for (const ShardObservation& obs : observations) {
    out << "obs\t" << obs.signature_hex << '\t' << DoubleText(obs.improvement_pct)
        << '\t' << obs.hints << "\n";
  }
  for (const ShardDiffRow& row : diff_rows) {
    out << "diff\t" << row.signature_hex << '\t' << DoubleText(row.change_pct) << '\t'
        << row.job_name << '\t' << IdsText(row.only_in_default) << '\t'
        << IdsText(row.only_in_new) << "\n";
  }
  return out.str();
}

Result<ShardArtifact> ShardArtifact::Parse(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != kArtifactHeader) {
    return Status::InvalidArgument("not a shard artifact (bad header)");
  }
  ShardArtifact artifact;
  KeyValueLines kv(&in);
  Status status = kv.Expect("workload", &artifact.workload);
  if (!status.ok()) return status;
  int64_t v = 0;
  status = kv.ExpectInt("day", &v);
  if (!status.ok()) return status;
  artifact.day = static_cast<int>(v);
  std::string shard_of;
  status = kv.Expect("shard", &shard_of);
  if (!status.ok()) return status;
  status = ParseShardOfLine(shard_of, &artifact.shard_index, &artifact.num_shards);
  if (!status.ok()) return status;
  std::string hash_hex;
  status = kv.Expect("partition_hash", &hash_hex);
  if (!status.ok()) return status;
  status = ParseHex64(hash_hex, &artifact.partition_hash);
  if (!status.ok()) return status;
  status = kv.ExpectInt("jobs", &v);
  if (!status.ok()) return status;
  artifact.jobs = v;

  std::vector<std::string> fields;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.compare(0, 4, "obs\t") == 0) {
      status = SplitTabs(line, 4, &fields);
      if (!status.ok()) return status;
      ShardObservation obs;
      obs.signature_hex = fields[1];
      status = ParseDouble(fields[2], &obs.improvement_pct);
      if (!status.ok()) return status;
      // The hint string is the final field and may itself contain no tabs
      // (§3.2 syntax: names, commas, parens, semicolons) — rejoin defensively
      // in case a rule name ever gains one.
      obs.hints = fields[3];
      for (size_t i = 4; i < fields.size(); ++i) obs.hints += "\t" + fields[i];
      artifact.observations.push_back(std::move(obs));
    } else if (line.compare(0, 5, "diff\t") == 0) {
      status = SplitTabs(line, 6, &fields);
      if (!status.ok()) return status;
      ShardDiffRow row;
      row.signature_hex = fields[1];
      status = ParseDouble(fields[2], &row.change_pct);
      if (!status.ok()) return status;
      row.job_name = fields[3];
      status = ParseIds(fields[4], &row.only_in_default);
      if (!status.ok()) return status;
      status = ParseIds(fields[5], &row.only_in_new);
      if (!status.ok()) return status;
      artifact.diff_rows.push_back(std::move(row));
    } else {
      return Status::InvalidArgument("unknown artifact line: " + line);
    }
  }
  return artifact;
}

std::string ShardManifest::Serialize() const {
  std::ostringstream out;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016" PRIx64, partition_hash);
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", artifact_crc32);
  out << kManifestHeader << "\n";
  out << "workload " << workload << "\n";
  out << "day " << day << "\n";
  out << "shard " << shard_index << " of " << num_shards << "\n";
  out << "partition_hash " << hex << "\n";
  out << "jobs " << jobs << "\n";
  out << "groups " << groups << "\n";
  out << "attempt " << attempt << "\n";
  out << "artifact " << artifact_file << "\n";
  out << "artifact_bytes " << artifact_bytes << "\n";
  out << "artifact_crc32 " << crc_hex << "\n";
  return out.str();
}

Result<ShardManifest> ShardManifest::Parse(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::InvalidArgument("not a shard manifest (bad header)");
  }
  ShardManifest manifest;
  KeyValueLines kv(&in);
  Status status = kv.Expect("workload", &manifest.workload);
  if (!status.ok()) return status;
  int64_t v = 0;
  status = kv.ExpectInt("day", &v);
  if (!status.ok()) return status;
  manifest.day = static_cast<int>(v);
  std::string shard_of;
  status = kv.Expect("shard", &shard_of);
  if (!status.ok()) return status;
  status = ParseShardOfLine(shard_of, &manifest.shard_index, &manifest.num_shards);
  if (!status.ok()) return status;
  std::string hash_hex;
  status = kv.Expect("partition_hash", &hash_hex);
  if (!status.ok()) return status;
  status = ParseHex64(hash_hex, &manifest.partition_hash);
  if (!status.ok()) return status;
  status = kv.ExpectInt("jobs", &v);
  if (!status.ok()) return status;
  manifest.jobs = v;
  status = kv.ExpectInt("groups", &v);
  if (!status.ok()) return status;
  manifest.groups = v;
  status = kv.ExpectInt("attempt", &v);
  if (!status.ok()) return status;
  manifest.attempt = static_cast<int>(v);
  status = kv.Expect("artifact", &manifest.artifact_file);
  if (!status.ok()) return status;
  status = kv.ExpectInt("artifact_bytes", &v);
  if (!status.ok()) return status;
  manifest.artifact_bytes = v;
  std::string crc_hex;
  status = kv.Expect("artifact_crc32", &crc_hex);
  if (!status.ok()) return status;
  uint64_t crc = 0;
  status = ParseHex64(crc_hex, &crc);
  if (!status.ok()) return status;
  if (crc > 0xffffffffull) return Status::InvalidArgument("crc32 out of range");
  manifest.artifact_crc32 = static_cast<uint32_t>(crc);
  return manifest;
}

std::string RenderDiffTable(const std::vector<ShardDiffRow>& rows) {
  std::ostringstream out;
  out << "# qsteer-rulediff v1\n";
  out << "# signature\tchange_pct\tjob\tonly_in_default\tonly_in_new\n";
  for (const ShardDiffRow& row : rows) {
    out << row.signature_hex << '\t' << DoubleText(row.change_pct) << '\t'
        << row.job_name << '\t' << IdsText(row.only_in_default) << '\t'
        << IdsText(row.only_in_new) << "\n";
  }
  return out.str();
}

bool ShardManifest::Matches(const ShardArtifact& artifact) const {
  return workload == artifact.workload && day == artifact.day &&
         shard_index == artifact.shard_index && num_shards == artifact.num_shards &&
         partition_hash == artifact.partition_hash && jobs == artifact.jobs;
}

}  // namespace qsteer
