// Durable per-shard artifacts of the sharded discovery orchestrator.
//
// A shard's unit of progress is a pair of files, committed in a fixed
// order that makes recovery unambiguous:
//
//   shard_<i>.artifact   — the shard's reduced discovery output: the
//     recommender learn events its jobs yielded (in shard job order, which
//     is day order restricted to the shard) and one reduced rule-diff row
//     per improving rule-signature group. Written atomically (temp +
//     rename); its exact bytes are fingerprinted by the manifest.
//   shard_<i>.manifest   — the commit record: identity of the partition
//     the shard belongs to (workload, day, i of n, partition hash) plus
//     the byte count and crc32 of the artifact. Written atomically with a
//     crc32 footer of its own, strictly AFTER the artifact.
//
// Because the manifest is written last, a crash leaves one of three
// states, each of which resume classifies without guessing:
//   * manifest valid + artifact bytes match its fingerprint  -> reuse;
//   * manifest missing (artifact absent, torn, or complete
//     but uncommitted)                                       -> recompute;
//   * manifest present but corrupt, or its fingerprint
//     disagrees with the artifact                            -> quarantine
//     the damaged file(s) (rename to *.quarantined) and recompute.
//
// The reduction stored in an artifact is group-local (a rule-signature
// group never spans shards), so the merge of all shard artifacts is a pure
// union — bit-identical to an unsharded run over the same day.
#ifndef QSTEER_DISCOVERY_MANIFEST_H_
#define QSTEER_DISCOVERY_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qsteer {

/// One recommender learn event (SteeringRecommender::CandidateObservation
/// in its journal-able text form: signature hex + hint string roundtrip
/// exactly; the improvement uses %.17g so the double is bit-preserved).
struct ShardObservation {
  std::string signature_hex;
  double improvement_pct = 0.0;
  /// §3.2 hint-string rendering of the observed configuration.
  std::string hints;
};

/// The reduced rule-diff row of one improving rule-signature group: the
/// group's best observed improvement and the rule-usage diff of the plan
/// that achieved it (paper Definition 6.1).
struct ShardDiffRow {
  std::string signature_hex;
  double change_pct = 0.0;
  std::string job_name;
  std::vector<int> only_in_default;
  std::vector<int> only_in_new;
};

/// The artifact body. Serialize() is deterministic: observations in shard
/// job order, diff rows sorted by (signature hex, job name).
struct ShardArtifact {
  std::string workload;
  int day = 0;
  int shard_index = 0;
  int num_shards = 0;
  /// Hash of the shard's job partition (see ShardOrchestrator); ties the
  /// artifact to one exact partitioning so artifacts from a run with a
  /// different --shards value or workload config are never merged.
  uint64_t partition_hash = 0;
  int64_t jobs = 0;
  std::vector<ShardObservation> observations;
  std::vector<ShardDiffRow> diff_rows;

  std::string Serialize() const;
  static Result<ShardArtifact> Parse(const std::string& content);
};

/// The commit record fingerprinting an artifact.
struct ShardManifest {
  std::string workload;
  int day = 0;
  int shard_index = 0;
  int num_shards = 0;
  uint64_t partition_hash = 0;
  int64_t jobs = 0;
  int64_t groups = 0;
  /// Lease attempt that produced the artifact (observability only).
  int attempt = 1;
  /// Basename of the artifact file this manifest commits.
  std::string artifact_file;
  int64_t artifact_bytes = 0;
  uint32_t artifact_crc32 = 0;

  std::string Serialize() const;
  static Result<ShardManifest> Parse(const std::string& content);

  /// True when this manifest commits `artifact` under the same partition
  /// identity (workload/day/shard/partition hash all agree).
  bool Matches(const ShardArtifact& artifact) const;
};

/// File naming within a discovery directory.
std::string ShardArtifactName(int shard_index);
std::string ShardManifestName(int shard_index);

/// Renders the merged rule-diff table (one reduced row per improving
/// group). Deterministic given row order; callers pass rows sorted by
/// (signature hex, job name).
std::string RenderDiffTable(const std::vector<ShardDiffRow>& rows);

}  // namespace qsteer

#endif  // QSTEER_DISCOVERY_MANIFEST_H_
