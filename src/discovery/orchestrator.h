// Crash-resumable sharded discovery orchestrator.
//
// The paper's offline discovery loop is a nightly batch over thousands of
// jobs; at production scale it runs sharded across worker executions, any
// of which (including the orchestrator itself) can die mid-run. This
// module makes the whole pass restartable without losing completed work
// and without ever merging damaged partial output:
//
//  * Partition: the day's jobs are grouped by their default-plan rule
//    signature and each *group* is placed on a shard via a consistent-hash
//    ring over shard ids (common/hash_ring.h) — placement is a pure
//    function of (signature, shard count), so re-running the orchestrator
//    reproduces the identical partition, and changing the shard count
//    moves only ~1/N of the groups. Group atomicity is what makes the
//    final merge order-free: SteeringRecommender::LearnCandidate touches
//    only its signature's group, so per-group learn order (preserved
//    within a shard as day order) fully determines the merged store.
//
//  * Leases: shards are dispatched to simulated worker executions under
//    deadline leases in deterministic logical ticks. A shard that exceeds
//    its lease (straggler) is speculatively re-dispatched; the copy that
//    finishes first wins. The schedule only orders commits and feeds the
//    lease/straggler counters — shard *content* is computed bit-identically
//    regardless of scheduling.
//
//  * Durability: each completed shard commits an artifact + manifest pair
//    (see discovery/manifest.h) via atomic rename, manifest strictly last,
//    with the manifest fingerprinting (byte count + crc32) the artifact.
//    Resume trusts exactly the shards whose pair verifies; torn or corrupt
//    files are quarantined (*.quarantined) and the shard recomputed.
//
//  * Merge: a pure deterministic union of the shard artifacts — replaying
//    the observations into a fresh recommender and unioning the reduced
//    rule-diff rows — proven bit-identical to DiscoverUnsharded() over the
//    same day (discovery_test / shard_chaos_test assert the bytes).
//
// Crash points: every manifest/lease/merge window consults an optional
// test hook, so the chaos harness can kill the orchestrator at each hashed
// window and assert that resume loses no completed shard.
#ifndef QSTEER_DISCOVERY_ORCHESTRATOR_H_
#define QSTEER_DISCOVERY_ORCHESTRATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/recommender.h"
#include "discovery/manifest.h"
#include "workload/generator.h"

namespace qsteer {

/// One crash window. `window` names the protocol step; windows are visited
/// in a deterministic order, and `index` is the 0-based position of this
/// window within the run (stable across identical runs — the chaos
/// harness's kill schedule hashes it).
struct DiscoveryCrashPoint {
  std::string window;
  /// Shard being committed, or -1 for run-level windows.
  int shard_index = -1;
  int64_t index = 0;
};

struct DiscoveryCrashDecision {
  bool crash = false;
  /// With `crash` at the pre-artifact window: additionally write a torn
  /// prefix of the artifact to its final path (modeling bit rot or a
  /// non-atomic filesystem) so resume must quarantine it.
  bool tear_artifact = false;
};

struct DiscoveryOptions {
  /// Artifact directory (created if missing).
  std::string dir;
  int num_shards = 8;
  /// Orchestrator compute threads across shard jobs; <= 0 = serial. The
  /// merged output is bit-identical for every value.
  int num_workers = 0;
  /// Cap on the day's jobs (0 = all) — keeps tests and smoke runs fast.
  int max_jobs = 0;
  /// Trust checksum-valid shard artifacts already in `dir`.
  bool resume = false;
  /// fsync artifact/manifest writes (tests run with false for speed).
  bool sync = false;
  int ring_vnodes = 64;
  uint64_t seed = 1;

  // Lease simulation (deterministic logical ticks).
  int64_t lease_ticks = 600;
  int64_t base_cost_ticks = 40;
  int64_t per_job_cost_ticks = 7;
  /// Probability a dispatch is a straggler (cost multiplied by
  /// `straggler_factor`), drawn from hash(seed, shard, attempt).
  double straggler_fraction = 0.05;
  double straggler_factor = 40.0;
  /// Dispatches per shard before the last one runs to completion without
  /// a lease (bounds speculative re-execution).
  int max_lease_attempts = 3;

  /// Pre-warm the pipeline's compile cache from this SaveCompileCache file
  /// before computing (empty = cold start). Rejection — corrupt, torn,
  /// version- or day-mismatched — is non-fatal: the run proceeds cold.
  std::string warm_cache_file;
  /// Persist the compile cache here after computing (empty = don't).
  std::string save_cache_file;

  /// Fleet-wide candidate-compile budget for the day (0 = unlimited):
  /// divided evenly over the day's selected jobs into a per-job
  /// pipeline.compile_budget (floor, minimum 1), so sharded discovery
  /// spends the same fleet budget regardless of how jobs landed on shards.
  /// Ranking (pipeline.rank_candidates) decides whether each job's slice
  /// goes to the top-ranked candidates or the stream prefix.
  int64_t fleet_compile_budget = 0;
  /// Pre-warm the candidate ranker from a CandidateRanker::SaveToFile
  /// artifact (empty = cold). Rejection is non-fatal: ranking starts cold.
  /// Requires pipeline.rank_candidates.
  std::string ranker_in;
  /// Persist the trained ranker here after a completed run (empty = don't).
  /// Requires pipeline.rank_candidates.
  std::string ranker_out;

  /// Per-job analysis options. num_threads is forced to 0: the orchestrator
  /// parallelizes across jobs, not within one.
  PipelineOptions pipeline;
  RecommenderOptions recommender;

  /// Testing-only crash hook; null = never crash.
  std::function<DiscoveryCrashDecision(const DiscoveryCrashPoint&)> crash_hook_for_testing;
};

struct DiscoveryCounters {
  int shards_total = 0;
  /// Completed shards trusted from a prior run (resume).
  int shards_reused = 0;
  int shards_recomputed = 0;
  /// Damaged files renamed to *.quarantined during resume.
  int shards_quarantined = 0;
  /// Intact-but-foreign artifacts (different partition) recomputed.
  int shards_stale = 0;
  int64_t leases_granted = 0;
  int64_t leases_expired = 0;
  int64_t speculative_dispatches = 0;
  int64_t stragglers = 0;
  int64_t makespan_ticks = 0;
  int64_t jobs_total = 0;
  int64_t jobs_analyzed = 0;
  int64_t groups_total = 0;
  /// Crash windows visited this run.
  int64_t crash_windows = 0;
  /// Compile-cache warm start (from CompileCacheStats after the warm load).
  int64_t cache_warm_loaded = 0;
  int64_t cache_warm_rejected = 0;

  /// Ranked / budgeted discovery (from SteeringPipeline::budget_stats()).
  int64_t candidates_scored = 0;
  int64_t candidates_compiled = 0;
  int64_t budget_skipped = 0;
  int64_t improvements_found = 0;
  int64_t ranker_examples_trained = 0;
  /// Ranker warm start: 1 when ranker_in loaded, 1 rejection otherwise.
  int64_t ranker_warm_loaded = 0;
  int64_t ranker_warm_rejected = 0;

  std::string ToString() const;
};

struct DiscoveryResult {
  /// False when the crash hook fired: the run stopped at `crash_window`
  /// (shard `crash_shard`) and must be resumed.
  bool completed = false;
  std::string crash_window;
  int crash_shard = -1;
  DiscoveryCounters counters;
  /// Merged recommender store (SteeringRecommender::Serialize bytes) and
  /// merged rule-diff table — both bit-identical to an unsharded run.
  std::string merged_store;
  std::string merged_diff_table;
  /// Serialized ranker after batch training (empty when ranking is off).
  /// Trained in day order, so a full (non-resumed) sharded run's bytes
  /// equal the unsharded pass's — asserted by the determinism tests.
  std::string ranker_bytes;
};

/// Output of the unsharded reference pass (the orchestrator's merge must
/// reproduce these bytes exactly).
struct UnshardedDiscovery {
  std::string store;
  std::string diff_table;
  int64_t jobs_analyzed = 0;
  /// Serialized ranker after batch training (empty when ranking is off).
  std::string ranker_bytes;
};

class ShardOrchestrator {
 public:
  /// `workload` must outlive the orchestrator.
  ShardOrchestrator(const Workload* workload, int day, DiscoveryOptions options);
  ~ShardOrchestrator();

  ShardOrchestrator(const ShardOrchestrator&) = delete;
  ShardOrchestrator& operator=(const ShardOrchestrator&) = delete;

  /// One orchestrator execution: partition, resume-scan, lease-schedule,
  /// compute, commit, merge. A crash-hook kill returns OK with
  /// result.completed == false (resume with options.resume). Errors (I/O,
  /// unparseable trusted artifact) return non-OK.
  Result<DiscoveryResult> Run();

  const DiscoveryOptions& options() const { return options_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  const Workload* workload_;
  int day_;
  DiscoveryOptions options_;
};

/// The single-process reference pass over the same job selection: analyze
/// every job in day order, learn every extracted observation, reduce the
/// rule-diff rows per signature group. Sharded merge == these bytes.
Result<UnshardedDiscovery> DiscoverUnsharded(const Workload* workload, int day,
                                             const DiscoveryOptions& options);

}  // namespace qsteer

#endif  // QSTEER_DISCOVERY_ORCHESTRATOR_H_
