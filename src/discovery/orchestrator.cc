#include "discovery/orchestrator.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/file_io.h"
#include "common/hash.h"
#include "common/hash_ring.h"
#include "common/thread_pool.h"
#include "core/hints.h"
#include "exec/simulator.h"
#include "optimizer/optimizer.h"

namespace qsteer {

namespace {

std::vector<Job> SelectJobs(const Workload& workload, int day, int max_jobs) {
  std::vector<Job> jobs = workload.JobsForDay(day);
  if (max_jobs > 0 && static_cast<int>(jobs.size()) > max_jobs) {
    jobs.resize(static_cast<size_t>(max_jobs));
  }
  return jobs;
}

/// Folds the fleet-wide compile budget into per-job pipeline options: both
/// the sharded and the unsharded pass divide the same fleet budget by the
/// same job selection, so their per-job budgets — and therefore their
/// analyses — agree exactly.
PipelineOptions ApplyFleetBudget(const PipelineOptions& pipeline,
                                 const DiscoveryOptions& options, int64_t jobs_selected) {
  PipelineOptions out = pipeline;
  if (options.fleet_compile_budget > 0) {
    out.compile_budget = static_cast<int>(std::max<int64_t>(
        1, options.fleet_compile_budget / std::max<int64_t>(1, jobs_selected)));
  }
  return out;
}

/// The per-job reduction both passes share: the recommender learn event
/// (if the analysis yields one) and the group diff-row candidate (if the
/// best executed alternative improved on the default). Pure per job.
struct JobOutput {
  bool has_obs = false;
  ShardObservation obs;
  bool has_row = false;
  ShardDiffRow row;
  /// Ranker training examples of this job's analysis (rank mode only);
  /// replayed into the pipeline's ranker in day order after the compute
  /// phase, so training is independent of shard placement and worker count.
  std::vector<RankerExample> ranker_examples;
};

JobOutput ReduceAnalysis(const JobAnalysis& analysis, const RecommenderOptions& options) {
  JobOutput out;
  std::optional<SteeringRecommender::CandidateObservation> candidate =
      SteeringRecommender::ExtractCandidate(analysis, options);
  if (candidate.has_value()) {
    out.has_obs = true;
    out.obs.signature_hex = candidate->signature.ToHexString();
    out.obs.improvement_pct = candidate->improvement_pct;
    out.obs.hints = ToHintString(candidate->config);
  }
  const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
  double change = analysis.BestRuntimeChangePct();
  if (analysis.default_plan.root != nullptr && best != nullptr && change < 0.0) {
    out.has_row = true;
    out.row.signature_hex = analysis.default_plan.signature.ToHexString();
    out.row.change_pct = change;
    out.row.job_name = analysis.job.name;
    out.row.only_in_default = best->diff_vs_default.only_in_default;
    out.row.only_in_new = best->diff_vs_default.only_in_new;
  }
  return out;
}

/// Keeps the better of two diff-row candidates for one group: smaller
/// (more negative) change, ties to the lexicographically smaller job name.
/// Group-local and order-free, so shard boundaries cannot change the
/// winner.
void KeepBetterRow(std::map<std::string, ShardDiffRow>* rows, const ShardDiffRow& row) {
  auto it = rows->find(row.signature_hex);
  if (it == rows->end()) {
    (*rows)[row.signature_hex] = row;
    return;
  }
  ShardDiffRow& held = it->second;
  if (row.change_pct < held.change_pct ||
      (row.change_pct == held.change_pct && row.job_name < held.job_name)) {
    held = row;
  }
}

std::vector<ShardDiffRow> RowsInOrder(const std::map<std::string, ShardDiffRow>& rows) {
  std::vector<ShardDiffRow> out;
  out.reserve(rows.size());
  for (const auto& [signature, row] : rows) out.push_back(row);
  return out;
}

/// Replays one artifact's observations into the store. Exact text round
/// trips (hex signature, %.17g improvement, minimal hint string) make this
/// bit-equivalent to learning the original in-memory observations.
Status ReplayObservations(const ShardArtifact& artifact, SteeringRecommender* store) {
  for (const ShardObservation& obs : artifact.observations) {
    SteeringRecommender::CandidateObservation candidate;
    candidate.signature = BitVector256::FromHexString(obs.signature_hex);
    if (candidate.signature.ToHexString() != obs.signature_hex) {
      return Status::InvalidArgument("artifact observation signature corrupt: " +
                                     obs.signature_hex);
    }
    Result<RuleConfig> config = ParseHintString(obs.hints);
    if (!config.ok()) return config.status();
    candidate.config = config.value();
    candidate.improvement_pct = obs.improvement_pct;
    store->LearnCandidate(candidate);
  }
  return Status::OK();
}

}  // namespace

std::string DiscoveryCounters::ToString() const {
  std::ostringstream out;
  out << "shards: total=" << shards_total << " reused=" << shards_reused
      << " recomputed=" << shards_recomputed << " quarantined=" << shards_quarantined
      << " stale=" << shards_stale << "\n";
  out << "leases: granted=" << leases_granted << " expired=" << leases_expired
      << " speculative=" << speculative_dispatches << " stragglers=" << stragglers
      << " makespan_ticks=" << makespan_ticks << "\n";
  out << "jobs: total=" << jobs_total << " analyzed=" << jobs_analyzed
      << " groups=" << groups_total << "\n";
  out << "crash_windows=" << crash_windows << "\n";
  out << "cache: warm_loaded=" << cache_warm_loaded
      << " warm_rejected=" << cache_warm_rejected << "\n";
  out << "budget: scored=" << candidates_scored << " compiled=" << candidates_compiled
      << " skipped=" << budget_skipped << " improvements=" << improvements_found << "\n";
  out << "ranker: examples_trained=" << ranker_examples_trained
      << " warm_loaded=" << ranker_warm_loaded << " warm_rejected=" << ranker_warm_rejected
      << "\n";
  return out.str();
}

struct ShardOrchestrator::Impl {
  Impl(const Workload* workload, int day, const DiscoveryOptions& options)
      : optimizer(&workload->catalog()),
        simulator(&workload->catalog()) {
    PipelineOptions pipeline_options = ApplyFleetBudget(
        options.pipeline, options,
        static_cast<int64_t>(SelectJobs(*workload, day, options.max_jobs).size()));
    // The orchestrator fans out across jobs; one job's analysis runs
    // serially on its claiming worker (same layering as AnalyzeJobs).
    pipeline_options.num_threads = 0;
    pipeline = std::make_unique<SteeringPipeline>(&optimizer, &simulator, pipeline_options);
    if (options.num_workers > 1) {
      pool = std::make_unique<ThreadPool>(options.num_workers);
    }
  }

  Optimizer optimizer;
  ExecutionSimulator simulator;
  std::unique_ptr<SteeringPipeline> pipeline;
  std::unique_ptr<ThreadPool> pool;
  /// Monotonic crash-window position within the run.
  int64_t window_index = 0;
};

ShardOrchestrator::ShardOrchestrator(const Workload* workload, int day,
                                     DiscoveryOptions options)
    : workload_(workload), day_(day), options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  impl_ = std::make_unique<Impl>(workload_, day_, options_);
}

ShardOrchestrator::~ShardOrchestrator() = default;

namespace {

/// Deterministic lease-and-speculation schedule over the shards that need
/// computing, in logical ticks. Returns shard positions in completion
/// order; content never depends on this — only commit order and counters.
std::vector<int> SimulateLeases(const std::vector<int64_t>& shard_jobs,
                                const DiscoveryOptions& options,
                                DiscoveryCounters* counters) {
  struct Dispatch {
    int64_t release = 0;
    int shard_pos = 0;
    int attempt = 1;
  };
  std::vector<Dispatch> pending;
  pending.reserve(shard_jobs.size());
  for (int pos = 0; pos < static_cast<int>(shard_jobs.size()); ++pos) {
    pending.push_back(Dispatch{0, pos, 1});
  }
  int workers = std::max(1, options.num_workers);
  std::vector<int64_t> worker_free(static_cast<size_t>(workers), 0);
  std::vector<int64_t> finish(shard_jobs.size(), -1);

  const int64_t frac_per_myriad =
      static_cast<int64_t>(options.straggler_fraction * 10000.0);
  while (!pending.empty()) {
    // Earliest release first; (shard, attempt) breaks ties deterministically.
    auto next = std::min_element(
        pending.begin(), pending.end(), [](const Dispatch& a, const Dispatch& b) {
          if (a.release != b.release) return a.release < b.release;
          if (a.shard_pos != b.shard_pos) return a.shard_pos < b.shard_pos;
          return a.attempt < b.attempt;
        });
    Dispatch d = *next;
    pending.erase(next);

    size_t w = 0;
    for (size_t i = 1; i < worker_free.size(); ++i) {
      if (worker_free[i] < worker_free[w]) w = i;
    }
    int64_t start = std::max(worker_free[w], d.release);
    int64_t cost = options.base_cost_ticks +
                   options.per_job_cost_ticks * shard_jobs[static_cast<size_t>(d.shard_pos)];
    uint64_t draw = Mix64(HashCombine(HashCombine(options.seed, 0x5ea5e5ull),
                                      HashCombine(static_cast<uint64_t>(d.shard_pos),
                                                  static_cast<uint64_t>(d.attempt))));
    if (static_cast<int64_t>(draw % 10000) < frac_per_myriad) {
      cost = static_cast<int64_t>(static_cast<double>(cost) * options.straggler_factor);
      ++counters->stragglers;
    }
    ++counters->leases_granted;
    int64_t end = start + cost;
    if (cost > options.lease_ticks && d.attempt < std::max(1, options.max_lease_attempts)) {
      // Deadline miss: the lease expires mid-run and a speculative copy is
      // re-dispatched the moment it does. The original is not preempted —
      // whichever copy finishes first completes the shard.
      ++counters->leases_expired;
      ++counters->speculative_dispatches;
      pending.push_back(Dispatch{start + options.lease_ticks, d.shard_pos, d.attempt + 1});
    }
    worker_free[w] = end;
    int64_t& best = finish[static_cast<size_t>(d.shard_pos)];
    if (best < 0 || end < best) best = end;
  }

  for (int64_t f : finish) counters->makespan_ticks = std::max(counters->makespan_ticks, f);
  std::vector<int> order(shard_jobs.size());
  for (int i = 0; i < static_cast<int>(order.size()); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&finish](int a, int b) {
    if (finish[static_cast<size_t>(a)] != finish[static_cast<size_t>(b)]) {
      return finish[static_cast<size_t>(a)] < finish[static_cast<size_t>(b)];
    }
    return a < b;
  });
  return order;
}

void QuarantineFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  // A failed rename (e.g. the file vanished) is not fatal: the shard is
  // recomputed and its fresh commit overwrites whatever remains.
}

/// Writes the first half of `content` straight to `path` (no temp file, no
/// rename): the torn-file injection modeling bit rot or a non-atomic
/// filesystem.
void WriteTornFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(content.data(), 1, content.size() / 2, f);
  std::fclose(f);
}

}  // namespace

Result<DiscoveryResult> ShardOrchestrator::Run() {
  DiscoveryResult result;
  DiscoveryCounters& counters = result.counters;
  counters.shards_total = options_.num_shards;

  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("cannot create discovery dir " + options_.dir + ": " +
                            ec.message());
  }

  // Crash-window helper: every protocol window consults the hook; a firing
  // hook ends the run with completed == false (resume picks it back up).
  auto crash_at = [&](const char* window, int shard_index, bool* tear) -> bool {
    if (tear != nullptr) *tear = false;
    ++counters.crash_windows;
    DiscoveryCrashPoint point{window, shard_index, impl_->window_index++};
    if (options_.crash_hook_for_testing == nullptr) return false;
    DiscoveryCrashDecision decision = options_.crash_hook_for_testing(point);
    if (!decision.crash) return false;
    if (tear != nullptr) *tear = decision.tear_artifact;
    result.completed = false;
    result.crash_window = window;
    result.crash_shard = shard_index;
    return true;
  };

  // ---- Compile-cache pre-warm (never fatal: rejection = cold start) ----
  if (!options_.warm_cache_file.empty()) {
    // qsteer-lint: allow(unchecked-status) rejection means a cold start, which is always correct
    (void)impl_->pipeline->WarmCompileCache(options_.warm_cache_file, day_);
    CompileCacheStats cache_stats = impl_->pipeline->compile_cache_stats();
    counters.cache_warm_loaded = cache_stats.warm_loaded;
    counters.cache_warm_rejected = cache_stats.warm_rejected;
  }

  // ---- Ranker pre-warm (same contract: rejection = cold start) ----
  if (!options_.ranker_in.empty() && impl_->pipeline->ranker_enabled()) {
    Status warm = impl_->pipeline->WarmRanker(options_.ranker_in);
    if (warm.ok()) {
      counters.ranker_warm_loaded = 1;
    } else {
      counters.ranker_warm_rejected = 1;
    }
  }

  // ---- Phase 1: deterministic partition by default-plan signature ----
  std::vector<Job> jobs = SelectJobs(*workload_, day_, options_.max_jobs);
  counters.jobs_total = static_cast<int64_t>(jobs.size());

  std::vector<std::string> job_signature_hex =
      ParallelMap<std::string>(impl_->pool.get(), static_cast<int64_t>(jobs.size()),
                               [&](int64_t i) -> std::string {
                                 Result<CompiledPlan> plan = impl_->pipeline->CompileCached(
                                     jobs[static_cast<size_t>(i)], RuleConfig::Default());
                                 if (!plan.ok()) return std::string();
                                 return plan.value().signature.ToHexString();
                               });

  ConsistentHashRing ring(options_.ring_vnodes);
  for (int s = 0; s < options_.num_shards; ++s) ring.AddReplica(static_cast<uint32_t>(s));

  std::map<std::string, int> group_shard;  // signature hex -> shard
  std::vector<std::vector<int>> shard_jobs(static_cast<size_t>(options_.num_shards));
  uint64_t partition_hash = HashCombine(HashString(workload_->spec().name),
                                        static_cast<uint64_t>(day_));
  partition_hash = HashCombine(partition_hash, static_cast<uint64_t>(options_.num_shards));
  for (size_t i = 0; i < jobs.size(); ++i) {
    const std::string& hex = job_signature_hex[i];
    if (hex.empty()) continue;  // default compile failed; nothing to learn
    auto it = group_shard.find(hex);
    if (it == group_shard.end()) {
      uint32_t shard = ring.RouteFor(BitVector256::FromHexString(hex).Hash());
      it = group_shard.emplace(hex, static_cast<int>(shard)).first;
    }
    shard_jobs[static_cast<size_t>(it->second)].push_back(static_cast<int>(i));
    partition_hash = HashCombine(partition_hash, HashString(jobs[i].name));
    partition_hash = HashCombine(partition_hash, static_cast<uint64_t>(it->second));
  }
  counters.groups_total = static_cast<int64_t>(group_shard.size());

  if (crash_at("post-partition", -1, nullptr)) return result;

  // ---- Phase 2: resume scan — trust only checksum-valid commits ----
  std::vector<std::optional<ShardArtifact>> artifacts(
      static_cast<size_t>(options_.num_shards));
  std::vector<int> to_compute;
  for (int s = 0; s < options_.num_shards; ++s) {
    const std::string manifest_path = options_.dir + "/" + ShardManifestName(s);
    const std::string artifact_path = options_.dir + "/" + ShardArtifactName(s);
    if (!options_.resume) {
      to_compute.push_back(s);
      continue;
    }
    bool had_checksum = false;
    Result<std::string> manifest_read = ReadFileChecksummed(manifest_path, &had_checksum);
    if (!manifest_read.ok()) {
      if (manifest_read.status().code() != StatusCode::kNotFound) {
        // Torn or corrupt manifest: the commit record itself is untrusted,
        // so the artifact it may fingerprint is untrusted too.
        QuarantineFile(manifest_path);
        QuarantineFile(artifact_path);
        ++counters.shards_quarantined;
      }
      to_compute.push_back(s);
      continue;
    }
    Result<ShardManifest> manifest =
        had_checksum ? ShardManifest::Parse(manifest_read.value())
                     : Result<ShardManifest>(Status::InvalidArgument(
                           "manifest has no crc32 footer: " + manifest_path));
    if (!manifest.ok()) {
      QuarantineFile(manifest_path);
      QuarantineFile(artifact_path);
      ++counters.shards_quarantined;
      to_compute.push_back(s);
      continue;
    }
    if (manifest.value().workload != workload_->spec().name ||
        manifest.value().day != day_ || manifest.value().shard_index != s ||
        manifest.value().num_shards != options_.num_shards ||
        manifest.value().partition_hash != partition_hash) {
      // Intact commit from a different partitioning (other --shards value,
      // other day...): not damage, just not ours. Recompute over it.
      ++counters.shards_stale;
      to_compute.push_back(s);
      continue;
    }
    Result<std::string> artifact_read = ReadFileToString(artifact_path);
    if (!artifact_read.ok()) {
      to_compute.push_back(s);  // artifact vanished: plain recompute
      continue;
    }
    const std::string& artifact_bytes = artifact_read.value();
    if (static_cast<int64_t>(artifact_bytes.size()) != manifest.value().artifact_bytes ||
        Crc32(artifact_bytes) != manifest.value().artifact_crc32) {
      QuarantineFile(artifact_path);
      ++counters.shards_quarantined;
      to_compute.push_back(s);
      continue;
    }
    Result<ShardArtifact> artifact = ShardArtifact::Parse(artifact_bytes);
    if (!artifact.ok() || !manifest.value().Matches(artifact.value())) {
      QuarantineFile(artifact_path);
      ++counters.shards_quarantined;
      to_compute.push_back(s);
      continue;
    }
    artifacts[static_cast<size_t>(s)] = std::move(artifact.value());
    ++counters.shards_reused;
  }
  counters.shards_recomputed = static_cast<int>(to_compute.size());

  // ---- Phase 3: lease schedule over the shards to compute ----
  std::vector<int64_t> compute_job_counts;
  compute_job_counts.reserve(to_compute.size());
  for (int s : to_compute) {
    compute_job_counts.push_back(
        static_cast<int64_t>(shard_jobs[static_cast<size_t>(s)].size()));
  }
  std::vector<int> completion_order =
      SimulateLeases(compute_job_counts, options_, &counters);

  // ---- Phase 4: compute every needed job (parallel, shared cache) ----
  std::vector<std::pair<int, int>> flat;  // (shard, job index)
  for (int s : to_compute) {
    for (int j : shard_jobs[static_cast<size_t>(s)]) flat.emplace_back(s, j);
  }
  std::vector<JobOutput> outputs = ParallelMap<JobOutput>(
      impl_->pool.get(), static_cast<int64_t>(flat.size()), [&](int64_t i) -> JobOutput {
        const Job& job = jobs[static_cast<size_t>(flat[static_cast<size_t>(i)].second)];
        JobAnalysis analysis = impl_->pipeline->AnalyzeJob(job);
        JobOutput output = ReduceAnalysis(analysis, options_.recommender);
        output.ranker_examples = std::move(analysis.ranker_examples);
        return output;
      });
  counters.jobs_analyzed = static_cast<int64_t>(flat.size());

  // Batch boundary for the ranker: replay this run's training examples in
  // *day order* (job index), not shard-flat order, so a full compute trains
  // the exact example stream of the unsharded pass — bit-identical ranker
  // bytes regardless of shard count, worker count, or lease schedule.
  if (impl_->pipeline->ranker_enabled()) {
    std::vector<size_t> day_order(flat.size());
    for (size_t i = 0; i < day_order.size(); ++i) day_order[i] = i;
    std::sort(day_order.begin(), day_order.end(), [&flat](size_t a, size_t b) {
      return flat[a].second < flat[b].second;
    });
    std::vector<RankerExample> examples;
    for (size_t i : day_order) {
      examples.insert(examples.end(), outputs[i].ranker_examples.begin(),
                      outputs[i].ranker_examples.end());
    }
    impl_->pipeline->TrainRankerExamples(examples);
    result.ranker_bytes = impl_->pipeline->SerializeRanker();
  }
  SteeringPipeline::BudgetStats budget_stats = impl_->pipeline->budget_stats();
  counters.candidates_scored = budget_stats.candidates_scored;
  counters.candidates_compiled = budget_stats.candidates_compiled;
  counters.budget_skipped = budget_stats.budget_skipped;
  counters.improvements_found = budget_stats.improvements_found;
  counters.ranker_examples_trained = budget_stats.ranker_examples_trained;

  std::map<int, std::vector<int>> shard_output_index;  // shard -> indices into outputs
  for (size_t i = 0; i < flat.size(); ++i) {
    shard_output_index[flat[i].first].push_back(static_cast<int>(i));
  }

  // ---- Phase 5: commit shards in lease completion order ----
  for (int pos : completion_order) {
    int s = to_compute[static_cast<size_t>(pos)];
    ShardArtifact artifact;
    artifact.workload = workload_->spec().name;
    artifact.day = day_;
    artifact.shard_index = s;
    artifact.num_shards = options_.num_shards;
    artifact.partition_hash = partition_hash;
    artifact.jobs = static_cast<int64_t>(shard_jobs[static_cast<size_t>(s)].size());
    std::map<std::string, ShardDiffRow> rows;
    for (int i : shard_output_index[s]) {
      const JobOutput& output = outputs[static_cast<size_t>(i)];
      if (output.has_obs) artifact.observations.push_back(output.obs);
      if (output.has_row) KeepBetterRow(&rows, output.row);
    }
    artifact.diff_rows = RowsInOrder(rows);

    const std::string artifact_path = options_.dir + "/" + ShardArtifactName(s);
    const std::string artifact_bytes = artifact.Serialize();

    bool tear = false;
    if (crash_at("pre-artifact", s, &tear)) {
      if (tear) WriteTornFile(artifact_path, artifact_bytes);
      return result;
    }
    Status status = AtomicWriteFile(artifact_path, artifact_bytes, options_.sync);
    if (!status.ok()) return status;

    if (crash_at("pre-manifest", s, &tear)) {
      if (tear) WriteTornFile(artifact_path, artifact_bytes);
      return result;
    }
    ShardManifest manifest;
    manifest.workload = artifact.workload;
    manifest.day = artifact.day;
    manifest.shard_index = s;
    manifest.num_shards = artifact.num_shards;
    manifest.partition_hash = partition_hash;
    manifest.jobs = artifact.jobs;
    manifest.groups = static_cast<int64_t>(artifact.diff_rows.size());
    manifest.attempt = 1;
    manifest.artifact_file = ShardArtifactName(s);
    manifest.artifact_bytes = static_cast<int64_t>(artifact_bytes.size());
    manifest.artifact_crc32 = Crc32(artifact_bytes);
    status = WriteFileChecksummed(options_.dir + "/" + ShardManifestName(s),
                                  manifest.Serialize(), options_.sync);
    if (!status.ok()) return status;

    artifacts[static_cast<size_t>(s)] = std::move(artifact);

    if (crash_at("post-manifest", s, &tear)) {
      // Tear here models post-commit bit rot: the manifest is valid but the
      // artifact bytes no longer match its fingerprint — resume must
      // quarantine and recompute, never merge.
      if (tear) WriteTornFile(artifact_path, artifact_bytes);
      return result;
    }
  }

  if (crash_at("pre-merge", -1, nullptr)) return result;

  // ---- Phase 6: pure deterministic union of the shard artifacts ----
  SteeringRecommender merged(options_.recommender);
  std::map<std::string, ShardDiffRow> merged_rows;
  for (int s = 0; s < options_.num_shards; ++s) {
    if (!artifacts[static_cast<size_t>(s)].has_value()) continue;
    const ShardArtifact& artifact = *artifacts[static_cast<size_t>(s)];
    Status status = ReplayObservations(artifact, &merged);
    if (!status.ok()) return status;
    for (const ShardDiffRow& row : artifact.diff_rows) KeepBetterRow(&merged_rows, row);
  }
  result.merged_store = merged.Serialize();
  result.merged_diff_table = RenderDiffTable(RowsInOrder(merged_rows));

  Status status = WriteFileChecksummed(options_.dir + "/merged_recommendations.qrs",
                                       result.merged_store, options_.sync);
  if (!status.ok()) return status;
  status = WriteFileChecksummed(options_.dir + "/merged_rulediff.txt",
                                result.merged_diff_table, options_.sync);
  if (!status.ok()) return status;

  if (!options_.save_cache_file.empty()) {
    status = impl_->pipeline->SaveCompileCache(options_.save_cache_file, day_,
                                               options_.sync);
    if (!status.ok()) return status;
  }
  if (!options_.ranker_out.empty()) {
    // SaveRanker returns kFailedPrecondition when ranking is off: asking to
    // persist a ranker that never existed is a configuration error.
    status = impl_->pipeline->SaveRanker(options_.ranker_out, options_.sync);
    if (!status.ok()) return status;
  }

  if (crash_at("post-merge", -1, nullptr)) return result;

  result.completed = true;
  std::ostringstream summary;
  summary << "# qsteer-discovery-summary v1\n";
  summary << "workload " << workload_->spec().name << "\n";
  summary << "day " << day_ << "\n";
  summary << "shards " << options_.num_shards << "\n";
  summary << "merged_groups " << merged_rows.size() << "\n";
  summary << counters.ToString();
  status = WriteFileChecksummed(options_.dir + "/discovery_summary.txt", summary.str(),
                                options_.sync);
  if (!status.ok()) return status;
  return result;
}

Result<UnshardedDiscovery> DiscoverUnsharded(const Workload* workload, int day,
                                             const DiscoveryOptions& options) {
  Optimizer optimizer(&workload->catalog());
  ExecutionSimulator simulator(&workload->catalog());
  std::vector<Job> jobs = SelectJobs(*workload, day, options.max_jobs);
  PipelineOptions pipeline_options =
      ApplyFleetBudget(options.pipeline, options, static_cast<int64_t>(jobs.size()));
  pipeline_options.num_threads = options.num_workers;
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);
  if (!options.warm_cache_file.empty()) {
    // qsteer-lint: allow(unchecked-status) rejection means a cold start, which is always correct
    (void)pipeline.WarmCompileCache(options.warm_cache_file, day);
  }
  if (!options.ranker_in.empty() && pipeline.ranker_enabled()) {
    // qsteer-lint: allow(unchecked-status) a rejected ranker file leaves the fresh ranker, which is valid
    (void)pipeline.WarmRanker(options.ranker_in);
  }

  // AnalyzeJobs trains the ranker at the batch boundary in job (= day)
  // order — the reference example stream the sharded pass must reproduce.
  std::vector<JobAnalysis> analyses = pipeline.AnalyzeJobs(jobs);

  UnshardedDiscovery out;
  out.jobs_analyzed = static_cast<int64_t>(analyses.size());
  out.ranker_bytes = pipeline.SerializeRanker();
  SteeringRecommender store(options.recommender);
  std::map<std::string, ShardDiffRow> rows;
  for (const JobAnalysis& analysis : analyses) {
    // Learn the in-memory observation directly — the sharded pass goes
    // through the artifact text round trip, so byte-equality of the two
    // stores also proves the round trip exact.
    std::optional<SteeringRecommender::CandidateObservation> candidate =
        SteeringRecommender::ExtractCandidate(analysis, options.recommender);
    if (candidate.has_value()) store.LearnCandidate(*candidate);
    JobOutput output = ReduceAnalysis(analysis, options.recommender);
    if (output.has_row) KeepBetterRow(&rows, output.row);
  }
  out.store = store.Serialize();
  out.diff_table = RenderDiffTable(RowsInOrder(rows));
  return out;
}

}  // namespace qsteer
