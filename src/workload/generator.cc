#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/random.h"

namespace qsteer {

WorkloadSpec WorkloadSpec::WorkloadA(double scale) {
  WorkloadSpec spec;
  spec.name = "A";
  spec.seed = 0xA001;
  spec.num_templates = std::max(20, static_cast<int>(48000 * scale));
  spec.jobs_per_day = static_cast<int>(95000 * scale);
  spec.num_stream_sets = std::max(24, static_cast<int>(2000 * scale));
  spec.log_set_fraction = 0.45;
  spec.data_scale = 1.0;
  return spec;
}

WorkloadSpec WorkloadSpec::WorkloadB(double scale) {
  WorkloadSpec spec;
  spec.name = "B";
  spec.seed = 0xB002;
  spec.num_templates = std::max(12, static_cast<int>(10500 * scale));
  spec.jobs_per_day = static_cast<int>(15000 * scale);
  spec.num_stream_sets = std::max(16, static_cast<int>(700 * scale));
  spec.log_set_fraction = 0.55;  // B is union/cooking heavy (longer jobs)
  spec.data_scale = 2.5;
  return spec;
}

WorkloadSpec WorkloadSpec::WorkloadC(double scale) {
  WorkloadSpec spec;
  spec.name = "C";
  spec.seed = 0xC003;
  spec.num_templates = std::max(16, static_cast<int>(22000 * scale));
  spec.jobs_per_day = static_cast<int>(40000 * scale);
  spec.num_stream_sets = std::max(20, static_cast<int>(1400 * scale));
  spec.log_set_fraction = 0.35;
  spec.data_scale = 4.0;  // C jobs run longest (paper §6.2)
  return spec;
}

WorkloadSpec WorkloadSpec::CorrelatedSkew(double scale) {
  WorkloadSpec spec;
  spec.name = "S";
  spec.seed = 0x5C01;
  spec.num_templates = std::max(16, static_cast<int>(22000 * scale));
  spec.jobs_per_day = static_cast<int>(40000 * scale);
  spec.num_stream_sets = std::max(20, static_cast<int>(1400 * scale));
  spec.log_set_fraction = 0.45;
  spec.data_scale = 1.0;
  spec.min_skew = 0.8;
  spec.min_correlation = 0.7;
  return spec;
}

WorkloadSpec WorkloadSpec::StaleHistogramCliff(double scale) {
  WorkloadSpec spec;
  spec.name = "K";
  spec.seed = 0xC11F;
  spec.num_templates = std::max(16, static_cast<int>(22000 * scale));
  spec.jobs_per_day = static_cast<int>(40000 * scale);
  spec.num_stream_sets = std::max(20, static_cast<int>(1400 * scale));
  spec.log_set_fraction = 0.45;
  spec.data_scale = 1.0;
  spec.min_skew = 0.6;
  spec.domain_growth = 0.25;
  spec.skew_drift = 0.15;
  return spec;
}

namespace {

const char* kColumnNames[] = {"key",  "uid",   "ts",    "region", "status",
                              "kind", "value", "score", "bytes",  "flag"};

/// A plan fragment with its output column set (sorted).
struct Frag {
  PlanNodePtr node;
  std::vector<ColumnId> cols;
};

}  // namespace

Workload::Workload(WorkloadSpec spec) : spec_(std::move(spec)) {
  catalog_ = std::make_unique<Catalog>();
  Pcg32 rng(spec_.seed, /*stream=*/7);
  for (int s = 0; s < spec_.num_stream_sets; ++s) {
    StreamSet set;
    set.name = "ws_" + spec_.name + "_" + std::to_string(s);
    bool is_log = rng.NextDouble() < spec_.log_set_fraction;
    // Dimension row counts are decided up front so the leading column can be
    // a (near-)unique key: joins against dimensions then behave like
    // key/foreign-key joins instead of exploding.
    double dim_rows = std::pow(10.0, rng.UniformDouble(4.0, 6.3)) * spec_.data_scale;
    int num_cols = static_cast<int>(rng.UniformInt(4, 8));
    for (int c = 0; c < num_cols; ++c) {
      ColumnDef col;
      col.name = std::string(kColumnNames[c % 10]) + std::to_string(c);
      col.type = ColumnType::kInt64;
      if (c == 0) {
        // Leading column: the natural key / partition column. For
        // dimensions it is (nearly) unique.
        col.distinct_count = is_log ? static_cast<int64_t>(
                                          std::pow(10.0, rng.UniformDouble(4.0, 6.5)))
                                    : std::max<int64_t>(
                                          1, static_cast<int64_t>(
                                                 dim_rows * rng.UniformDouble(0.6, 1.0)));
      } else {
        col.distinct_count =
            static_cast<int64_t>(std::pow(10.0, rng.UniformDouble(1.0, 5.0)));
      }
      // Dimension keys are unique and unskewed; other columns may be skewed.
      if (!(c == 0 && !is_log) && rng.NextBool(0.5)) {
        col.zipf_skew = rng.UniformDouble(0.4, 1.4);
      }
      if (rng.NextBool(0.3)) col.null_fraction = rng.UniformDouble(0.01, 0.08);
      col.avg_width = rng.UniformDouble(6.0, 36.0);
      // Scenario dials are applied after all draws so they consume no RNG
      // state: with every dial at its default 0, A/B/C stay bit-identical.
      if (spec_.min_skew > 0.0 && !(c == 0 && !is_log)) {
        col.zipf_skew = std::max(col.zipf_skew, spec_.min_skew);
      }
      if (spec_.domain_growth > 0.0) col.domain_growth = spec_.domain_growth;
      if (spec_.skew_drift > 0.0 && col.zipf_skew > 0.0) col.skew_drift = spec_.skew_drift;
      set.columns.push_back(std::move(col));
    }
    int num_corr = static_cast<int>(rng.UniformInt(1, 3));
    for (int k = 0; k < num_corr; ++k) {
      CorrelationSpec corr;
      corr.column_a = static_cast<int>(rng.UniformInt(0, num_cols - 2));
      corr.column_b = static_cast<int>(rng.UniformInt(corr.column_a + 1, num_cols - 1));
      corr.strength = rng.UniformDouble(0.3, 0.95);
      if (spec_.min_correlation > 0.0) {
        corr.strength = std::max(corr.strength, spec_.min_correlation);
      }
      set.correlations.push_back(corr);
    }
    set.daily_growth = rng.UniformDouble(0.0, 0.04);
    int set_id = catalog_->AddStreamSet(std::move(set));

    int num_streams = is_log ? static_cast<int>(rng.UniformInt(4, 16)) : 1;
    for (int v = 0; v < num_streams; ++v) {
      double rows =
          is_log ? std::pow(10.0, rng.UniformDouble(6.5, 9.3)) * spec_.data_scale : dim_rows;
      // qsteer-lint: allow(unchecked-status) the generated stream is valid by construction (fresh set id)
      (void)catalog_->AddStream(set_id,
                          catalog_->stream_set(set_id).name + "_d" + std::to_string(v),
                          static_cast<int64_t>(rows),
                          static_cast<int>(rng.UniformInt(8, 200)));
    }
  }
}

int Workload::InstancesOnDay(int template_id, int day) const {
  // Structural base frequency: most templates recur once per day, a tail
  // recurs many times (paper: 95K jobs over 48K templates).
  Pcg32 struct_rng(HashCombine(spec_.seed, static_cast<uint64_t>(template_id)), 11);
  double roll = struct_rng.NextDouble();
  int base = 1;
  if (roll > 0.90) {
    base = static_cast<int>(struct_rng.UniformInt(5, 15));
  } else if (roll > 0.70) {
    base = static_cast<int>(struct_rng.UniformInt(2, 4));
  }
  // Mild day-to-day jitter; some days a template does not arrive at all.
  Pcg32 day_rng(
      HashCombine(HashCombine(spec_.seed, static_cast<uint64_t>(template_id)),
                  static_cast<uint64_t>(day) + 0xdab),
      13);
  if (base == 1) return day_rng.NextBool(0.9) ? 1 : 0;
  double jitter = 0.7 + 0.6 * day_rng.NextDouble();
  return std::max(0, static_cast<int>(std::lround(base * jitter)));
}

std::vector<Job> Workload::JobsForDay(int day) const {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<size_t>(spec_.jobs_per_day));
  for (int t = 0; t < spec_.num_templates; ++t) {
    int instances = InstancesOnDay(t, day);
    for (int i = 0; i < instances; ++i) {
      jobs.push_back(MakeJob(t, day, i));
    }
  }
  return jobs;
}

namespace {

/// Per-template plan construction. Structural choices come from struct_rng
/// (stable across days); literals, shard rotation and latent truths come
/// from inst_rng (fresh per (day, instance)).
class TemplateBuilder {
 public:
  TemplateBuilder(const Catalog& catalog, uint64_t workload_seed, int template_id, int day,
                  int instance)
      : catalog_(catalog),
        struct_rng_(HashCombine(workload_seed, static_cast<uint64_t>(template_id)), 17),
        inst_rng_(HashCombine(HashCombine(workload_seed, static_cast<uint64_t>(template_id)),
                              HashCombine(static_cast<uint64_t>(day),
                                          static_cast<uint64_t>(instance))),
                  19),
        template_id_(template_id),
        day_(day) {
    universe_ = std::make_shared<ColumnUniverse>();
  }

  Job Build(const std::string& workload_name) {
    double archetype = struct_rng_.NextDouble();
    Frag body;
    if (archetype < 0.25) {
      body = BuildCook();
    } else if (archetype < 0.55) {
      body = BuildJoinAnalytics();
    } else if (archetype < 0.65) {
      body = BuildSemiFunnel();
    } else if (archetype < 0.80) {
      body = BuildUdoPipeline();
    } else if (archetype < 0.88) {
      body = BuildSharedDag();
    } else if (archetype < 0.98) {
      body = BuildTopkReport();
    } else {
      body = BuildRareShape();
    }

    Operator output;
    output.kind = OpKind::kOutput;
    Job job;
    job.name = "job_" + workload_name + "_t" + std::to_string(template_id_) + "_d" +
               std::to_string(day_);
    job.day = day_;
    job.workload = workload_name;
    job.columns = universe_;
    job.root = PlanNode::Make(std::move(output), {body.node});
    job.template_index = template_id_;
    // A minority of templates carry customer rule hints enabling
    // off-by-default rules (the paper's §3.3 deployment path: "rule flags
    // are already available and often used by customers") — this is why some
    // off-by-default rules appear in production signatures (Table 2). Hints
    // are shape-aware: a customer enables a rule relevant to their script.
    if (!applicable_hints_.empty() && struct_rng_.NextBool(0.18)) {
      int hints = struct_rng_.NextBool(0.3) ? 2 : 1;
      for (int h = 0; h < hints && h < static_cast<int>(applicable_hints_.size()); ++h) {
        job.customer_hints.push_back(applicable_hints_[static_cast<size_t>(
            struct_rng_.UniformInt(0, static_cast<int>(applicable_hints_.size()) - 1))]);
      }
    }
    // Latent truths drift per instance — recurring jobs are similar but not
    // identical (paper §6.4: behaviour can evolve with inputs).
    job.udo_true_selectivity = std::exp(0.20 * inst_rng_.NextGaussian());
    job.udo_true_cost_per_row =
        std::exp(struct_rng_.UniformDouble(-0.3, 1.2) + 0.2 * inst_rng_.NextGaussian());
    return job;
  }

 private:
  // --- stream/column helpers ---

  int PickSet(bool want_log) {
    // Never reuse a stream set within one template: scans of the same set
    // share ColumnIds (union compatibility), so reuse would alias columns
    // across unrelated join inputs.
    int fallback = -1;
    for (int tries = 0; tries < 96; ++tries) {
      int set_id = static_cast<int>(struct_rng_.UniformInt(0, catalog_.num_stream_sets() - 1));
      const StreamSet& set = catalog_.stream_set(set_id);
      bool is_log = set.stream_ids.size() > 1;
      if (is_log != want_log) continue;
      if (std::find(used_sets_.begin(), used_sets_.end(), set_id) != used_sets_.end()) {
        fallback = set_id;
        continue;
      }
      used_sets_.push_back(set_id);
      return set_id;
    }
    // Tiny catalogs may force reuse of a matching set; prefer that over a
    // wrong-kind set.
    if (fallback >= 0) return fallback;
    return 0;
  }

  std::vector<ColumnId> SetColumns(int set_id) {
    const StreamSet& set = catalog_.stream_set(set_id);
    std::vector<ColumnId> cols;
    for (size_t c = 0; c < set.columns.size(); ++c) {
      cols.push_back(universe_->GetOrAddBaseColumn(set_id, static_cast<int>(c),
                                                   set.columns[c].name));
    }
    std::sort(cols.begin(), cols.end());
    return cols;
  }

  Frag Scan(int set_id, int shard_offset = 0) {
    const StreamSet& set = catalog_.stream_set(set_id);
    // Daily rotation: the same template reads a different shard every day.
    int shard = (shard_offset + day_) % static_cast<int>(set.stream_ids.size());
    Operator op;
    op.kind = OpKind::kGet;
    op.stream_id = set.stream_ids[static_cast<size_t>(shard)];
    op.stream_set_id = set_id;
    op.scan_columns = SetColumns(set_id);
    Frag f;
    f.cols = op.scan_columns;
    f.node = PlanNode::Make(std::move(op), {});
    return f;
  }

  /// Union over several daily shards of a log set (the SCOPE cooking
  /// pattern).
  Frag UnionSource(int set_id) {
    const StreamSet& set = catalog_.stream_set(set_id);
    int shards = static_cast<int>(set.stream_ids.size());
    int width = static_cast<int>(struct_rng_.UniformInt(2, std::min(shards, 12)));
    std::vector<PlanNodePtr> branches;
    Frag first;
    for (int j = 0; j < width; ++j) {
      Frag f = Scan(set_id, j);
      if (j == 0) first = f;
      branches.push_back(f.node);
    }
    Operator u;
    u.kind = OpKind::kUnionAll;
    Frag out;
    out.cols = first.cols;
    out.node = PlanNode::Make(std::move(u), std::move(branches));
    return out;
  }

  ExprPtr MakeAtom(const std::vector<ColumnId>& cols) {
    ColumnId col = cols[static_cast<size_t>(struct_rng_.UniformInt(
        0, static_cast<int>(cols.size()) - 1))];
    const ColumnInfo& info = universe_->info(col);
    double roll = struct_rng_.NextDouble();
    if (roll < 0.06) return Expr::IsNotNull(col);
    if (roll < 0.14) {
      std::string udf =
          "udf_t" + std::to_string(template_id_) + "_" + std::to_string(udf_counter_++);
      return Expr::UdfPredicate(udf, struct_rng_.UniformDouble(0.2, 0.9), col);
    }
    int64_t domain = 1000;
    if (!info.derived) {
      const ColumnDef& def = catalog_.stream_set(info.stream_set_id)
                                 .columns[static_cast<size_t>(info.column_index)];
      domain = def.distinct_count;
      if (def.domain_growth > 0.0) {
        // Growing domains: literals probe today's full value range, including
        // values born after any stale histogram's build day.
        domain = catalog_.TrueDistinctCount(info.stream_set_id, info.column_index, day_);
      }
    }
    // The literal varies per instance (recurring template, new constants).
    int64_t value = inst_rng_.UniformInt(1, std::max<int64_t>(1, domain));
    double kind = struct_rng_.NextDouble();
    CmpOp op = kind < 0.35 ? CmpOp::kEq
                           : (kind < 0.6 ? CmpOp::kLe : (kind < 0.85 ? CmpOp::kGe : CmpOp::kNe));
    return Expr::Cmp(col, op, value);
  }

  ExprPtr MakePredicate(const std::vector<ColumnId>& cols, int min_atoms, int max_atoms) {
    int atoms = static_cast<int>(struct_rng_.UniformInt(min_atoms, max_atoms));
    if (atoms <= 0) return Expr::True();
    std::vector<ExprPtr> conjuncts;
    for (int i = 0; i < atoms; ++i) {
      if (struct_rng_.NextBool(0.12) && atoms > 1) {
        conjuncts.push_back(Expr::Or({MakeAtom(cols), MakeAtom(cols)}));
      } else {
        conjuncts.push_back(MakeAtom(cols));
      }
    }
    // Script-author sloppiness the cleanup rewrites target: duplicated
    // conjuncts (RemoveDupPredicates) and constant guards left behind by
    // templating (ConstantFolding).
    if (!conjuncts.empty() && struct_rng_.NextBool(0.05)) {
      conjuncts.push_back(conjuncts[0]);
    }
    if (struct_rng_.NextBool(0.04)) {
      conjuncts.push_back(Expr::Compare(CmpOp::kEq, Expr::Literal(1), Expr::Literal(1)));
    }
    return MakeConjunction(std::move(conjuncts));
  }

  Frag Select(Frag input, int min_atoms = 1, int max_atoms = 3) {
    Operator op;
    op.kind = OpKind::kSelect;
    op.predicate = MakePredicate(input.cols, min_atoms, max_atoms);
    Frag out;
    out.cols = input.cols;
    out.node = PlanNode::Make(std::move(op), {input.node});
    return out;
  }

  /// A stack of selects / a trivially-true select (targets for the
  /// CollapseSelects / SelectOnTrue rewrites).
  Frag SelectChain(Frag input) {
    double roll = struct_rng_.NextDouble();
    if (roll < 0.12) {
      Operator noop;
      noop.kind = OpKind::kSelect;
      noop.predicate = Expr::True();
      Frag mid;
      mid.cols = input.cols;
      mid.node = PlanNode::Make(std::move(noop), {input.node});
      return Select(mid);
    }
    if (roll < 0.40) {
      return Select(Select(input, 1, 2), 1, 2);
    }
    return Select(input, 1, 4);
  }

  Frag Process(Frag input) {
    Operator op;
    op.kind = OpKind::kProcess;
    op.udo_name = "udo_t" + std::to_string(template_id_) + "_" + std::to_string(udo_counter_++);
    op.udo_selectivity_guess = struct_rng_.UniformDouble(0.3, 1.0);
    op.udo_cost_per_row_guess = struct_rng_.UniformDouble(0.5, 4.0);
    Frag out;
    out.cols = input.cols;
    out.node = PlanNode::Make(std::move(op), {input.node});
    return out;
  }

  Frag Project(Frag input, bool add_computed) {
    Operator op;
    op.kind = OpKind::kProject;
    std::vector<ColumnId> out_cols;
    // Keep a subset of the inputs (at least 2), pass-through.
    int keep = std::max(2, static_cast<int>(struct_rng_.UniformInt(
                               2, static_cast<int>(input.cols.size()))));
    for (int i = 0; i < keep && i < static_cast<int>(input.cols.size()); ++i) {
      NamedExpr p;
      p.output = input.cols[static_cast<size_t>(i)];
      p.pass_through = true;
      p.inputs = {p.output};
      op.projections.push_back(std::move(p));
      out_cols.push_back(input.cols[static_cast<size_t>(i)]);
    }
    if (add_computed) {
      NamedExpr p;
      p.pass_through = false;
      p.inputs = {input.cols[0]};
      if (input.cols.size() > 2 && struct_rng_.NextBool(0.5)) {
        p.inputs.push_back(input.cols[2]);
      }
      p.fn_seed = struct_rng_.NextU64();
      p.output = universe_->AddDerivedColumn(
          "c_t" + std::to_string(template_id_) + "_" + std::to_string(derived_counter_++),
          std::pow(10.0, struct_rng_.UniformDouble(1.0, 4.0)));
      out_cols.push_back(p.output);
      op.projections.push_back(std::move(p));
    }
    std::sort(out_cols.begin(), out_cols.end());
    Frag out;
    out.cols = out_cols;
    out.node = PlanNode::Make(std::move(op), {input.node});
    return out;
  }

  Frag Join(Frag left, Frag right, JoinType type, int num_keys) {
    Operator op;
    op.kind = OpKind::kJoin;
    op.join_type = type;
    num_keys = std::min({num_keys, static_cast<int>(left.cols.size()),
                         static_cast<int>(right.cols.size())});
    std::vector<int> lpick = struct_rng_.SampleWithoutReplacement(
        static_cast<int>(left.cols.size()), num_keys);
    for (int i = 0; i < num_keys; ++i) {
      op.left_keys.push_back(left.cols[static_cast<size_t>(lpick[static_cast<size_t>(i)])]);
      // Dimension joins hit the leading key column; extra keys walk the
      // schema.
      op.right_keys.push_back(right.cols[static_cast<size_t>(
          std::min<int>(i, static_cast<int>(right.cols.size()) - 1))]);
    }
    Frag out;
    out.cols = left.cols;
    if (type != JoinType::kLeftSemi) {
      out.cols.insert(out.cols.end(), right.cols.begin(), right.cols.end());
      std::sort(out.cols.begin(), out.cols.end());
      out.cols.erase(std::unique(out.cols.begin(), out.cols.end()), out.cols.end());
    }
    out.node = PlanNode::Make(std::move(op), {left.node, right.node});
    return out;
  }

  Frag GroupBy(Frag input, int max_keys = 3) {
    Operator op;
    op.kind = OpKind::kGroupBy;
    int keys = static_cast<int>(struct_rng_.UniformInt(
        1, std::min(max_keys, static_cast<int>(input.cols.size()))));
    std::vector<int> pick =
        struct_rng_.SampleWithoutReplacement(static_cast<int>(input.cols.size()), keys);
    for (int idx : pick) op.group_keys.push_back(input.cols[static_cast<size_t>(idx)]);
    std::sort(op.group_keys.begin(), op.group_keys.end());

    int num_aggs = static_cast<int>(struct_rng_.UniformInt(1, 3));
    for (int a = 0; a < num_aggs; ++a) {
      AggExpr agg;
      double roll = struct_rng_.NextDouble();
      // MIN/MAX-heavy: duplicate-insensitive aggregates keep more rewrites
      // (eager aggregation) applicable, as in cooking workloads.
      agg.func = roll < 0.3 ? AggFunc::kMin
                            : (roll < 0.6 ? AggFunc::kMax
                                          : (roll < 0.85 ? AggFunc::kCount : AggFunc::kSum));
      agg.arg = input.cols[static_cast<size_t>(
          struct_rng_.UniformInt(0, static_cast<int>(input.cols.size()) - 1))];
      agg.output = universe_->AddDerivedColumn(
          "agg_t" + std::to_string(template_id_) + "_" + std::to_string(derived_counter_++),
          1e6);
      op.aggs.push_back(agg);
    }
    Frag out;
    out.cols = op.group_keys;
    for (const AggExpr& a : op.aggs) out.cols.push_back(a.output);
    std::sort(out.cols.begin(), out.cols.end());
    out.node = PlanNode::Make(std::move(op), {input.node});
    return out;
  }

  Frag Top(Frag input) {
    Operator op;
    op.kind = OpKind::kTop;
    op.limit = static_cast<int64_t>(std::pow(10.0, struct_rng_.UniformDouble(1.0, 4.0)));
    int keys = static_cast<int>(struct_rng_.UniformInt(1, 2));
    std::vector<int> pick =
        struct_rng_.SampleWithoutReplacement(static_cast<int>(input.cols.size()), keys);
    for (int idx : pick) op.sort_keys.push_back(input.cols[static_cast<size_t>(idx)]);
    Frag out;
    out.cols = input.cols;
    out.node = PlanNode::Make(std::move(op), {input.node});
    return out;
  }

  // --- archetypes ---

  Frag BuildCook() {
    Frag source = UnionSource(PickSet(/*want_log=*/true));
    Frag body = SelectChain(source);
    if (struct_rng_.NextBool(0.5)) {
      body = Process(body);
      applicable_hints_.push_back(45);  // SelectBelowUdo
    }
    if (struct_rng_.NextBool(0.3)) body = Project(body, struct_rng_.NextBool(0.5));
    return GroupBy(body);
  }

  Frag BuildJoinAnalytics() {
    bool union_fact = struct_rng_.NextBool(0.45);
    if (union_fact) {
      // CorrelatedJoinOnUnionAll variants apply: join over a union input.
      applicable_hints_.insert(applicable_hints_.end(), {37, 38, 39, 42});
    }
    // Eager aggregation below the join + transitive predicates.
    applicable_hints_.insert(applicable_hints_.end(), {43, 44, 46});
    int fact_set = PickSet(/*want_log=*/true);
    Frag fact = union_fact ? UnionSource(fact_set) : Scan(fact_set);
    bool select_above_join = struct_rng_.NextBool(0.5);
    Frag fact_cols_frag = fact;
    if (!select_above_join) fact = SelectChain(fact);

    int num_dims = static_cast<int>(struct_rng_.UniformInt(1, 3));
    Frag body = fact;
    for (int d = 0; d < num_dims; ++d) {
      Frag dim = Scan(PickSet(/*want_log=*/false));
      if (struct_rng_.NextBool(0.5)) dim = Select(dim, 1, 2);
      JoinType type = struct_rng_.NextBool(0.85) ? JoinType::kInner : JoinType::kLeftOuter;
      body = Join(body, dim, type, struct_rng_.NextBool(0.25) ? 2 : 1);
    }
    if (select_above_join) {
      // Predicate on the fact columns lands above the join: pushdown rules
      // decide where it ends up.
      Operator op;
      op.kind = OpKind::kSelect;
      op.predicate = MakePredicate(fact_cols_frag.cols, 1, 3);
      Frag out;
      out.cols = body.cols;
      out.node = PlanNode::Make(std::move(op), {body.node});
      body = out;
    }
    body = GroupBy(body);
    if (struct_rng_.NextBool(0.3)) body = Top(body);
    return body;
  }

  Frag BuildSemiFunnel() {
    applicable_hints_.push_back(40);  // semi-join-on-union variant
    Frag events = Select(Scan(PickSet(/*want_log=*/true)), 1, 3);
    Frag cohort = Select(Scan(PickSet(/*want_log=*/false)), 1, 2);
    Frag body = Join(events, cohort, JoinType::kLeftSemi, 1);
    body = GroupBy(body);
    if (struct_rng_.NextBool(0.5)) body = Top(body);
    return body;
  }

  Frag BuildUdoPipeline() {
    applicable_hints_.push_back(45);  // SelectBelowUdo
    Frag body = UnionSource(PickSet(/*want_log=*/true));
    body = Process(body);
    body = Select(body, 1, 3);
    if (struct_rng_.NextBool(0.5)) body = Process(body);
    if (struct_rng_.NextBool(0.4)) body = Project(body, true);
    return GroupBy(body);
  }

  Frag BuildSharedDag() {
    // A cooked intermediate feeding two consumers whose union is reduced:
    // the DAG (not tree) shape of SCOPE jobs.
    Frag shared = Select(UnionSource(PickSet(/*want_log=*/true)), 1, 2);
    Frag branch1 = Process(shared);
    Frag branch2 = Select(shared, 1, 2);
    Operator u;
    u.kind = OpKind::kUnionAll;
    Frag unioned;
    unioned.cols = shared.cols;
    unioned.node = PlanNode::Make(std::move(u), {branch1.node, branch2.node});
    return GroupBy(unioned);
  }

  Frag BuildTopkReport() {
    Frag fact = Select(Scan(PickSet(/*want_log=*/true)), 1, 3);
    Frag dim = Scan(PickSet(/*want_log=*/false));
    Frag body = Join(fact, dim, JoinType::kInner, 1);
    if (struct_rng_.NextBool(0.5)) body = Project(body, struct_rng_.NextBool(0.4));
    body = GroupBy(body, 2);
    body = Top(body);
    // Occasionally a redundant outer limit survives view composition
    // (TopTopCollapse's target shape).
    if (struct_rng_.NextBool(0.15)) {
      Operator outer;
      outer.kind = OpKind::kTop;
      outer.limit = static_cast<int64_t>(
          std::pow(10.0, struct_rng_.UniformDouble(2.0, 5.0)));
      outer.sort_keys = body.node->op.sort_keys;
      Frag wrapped;
      wrapped.cols = body.cols;
      wrapped.node = PlanNode::Make(std::move(outer), {body.node});
      body = wrapped;
    }
    return body;
  }

  Frag BuildRareShape() {
    // Rare window/sample jobs: keep the rare-rule population honest.
    Frag body = Scan(PickSet(/*want_log=*/true));
    if (struct_rng_.NextBool(0.5)) {
      Operator op;
      op.kind = OpKind::kSample;
      op.sample_fraction = struct_rng_.UniformDouble(0.01, 0.2);
      Frag out;
      out.cols = body.cols;
      out.node = PlanNode::Make(std::move(op), {body.node});
      body = out;
    } else {
      Operator op;
      op.kind = OpKind::kWindow;
      op.window_keys = {body.cols[0]};
      NamedExpr p;
      p.pass_through = false;
      p.inputs = {body.cols[0]};
      p.fn_seed = struct_rng_.NextU64();
      p.output = universe_->AddDerivedColumn(
          "win_t" + std::to_string(template_id_), 1e4);
      op.projections.push_back(std::move(p));
      Frag out;
      out.cols = body.cols;
      out.cols.push_back(op.projections[0].output);
      std::sort(out.cols.begin(), out.cols.end());
      out.node = PlanNode::Make(std::move(op), {body.node});
      body = out;
    }
    body = Select(body, 1, 2);
    return GroupBy(body);
  }

  const Catalog& catalog_;
  Pcg32 struct_rng_;
  Pcg32 inst_rng_;
  std::shared_ptr<ColumnUniverse> universe_;
  int template_id_;
  int day_;
  std::vector<int> applicable_hints_;
  int udo_counter_ = 0;
  int udf_counter_ = 0;
  int derived_counter_ = 0;
  std::vector<int> used_sets_;
};

}  // namespace

Job Workload::MakeJob(int template_id, int day, int instance) const {
  TemplateBuilder builder(*catalog_, spec_.seed, template_id, day, instance);
  Job job = builder.Build(spec_.name);
  job.name += "_i" + std::to_string(instance);
  return job;
}

}  // namespace qsteer
