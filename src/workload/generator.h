// Synthetic production-workload generator.
//
// Models the SCOPE workload structure of paper §3.1: recurring job
// templates (cooking pipelines over daily log shards, join analytics,
// UDO pipelines, top-k reports) instantiated every day with fresh input
// streams and predicate literals. Three workloads A/B/C mirror Table 1's
// proportions at a configurable scale.
#ifndef QSTEER_WORKLOAD_GENERATOR_H_
#define QSTEER_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/job.h"

namespace qsteer {

struct WorkloadSpec {
  std::string name = "A";
  uint64_t seed = 1;
  int num_templates = 480;
  /// Expected jobs per day (templates recur 1..k times).
  int jobs_per_day = 950;
  /// Stream sets in this workload's catalog.
  int num_stream_sets = 70;
  /// Fraction of "log" sets with many daily shards (union-heavy cooking).
  double log_set_fraction = 0.4;
  /// Scales all stream row counts (and so job runtimes).
  double data_scale = 1.0;

  // --- scenario dials (all default 0 = off; A/B/C stay bit-identical) ---

  /// Floor applied to every drawn zipf_skew (except unique dimension keys):
  /// > 0 forces a heavy-tailed workload where uniformity assumptions break.
  double min_skew = 0.0;
  /// Floor applied to every drawn CorrelationSpec strength.
  double min_correlation = 0.0;
  /// Per-day multiplicative domain growth applied to every column: a
  /// histogram built on day d-k misses the values born since. Feeds
  /// ColumnDef::domain_growth.
  double domain_growth = 0.0;
  /// Per-day additive skew drift applied to every skewed column. Feeds
  /// ColumnDef::skew_drift.
  double skew_drift = 0.0;

  /// Paper-proportioned specs (Table 1 ratios) at `scale` of production
  /// volume. scale = 0.1 gives 9.5K/1.5K/4K daily jobs for A/B/C.
  static WorkloadSpec WorkloadA(double scale = 0.02);
  static WorkloadSpec WorkloadB(double scale = 0.02);
  static WorkloadSpec WorkloadC(double scale = 0.02);

  /// Scenario family "S": heavily skewed, strongly correlated columns — the
  /// regime where histogram-grade estimates beat scalar uniformity hardest.
  static WorkloadSpec CorrelatedSkew(double scale = 0.02);
  /// Scenario family "K": domains grow and skew drifts day over day, so a
  /// histogram built on day d-k is confidently wrong about day d — the
  /// stale-histogram cliff.
  static WorkloadSpec StaleHistogramCliff(double scale = 0.02);
};

/// A generated workload: its private catalog plus deterministic per-day job
/// instantiation.
class Workload {
 public:
  explicit Workload(WorkloadSpec spec);
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  const WorkloadSpec& spec() const { return spec_; }
  const Catalog& catalog() const { return *catalog_; }
  /// Mutable catalog access, for installing a non-default stats model
  /// (Catalog::set_stats_model) before compiling the workload's jobs.
  Catalog& mutable_catalog() { return *catalog_; }

  int num_templates() const { return spec_.num_templates; }

  /// All jobs arriving on `day`, deterministic in (spec.seed, day).
  std::vector<Job> JobsForDay(int day) const;

  /// One instance of a template on a day (instance index selects the
  /// within-day repeat). Deterministic.
  Job MakeJob(int template_id, int day, int instance = 0) const;

  /// How many instances of the template arrive on `day`.
  int InstancesOnDay(int template_id, int day) const;

 private:
  WorkloadSpec spec_;
  std::unique_ptr<Catalog> catalog_;
};

}  // namespace qsteer

#endif  // QSTEER_WORKLOAD_GENERATOR_H_
