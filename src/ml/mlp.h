// Dependency-free neural network for learned configuration selection
// (paper §7.3): a fully connected net with one hidden layer, sigmoid
// outputs, binary-cross-entropy loss on min-max-normalized runtimes, and
// Adam. The learning problems here are tiny (hundreds of samples, a few
// hundred features), so an exact from-scratch implementation replaces the
// paper's PyTorch dependency without approximation.
#ifndef QSTEER_ML_MLP_H_
#define QSTEER_ML_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace qsteer {

/// Row-major dense matrix, just enough for the MLP.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double at(int r, int c) const { return data_[static_cast<size_t>(r) * cols_ + c]; }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

struct MlpOptions {
  int hidden = 64;
  double learning_rate = 1e-3;
  int epochs = 200;
  int batch_size = 16;
  uint64_t seed = 1;
  /// Early-stop patience on validation loss (0 disables).
  int patience = 25;
};

/// One-hidden-layer MLP: x -> ReLU(W1 x + b1) -> sigmoid(W2 h + b2).
class Mlp {
 public:
  /// Empty model (0-dimensional); a deserialization target only.
  Mlp() = default;

  Mlp(int inputs, int hidden, int outputs, uint64_t seed);

  std::vector<double> Forward(const std::vector<double>& x) const;

  /// One SGD/Adam step on a single example with BCE loss; returns the loss.
  double TrainStep(const std::vector<double>& x, const std::vector<double>& y, double lr);

  /// Mean BCE loss over a dataset.
  double Evaluate(const std::vector<std::vector<double>>& xs,
                  const std::vector<std::vector<double>>& ys) const;

  int inputs() const { return inputs_; }
  int outputs() const { return outputs_; }

  /// Full training loop with shuffling and optional validation early stop.
  static Mlp Train(const std::vector<std::vector<double>>& train_x,
                   const std::vector<std::vector<double>>& train_y,
                   const std::vector<std::vector<double>>& val_x,
                   const std::vector<std::vector<double>>& val_y, int outputs,
                   const MlpOptions& options);

  /// Every parameter — weights, biases, Adam moments, step counter — as
  /// %.17g text, so Deserialize(Serialize()) reproduces the model (and its
  /// future training trajectory) bit for bit. Two models with equal state
  /// serialize to equal bytes.
  std::string Serialize() const;
  static Result<Mlp> Deserialize(const std::string& text);

 private:
  struct AdamState {
    std::vector<double> m;
    std::vector<double> v;
  };

  int inputs_ = 0;
  int hidden_ = 0;
  int outputs_ = 0;
  Matrix w1_, w2_;
  std::vector<double> b1_, b2_;
  AdamState adam_w1_, adam_w2_, adam_b1_, adam_b2_;
  int64_t step_ = 0;
};

/// Min-max feature scaler fit on training data (paper §7.2 encodes
/// continuous features to [0, 1]).
class MinMaxScaler {
 public:
  /// Replaces the fitted bounds with the column ranges of `rows`.
  /// kInvalidArgument when the rows are ragged (inconsistent widths): a
  /// narrow row would otherwise silently truncate every later column.
  Status Fit(const std::vector<std::vector<double>>& rows);

  /// Widens the fitted bounds to cover `row` (online fitting); the first
  /// call adopts the row's width. kInvalidArgument on a width mismatch.
  Status Update(const std::vector<double>& row);

  std::vector<double> Transform(const std::vector<double>& row) const;
  Status FitTransformInPlace(std::vector<std::vector<double>>* rows);

  bool fitted() const { return !min_.empty(); }
  int width() const { return static_cast<int>(min_.size()); }

  /// %.17g text, bit-exact round trip; equal state => equal bytes.
  std::string Serialize() const;
  static Result<MinMaxScaler> Deserialize(const std::string& text);

 private:
  std::vector<double> min_, max_;
};

/// Normalizes K runtimes to [0, 1] per sample (the BCE targets of §7.3).
std::vector<double> NormalizeRuntimes(const std::vector<double>& runtimes);

}  // namespace qsteer

#endif  // QSTEER_ML_MLP_H_
