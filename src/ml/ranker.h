// Learning-to-rank for candidate rule configurations (ROADMAP:
// "Learning-to-rank candidate generation"; cf. "Efficient Query Rewrite Rule
// Discovery via Standardized Enumeration and Learning-to-Rank", PAPERS.md).
//
// Discovery pays a full recompile per candidate draw; a compile budget caps
// that spend, and this ranker decides where the budget goes. It scores a
// candidate from cheap, fully deterministic signals — which span rules the
// candidate toggles, how many of those contributed to the default plan
// (rule-signature provenance), the default plan's estimated cost, and the
// historical improvement rate of each toggled rule — and is trained online
// from the outcomes of candidates the pipeline already compiled (label =
// observed improvement). Training order is caller-controlled and strictly
// sequential, so two rankers fed the same example stream are bit-identical,
// regardless of how many workers produced the examples.
#ifndef QSTEER_ML_RANKER_H_
#define QSTEER_ML_RANKER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "ml/mlp.h"
#include "optimizer/rule_config.h"

namespace qsteer {

struct RankerOptions {
  /// Hidden width of the scoring MLP; the feature space is tiny, so a small
  /// net converges in a handful of batches.
  int hidden = 16;
  double learning_rate = 5e-3;
  /// Sequential passes over each training batch.
  int epochs_per_batch = 2;
  uint64_t seed = 1;
  /// Blend between the per-rule historical prior and the MLP score once the
  /// model has seen enough examples (1.0 = prior only, 0.0 = model only).
  double prior_weight = 0.6;
  /// Until this many examples are trained, Score returns the prior alone: a
  /// freshly initialized MLP is noise and would scatter the budget.
  int64_t min_examples_for_model = 48;
};

/// Per-job inputs shared by every candidate's feature row.
struct RankerJobContext {
  BitVector256 span;
  RuleSignature default_signature;
  double default_est_cost = 0.0;
};

/// One training example: the feature row of a compiled candidate and the
/// improvement observed for it. `label` starts as the estimated-cost
/// improvement fraction and is replaced by the measured runtime improvement
/// when the candidate was A/B-executed (truth beats estimate).
struct RankerExample {
  std::vector<double> features;
  /// RuleConfig::Hash() of the candidate, to match executed outcomes back to
  /// their examples.
  uint64_t config_hash = 0;
  /// Span rules on which the candidate disagrees with the default config.
  std::vector<int> toggled_rules;
  /// Improvement in [0, 1]; 0 = no improvement.
  double label = 0.0;
};

/// Scores candidate RuleConfigs so a compile budget is spent where it pays.
///
/// Thread-safety: none — callers (SteeringPipeline) serialize access. The
/// pipeline's contract is that scoring happens only against a *frozen*
/// ranker (Train is called at batch boundaries, never concurrently with
/// Score), which is what makes budgeted analyses bit-identical across
/// worker counts.
class CandidateRanker {
 public:
  static constexpr int kNumFeatures = 15;

  explicit CandidateRanker(RankerOptions options = {});

  const RankerOptions& options() const { return options_; }

  /// Builds a candidate's example row: features + toggled rules + config
  /// hash, under the ranker's current historical state. `label` is left 0.
  RankerExample MakeExample(const RankerJobContext& ctx, const RuleConfig& config) const;

  /// Score from an already-extracted feature row; higher = spend a compile
  /// here first. Deterministic function of (ranker state, features).
  double Score(const std::vector<double>& features) const;

  /// Trains on the batch strictly in order: first the per-rule historical
  /// stats and scaler bounds, then `epochs_per_batch` sequential MLP passes.
  /// Two rankers fed equal example streams end up byte-identical.
  void Train(const std::vector<RankerExample>& examples);

  int64_t examples_trained() const { return examples_trained_; }

  /// Version-tagged text serialization of the full state (options echo,
  /// per-rule stats, scaler, MLP incl. Adam moments). Equal state => equal
  /// bytes; Parse(Serialize()) resumes the exact training trajectory.
  std::string Serialize() const;

  /// Serialize() + crc32 footer via WriteFileChecksummed (atomic rename).
  Status SaveToFile(const std::string& path, bool sync = false) const;

  /// Loads a SaveToFile artifact. Same contract as
  /// CompileCache::WarmFromFile: a missing checksum, version mismatch,
  /// dimension mismatch or any parse damage rejects the *whole* file and
  /// leaves this ranker untouched — discovery runs cold, never wrong.
  Status WarmFromFile(const std::string& path);

 private:
  struct RuleStats {
    int64_t count = 0;
    double label_sum = 0.0;
  };

  /// Mean historical improvement over `rules` (only rules with history
  /// contribute); the cold-start prior and a model feature.
  double HistoricalPrior(const std::vector<int>& toggled_rules) const;

  static Status ParseInto(const std::string& content, CandidateRanker* out);

  RankerOptions options_;
  Mlp model_;
  MinMaxScaler scaler_;
  std::array<RuleStats, kNumRules> rule_stats_{};
  int64_t examples_trained_ = 0;
};

}  // namespace qsteer

#endif  // QSTEER_ML_RANKER_H_
