#include "ml/ranker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/file_io.h"

namespace qsteer {

namespace {

/// Version-tagged header; bumping it makes every older artifact reject
/// cleanly (same contract as the compile-cache file header).
constexpr char kRankerFileHeader[] = "qsteer-ranker v1";

double SafeFrac(double num, double den) { return den > 0.0 ? num / den : 0.0; }

}  // namespace

CandidateRanker::CandidateRanker(RankerOptions options)
    : options_(options),
      model_(kNumFeatures, std::max(1, options.hidden), /*outputs=*/1, options.seed) {}

double CandidateRanker::HistoricalPrior(const std::vector<int>& toggled_rules) const {
  double sum = 0.0;
  int with_history = 0;
  for (int rule : toggled_rules) {
    const RuleStats& stats = rule_stats_[static_cast<size_t>(rule)];
    if (stats.count == 0) continue;
    sum += stats.label_sum / static_cast<double>(stats.count);
    ++with_history;
  }
  return with_history > 0 ? sum / with_history : 0.0;
}

RankerExample CandidateRanker::MakeExample(const RankerJobContext& ctx,
                                           const RuleConfig& config) const {
  // The candidate's identity for ranking purposes is which *span* rules it
  // toggles relative to the default configuration: rules outside the span
  // cannot change the plan (paper §4), and within a job's candidate stream
  // the off-span bits are constant anyway.
  static const BitVector256 kDefaultBits = RuleConfig::Default().bits();
  RankerExample example;
  example.config_hash = config.Hash();
  example.toggled_rules = config.bits().Xor(kDefaultBits).And(ctx.span).ToIndices();

  const double span_count = ctx.span.Count();
  const double toggled = static_cast<double>(example.toggled_rules.size());
  double per_category[3] = {0.0, 0.0, 0.0};  // off-by-default, on-by-default, impl
  double in_signature = 0.0;
  double with_history = 0.0;
  double positive_history = 0.0;
  double max_history = 0.0;
  for (int rule : example.toggled_rules) {
    switch (CategoryOfRule(rule)) {
      case RuleCategory::kOffByDefault: per_category[0] += 1.0; break;
      case RuleCategory::kOnByDefault: per_category[1] += 1.0; break;
      case RuleCategory::kImplementation: per_category[2] += 1.0; break;
      case RuleCategory::kRequired: break;  // required rules never toggle
    }
    if (ctx.default_signature.Test(rule)) in_signature += 1.0;
    const RuleStats& stats = rule_stats_[static_cast<size_t>(rule)];
    if (stats.count > 0) {
      with_history += 1.0;
      double mean = stats.label_sum / static_cast<double>(stats.count);
      max_history = std::max(max_history, mean);
      if (mean > 0.01) positive_history += 1.0;
    }
  }
  double sig_in_span = static_cast<double>(ctx.default_signature.And(ctx.span).Count());

  std::vector<double>& f = example.features;
  f.reserve(kNumFeatures);
  f.push_back(span_count / BitVector256::kBits);          // 0: span size
  f.push_back(SafeFrac(toggled, span_count));             // 1: fraction of span toggled
  f.push_back(SafeFrac(per_category[0], toggled));        // 2: off-by-default share
  f.push_back(SafeFrac(per_category[1], toggled));        // 3: on-by-default share
  f.push_back(SafeFrac(per_category[2], toggled));        // 4: implementation share
  f.push_back(SafeFrac(in_signature, toggled));           // 5: provenance share
  f.push_back(SafeFrac(sig_in_span, span_count));         // 6: signature density in span
  f.push_back(std::log1p(std::max(0.0, ctx.default_est_cost)) / 30.0);  // 7: default cost
  f.push_back(toggled / 32.0);                            // 8: raw toggle count
  f.push_back(SafeFrac(with_history, toggled));           // 9: history coverage
  f.push_back(HistoricalPrior(example.toggled_rules));    // 10: mean historical gain
  f.push_back(max_history);                               // 11: best historical gain
  f.push_back(SafeFrac(positive_history, toggled));       // 12: positive-history share
  f.push_back(SafeFrac(toggled - with_history, toggled));  // 13: never-seen share
  f.push_back(1.0);                                        // 14: bias
  return example;
}

double CandidateRanker::Score(const std::vector<double>& features) const {
  if (static_cast<int>(features.size()) != kNumFeatures) return 0.0;
  // Feature 10 *is* the historical prior (mean past improvement of the
  // toggled rules), so scoring needs no side channel beyond the row.
  double prior = features[10];
  if (examples_trained_ < options_.min_examples_for_model) return prior;
  std::vector<double> scaled = scaler_.fitted() ? scaler_.Transform(features) : features;
  double model = model_.Forward(scaled)[0];
  double w = std::clamp(options_.prior_weight, 0.0, 1.0);
  return w * prior + (1.0 - w) * model;
}

void CandidateRanker::Train(const std::vector<RankerExample>& examples) {
  // Phase 1, in example order: historical stats + scaler bounds. These feed
  // *future* feature rows; the rows inside this batch were extracted against
  // the pre-batch state and train the model as-is below.
  std::vector<const RankerExample*> usable;
  usable.reserve(examples.size());
  for (const RankerExample& example : examples) {
    if (static_cast<int>(example.features.size()) != kNumFeatures) continue;
    usable.push_back(&example);
    double label = std::clamp(example.label, 0.0, 1.0);
    for (int rule : example.toggled_rules) {
      if (rule < 0 || rule >= kNumRules) continue;
      RuleStats& stats = rule_stats_[static_cast<size_t>(rule)];
      ++stats.count;
      stats.label_sum += label;
    }
    (void)scaler_.Update(example.features);  // width checked above
    ++examples_trained_;
  }
  // Phase 2: strictly sequential SGD passes — no shuffling, so the model's
  // final bytes depend only on the example stream, not on thread count.
  for (int epoch = 0; epoch < std::max(1, options_.epochs_per_batch); ++epoch) {
    for (const RankerExample* example : usable) {
      model_.TrainStep(scaler_.Transform(example->features),
                       {std::clamp(example->label, 0.0, 1.0)}, options_.learning_rate);
    }
  }
}

std::string CandidateRanker::Serialize() const {
  std::string out;
  char buf[160];
  out.append(kRankerFileHeader);
  out.push_back('\n');
  std::snprintf(buf, sizeof(buf), "options %d %llu %.17g %.17g %d %lld\n", options_.hidden,
                static_cast<unsigned long long>(options_.seed), options_.prior_weight,
                options_.learning_rate, options_.epochs_per_batch,
                static_cast<long long>(options_.min_examples_for_model));
  out.append(buf);
  std::snprintf(buf, sizeof(buf), "examples_trained %lld\n",
                static_cast<long long>(examples_trained_));
  out.append(buf);
  int nonzero = 0;
  for (const RuleStats& stats : rule_stats_) nonzero += stats.count > 0 ? 1 : 0;
  std::snprintf(buf, sizeof(buf), "rule_stats %d\n", nonzero);
  out.append(buf);
  // Fixed array scanned in ascending rule id: deterministic bytes.
  for (int rule = 0; rule < kNumRules; ++rule) {
    const RuleStats& stats = rule_stats_[static_cast<size_t>(rule)];
    if (stats.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "%d %lld %.17g\n", rule,
                  static_cast<long long>(stats.count), stats.label_sum);
    out.append(buf);
  }
  out.append(scaler_.Serialize());
  out.append(model_.Serialize());
  return out;
}

Status CandidateRanker::ParseInto(const std::string& content, CandidateRanker* out) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != kRankerFileHeader) {
    return Status::FailedPrecondition("unknown ranker version tag");
  }
  if (!std::getline(in, line)) return Status::InvalidArgument("ranker: missing options line");
  {
    std::istringstream tokens(line);
    std::string tag;
    int hidden = 0;
    unsigned long long seed = 0;
    double prior_weight = 0.0, lr = 0.0;
    int epochs = 0;
    long long min_examples = 0;
    if (!(tokens >> tag >> hidden >> seed >> prior_weight >> lr >> epochs >> min_examples) ||
        tag != "options") {
      return Status::InvalidArgument("ranker: malformed options line");
    }
    if (hidden != out->options_.hidden) {
      return Status::FailedPrecondition("ranker: hidden width disagrees with this build");
    }
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("ranker: missing examples_trained line");
  }
  {
    std::istringstream tokens(line);
    std::string tag;
    long long trained = 0;
    if (!(tokens >> tag >> trained) || tag != "examples_trained" || trained < 0) {
      return Status::InvalidArgument("ranker: malformed examples_trained line");
    }
    out->examples_trained_ = trained;
  }
  if (!std::getline(in, line)) return Status::InvalidArgument("ranker: missing rule_stats line");
  int nonzero = 0;
  {
    std::istringstream tokens(line);
    std::string tag;
    if (!(tokens >> tag >> nonzero) || tag != "rule_stats" || nonzero < 0 ||
        nonzero > kNumRules) {
      return Status::InvalidArgument("ranker: malformed rule_stats line");
    }
  }
  out->rule_stats_.fill(RuleStats{});
  int previous_rule = -1;
  for (int i = 0; i < nonzero; ++i) {
    if (!std::getline(in, line)) return Status::InvalidArgument("ranker: short rule_stats block");
    std::istringstream tokens(line);
    int rule = 0;
    long long count = 0;
    double label_sum = 0.0;
    if (!(tokens >> rule >> count >> label_sum) || rule <= previous_rule || rule >= kNumRules ||
        count <= 0) {
      return Status::InvalidArgument("ranker: malformed rule_stats entry");
    }
    previous_rule = rule;
    out->rule_stats_[static_cast<size_t>(rule)] = RuleStats{count, label_sum};
  }
  // Remainder: two scaler lines, then the MLP block.
  std::string scaler_text;
  for (int i = 0; i < 2; ++i) {
    if (!std::getline(in, line)) return Status::InvalidArgument("ranker: missing scaler block");
    scaler_text += line;
    scaler_text.push_back('\n');
  }
  Result<MinMaxScaler> scaler = MinMaxScaler::Deserialize(scaler_text);
  if (!scaler.ok()) return scaler.status();
  if (scaler.value().fitted() && scaler.value().width() != kNumFeatures) {
    return Status::InvalidArgument("ranker: scaler width disagrees with the feature space");
  }
  out->scaler_ = std::move(scaler).value();
  std::string mlp_text;
  while (std::getline(in, line)) {
    mlp_text += line;
    mlp_text.push_back('\n');
  }
  Result<Mlp> model = Mlp::Deserialize(mlp_text);
  if (!model.ok()) return model.status();
  if (model.value().inputs() != kNumFeatures || model.value().outputs() != 1) {
    return Status::InvalidArgument("ranker: model dimensions disagree with the feature space");
  }
  out->model_ = std::move(model).value();
  return Status::OK();
}

Status CandidateRanker::SaveToFile(const std::string& path, bool sync) const {
  return WriteFileChecksummed(path, Serialize(), sync);
}

Status CandidateRanker::WarmFromFile(const std::string& path) {
  bool had_checksum = false;
  Result<std::string> read = ReadFileChecksummed(path, &had_checksum);
  if (!read.ok()) return read.status();
  if (!had_checksum) {
    return Status::InvalidArgument("ranker file has no crc32 footer: " + path);
  }
  // Parse into a scratch ranker so any damage rejects the whole file and
  // leaves this ranker exactly as it was (run cold, never wrong).
  CandidateRanker scratch(options_);
  Status st = ParseInto(read.value(), &scratch);
  if (!st.ok()) return st;
  *this = std::move(scratch);
  return Status::OK();
}

}  // namespace qsteer
