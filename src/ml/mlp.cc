#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>

namespace qsteer {

namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Serialization helpers: one `<tag> <count> <v0> <v1> ...` line per vector,
/// values as %.17g so a text round trip is bit-exact for every finite double.
void AppendVectorLine(const char* tag, const std::vector<double>& values, std::string* out) {
  char buf[64];
  out->append(tag);
  std::snprintf(buf, sizeof(buf), " %zu", values.size());
  out->append(buf);
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    out->append(buf);
  }
  out->push_back('\n');
}

Status ParseVectorLine(std::istream& in, const char* tag, std::vector<double>* out) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(std::string("mlp: missing '") + tag + "' line");
  }
  std::istringstream tokens(line);
  std::string got_tag;
  size_t count = 0;
  if (!(tokens >> got_tag >> count) || got_tag != tag) {
    return Status::InvalidArgument(std::string("mlp: malformed '") + tag + "' line");
  }
  // An absurd count means a corrupt length field; bail before allocating.
  if (count > (1u << 24)) {
    return Status::InvalidArgument(std::string("mlp: '") + tag + "' count out of range");
  }
  out->assign(count, 0.0);
  for (size_t i = 0; i < count; ++i) {
    if (!(tokens >> (*out)[i])) {
      return Status::InvalidArgument(std::string("mlp: short '") + tag + "' line");
    }
  }
  std::string extra;
  if (tokens >> extra) {
    return Status::InvalidArgument(std::string("mlp: trailing data on '") + tag + "' line");
  }
  return Status::OK();
}

void AdamUpdate(std::vector<double>* params, const std::vector<double>& grads,
                std::vector<double>* m, std::vector<double>* v, double lr, int64_t step) {
  if (m->size() != params->size()) {
    m->assign(params->size(), 0.0);
    v->assign(params->size(), 0.0);
  }
  double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(step));
  double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(step));
  for (size_t i = 0; i < params->size(); ++i) {
    (*m)[i] = kAdamBeta1 * (*m)[i] + (1.0 - kAdamBeta1) * grads[i];
    (*v)[i] = kAdamBeta2 * (*v)[i] + (1.0 - kAdamBeta2) * grads[i] * grads[i];
    double mhat = (*m)[i] / bc1;
    double vhat = (*v)[i] / bc2;
    (*params)[i] -= lr * mhat / (std::sqrt(vhat) + kAdamEps);
  }
}

}  // namespace

Mlp::Mlp(int inputs, int hidden, int outputs, uint64_t seed)
    : inputs_(inputs), hidden_(hidden), outputs_(outputs), w1_(hidden, inputs),
      w2_(outputs, hidden), b1_(hidden, 0.0), b2_(outputs, 0.0) {
  // He initialization for the ReLU layer, Xavier-ish for the output.
  Pcg32 rng(seed, /*stream=*/101);
  double scale1 = std::sqrt(2.0 / std::max(1, inputs));
  for (double& w : w1_.data()) w = rng.NextGaussian() * scale1;
  double scale2 = std::sqrt(1.0 / std::max(1, hidden));
  for (double& w : w2_.data()) w = rng.NextGaussian() * scale2;
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) const {
  std::vector<double> h(static_cast<size_t>(hidden_), 0.0);
  for (int j = 0; j < hidden_; ++j) {
    double acc = b1_[static_cast<size_t>(j)];
    for (int i = 0; i < inputs_ && i < static_cast<int>(x.size()); ++i) {
      acc += w1_.at(j, i) * x[static_cast<size_t>(i)];
    }
    h[static_cast<size_t>(j)] = std::max(0.0, acc);
  }
  std::vector<double> out(static_cast<size_t>(outputs_), 0.0);
  for (int k = 0; k < outputs_; ++k) {
    double acc = b2_[static_cast<size_t>(k)];
    for (int j = 0; j < hidden_; ++j) acc += w2_.at(k, j) * h[static_cast<size_t>(j)];
    out[static_cast<size_t>(k)] = Sigmoid(acc);
  }
  return out;
}

double Mlp::TrainStep(const std::vector<double>& x, const std::vector<double>& y, double lr) {
  // Forward with cached activations.
  std::vector<double> pre(static_cast<size_t>(hidden_), 0.0);
  std::vector<double> h(static_cast<size_t>(hidden_), 0.0);
  for (int j = 0; j < hidden_; ++j) {
    double acc = b1_[static_cast<size_t>(j)];
    for (int i = 0; i < inputs_ && i < static_cast<int>(x.size()); ++i) {
      acc += w1_.at(j, i) * x[static_cast<size_t>(i)];
    }
    pre[static_cast<size_t>(j)] = acc;
    h[static_cast<size_t>(j)] = std::max(0.0, acc);
  }
  std::vector<double> out(static_cast<size_t>(outputs_), 0.0);
  double loss = 0.0;
  std::vector<double> dout(static_cast<size_t>(outputs_), 0.0);
  for (int k = 0; k < outputs_; ++k) {
    double acc = b2_[static_cast<size_t>(k)];
    for (int j = 0; j < hidden_; ++j) acc += w2_.at(k, j) * h[static_cast<size_t>(j)];
    double p = Sigmoid(acc);
    out[static_cast<size_t>(k)] = p;
    double target = std::clamp(y[static_cast<size_t>(k)], 0.0, 1.0);
    double pc = std::clamp(p, 1e-7, 1.0 - 1e-7);
    loss += -(target * std::log(pc) + (1.0 - target) * std::log(1.0 - pc));
    // d(BCE)/d(logit) = p - target for sigmoid outputs.
    dout[static_cast<size_t>(k)] = p - target;
  }
  loss /= std::max(1, outputs_);

  // Backprop.
  std::vector<double> gw2(w2_.data().size(), 0.0);
  std::vector<double> gb2(static_cast<size_t>(outputs_), 0.0);
  std::vector<double> dh(static_cast<size_t>(hidden_), 0.0);
  for (int k = 0; k < outputs_; ++k) {
    double d = dout[static_cast<size_t>(k)];
    gb2[static_cast<size_t>(k)] = d;
    for (int j = 0; j < hidden_; ++j) {
      gw2[static_cast<size_t>(k) * hidden_ + j] = d * h[static_cast<size_t>(j)];
      dh[static_cast<size_t>(j)] += d * w2_.at(k, j);
    }
  }
  std::vector<double> gw1(w1_.data().size(), 0.0);
  std::vector<double> gb1(static_cast<size_t>(hidden_), 0.0);
  for (int j = 0; j < hidden_; ++j) {
    if (pre[static_cast<size_t>(j)] <= 0.0) continue;  // ReLU gate
    double d = dh[static_cast<size_t>(j)];
    gb1[static_cast<size_t>(j)] = d;
    for (int i = 0; i < inputs_ && i < static_cast<int>(x.size()); ++i) {
      gw1[static_cast<size_t>(j) * inputs_ + i] = d * x[static_cast<size_t>(i)];
    }
  }

  ++step_;
  AdamUpdate(&w2_.data(), gw2, &adam_w2_.m, &adam_w2_.v, lr, step_);
  AdamUpdate(&b2_, gb2, &adam_b2_.m, &adam_b2_.v, lr, step_);
  AdamUpdate(&w1_.data(), gw1, &adam_w1_.m, &adam_w1_.v, lr, step_);
  AdamUpdate(&b1_, gb1, &adam_b1_.m, &adam_b1_.v, lr, step_);
  return loss;
}

double Mlp::Evaluate(const std::vector<std::vector<double>>& xs,
                     const std::vector<std::vector<double>>& ys) const {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (size_t n = 0; n < xs.size(); ++n) {
    std::vector<double> out = Forward(xs[n]);
    double loss = 0.0;
    for (int k = 0; k < outputs_; ++k) {
      double target = std::clamp(ys[n][static_cast<size_t>(k)], 0.0, 1.0);
      double p = std::clamp(out[static_cast<size_t>(k)], 1e-7, 1.0 - 1e-7);
      loss += -(target * std::log(p) + (1.0 - target) * std::log(1.0 - p));
    }
    total += loss / std::max(1, outputs_);
  }
  return total / static_cast<double>(xs.size());
}

Mlp Mlp::Train(const std::vector<std::vector<double>>& train_x,
               const std::vector<std::vector<double>>& train_y,
               const std::vector<std::vector<double>>& val_x,
               const std::vector<std::vector<double>>& val_y, int outputs,
               const MlpOptions& options) {
  int inputs = train_x.empty() ? 1 : static_cast<int>(train_x[0].size());
  Mlp model(inputs, options.hidden, outputs, options.seed);
  Mlp best = model;
  double best_val = options.patience > 0 ? model.Evaluate(val_x, val_y) : 0.0;
  int stale = 0;

  Pcg32 rng(options.seed ^ 0xfeed, 103);
  std::vector<size_t> order(train_x.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      model.TrainStep(train_x[idx], train_y[idx], options.learning_rate);
    }
    if (options.patience > 0 && !val_x.empty()) {
      double val = model.Evaluate(val_x, val_y);
      if (val < best_val - 1e-6) {
        best_val = val;
        best = model;
        stale = 0;
      } else if (++stale >= options.patience) {
        return best;
      }
    }
  }
  return (options.patience > 0 && !val_x.empty()) ? best : model;
}

std::string Mlp::Serialize() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "mlp %d %d %d %lld\n", inputs_, hidden_, outputs_,
                static_cast<long long>(step_));
  out.append(buf);
  AppendVectorLine("w1", w1_.data(), &out);
  AppendVectorLine("b1", b1_, &out);
  AppendVectorLine("w2", w2_.data(), &out);
  AppendVectorLine("b2", b2_, &out);
  // Adam moments are part of the model's identity: resuming training from a
  // deserialized model must follow the exact trajectory of the original.
  AppendVectorLine("adam_w1_m", adam_w1_.m, &out);
  AppendVectorLine("adam_w1_v", adam_w1_.v, &out);
  AppendVectorLine("adam_b1_m", adam_b1_.m, &out);
  AppendVectorLine("adam_b1_v", adam_b1_.v, &out);
  AppendVectorLine("adam_w2_m", adam_w2_.m, &out);
  AppendVectorLine("adam_w2_v", adam_w2_.v, &out);
  AppendVectorLine("adam_b2_m", adam_b2_.m, &out);
  AppendVectorLine("adam_b2_v", adam_b2_.v, &out);
  return out;
}

Result<Mlp> Mlp::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header)) return Status::InvalidArgument("mlp: empty input");
  Mlp model;
  long long step = 0;
  {
    std::istringstream tokens(header);
    std::string tag;
    if (!(tokens >> tag >> model.inputs_ >> model.hidden_ >> model.outputs_ >> step) ||
        tag != "mlp" || model.inputs_ < 0 || model.hidden_ < 0 || model.outputs_ < 0 ||
        step < 0) {
      return Status::InvalidArgument("mlp: malformed header line");
    }
  }
  model.step_ = step;
  model.w1_ = Matrix(model.hidden_, model.inputs_);
  model.w2_ = Matrix(model.outputs_, model.hidden_);

  struct Field {
    const char* tag;
    std::vector<double>* target;
    size_t expected;  // 0 allows empty (lazily-sized Adam moments)
  };
  const size_t w1_size = static_cast<size_t>(model.hidden_) * model.inputs_;
  const size_t w2_size = static_cast<size_t>(model.outputs_) * model.hidden_;
  const Field fields[] = {
      {"w1", &model.w1_.data(), w1_size},
      {"b1", &model.b1_, static_cast<size_t>(model.hidden_)},
      {"w2", &model.w2_.data(), w2_size},
      {"b2", &model.b2_, static_cast<size_t>(model.outputs_)},
      {"adam_w1_m", &model.adam_w1_.m, w1_size},
      {"adam_w1_v", &model.adam_w1_.v, w1_size},
      {"adam_b1_m", &model.adam_b1_.m, static_cast<size_t>(model.hidden_)},
      {"adam_b1_v", &model.adam_b1_.v, static_cast<size_t>(model.hidden_)},
      {"adam_w2_m", &model.adam_w2_.m, w2_size},
      {"adam_w2_v", &model.adam_w2_.v, w2_size},
      {"adam_b2_m", &model.adam_b2_.m, static_cast<size_t>(model.outputs_)},
      {"adam_b2_v", &model.adam_b2_.v, static_cast<size_t>(model.outputs_)},
  };
  for (const Field& field : fields) {
    Status st = ParseVectorLine(in, field.tag, field.target);
    if (!st.ok()) return st;
    bool adam = std::string_view(field.tag).substr(0, 4) == "adam";
    if (field.target->size() != field.expected && !(adam && field.target->empty())) {
      return Status::InvalidArgument(std::string("mlp: '") + field.tag +
                                     "' length disagrees with header dimensions");
    }
  }
  return model;
}

Status MinMaxScaler::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Status::OK();
  for (const auto& row : rows) {
    if (row.size() != rows[0].size()) {
      return Status::InvalidArgument(
          "min-max scaler: ragged feature rows (every row must have the width of the first)");
    }
  }
  min_ = rows[0];
  max_ = rows[0];
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      min_[i] = std::min(min_[i], row[i]);
      max_[i] = std::max(max_[i], row[i]);
    }
  }
  return Status::OK();
}

Status MinMaxScaler::Update(const std::vector<double>& row) {
  if (min_.empty()) {
    min_ = row;
    max_ = row;
    return Status::OK();
  }
  if (row.size() != min_.size()) {
    return Status::InvalidArgument("min-max scaler: row width disagrees with fitted width");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    min_[i] = std::min(min_[i], row[i]);
    max_[i] = std::max(max_[i], row[i]);
  }
  return Status::OK();
}

std::vector<double> MinMaxScaler::Transform(const std::vector<double>& row) const {
  std::vector<double> out = row;
  for (size_t i = 0; i < out.size() && i < min_.size(); ++i) {
    double range = max_[i] - min_[i];
    out[i] = range > 1e-12 ? std::clamp((out[i] - min_[i]) / range, 0.0, 1.0) : 0.0;
  }
  return out;
}

Status MinMaxScaler::FitTransformInPlace(std::vector<std::vector<double>>* rows) {
  Status st = Fit(*rows);
  if (!st.ok()) return st;
  for (auto& row : *rows) row = Transform(row);
  return Status::OK();
}

std::string MinMaxScaler::Serialize() const {
  std::string out;
  AppendVectorLine("scaler_min", min_, &out);
  AppendVectorLine("scaler_max", max_, &out);
  return out;
}

Result<MinMaxScaler> MinMaxScaler::Deserialize(const std::string& text) {
  std::istringstream in(text);
  MinMaxScaler scaler;
  Status st = ParseVectorLine(in, "scaler_min", &scaler.min_);
  if (!st.ok()) return st;
  st = ParseVectorLine(in, "scaler_max", &scaler.max_);
  if (!st.ok()) return st;
  if (scaler.min_.size() != scaler.max_.size()) {
    return Status::InvalidArgument("min-max scaler: min/max width mismatch");
  }
  return scaler;
}

std::vector<double> NormalizeRuntimes(const std::vector<double>& runtimes) {
  std::vector<double> out(runtimes.size(), 0.0);
  if (runtimes.empty()) return out;
  double lo = *std::min_element(runtimes.begin(), runtimes.end());
  double hi = *std::max_element(runtimes.begin(), runtimes.end());
  double range = hi - lo;
  for (size_t i = 0; i < runtimes.size(); ++i) {
    out[i] = range > 1e-12 ? (runtimes[i] - lo) / range : 0.0;
  }
  return out;
}

}  // namespace qsteer
