// Bao-style baseline (Marcus et al., the system this paper adapts): a fixed
// catalog of 48 coarse hint sets — each disabling whole families of scan /
// join / union implementation choices, like Bao's 48 PostgreSQL hint sets —
// selected per job by a Thompson-sampling contextual-free bandit.
//
// This is the §4 contrast: 48 static arms versus the billions of per-job
// rule configurations the steering pipeline searches.
#ifndef QSTEER_BASELINES_BAO_H_
#define QSTEER_BASELINES_BAO_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "optimizer/rule_config.h"

namespace qsteer {

struct HintSet {
  std::string name;
  RuleConfig config;
};

/// The 48 hint sets: every combination of six family toggles (regular hash
/// joins, broadcast joins, merge joins, loop/apply joins, virtual-dataset
/// unions, partial aggregation) that leaves at least one equi-join
/// implementation enabled, truncated to 48 in a fixed order (Bao likewise
/// keeps the 48 valid combinations of its six boolean hints).
std::vector<HintSet> BaoHintSets();

/// Thompson-sampling bandit over the hint sets: each arm keeps a Gaussian
/// posterior over the (log) runtime ratio vs the default configuration.
class BaoBandit {
 public:
  explicit BaoBandit(int num_arms, uint64_t seed = 1);

  /// Samples an arm from the posteriors.
  int ChooseArm();

  /// Records an observed runtime ratio (arm runtime / default runtime).
  void Observe(int arm, double runtime_ratio);

  int num_arms() const { return static_cast<int>(arms_.size()); }
  double ArmMean(int arm) const { return arms_[static_cast<size_t>(arm)].mean; }
  int ArmPulls(int arm) const { return arms_[static_cast<size_t>(arm)].pulls; }

 private:
  struct Arm {
    double mean = 0.0;       // posterior mean of log runtime ratio
    double sum_log = 0.0;
    int pulls = 0;
  };
  std::vector<Arm> arms_;
  Pcg32 rng_;
};

}  // namespace qsteer

#endif  // QSTEER_BASELINES_BAO_H_
