#include "baselines/bao.h"

#include <cmath>

#include "common/random.h"
#include "optimizer/rule_registry.h"

namespace qsteer {

std::vector<HintSet> BaoHintSets() {
  struct Family {
    const char* name;
    std::vector<RuleId> rules;
  };
  const std::vector<Family> families = {
      {"hashjoin", {rules::kHashJoinImpl1, rules::kHashJoinImpl2, 234}},
      {"broadcastjoin", {rules::kBroadcastJoinImpl1, 227, 231}},
      {"mergejoin", {rules::kMergeJoinImpl, 235}},
      {"loopjoin", {rules::kLoopJoinImpl, 232, 233}},
      {"virtualunion", {rules::kUnionAllToVirtualDataset, 242}},
      {"partialagg", {121, 122, rules::kPreHashAggImpl}},
  };

  std::vector<HintSet> out;
  for (int mask = 0; mask < (1 << 6) && static_cast<int>(out.size()) < 48; ++mask) {
    // Keep at least one equi-join family (hash / broadcast / merge) enabled;
    // Bao likewise only keeps combinations that can still plan every query.
    bool hash_off = mask & 1, broadcast_off = mask & 2, merge_off = mask & 4;
    if (hash_off && broadcast_off && merge_off) continue;
    HintSet hint;
    hint.config = RuleConfig::Default();
    hint.name = "arm";
    for (int f = 0; f < 6; ++f) {
      if ((mask >> f) & 1) {
        hint.name += std::string("_no-") + families[static_cast<size_t>(f)].name;
        for (RuleId id : families[static_cast<size_t>(f)].rules) hint.config.Disable(id);
      }
    }
    if (hint.name == "arm") hint.name = "arm_default";
    out.push_back(std::move(hint));
  }
  return out;
}

BaoBandit::BaoBandit(int num_arms, uint64_t seed)
    : arms_(static_cast<size_t>(num_arms)), rng_(seed, /*stream=*/401) {}

int BaoBandit::ChooseArm() {
  int best = 0;
  double best_sample = 1e300;
  for (size_t a = 0; a < arms_.size(); ++a) {
    const Arm& arm = arms_[a];
    // Gaussian posterior on the mean log-ratio: prior N(0, 0.5^2); the
    // posterior variance shrinks as 1/(1 + pulls).
    double variance = 0.25 / (1.0 + arm.pulls);
    double sample = arm.mean + std::sqrt(variance) * rng_.NextGaussian();
    if (sample < best_sample) {
      best_sample = sample;
      best = static_cast<int>(a);
    }
  }
  return best;
}

void BaoBandit::Observe(int arm, double runtime_ratio) {
  if (arm < 0 || arm >= num_arms()) return;
  Arm& a = arms_[static_cast<size_t>(arm)];
  a.sum_log += std::log(std::max(runtime_ratio, 1e-6));
  ++a.pulls;
  a.mean = a.sum_log / a.pulls;
}

}  // namespace qsteer
