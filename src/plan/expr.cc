#include "plan/expr.h"

#include <algorithm>

#include "catalog/datagen.h"
#include "common/hash.h"

namespace qsteer {

ExprPtr Expr::Column(ColumnId column) {
  Expr e;
  e.kind_ = ExprKind::kColumn;
  e.column_ = column;
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Literal(int64_t value) {
  Expr e;
  e.kind_ = ExprKind::kLiteral;
  e.literal_ = value;
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  Expr e;
  e.kind_ = ExprKind::kCompare;
  e.cmp_ = op;
  e.children_ = {std::move(lhs), std::move(rhs)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Cmp(ColumnId column, CmpOp op, int64_t value) {
  return Compare(op, Column(column), Literal(value));
}

ExprPtr Expr::And(std::vector<ExprPtr> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  Expr e;
  e.kind_ = ExprKind::kAnd;
  e.children_ = std::move(children);
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Or(std::vector<ExprPtr> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  Expr e;
  e.kind_ = ExprKind::kOr;
  e.children_ = std::move(children);
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::Not(ExprPtr child) {
  Expr e;
  e.kind_ = ExprKind::kNot;
  e.children_ = {std::move(child)};
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::IsNotNull(ColumnId column) {
  Expr e;
  e.kind_ = ExprKind::kIsNotNull;
  e.column_ = column;
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::UdfPredicate(std::string name, double selectivity_guess, ColumnId input) {
  Expr e;
  e.kind_ = ExprKind::kUdfPredicate;
  e.udf_name_ = std::move(name);
  e.udf_selectivity_guess_ = selectivity_guess;
  e.column_ = input;
  return std::make_shared<const Expr>(std::move(e));
}

ExprPtr Expr::True() {
  Expr e;
  e.kind_ = ExprKind::kTrue;
  return std::make_shared<const Expr>(std::move(e));
}

bool Expr::EvalPredicate(const RowAccessor& row) const {
  switch (kind_) {
    case ExprKind::kTrue:
      return true;
    case ExprKind::kCompare: {
      int64_t lhs = children_[0]->EvalValue(row);
      int64_t rhs = children_[1]->EvalValue(row);
      if (lhs == kNullValue || rhs == kNullValue) return false;
      switch (cmp_) {
        case CmpOp::kEq:
          return lhs == rhs;
        case CmpOp::kNe:
          return lhs != rhs;
        case CmpOp::kLt:
          return lhs < rhs;
        case CmpOp::kLe:
          return lhs <= rhs;
        case CmpOp::kGt:
          return lhs > rhs;
        case CmpOp::kGe:
          return lhs >= rhs;
      }
      return false;
    }
    case ExprKind::kAnd:
      for (const ExprPtr& c : children_) {
        if (!c->EvalPredicate(row)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const ExprPtr& c : children_) {
        if (c->EvalPredicate(row)) return true;
      }
      return false;
    case ExprKind::kNot:
      return !children_[0]->EvalPredicate(row);
    case ExprKind::kIsNotNull:
      return row.Get(column_) != kNullValue;
    case ExprKind::kUdfPredicate: {
      // Deterministic pseudo-random row filter: an opaque user predicate
      // whose *true* pass rate is keyed by its name (it generally differs
      // from udf_selectivity_guess_ — a deliberate estimation-error source;
      // the analytic counterpart is UdfTrueSelectivity in optimizer/stats).
      int64_t v = row.Get(column_);
      if (v == kNullValue) return false;
      uint64_t name_hash = Mix64(HashString(udf_name_) ^ 0xabcdULL);
      double true_rate = 0.05 + 0.9 * (static_cast<double>(name_hash & 0xffff) / 65535.0);
      uint64_t h = Mix64(HashString(udf_name_) ^ static_cast<uint64_t>(v) * 0x9e3779b97f4aULL);
      return (static_cast<double>(h & 0xffffff) / 16777215.0) < true_rate;
    }
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return EvalValue(row) != 0;
  }
  return false;
}

int64_t Expr::EvalValue(const RowAccessor& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return row.Get(column_);
    case ExprKind::kLiteral:
      return literal_;
    default:
      return EvalPredicate(row) ? 1 : 0;
  }
}

void Expr::CollectColumns(std::vector<ColumnId>* out) const {
  if (column_ != kInvalidColumn) out->push_back(column_);
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

bool Expr::BoundBy(const std::vector<ColumnId>& sorted_columns) const {
  std::vector<ColumnId> used;
  CollectColumns(&used);
  for (ColumnId c : used) {
    if (!std::binary_search(sorted_columns.begin(), sorted_columns.end(), c)) return false;
  }
  return true;
}

uint64_t Expr::Hash(bool ignore_literals) const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind_) * 131 + 7);
  switch (kind_) {
    case ExprKind::kColumn:
    case ExprKind::kIsNotNull:
      h = HashCombine(h, static_cast<uint64_t>(column_));
      break;
    case ExprKind::kLiteral:
      h = HashCombine(h, ignore_literals ? 0xfeedULL : static_cast<uint64_t>(literal_));
      break;
    case ExprKind::kCompare:
      h = HashCombine(h, static_cast<uint64_t>(cmp_));
      break;
    case ExprKind::kUdfPredicate:
      h = HashCombine(h, HashString(udf_name_));
      h = HashCombine(h, static_cast<uint64_t>(column_));
      break;
    default:
      break;
  }
  for (const ExprPtr& c : children_) h = HashCombine(h, c->Hash(ignore_literals));
  return h;
}

int Expr::CountAtoms() const {
  switch (kind_) {
    case ExprKind::kCompare:
    case ExprKind::kUdfPredicate:
    case ExprKind::kIsNotNull:
      return 1;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot: {
      int total = 0;
      for (const ExprPtr& c : children_) total += c->CountAtoms();
      return total;
    }
    default:
      return 0;
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kTrue:
      return "true";
    case ExprKind::kColumn:
      return "c" + std::to_string(column_);
    case ExprKind::kLiteral:
      return std::to_string(literal_);
    case ExprKind::kCompare:
      return "(" + children_[0]->ToString() + " " + CmpOpName(cmp_) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " AND ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " OR ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kNot:
      return "NOT " + children_[0]->ToString();
    case ExprKind::kIsNotNull:
      return "c" + std::to_string(column_) + " IS NOT NULL";
    case ExprKind::kUdfPredicate:
      return udf_name_ + "(c" + std::to_string(column_) + ")";
  }
  return "?";
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr || expr->kind() == ExprKind::kTrue) return out;
  if (expr->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : expr->children()) {
      auto sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Expr::True();
  return Expr::And(std::move(conjuncts));
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace qsteer
