#include "plan/operator.h"

#include <algorithm>

#include "common/hash.h"

namespace qsteer {

namespace {

uint64_t HashColumns(const std::vector<ColumnId>& cols, uint64_t h) {
  for (ColumnId c : cols) h = HashCombine(h, static_cast<uint64_t>(c) + 1);
  return h;
}

}  // namespace

uint64_t Operator::Hash(bool for_template) const {
  uint64_t h = Mix64(static_cast<uint64_t>(kind) * 0x9e37 + 0x1234);
  switch (kind) {
    case OpKind::kGet:
    case OpKind::kRangeScan:
    case OpKind::kSampleScan:
      h = HashCombine(h, static_cast<uint64_t>(stream_set_id) + 1);
      if (!for_template) {
        h = HashCombine(h, static_cast<uint64_t>(stream_id) + 1);
        h = HashCombine(h, static_cast<uint64_t>(partition_fraction * 1e6));
      }
      h = HashColumns(scan_columns, h);
      break;
    default:
      break;
  }
  if (predicate != nullptr) h = HashCombine(h, predicate->Hash(/*ignore_literals=*/for_template));
  h = HashCombine(h, static_cast<uint64_t>(join_type));
  h = HashColumns(left_keys, h);
  h = HashColumns(right_keys, h);
  h = HashCombine(h, static_cast<uint64_t>(build_side));
  h = HashColumns(group_keys, h);
  if (partial_agg) h = HashCombine(h, 0x9a97);
  for (const AggExpr& a : aggs) {
    h = HashCombine(h, static_cast<uint64_t>(a.func) * 131 + static_cast<uint64_t>(a.arg + 2));
    h = HashCombine(h, static_cast<uint64_t>(a.output + 2));
  }
  for (const NamedExpr& p : projections) {
    h = HashCombine(h, static_cast<uint64_t>(p.output + 2));
    h = HashCombine(h, p.pass_through ? 0x11 : 0x22);
    h = HashColumns(p.inputs, h);
    h = HashCombine(h, p.fn_seed);
  }
  if (limit != 0) {
    h = HashCombine(h, for_template ? 0x77ULL : static_cast<uint64_t>(limit));
  }
  h = HashColumns(sort_keys, h);
  if (!udo_name.empty()) h = HashCombine(h, HashString(udo_name));
  h = HashColumns(window_keys, h);
  if (sample_fraction != 1.0 && !for_template) {
    h = HashCombine(h, static_cast<uint64_t>(sample_fraction * 1e6));
  }
  if (kind == OpKind::kExchange) {
    h = HashCombine(h, static_cast<uint64_t>(exchange) + 0x40);
    h = HashColumns(exchange_keys, h);
  }
  if (IsPhysical() && !for_template) h = HashCombine(h, static_cast<uint64_t>(dop));
  return h;
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kGet:
      return "Get";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kGroupBy:
      return "GroupBy";
    case OpKind::kUnionAll:
      return "UnionAll";
    case OpKind::kProcess:
      return "Process";
    case OpKind::kTop:
      return "Top";
    case OpKind::kWindow:
      return "Window";
    case OpKind::kSample:
      return "Sample";
    case OpKind::kOutput:
      return "Output";
    case OpKind::kRangeScan:
      return "RangeScan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kCompute:
      return "Compute";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kBroadcastHashJoin:
      return "BroadcastHashJoin";
    case OpKind::kMergeJoin:
      return "MergeJoin";
    case OpKind::kLoopJoin:
      return "LoopJoin";
    case OpKind::kIndexApplyJoin:
      return "IndexApplyJoin";
    case OpKind::kHashAgg:
      return "HashAgg";
    case OpKind::kStreamAgg:
      return "StreamAgg";
    case OpKind::kPreHashAgg:
      return "PreHashAgg";
    case OpKind::kPhysicalUnionAll:
      return "PhysicalUnionAll";
    case OpKind::kVirtualDataset:
      return "VirtualDataset";
    case OpKind::kSortedUnionAll:
      return "SortedUnionAll";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kTopNSort:
      return "TopNSort";
    case OpKind::kTopNHeap:
      return "TopNHeap";
    case OpKind::kExchange:
      return "Exchange";
    case OpKind::kProcessVertex:
      return "ProcessVertex";
    case OpKind::kWindowSegment:
      return "WindowSegment";
    case OpKind::kSampleScan:
      return "SampleScan";
    case OpKind::kOutputWriter:
      return "OutputWriter";
  }
  return "?";
}

std::string Operator::ToString() const {
  std::string out = OpKindName(kind);
  if (kind == OpKind::kGet || kind == OpKind::kRangeScan) {
    out += "(stream=" + std::to_string(stream_id) + ")";
  } else if (predicate != nullptr && predicate->kind() != ExprKind::kTrue) {
    out += "(" + predicate->ToString() + ")";
  } else if (kind == OpKind::kExchange) {
    out += exchange == ExchangeKind::kRepartition
               ? "(repartition)"
               : (exchange == ExchangeKind::kGather ? "(gather)" : "(broadcast)");
  }
  if (IsPhysical()) out += "[dop=" + std::to_string(dop) + "]";
  return out;
}

std::vector<ColumnId> OutputColumns(const Operator& op,
                                    const std::vector<std::vector<ColumnId>>& child_outputs) {
  std::vector<ColumnId> out;
  switch (op.kind) {
    case OpKind::kGet:
    case OpKind::kRangeScan:
    case OpKind::kSampleScan:
      out = op.scan_columns;
      break;
    case OpKind::kProject:
    case OpKind::kCompute:
      for (const NamedExpr& p : op.projections) out.push_back(p.output);
      break;
    case OpKind::kIndexApplyJoin:
      // Single-child form: the inner side is the seekable stream embedded in
      // the operator itself.
      out = child_outputs.at(0);
      if (op.join_type != JoinType::kLeftSemi) {
        out.insert(out.end(), op.scan_columns.begin(), op.scan_columns.end());
      }
      break;
    case OpKind::kJoin:
    case OpKind::kHashJoin:
    case OpKind::kBroadcastHashJoin:
    case OpKind::kMergeJoin:
    case OpKind::kLoopJoin:
      out = child_outputs.at(0);
      if (op.join_type != JoinType::kLeftSemi) {
        const std::vector<ColumnId>& right = child_outputs.at(1);
        out.insert(out.end(), right.begin(), right.end());
      }
      break;
    case OpKind::kGroupBy:
    case OpKind::kHashAgg:
    case OpKind::kStreamAgg:
    case OpKind::kPreHashAgg:
      out = op.group_keys;
      for (const AggExpr& a : op.aggs) out.push_back(a.output);
      break;
    case OpKind::kWindow:
    case OpKind::kWindowSegment:
      out = child_outputs.at(0);
      for (const NamedExpr& p : op.projections) out.push_back(p.output);
      break;
    default:
      // Filters, unions, exchanges, sorts, tops, process, output: schema
      // passes through the first child.
      if (!child_outputs.empty()) out = child_outputs[0];
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace qsteer
