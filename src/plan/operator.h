// Operator descriptors shared by the user-facing plan DAG and the optimizer
// memo. One "fat" value struct covers all logical and physical operators —
// the standard prototype-optimizer tradeoff: a closed operator algebra with
// cheap hashing/equality, which the memo needs for deduplication.
#ifndef QSTEER_PLAN_OPERATOR_H_
#define QSTEER_PLAN_OPERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/expr.h"

namespace qsteer {

enum class OpKind : uint8_t {
  // --- Logical operators (SCOPE script algebra) ---
  kGet,       // read one stream
  kSelect,    // row filter
  kProject,   // column projection / computed columns
  kJoin,      // logical join (type + equi keys)
  kGroupBy,   // aggregation ("Reduce" in SCOPE terms)
  kUnionAll,  // n-ary bag union over schema-compatible inputs
  kProcess,   // user-defined operator (C#/Python processor)
  kTop,       // top-N by sort keys
  kWindow,    // windowed analytic (rare)
  kSample,    // bernoulli sampling (rare)
  kOutput,    // job sink

  // --- Physical operators ---
  kRangeScan,
  kFilter,
  kCompute,
  kHashJoin,
  kBroadcastHashJoin,
  kMergeJoin,
  kLoopJoin,
  kIndexApplyJoin,
  kHashAgg,
  kStreamAgg,
  kPreHashAgg,  // local (partial) aggregation below the shuffle
  kPhysicalUnionAll,
  kVirtualDataset,  // metadata-only union of co-located streams
  kSortedUnionAll,
  kSort,
  kTopNSort,
  kTopNHeap,
  kExchange,
  kProcessVertex,
  kWindowSegment,
  kSampleScan,
  kOutputWriter,
};

enum class JoinType : uint8_t { kInner, kLeftOuter, kLeftSemi };
enum class ExchangeKind : uint8_t { kRepartition, kGather, kBroadcast };

enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax };

struct AggExpr {
  AggFunc func = AggFunc::kCount;
  ColumnId arg = kInvalidColumn;  // ignored for kCount
  ColumnId output = kInvalidColumn;
};

/// One output column of a Project/Window: either a pass-through of an input
/// column or a deterministic computed function of one or two inputs.
struct NamedExpr {
  ColumnId output = kInvalidColumn;
  bool pass_through = true;
  std::vector<ColumnId> inputs;
  /// Seed distinguishing computed functions (executor hashes inputs with it).
  uint64_t fn_seed = 0;
};

struct Operator {
  OpKind kind = OpKind::kGet;

  // kGet / kRangeScan
  int stream_id = -1;
  int stream_set_id = -1;
  std::vector<ColumnId> scan_columns;
  /// Fraction of partitions kept after partition pruning (SelectPartitions).
  double partition_fraction = 1.0;

  // kSelect / kFilter / join condition residual
  ExprPtr predicate;

  // kJoin and physical joins
  JoinType join_type = JoinType::kInner;
  std::vector<ColumnId> left_keys;
  std::vector<ColumnId> right_keys;
  /// 0 = build/broadcast the right input, 1 = the left input.
  int build_side = 0;

  // kGroupBy and physical aggregations
  std::vector<ColumnId> group_keys;
  std::vector<AggExpr> aggs;
  /// Partial (pre-shuffle) aggregation: collapses duplicates per partition
  /// only. Set by the PartialAggregation rewrite.
  bool partial_agg = false;

  // kProject / kCompute / kWindow output definitions
  std::vector<NamedExpr> projections;

  // kTop / kSort / kTopNSort / kTopNHeap
  int64_t limit = 0;
  std::vector<ColumnId> sort_keys;

  // kProcess / kProcessVertex
  std::string udo_name;
  double udo_selectivity_guess = 1.0;
  double udo_cost_per_row_guess = 2.0;

  // kWindow / kWindowSegment
  std::vector<ColumnId> window_keys;

  // kSample / kSampleScan
  double sample_fraction = 1.0;

  // kExchange
  ExchangeKind exchange = ExchangeKind::kRepartition;
  std::vector<ColumnId> exchange_keys;

  // Physical-only: degree of parallelism chosen by the optimizer.
  int dop = 1;

  bool IsLogical() const { return kind <= OpKind::kOutput; }
  bool IsPhysical() const { return !IsLogical(); }

  /// Structural hash of the descriptor (children excluded). With
  /// `for_template`, literals hash as markers and stream identity collapses
  /// to the stream *set*, so recurring jobs over fresh daily streams hash
  /// identically (paper §3.1.1's template identification).
  uint64_t Hash(bool for_template) const;

  std::string ToString() const;
};

const char* OpKindName(OpKind kind);

/// Output columns of an operator, given its children's output columns.
/// Returned list is sorted ascending (column order is not semantically
/// meaningful in this algebra; sorting makes set operations cheap).
std::vector<ColumnId> OutputColumns(const Operator& op,
                                    const std::vector<std::vector<ColumnId>>& child_outputs);

}  // namespace qsteer

#endif  // QSTEER_PLAN_OPERATOR_H_
