#include "plan/column.h"

namespace qsteer {

ColumnId ColumnUniverse::GetOrAddBaseColumn(int stream_set_id, int column_index,
                                            const std::string& name) {
  auto key = std::make_pair(stream_set_id, column_index);
  auto it = base_index_.find(key);
  if (it != base_index_.end()) return it->second;
  ColumnInfo info;
  info.name = name;
  info.stream_set_id = stream_set_id;
  info.column_index = column_index;
  info.derived = false;
  ColumnId id = static_cast<ColumnId>(columns_.size());
  columns_.push_back(std::move(info));
  base_index_[key] = id;
  return id;
}

ColumnId ColumnUniverse::AddDerivedColumn(const std::string& name, double ndv_hint,
                                          double avg_width) {
  ColumnInfo info;
  info.name = name;
  info.derived = true;
  info.derived_ndv = ndv_hint;
  info.avg_width = avg_width;
  ColumnId id = static_cast<ColumnId>(columns_.size());
  columns_.push_back(std::move(info));
  return id;
}

}  // namespace qsteer
