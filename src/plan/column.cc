#include "plan/column.h"

namespace qsteer {

namespace {

/// Descriptor returned for ids minted by a different compilation's overlay
/// (see ColumnUniverse::info). Must match the hints every optimizer mint
/// site passes to AddDerivedColumn (rules.cc: ndv_hint=1e6, default width),
/// so estimates and simulation see the same numbers whether a minted id is
/// resolved through its own overlay or through the root universe.
const ColumnInfo& ForeignOverlayColumn() {
  static const ColumnInfo* info = [] {
    auto* i = new ColumnInfo();
    i->name = "<overlay-derived>";
    i->derived = true;
    i->derived_ndv = 1e6;
    return i;
  }();
  return *info;
}

}  // namespace

ColumnUniverse::ColumnUniverse(std::shared_ptr<const ColumnUniverse> base)
    : base_(std::move(base)), base_size_(base_ != nullptr ? base_->size() : 0) {}

ColumnId ColumnUniverse::GetOrAddBaseColumn(int stream_set_id, int column_index,
                                            const std::string& name) {
  auto key = std::make_pair(stream_set_id, column_index);
  // Base columns registered in the base universe keep their ids: overlays
  // never shadow or duplicate base identity.
  for (const ColumnUniverse* u = base_.get(); u != nullptr; u = u->base_.get()) {
    auto bit = u->base_index_.find(key);
    if (bit != u->base_index_.end()) return bit->second;
  }
  auto it = base_index_.find(key);
  if (it != base_index_.end()) return it->second;
  ColumnInfo info;
  info.name = name;
  info.stream_set_id = stream_set_id;
  info.column_index = column_index;
  info.derived = false;
  ColumnId id = static_cast<ColumnId>(base_size_ + static_cast<int>(columns_.size()));
  columns_.push_back(std::move(info));
  base_index_[key] = id;
  return id;
}

ColumnId ColumnUniverse::AddDerivedColumn(const std::string& name, double ndv_hint,
                                          double avg_width) {
  ColumnInfo info;
  info.name = name;
  info.derived = true;
  info.derived_ndv = ndv_hint;
  info.avg_width = avg_width;
  ColumnId id = static_cast<ColumnId>(base_size_ + static_cast<int>(columns_.size()));
  columns_.push_back(std::move(info));
  return id;
}

const ColumnInfo& ColumnUniverse::info(ColumnId id) const {
  if (id < 0) return ForeignOverlayColumn();
  if (id < base_size_) return base_->info(id);
  size_t local = static_cast<size_t>(id - base_size_);
  if (local < columns_.size()) return columns_[local];
  return ForeignOverlayColumn();
}

}  // namespace qsteer
