// Binary (de)serialization of physical/logical plan DAGs and their scalar
// expressions — the foundation of compile-cache persistence (the nightly
// discovery pass ships warm caches to the serving tier).
//
// Fidelity contract: a round trip reconstructs the DAG *shape* exactly.
// Distinct nodes are written exactly once (children before parents, the
// VisitPlan order) and children are encoded as indices into that node
// table, so shared subtrees stay shared — NumOperators, PlanHash, the
// execution simulator and the memory estimator all count distinct nodes
// and must not see a tree-expanded copy. Expressions are deduplicated the
// same way through one per-plan expression table.
//
// Robustness contract: DeserializePlan never trusts the bytes. Every enum
// is range-checked, every index bounds-checked (children must precede
// parents), every length capped by the remaining input. A corrupt or
// truncated blob returns a Status — callers (the compile-cache loader)
// degrade to a cold compile, never to a wrong plan.
#ifndef QSTEER_PLAN_SERDE_H_
#define QSTEER_PLAN_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "plan/job.h"

namespace qsteer {

/// Little-endian append-only byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Bit-exact: the IEEE-754 image, so round trips preserve every payload
  /// bit (NaNs included) and serialized caches stay bit-identical.
  void PutDouble(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a ByteWriter buffer. Every getter fails with
/// kInvalidArgument instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI32(int32_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* v);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Serializes a plan DAG (may be null: an explicit empty marker).
void SerializePlan(const PlanNodePtr& root, ByteWriter* writer);

/// Reconstructs a DAG serialized by SerializePlan. Shared subtrees come
/// back shared; a corrupt blob returns a non-OK status.
Result<PlanNodePtr> DeserializePlan(ByteReader* reader);

/// Expression-only round trip (the plan serializer uses these internally;
/// exposed for tests and any future expression-level artifact).
void SerializeExpr(const ExprPtr& expr, ByteWriter* writer);
Result<ExprPtr> DeserializeExpr(ByteReader* reader);

}  // namespace qsteer

#endif  // QSTEER_PLAN_SERDE_H_
