// Column identity. Every job owns a ColumnUniverse mapping small integer
// ColumnIds to column metadata. Base columns are deduplicated per
// (stream set, column index), so two scans of different streams of the same
// set produce identical ColumnIds — which is what makes UNION ALL branches
// over daily streams schema-compatible, as in SCOPE cooking jobs.
#ifndef QSTEER_PLAN_COLUMN_H_
#define QSTEER_PLAN_COLUMN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qsteer {

using ColumnId = int32_t;
constexpr ColumnId kInvalidColumn = -1;

struct ColumnInfo {
  std::string name;
  /// Stream set that defines this column; -1 for derived columns.
  int stream_set_id = -1;
  /// Index within the stream set schema; -1 for derived columns.
  int column_index = -1;
  bool derived = false;
  /// NDV hint for derived columns (aggregates, computed expressions).
  double derived_ndv = 1000.0;
  double avg_width = 8.0;
};

/// Per-job registry of columns. Not thread-safe; one universe per job.
class ColumnUniverse {
 public:
  /// Returns the id for a base column, creating it on first use.
  ColumnId GetOrAddBaseColumn(int stream_set_id, int column_index, const std::string& name);

  /// Registers a new derived column (always a fresh id).
  ColumnId AddDerivedColumn(const std::string& name, double ndv_hint, double avg_width = 8.0);

  const ColumnInfo& info(ColumnId id) const { return columns_[static_cast<size_t>(id)]; }
  int size() const { return static_cast<int>(columns_.size()); }

 private:
  std::vector<ColumnInfo> columns_;
  std::map<std::pair<int, int>, ColumnId> base_index_;
};

}  // namespace qsteer

#endif  // QSTEER_PLAN_COLUMN_H_
